//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Same bench-authoring API surface as criterion 0.5 for what this
//! workspace uses — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`/`criterion_main!`
//! — but the measurement core is a plain min/median/mean timer that
//! prints one line per benchmark and keeps no on-disk history. Good
//! enough to compare before/after on the same machine, which is all the
//! in-repo benches need.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample batch.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Target wall-clock time for calibration (and warm-up).
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let n = self.default_sample_size;
        run_bench(id.as_ref(), n, f);
        self
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Finish the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration of each timed sample (filled by `iter`).
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, batching iterations so each timed sample runs long
    /// enough for the clock to resolve it.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in SAMPLE_TARGET?
        let mut batch = 1u64;
        let mut spent = Duration::ZERO;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            spent += dt;
            if dt >= SAMPLE_TARGET {
                break;
            }
            if spent >= WARMUP_TARGET && dt < SAMPLE_TARGET {
                // Slow clock resolution path: scale up directly.
                let per = dt.as_nanos().max(1) as u64 / batch.max(1);
                batch = (SAMPLE_TARGET.as_nanos() as u64 / per.max(1)).clamp(batch, batch * 1024);
                break;
            }
            batch = batch.saturating_mul(2);
        }
        // Timed samples.
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_bench(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{id:<48} (no samples — closure never called Bencher::iter)");
        return;
    }
    let mut s = b.samples_ns.clone();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = s[0];
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "{id:<48} time: [min {} | median {} | mean {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn formats_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12e9).contains('s'));
    }
}
