//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the API surface this workspace uses: [`SmallRng`]
//! (xoshiro256++), [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`SliceRandom`] for shuffling.
//! Random quality is adequate for generating test workloads, which is the
//! only use in this repository.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the full value domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draw one value in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                // Modulo reduction: the bias is ~span/2^64, irrelevant for
                // workload generation.
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level drawing methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The usual glob-import surface (mirrors `rand::prelude`).
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i64..75);
            assert!((-50..75).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..512).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..512).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn gen_full_domain_types() {
        let mut r = SmallRng::seed_from_u64(9);
        let _: u64 = r.gen();
        let _: i64 = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        let _ = r.gen_bool(0.5);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut r).is_some());
    }
}
