//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Random-search property testing **without shrinking**: each `proptest!`
//! test runs `cases` times with inputs drawn deterministically from a
//! per-(test, case) seeded generator, so failures reproduce across runs.
//! On failure the generated inputs are printed (instead of minimized) and
//! the panic is re-thrown so the test harness reports it normally.
//!
//! Implements exactly what this workspace uses: integer-range strategies,
//! `collection::{vec, btree_set, btree_map}`, `ProptestConfig::with_cases`,
//! and the `prop_assert!` family. `*.proptest-regressions` files are
//! ignored.

#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Per-test configuration (only the field this workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases (overridable with the
    /// `PROPTEST_CASES` environment variable, as in real proptest).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count after the environment override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The generator for one case of one test: a pure function of the test's
/// full path and the case index, so runs are reproducible.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    TestRng {
        state: h.finish() ^ 0xD1B54A32D192ED03,
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` with a target size drawn from `size`. Duplicates are
    /// retried a bounded number of times, so the result may be smaller
    /// than the target when the element domain is nearly exhausted.
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 8 + 16 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        size: Range<usize>,
    }

    /// A `BTreeMap` with a target size drawn from `size`; keys from `key`,
    /// values from `val`.
    pub fn btree_map<K, V>(key: K, val: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, val, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 8 + 16 {
                out.insert(self.key.generate(rng), self.val.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// inside the block becomes a normal test running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.effective_cases() {
                let mut __rng = $crate::test_rng(__name, __case);
                let __vals = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                let __desc = format!("{:?}", __vals);
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ($($pat,)+) = __vals;
                        $body
                    }),
                );
                if let Err(__e) = __result {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs {}",
                        __name, __case, __cfg.effective_cases(), __desc
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Property assertion (plain `assert!` without shrinking support).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The usual glob-import surface (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_rng("x", 0);
        let mut b = crate::test_rng("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_rng("coll", 0);
        let v = Strategy::generate(&crate::collection::vec(0i64..10, 5..6), &mut rng);
        assert_eq!(v.len(), 5);
        let s = Strategy::generate(&crate::collection::btree_set(0i64..1000, 10..11), &mut rng);
        assert_eq!(s.len(), 10);
        let m = Strategy::generate(
            &crate::collection::btree_map(0i64..1000, 0u64..5, 4..5),
            &mut rng,
        );
        assert_eq!(m.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(a in 0u64..100, mut b in 1usize..4) {
            b += 1;
            prop_assert!(a < 100);
            prop_assert!((2..5).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, 0, "b must be positive, got {}", b);
        }
    }
}
