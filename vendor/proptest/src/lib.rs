//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Random-search property testing **without shrinking**: each `proptest!`
//! test runs `cases` times with inputs drawn deterministically from a
//! per-(test, case) seeded generator, so failures reproduce across runs.
//! On failure the generated inputs are printed (instead of minimized) and
//! the panic is re-thrown so the test harness reports it normally.
//!
//! Implements exactly what this workspace uses: integer-range strategies,
//! `collection::{vec, btree_set, btree_map}`, `ProptestConfig::with_cases`,
//! the `prop_assert!` family, and failure persistence: when a case fails,
//! its seed is appended to a `*.proptest-regressions` file next to the
//! test source, and those seeds are re-run before any novel cases on
//! subsequent runs (check the files in to source control). Files written
//! by real proptest are accepted: their long digests are truncated to a
//! 64-bit seed, so legacy entries still replay a deterministic case.

#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Per-test configuration (only the field this workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases (overridable with the
    /// `PROPTEST_CASES` environment variable, as in real proptest).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count after the environment override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator starting from an explicit seed, e.g. one persisted in a
    /// `*.proptest-regressions` file or one drawn by an enclosing
    /// strategy. Equal seeds give equal streams.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The current state; captured *before* generating a case, it is the
    /// seed that [`TestRng::from_seed`] needs to replay that case.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The generator for one case of one test: a pure function of the test's
/// full path and the case index, so runs are reproducible.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    TestRng {
        state: h.finish() ^ 0xD1B54A32D192ED03,
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` with a target size drawn from `size`. Duplicates are
    /// retried a bounded number of times, so the result may be smaller
    /// than the target when the element domain is nearly exhausted.
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 8 + 16 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        size: Range<usize>,
    }

    /// A `BTreeMap` with a target size drawn from `size`; keys from `key`,
    /// values from `val`.
    pub fn btree_map<K, V>(key: K, val: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, val, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 8 + 16 {
                out.insert(self.key.generate(rng), self.val.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Failure persistence (mirrors proptest's `*.proptest-regressions`
/// files): failing case seeds are appended next to the test source file
/// and re-run before any novel cases on later runs.
pub mod persistence {
    use std::io::Write;
    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

    /// Resolve the regression file for a test source file. `source` is the
    /// compile-time `file!()` path — relative to wherever cargo invoked
    /// rustc from (the workspace root), which need not be the test
    /// binary's working directory — so it is resolved against
    /// `manifest_dir` (the invoking crate's `CARGO_MANIFEST_DIR`) and its
    /// ancestors. `None` when the source file cannot be located (e.g. a
    /// binary run on a machine without the sources).
    pub fn path_for(manifest_dir: &str, source: &str) -> Option<PathBuf> {
        let src = Path::new(source);
        let resolved = if src.is_absolute() {
            src.exists().then(|| src.to_path_buf())?
        } else {
            Path::new(manifest_dir)
                .ancestors()
                .map(|a| a.join(src))
                .find(|p| p.exists())?
        };
        Some(resolved.with_extension("proptest-regressions"))
    }

    /// Parse persisted seeds: lines of the form `cc <hex> ...`. Digests
    /// longer than 16 hex digits (written by real proptest) are truncated
    /// to their first 16, so legacy files still replay deterministically.
    pub fn load(path: Option<&Path>) -> Vec<u64> {
        let Some(path) = path else { return Vec::new() };
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                let hex: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_hexdigit())
                    .take(16)
                    .collect();
                u64::from_str_radix(&hex, 16).ok()
            })
            .collect()
    }

    /// Append a failing seed, creating the file with its header first if
    /// needed; duplicate entries are skipped. Write errors are reported
    /// but non-fatal (the failure itself still propagates to the harness).
    pub fn save(path: Option<&Path>, seed: u64, test: &str, inputs: &str) {
        let Some(path) = path else {
            eprintln!("proptest: cannot locate test source; seed {seed:016x} not persisted");
            return;
        };
        let entry = format!("cc {seed:016x}");
        match std::fs::read_to_string(path) {
            Ok(existing) if existing.lines().any(|l| l.trim().starts_with(&entry)) => return,
            Ok(_) => {}
            Err(_) => {
                if let Err(e) = std::fs::write(path, HEADER) {
                    eprintln!("proptest: could not create {}: {e}", path.display());
                    return;
                }
            }
        }
        match std::fs::OpenOptions::new().append(true).open(path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{entry} # {test} failed with inputs: {inputs}");
                eprintln!(
                    "proptest: persisted failing seed {seed:016x} to {}",
                    path.display()
                );
            }
            Err(e) => eprintln!("proptest: could not append to {}: {e}", path.display()),
        }
    }
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// inside the block becomes a normal test running any persisted
/// regression seeds first, then `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let __persist =
                $crate::persistence::path_for(env!("CARGO_MANIFEST_DIR"), file!());
            let __run_case = |__rng: &mut $crate::TestRng| {
                let __vals = ($($crate::Strategy::generate(&($strat), __rng),)+);
                let __desc = format!("{:?}", __vals);
                ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                    let ($($pat,)+) = __vals;
                    $body
                }))
                .map_err(|__e| (__desc, __e))
            };
            for __seed in $crate::persistence::load(__persist.as_deref()) {
                let mut __rng = $crate::TestRng::from_seed(__seed);
                if let Err((__desc, __e)) = __run_case(&mut __rng) {
                    eprintln!(
                        "proptest: {} failed replaying persisted seed {:016x} with inputs {}",
                        __name, __seed, __desc
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
            for __case in 0..__cfg.effective_cases() {
                let mut __rng = $crate::test_rng(__name, __case);
                let __seed = __rng.state();
                if let Err((__desc, __e)) = __run_case(&mut __rng) {
                    $crate::persistence::save(__persist.as_deref(), __seed, __name, &__desc);
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs {}",
                        __name, __case, __cfg.effective_cases(), __desc
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Property assertion (plain `assert!` without shrinking support).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The usual glob-import surface (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_rng("x", 0);
        let mut b = crate::test_rng("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_rng("coll", 0);
        let v = Strategy::generate(&crate::collection::vec(0i64..10, 5..6), &mut rng);
        assert_eq!(v.len(), 5);
        let s = Strategy::generate(&crate::collection::btree_set(0i64..1000, 10..11), &mut rng);
        assert_eq!(s.len(), 10);
        let m = Strategy::generate(
            &crate::collection::btree_map(0i64..1000, 0u64..5, 4..5),
            &mut rng,
        );
        assert_eq!(m.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(a in 0u64..100, mut b in 1usize..4) {
            b += 1;
            prop_assert!(a < 100);
            prop_assert!((2..5).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, 0, "b must be positive, got {}", b);
        }
    }

    #[test]
    fn from_seed_replays_the_same_stream() {
        let mut orig = crate::test_rng("replay", 3);
        let seed = orig.state();
        let a: Vec<u64> = (0..4).map(|_| orig.next_u64()).collect();
        let mut replay = crate::TestRng::from_seed(seed);
        let b: Vec<u64> = (0..4).map(|_| replay.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn persistence_roundtrip_and_legacy_digests() {
        let dir = std::env::temp_dir().join(format!("pf-proptest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.proptest-regressions");
        let _ = std::fs::remove_file(&path);

        assert!(crate::persistence::load(Some(&path)).is_empty());
        crate::persistence::save(Some(&path), 0xDEAD_BEEF_0000_0001, "t::a", "(1, 2)");
        crate::persistence::save(Some(&path), 0xDEAD_BEEF_0000_0001, "t::a", "(1, 2)"); // dup
        crate::persistence::save(Some(&path), 7, "t::b", "(0,)");
        // A legacy entry written by real proptest: long digest, truncated
        // to its first 16 hex digits on load.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(
                f,
                "cc 481f3d5b08e5c7e1f2dd2c44f22804dc3c2f2e32abcac5872a24cd269f2bfbba # shrinks to x = 3"
            )
            .unwrap();
        }
        assert_eq!(
            crate::persistence::load(Some(&path)),
            vec![0xDEAD_BEEF_0000_0001, 7, 0x481f_3d5b_08e5_c7e1]
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.starts_with("# Seeds for failure cases"),
            "header missing:\n{text}"
        );
        std::fs::remove_file(&path).unwrap();

        // Unresolvable source => no-op, never a panic.
        assert!(crate::persistence::load(None).is_empty());
        crate::persistence::save(None, 1, "t::c", "()");
    }

    #[test]
    fn path_for_resolves_against_manifest_ancestors() {
        // file!() here is relative to the workspace root; the manifest dir
        // of this crate is <ws>/vendor/proptest, so resolution must walk
        // up the ancestor chain.
        let p = crate::persistence::path_for(env!("CARGO_MANIFEST_DIR"), file!())
            .expect("source file should be locatable");
        assert!(
            p.ends_with("vendor/proptest/src/lib.proptest-regressions"),
            "{p:?}"
        );
        assert!(
            crate::persistence::path_for(env!("CARGO_MANIFEST_DIR"), "no/such/file.rs").is_none()
        );
    }
}
