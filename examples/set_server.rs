//! set_server: the "dynamic dictionary" workload of §3.2–3.3, now served
//! by the `pf-service` crate — a sharded, coalescing set service with
//! cross-batch pipelining — instead of a hand-rolled per-batch loop.
//!
//! A server holds a large keyset (e.g. active session ids). Batches of
//! inserts and deletes arrive tagged with request ids; the service splits
//! them by key range across shards, coalesces each shard's run into apply
//! waves, and chains windows of waves through unresolved future cells in
//! one fault-contained session (`ApplyMode::Pipelined`). The example
//! replays a synthetic day of traffic through the concurrent `drive()`
//! path and validates the outcome three ways:
//!
//! 1. **Key-set oracle** — every shard's final key set must equal a
//!    `BTreeSet` replay of exactly the served requests.
//! 2. **Shape oracle** — every shard's parallel treap must have the same
//!    height as a *sequential* `PlainTreap` replay of the same coalesced
//!    waves (same priorities, same tie-break ⇒ identical shape).
//! 3. **Failure model** — the traffic carries an empty batch (elided at
//!    ingress), a duplicate-key batch (deduplicated by the coalescer), a
//!    poison-pill batch whose session panics, and a batch that wedges
//!    until its deadline. Exactly the two faulty requests must degrade —
//!    in every shard their keys landed in — while the shards keep serving
//!    from their previous committed roots.
//!
//! Run with: `cargo run --release -p pf-examples --bin set_server`

use std::collections::{BTreeSet, HashSet};
use std::time::Duration;

use pf_examples::banner;
use pf_service::{
    coalesce, ApplyMode, CoalescePolicy, Fault, OpKind, Request, ServiceConfig, SetService,
    ShardMap,
};
use pf_trees::seq::{Entry, PlainTreap};
use rand::prelude::*;
use rand::rngs::SmallRng;

const KEYSPACE: i64 = 1_000_000;
const SHARDS: usize = 4;
/// Tags of the spliced-in misbehaving traffic (by final position).
const EMPTY_TAG: u64 = 6;
const PANIC_TAG: u64 = 8;
const WEDGE_TAG: u64 = 11;

/// A synthetic day of traffic: bulk insert rounds growing the live set,
/// periodic deletes of ~20% of it, plus spliced-in misbehavior — an
/// empty batch, a duplicate-carrying batch (round 4: a client retried),
/// a poison pill, and a wedger. Tags are final positions, so outcomes
/// trace back to requests.
fn synthesize_traffic(rounds: usize, seed: u64) -> Vec<Request<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<i64> = Vec::new();
    let mut reqs = Vec::new();
    for r in 0..rounds {
        if r % 3 == 2 && live.len() > 200 {
            // Delete a random ~20% of the live keys.
            live.shuffle(&mut rng);
            let k = live.len() / 5;
            let dead: Vec<Entry<i64>> = live.drain(..k).map(|k| (k, rng.gen())).collect();
            reqs.push(Request::delete(dead));
        } else {
            let m = rng.gen_range(200..800);
            let mut fresh: Vec<Entry<i64>> = (0..m)
                .map(|_| (rng.gen_range(0..KEYSPACE), rng.gen::<u64>()))
                .collect();
            // Round 4: a client retried — the batch carries duplicates,
            // which the coalescer's sanitize pass drops (keep-first).
            if r == 4 {
                let dups: Vec<Entry<i64>> = fresh.iter().take(m / 4).copied().collect();
                fresh.extend(dups);
            }
            live.extend(fresh.iter().map(|e| e.0));
            live.sort_unstable();
            live.dedup();
            reqs.push(Request::insert(fresh));
        }
    }
    // Splice in the misbehaving traffic at fixed points. The faulty
    // batches carry real entries that must NOT reach the served state.
    reqs.insert(EMPTY_TAG as usize, Request::insert(Vec::new()));
    let pill: Vec<Entry<i64>> = (0..300)
        .map(|_| (rng.gen_range(0..KEYSPACE), rng.gen()))
        .collect();
    reqs.insert(
        PANIC_TAG as usize,
        Request::insert(pill).faulty(Fault::Panic),
    );
    let slow: Vec<Entry<i64>> = (0..300)
        .map(|_| (rng.gen_range(0..KEYSPACE), rng.gen()))
        .collect();
    reqs.insert(
        WEDGE_TAG as usize,
        Request::insert(slow).faulty(Fault::Wedge),
    );
    reqs.into_iter()
        .enumerate()
        .map(|(i, r)| r.tagged(i as u64))
        .collect()
}

/// The sub-request stream one shard sees: each request's entries
/// restricted to the shard's key range (empties dropped, tag and fault
/// preserved) — the same split `SetService::submit` performs.
fn shard_stream(reqs: &[Request<i64>], map: &ShardMap<i64>, shard: usize) -> Vec<Request<i64>> {
    reqs.iter()
        .filter_map(|r| {
            let mut parts = map.split(r.entries.clone());
            let entries = std::mem::take(&mut parts[shard]);
            if entries.is_empty() {
                None
            } else {
                Some(Request {
                    kind: r.kind,
                    entries,
                    fault: r.fault,
                    tag: r.tag,
                })
            }
        })
        .collect()
}

/// Sequential shape oracle: replay one shard's *served* coalesced waves
/// on a `PlainTreap`. Wave groups fold through `union` — associative on
/// the final entry set (max-priority wins per key) — so this walks the
/// exact entry stream the parallel union tree applied.
fn replay_shard_plain(
    stream: Vec<Request<i64>>,
    shard: usize,
    served: &HashSet<(usize, u64)>,
    policy: &CoalescePolicy,
) -> Option<Box<PlainTreap<i64>>> {
    let mut state: Option<Box<PlainTreap<i64>>> = None;
    for wave in coalesce(stream, policy) {
        if !served.contains(&(shard, wave.tags[0])) {
            continue; // a wave serves or degrades atomically
        }
        let batch = wave
            .groups
            .iter()
            .map(|g| PlainTreap::from_entries(g))
            .fold(None, PlainTreap::union);
        state = match wave.kind {
            OpKind::Insert => PlainTreap::union(state, batch),
            OpKind::Delete => PlainTreap::diff(state, batch),
        };
    }
    state
}

fn main() {
    let traffic = synthesize_traffic(12, 2026);
    let total = traffic.len();

    banner("driving batched updates through pf-service (4 shards, pipelined)");
    let cfg = ServiceConfig {
        threads: 4,
        window: 4,
        mode: ApplyMode::Pipelined,
        // Generous for healthy waves; the wedged one trips it.
        deadline: Some(Duration::from_millis(500)),
        policy: CoalescePolicy::default(),
        ..ServiceConfig::default()
    };
    let map = ShardMap::uniform(SHARDS, 0, KEYSPACE);
    let svc = SetService::new(map.clone(), cfg);

    // The concurrent open-loop path: one apply thread per shard drains
    // its ingress while the main thread feeds requests in.
    let report = svc.drive(traffic.clone());

    for o in &report.outcomes {
        let kind = if o.kind == OpKind::Insert {
            "insert"
        } else {
            "delete"
        };
        let fate = if o.served { "served" } else { "DEGRADED" };
        let via = if o.replayed { " (via replay)" } else { "" };
        println!(
            "shard {} {kind:>6} wave tags {:?} {:>4} keys -> {fate}{via} in {:?}",
            o.shard, o.tags, o.keys, o.latency
        );
    }

    // 3. Failure model: exactly the two faulty requests degraded, in
    // every shard their keys landed in; the empty batch never produced
    // a wave at all (elided at ingress).
    let degraded_tags: BTreeSet<u64> = report
        .outcomes
        .iter()
        .filter(|o| !o.served)
        .flat_map(|o| o.tags.iter().copied())
        .collect();
    assert_eq!(
        degraded_tags,
        BTreeSet::from([PANIC_TAG, WEDGE_TAG]),
        "expected exactly the injected faults to degrade"
    );
    assert!(
        !report.outcomes.iter().any(|o| o.tags.contains(&EMPTY_TAG)),
        "the empty batch should be elided, not applied"
    );

    let served: HashSet<(usize, u64)> = report
        .outcomes
        .iter()
        .filter(|o| o.served)
        .flat_map(|o| o.tags.iter().map(move |t| (o.shard, *t)))
        .collect();

    for shard in 0..SHARDS {
        let stream = shard_stream(&traffic, &map, shard);

        // 1. Key-set oracle: BTreeSet replay of the served requests.
        let mut oracle: BTreeSet<i64> = BTreeSet::new();
        for r in &stream {
            if !served.contains(&(shard, r.tag)) {
                continue;
            }
            match r.kind {
                OpKind::Insert => oracle.extend(r.entries.iter().map(|e| e.0)),
                OpKind::Delete => {
                    for e in &r.entries {
                        oracle.remove(&e.0);
                    }
                }
            }
        }
        let keys = svc.shard_keys(shard);
        assert_eq!(
            keys,
            oracle.iter().copied().collect::<Vec<_>>(),
            "shard {shard} diverged from the BTreeSet oracle"
        );
        assert!(
            svc.snapshot(shard).check_invariants(),
            "treap invariants broken in shard {shard}"
        );

        // 2. Shape oracle: the parallel root matches a sequential
        // PlainTreap replay of the same coalesced waves exactly.
        let plain = replay_shard_plain(stream, shard, &served, &cfg.policy);
        assert_eq!(
            svc.snapshot(shard).height(),
            PlainTreap::height(&plain),
            "shard {shard}: parallel and sequential treaps must have identical shape"
        );

        // Snapshot reads come straight off the committed root.
        for k in keys.iter().take(3) {
            assert!(svc.contains(k));
        }
        println!(
            "shard {shard}: {:>6} keys, height {:>2} — matches BTreeSet and PlainTreap replay",
            keys.len(),
            svc.snapshot(shard).height()
        );
    }

    println!(
        "\n{total} requests -> {}/{} waves served ({} degraded) across {} sessions; \
         {} keys applied, in-session throughput {:.0} ops/s. all shards verified. done.",
        report.served,
        report.served + report.degraded,
        report.degraded,
        report.sessions,
        report.keys_applied,
        report.stats.ops_per_sec(report.keys_applied)
    );
}
