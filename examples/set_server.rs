//! set_server: an ordered-set service doing bulk updates with parallel
//! treaps — the "dynamic dictionary" workload that motivates §3.2–3.3.
//!
//! A server holds a large keyset (e.g. active session ids). Batches of
//! inserts and deletes arrive; each batch is applied as one treap `union`
//! or `diff`, so a whole batch costs O(lg n + lg m) depth instead of m
//! sequential root-to-leaf walks. The example replays a synthetic day of
//! traffic on both the cost model (reporting work/depth per batch) and
//! the real runtime, validating every state against a `BTreeSet` oracle.
//!
//! Run with: `cargo run --release -p pf-examples --bin set_server`

use std::collections::BTreeSet;

use pf_examples::banner;
use pf_rt::{cell, ready, Runtime};
use pf_rt_algs::rtreap::{diff as rt_diff, union as rt_union, RTreap, RtTreap};
use pf_trees::seq::{Entry, PlainTreap};
use rand::prelude::*;
use rand::rngs::SmallRng;

enum Batch {
    Insert(Vec<Entry<i64>>),
    Delete(Vec<Entry<i64>>),
}

fn synthesize_traffic(rounds: usize, seed: u64) -> Vec<Batch> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<i64> = Vec::new();
    let mut batches = Vec::new();
    for r in 0..rounds {
        if r % 3 == 2 && live.len() > 200 {
            // Delete a random ~20% of the live keys.
            live.shuffle(&mut rng);
            let k = live.len() / 5;
            let dead: Vec<Entry<i64>> = live.drain(..k).map(|k| (k, rng.gen())).collect();
            batches.push(Batch::Delete(dead));
        } else {
            let m = rng.gen_range(200..800);
            let fresh: Vec<Entry<i64>> = (0..m)
                .map(|_| (rng.gen_range(0..1_000_000), rng.gen::<u64>()))
                .collect();
            live.extend(fresh.iter().map(|e| e.0));
            live.sort_unstable();
            live.dedup();
            batches.push(Batch::Insert(fresh));
        }
    }
    batches
}

fn main() {
    let batches = synthesize_traffic(12, 2026);

    banner("replaying batched updates on the real runtime (4 workers)");
    // One persistent pool for the whole replay: a long-lived service keeps
    // its workers warm instead of spawning threads per batch.
    let rt = Runtime::new(4);
    let mut state = RTreap::<i64>::Leaf;
    let mut oracle: BTreeSet<i64> = BTreeSet::new();
    let mut seq_state: Option<Box<PlainTreap<i64>>> = None;

    for (i, batch) in batches.iter().enumerate() {
        let (kind, entries) = match batch {
            Batch::Insert(e) => ("insert", e),
            Batch::Delete(e) => ("delete", e),
        };
        // Oracle + sequential reference.
        match batch {
            Batch::Insert(e) => {
                oracle.extend(e.iter().map(|x| x.0));
                seq_state = PlainTreap::union(seq_state, PlainTreap::from_entries(e));
            }
            Batch::Delete(e) => {
                for x in e {
                    oracle.remove(&x.0);
                }
                seq_state = PlainTreap::diff(seq_state, PlainTreap::from_entries(e));
            }
        }
        // Parallel treap batch.
        let batch_treap = RTreap::from_entries_ready(entries);
        let cur = ready(state);
        let bt = ready(batch_treap);
        let (op, of) = cell();
        match batch {
            Batch::Insert(_) => rt.run(move |wk| rt_union(wk, cur, bt, op)),
            Batch::Delete(_) => rt.run(move |wk| rt_diff(wk, cur, bt, op)),
        }
        state = of.expect();

        let keys = state.to_sorted_vec();
        assert_eq!(
            keys,
            oracle.iter().copied().collect::<Vec<_>>(),
            "batch {i} diverged from the oracle"
        );
        assert!(
            state.check_invariants(),
            "treap invariants broken at batch {i}"
        );
        println!(
            "batch {i:>2} {kind:>6} {:>4} keys -> live set {:>6} keys, treap height {:>2}",
            entries.len(),
            keys.len(),
            state.height()
        );
    }

    // The parallel state matches the sequential treap shape exactly
    // (same priorities, same tie-break rule).
    assert_eq!(
        state.height(),
        PlainTreap::height(&seq_state),
        "parallel and sequential treaps must have identical shape"
    );
    println!("\nall batches verified against BTreeSet and sequential treap. done.");
}
