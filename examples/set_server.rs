//! set_server: an ordered-set service doing bulk updates with parallel
//! treaps — the "dynamic dictionary" workload that motivates §3.2–3.3.
//!
//! A server holds a large keyset (e.g. active session ids). Batches of
//! inserts and deletes arrive; each batch is applied as one treap `union`
//! or `diff`, so a whole batch costs O(lg n + lg m) depth instead of m
//! sequential root-to-leaf walks. The example replays a synthetic day of
//! traffic on the real runtime, validating every state against a
//! `BTreeSet` oracle.
//!
//! This replay also exercises the **failure model**: every batch runs in
//! a fault-contained session ([`Runtime::try_run_session`] via
//! [`try_apply_batch`]) under a per-batch deadline. The traffic includes
//! an empty batch, a batch with duplicate keys, a batch whose handler
//! panics, and a batch that wedges (and trips its deadline). A failed
//! batch is reported as *degraded* and the server keeps serving from the
//! previous root — treap nodes are shared, so keeping the old root costs
//! one `Arc` clone, and the abort machinery poisons the dead session's
//! cells instead of leaking its suspended continuations.
//!
//! Run with: `cargo run --release -p pf-examples --bin set_server`

use std::collections::BTreeSet;
use std::time::Duration;

use pf_examples::banner;
use pf_rt::{cell, ready, Runtime, Session, SessionError};
use pf_rt_algs::drivers::try_apply_batch;
use pf_rt_algs::rtreap::{diff as rt_diff, union as rt_union, RTreap, RtTreap};
use pf_trees::seq::{Entry, PlainTreap};
use rand::prelude::*;
use rand::rngs::SmallRng;

/// Generous ceiling for a healthy batch; only a wedged one gets near it.
const BATCH_DEADLINE: Duration = Duration::from_secs(10);
/// Tight ceiling used for the deliberately wedged batch.
const WEDGED_DEADLINE: Duration = Duration::from_millis(5);

#[derive(Clone, Copy, PartialEq)]
enum Fault {
    /// Healthy request.
    None,
    /// The batch handler panics mid-flight (a poison-pill request).
    Panic,
    /// The batch handler wedges until cancelled: trips the deadline.
    Wedge,
}

struct Batch {
    delete: bool,
    entries: Vec<Entry<i64>>,
    fault: Fault,
}

fn synthesize_traffic(rounds: usize, seed: u64) -> Vec<Batch> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<i64> = Vec::new();
    let mut batches = Vec::new();
    for r in 0..rounds {
        if r % 3 == 2 && live.len() > 200 {
            // Delete a random ~20% of the live keys.
            live.shuffle(&mut rng);
            let k = live.len() / 5;
            let dead: Vec<Entry<i64>> = live.drain(..k).map(|k| (k, rng.gen())).collect();
            batches.push(Batch {
                delete: true,
                entries: dead,
                fault: Fault::None,
            });
        } else {
            let m = rng.gen_range(200..800);
            let mut fresh: Vec<Entry<i64>> = (0..m)
                .map(|_| (rng.gen_range(0..1_000_000), rng.gen::<u64>()))
                .collect();
            // Round 4: a client retried — the batch carries duplicates.
            if r == 4 {
                let dups: Vec<Entry<i64>> = fresh.iter().take(m / 4).copied().collect();
                fresh.extend(dups);
            }
            live.extend(fresh.iter().map(|e| e.0));
            live.sort_unstable();
            live.dedup();
            batches.push(Batch {
                delete: false,
                entries: fresh,
                fault: Fault::None,
            });
        }
    }
    // Splice in the misbehaving traffic at fixed points: an empty batch,
    // a poison-pill batch, and a wedged batch. The faulty batches carry
    // real entries that must NOT reach the served state.
    batches.insert(
        6,
        Batch {
            delete: false,
            entries: Vec::new(),
            fault: Fault::None,
        },
    );
    let pill: Vec<Entry<i64>> = (0..300)
        .map(|_| (rng.gen_range(0..1_000_000), rng.gen()))
        .collect();
    batches.insert(
        8,
        Batch {
            delete: false,
            entries: pill,
            fault: Fault::Panic,
        },
    );
    let slow: Vec<Entry<i64>> = (0..300)
        .map(|_| (rng.gen_range(0..1_000_000), rng.gen()))
        .collect();
    batches.insert(
        11,
        Batch {
            delete: false,
            entries: slow,
            fault: Fault::Wedge,
        },
    );
    batches
}

/// Like [`try_apply_batch`], but the session also runs the batch's
/// injected misbehavior — a panicking task or one that spins until the
/// session is cancelled (which the deadline eventually does).
fn apply_with_fault(
    rt: &Runtime,
    state: RTreap<i64>,
    batch: RTreap<i64>,
    delete: bool,
    fault: Fault,
    deadline: Duration,
) -> Result<RTreap<i64>, SessionError> {
    let (fs, fb) = (ready(state), ready(batch));
    let (op, of) = cell();
    rt.try_run_session(Session::new().deadline(deadline), move |wk| {
        match fault {
            Fault::Panic => wk.spawn(|_| panic!("injected fault: malformed request payload")),
            Fault::Wedge => wk.spawn(|wk| {
                while !wk.cancelled() {
                    std::hint::spin_loop();
                }
            }),
            Fault::None => {}
        }
        if delete {
            rt_diff(wk, fs, fb, op)
        } else {
            rt_union(wk, fs, fb, op)
        }
    })?;
    Ok(of.expect())
}

fn main() {
    let batches = synthesize_traffic(12, 2026);
    let total = batches.len();

    banner("replaying batched updates on the real runtime (4 workers)");
    // One persistent pool for the whole replay: a long-lived service keeps
    // its workers warm instead of spawning threads per batch — including
    // across batches that fail (the pool survives contained aborts).
    let rt = Runtime::new(4);
    let mut state = RTreap::<i64>::Leaf;
    let mut oracle: BTreeSet<i64> = BTreeSet::new();
    let mut seq_state: Option<Box<PlainTreap<i64>>> = None;
    let mut degraded = 0usize;

    for (i, batch) in batches.into_iter().enumerate() {
        let kind = if batch.delete { "delete" } else { "insert" };
        // Sanitize the request: sort and drop duplicate keys (keep-first,
        // matching `PlainTreap::from_entries`, whose duplicate inserts are
        // no-ops — so the dedup is cosmetic for reporting, not load-bearing).
        let mut entries = batch.entries;
        let raw = entries.len();
        entries.sort_by_key(|e| e.0);
        entries.dedup_by_key(|e| e.0);
        if entries.len() < raw {
            println!(
                "batch {i:>2} {kind:>6} dropped {} duplicate key(s)",
                raw - entries.len()
            );
        }

        let bt = RTreap::from_entries_ready(&entries);
        let res = match batch.fault {
            Fault::None => {
                try_apply_batch(&rt, state.clone(), bt, batch.delete, Some(BATCH_DEADLINE))
            }
            f @ Fault::Panic => {
                apply_with_fault(&rt, state.clone(), bt, batch.delete, f, BATCH_DEADLINE)
            }
            f @ Fault::Wedge => {
                apply_with_fault(&rt, state.clone(), bt, batch.delete, f, WEDGED_DEADLINE)
            }
        };

        match res {
            Ok(next) => {
                // Commit: advance the oracle and the sequential reference
                // only for batches that actually served.
                if batch.delete {
                    for e in &entries {
                        oracle.remove(&e.0);
                    }
                    seq_state = PlainTreap::diff(seq_state, PlainTreap::from_entries(&entries));
                } else {
                    oracle.extend(entries.iter().map(|e| e.0));
                    seq_state = PlainTreap::union(seq_state, PlainTreap::from_entries(&entries));
                }
                state = next;
                let keys = state.to_sorted_vec();
                assert_eq!(
                    keys,
                    oracle.iter().copied().collect::<Vec<_>>(),
                    "batch {i} diverged from the oracle"
                );
                assert!(
                    state.check_invariants(),
                    "treap invariants broken at batch {i}"
                );
                println!(
                    "batch {i:>2} {kind:>6} {:>4} keys -> live set {:>6} keys, treap height {:>2}",
                    entries.len(),
                    keys.len(),
                    state.height()
                );
            }
            Err(e) => {
                // Degrade: keep the previous root; the dead session's
                // suspended continuations were poisoned and dropped, not
                // leaked, and the pool is immediately reusable.
                degraded += 1;
                println!("batch {i:>2} {kind:>6} DEGRADED (kept previous root): {e}");
                assert!(
                    batch.fault != Fault::None,
                    "healthy batch {i} failed unexpectedly: {e}"
                );
                assert_eq!(
                    state.to_sorted_vec(),
                    oracle.iter().copied().collect::<Vec<_>>(),
                    "served state changed across a degraded batch {i}"
                );
            }
        }
    }

    // Exactly the two injected faults degraded; everything else served.
    assert_eq!(
        degraded, 2,
        "expected exactly the injected faults to degrade"
    );
    // The parallel state matches the sequential treap shape exactly
    // (same priorities, same tie-break rule).
    assert_eq!(
        state.height(),
        PlainTreap::height(&seq_state),
        "parallel and sequential treaps must have identical shape"
    );
    println!(
        "\n{}/{total} batches served, {degraded} degraded; all states verified against \
         BTreeSet and sequential treap. done.",
        total - degraded
    );
}
