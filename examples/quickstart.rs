//! Quickstart: a guided tour of the library in three steps.
//!
//! 1. Write a futures program against the cost model and measure its
//!    work/depth (the paper's Figure 1 producer/consumer).
//! 2. Run a pipelined tree algorithm (treap union) and see the depth gap
//!    between implicit pipelining and the strict (non-pipelined) variant.
//! 3. Run the same union on the real multicore runtime and check the
//!    results agree.
//!
//! Run with: `cargo run --release -p pf-examples --bin quickstart`

use pf_core::{Ctx, FList, Sim};
use pf_examples::{banner, cost_line};
use pf_rt::{cell, ready, Runtime};
use pf_rt_algs::rtreap::{union as rt_union, RTreap};
use pf_trees::treap::run_union;
use pf_trees::workloads::union_entries;
use pf_trees::Mode;

fn produce(ctx: &mut Ctx, n: u64) -> FList<u64> {
    ctx.tick(1);
    if n == 0 {
        FList::nil()
    } else {
        // `?produce(n-1)` — fork a future for the tail and return at once.
        let tail = ctx.fork(move |ctx| produce(ctx, n - 1));
        FList::cons(n, tail)
    }
}

fn consume(ctx: &mut Ctx, mut l: FList<u64>, mut acc: u64) -> u64 {
    loop {
        ctx.tick(1);
        match l.as_cons() {
            None => return acc,
            Some((h, t)) => {
                acc += *h;
                l = ctx.touch(t); // the data edge: wait for the tail
            }
        }
    }
}

fn main() {
    banner("1. the cost model: producer/consumer pipeline (Figure 1)");
    let n = 10_000u64;
    let (sum, cost) = Sim::new().run(|ctx| {
        let list = produce(ctx, n);
        consume(ctx, list, 0)
    });
    assert_eq!(sum, n * (n + 1) / 2);
    println!("{}", cost_line("pipelined sum", &cost));
    println!(
        "depth {} ≈ 2n = {}: the consumer trails the producer by O(1) instead of\n\
         running after it — the futures runtime pipelined them automatically.",
        cost.depth,
        2 * n
    );

    banner("2. implicit pipelining in treap union (Theorem 3.5)");
    let (a, b) = union_entries(1 << 12, 1 << 12, 42);
    let (root, pipelined) = run_union(&a, &b, Mode::Pipelined);
    let (_, strict) = run_union(&a, &b, Mode::Strict);
    let result = root.get();
    assert!(result.check_invariants());
    println!("{}", cost_line("pipelined union", &pipelined));
    println!("{}", cost_line("strict union   ", &strict));
    println!(
        "same code, same work — but pipelining the splits cuts the depth {:.1}x\n\
         (O(lg n + lg m) vs O(lg n · lg m)); every cell was read at most once: {}",
        strict.depth as f64 / pipelined.depth as f64,
        pipelined.is_linear()
    );

    banner("3. the same union on the real work-stealing runtime");
    let ta = ready(RTreap::from_entries(&a));
    let tb = ready(RTreap::from_entries(&b));
    let (op, of) = cell();
    Runtime::new(4).run(move |wk| rt_union(wk, ta, tb, op));
    let rt_result = of.expect();
    assert_eq!(rt_result.to_sorted_vec(), result.to_sorted_vec());
    println!(
        "4-worker runtime produced the identical {}-key treap (height {}).",
        rt_result.to_sorted_vec().len(),
        rt_result.height()
    );
    println!("\nquickstart done.");
}
