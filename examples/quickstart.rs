//! Quickstart: one algorithm, three engines.
//!
//! The §3 algorithms are written **once**, in `pf-algs`, against the
//! `pf_backend::PipeBackend` trait. This tour runs the same generic code
//! on all three engines:
//!
//! 1. the **virtual-time simulator** (`pf_core::Ctx`) — measure work/depth
//!    of the Figure 1 producer/consumer and see implicit pipelining in the
//!    treap union (Theorem 3.5);
//! 2. the **sequential oracle** (`pf_backend::Seq`) — the same union text,
//!    executed eagerly on one thread: the correctness baseline;
//! 3. the **real work-stealing runtime** (`pf_rt::Worker`) — the same
//!    union again, on four OS threads, producing the identical treap.
//!
//! Run with: `cargo run --release -p pf-examples --bin quickstart`

use pf_backend::{PipeBackend, Seq};
use pf_examples::{banner, cost_line};
use pf_rt::{cell, ready, Runtime};
use pf_rt_algs::rtreap::{union as rt_union, RTreap, RtTreap};
use pf_trees::pipeline::{consume, produce};
use pf_trees::treap::run_union;
use pf_trees::workloads::union_entries;
use pf_trees::Mode;

fn main() {
    banner("1a. the cost model: producer/consumer pipeline (Figure 1)");
    let n = 10_000u64;
    let run_fig1 = |mode: Mode| {
        pf_core::Sim::new().run(|ctx| {
            // The generic Figure-1 code (pf_algs::list) instantiated at
            // the simulator: produce forks a future per tail, consume
            // chases them.
            let (lp, lf) = ctx.promise();
            match mode {
                Mode::Pipelined => produce(ctx, n, lp),
                Mode::Strict => ctx.call_strict(move |ctx| produce(ctx, n, lp)),
            }
            let list = ctx.touch(&lf);
            let (sp, sf) = ctx.promise();
            consume(ctx, list, 0, sp);
            ctx.touch(&sf)
        })
    };
    let (sum, cp) = run_fig1(Mode::Pipelined);
    let (_, cs) = run_fig1(Mode::Strict);
    assert_eq!(sum, n * (n + 1) / 2);
    println!("{}", cost_line("pipelined sum", &cp));
    println!("{}", cost_line("strict sum   ", &cs));
    println!(
        "the consumer trails the producer by O(1) instead of waiting for the\n\
         whole list, so the pipelined depth stays {:.2}x below the strict one.",
        cs.depth as f64 / cp.depth as f64
    );

    banner("1b. implicit pipelining in treap union (Theorem 3.5)");
    let (a, b) = union_entries(1 << 12, 1 << 12, 42);
    let (root, pipelined) = run_union(&a, &b, Mode::Pipelined);
    let (_, strict) = run_union(&a, &b, Mode::Strict);
    let result = root.get();
    assert!(result.check_invariants());
    println!("{}", cost_line("pipelined union", &pipelined));
    println!("{}", cost_line("strict union   ", &strict));
    println!(
        "same code, same work — but pipelining the splits cuts the depth {:.1}x\n\
         (O(lg n + lg m) vs O(lg n · lg m)); every cell was read at most once: {}",
        strict.depth as f64 / pipelined.depth as f64,
        pipelined.is_linear()
    );

    banner("2. the same union on the sequential oracle");
    // Identical algorithm text (pf_algs::treap::union), engine = Seq:
    // fork runs inline, touch reads and continues, cost hooks vanish.
    let seq_keys = Seq::run(|bk| {
        let ta = pf_algs::treap::Treap::from_entries(bk, &a);
        let tb = pf_algs::treap::Treap::from_entries(bk, &b);
        let (fa, fb) = (bk.input(ta), bk.input(tb));
        let (op, of) = bk.cell();
        pf_algs::treap::union(bk, fa, fb, op, Mode::Pipelined);
        of.expect().to_sorted_vec()
    });
    assert_eq!(seq_keys, result.to_sorted_vec());
    println!(
        "sequential oracle produced the identical {}-key set — the generic\n\
         code is engine-independent by construction.",
        seq_keys.len()
    );

    banner("3. the same union on the real work-stealing runtime");
    let ta = ready(RTreap::from_entries_ready(&a));
    let tb = ready(RTreap::from_entries_ready(&b));
    let (op, of) = cell();
    Runtime::new(4).run(move |wk| rt_union(wk, ta, tb, op));
    let rt_result = of.expect();
    assert_eq!(rt_result.to_sorted_vec(), result.to_sorted_vec());
    println!(
        "4-worker runtime produced the identical {}-key treap (height {}).",
        rt_result.to_sorted_vec().len(),
        rt_result.height()
    );
    println!("\nquickstart done.");
}
