//! depth_explorer: interactive-ish cost exploration for any algorithm in
//! the suite — measure work/depth in the cost model, then project running
//! times onto the paper's machine models.
//!
//! Usage: `cargo run --release -p pf-examples --bin depth_explorer -- \
//!             [merge|union|diff|insert|quicksort|mergesort] [lg_n] [lg_m]`
//!
//! Defaults: `union 12 12`.

use pf_core::CostReport;
use pf_examples::banner;
use pf_machine::{predicted_time, Machine};
use pf_trees::treap::SimTreap;
use pf_trees::tree::SimTree;
use pf_trees::workloads::{
    diff_entries, interleaved_pair, shuffled_keys, sorted_keys, union_entries,
};
use pf_trees::Mode;

fn measure(alg: &str, lg_n: u32, lg_m: u32, mode: Mode) -> CostReport {
    let n = 1usize << lg_n;
    let m = 1usize << lg_m;
    match alg {
        "merge" => {
            let (a, b) = interleaved_pair(n, m);
            pf_trees::merge::run_merge(&a, &b, mode).1
        }
        "union" => {
            let (a, b) = union_entries(n, m, 5);
            pf_trees::treap::run_union(&a, &b, mode).1
        }
        "diff" => {
            let (a, b) = diff_entries(n, m.min(n), 5);
            pf_trees::treap::run_diff(&a, &b, mode).1
        }
        "insert" => {
            let initial = sorted_keys(n, 2);
            let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
            pf_trees::two_six::run_insert_many(&initial, &newk, mode).1
        }
        "quicksort" => pf_trees::quicksort::run_quicksort(&shuffled_keys(n, 5), mode).1,
        "mergesort" => pf_trees::mergesort::run_msort(&shuffled_keys(n, 5), mode).1,
        other => {
            panic!("unknown algorithm {other:?} (try merge/union/diff/insert/quicksort/mergesort)")
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let alg = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("union")
        .to_string();
    let lg_n: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(12);
    let lg_m: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(lg_n);

    banner(&format!("{alg}: n = 2^{lg_n}, m = 2^{lg_m}"));
    let p = measure(&alg, lg_n, lg_m, Mode::Pipelined);
    let s = measure(&alg, lg_n, lg_m, Mode::Strict);
    println!(
        "pipelined: work={} depth={} parallelism={:.1}",
        p.work,
        p.depth,
        p.parallelism()
    );
    println!(
        "strict:    work={} depth={} parallelism={:.1}",
        s.work,
        s.depth,
        s.parallelism()
    );
    println!(
        "pipelining depth win: {:.2}x; linear code: {}",
        s.depth as f64 / p.depth as f64,
        p.is_linear()
    );

    banner("projected §4 implementation times (Lemma 4.1 + machine models)");
    println!(
        "{:>6}  {:>12} {:>12} {:>12}",
        "p", "EREW+scan", "EREW", "BSP(2,16)"
    );
    for lgp in [0u32, 2, 4, 6, 8, 10] {
        let procs = 1usize << lgp;
        println!(
            "{:>6}  {:>12.0} {:>12.0} {:>12.0}",
            procs,
            predicted_time(Machine::ErewScan, p.work, p.depth, procs),
            predicted_time(Machine::Erew, p.work, p.depth, procs),
            predicted_time(Machine::Bsp { g: 2.0, l: 16.0 }, p.work, p.depth, procs),
        );
    }
    banner("parallelism profile (DAG width by depth decile)");
    // Re-run the pipelined variant with profiling to show where the
    // parallelism lives.
    let (_, _, prof) = pf_core::Sim::new().run_profiled(|ctx| {
        let n = 1usize << lg_n.min(12);
        match alg.as_str() {
            "union" | "diff" => {
                let (a, b) = union_entries(n, n, 5);
                let ta = pf_trees::treap::Treap::preload_entries(ctx, &a);
                let tb = pf_trees::treap::Treap::preload_entries(ctx, &b);
                let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
                let (op, _of) = ctx.promise();
                pf_trees::treap::union(ctx, fa, fb, op, Mode::Pipelined);
            }
            _ => {
                let (a, b) = interleaved_pair(n, n);
                let ta = pf_trees::tree::Tree::preload_balanced(ctx, &a);
                let tb = pf_trees::tree::Tree::preload_balanced(ctx, &b);
                let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
                let (op, _of) = ctx.promise();
                pf_trees::merge::merge(ctx, fa, fb, op, Mode::Pipelined);
            }
        }
    });
    let deciles = 10usize;
    let chunk = prof.len().div_ceil(deciles).max(1);
    for (i, c) in prof.chunks(chunk).enumerate() {
        let avg = c.iter().sum::<u64>() as f64 / c.len() as f64;
        let bar = "#".repeat(((avg.log2().max(0.0)) * 4.0) as usize + 1);
        println!("decile {i}: avg width {avg:>9.1}  {bar}");
    }

    println!(
        "\n(the strict variant bottoms out at {} steps; the pipelined one at {})",
        s.depth, p.depth
    );
}
