//! Shared helpers for the pf-examples binaries.

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a work/depth cost report on one line.
pub fn cost_line(label: &str, c: &pf_core::CostReport) -> String {
    format!(
        "{label}: work={} depth={} parallelism={:.1} (forks={}, touches={}, cells={})",
        c.work,
        c.depth,
        c.parallelism(),
        c.forks,
        c.touches,
        c.cells
    )
}
