//! bulk_index: database-style bulk loading of a sorted index with 2-6
//! trees (§3.4) — the PVW workload, pipelined implicitly.
//!
//! A search index over document ids is maintained as a 2-6 tree. New
//! document batches arrive sorted; each batch of m keys is inserted in
//! lg m pipelined waves, costing O(lg n + lg m) depth. The example loads
//! an index from scratch in batches, validates every intermediate tree,
//! and shows the pipelined-vs-strict depth gap per batch.
//!
//! Run with: `cargo run --release -p pf-examples --bin bulk_index`

use std::collections::BTreeSet;

use pf_core::Sim;
use pf_examples::banner;
use pf_trees::two_six::{insert_many, SimTsTree, TsTree};
use pf_trees::Mode;
use rand::prelude::*;
use rand::rngs::SmallRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    // Document-id batches: disjoint, each sorted.
    let mut all: Vec<i64> = (0..40_000).collect();
    all.shuffle(&mut rng);
    let batches: Vec<Vec<i64>> = all
        .chunks(5_000)
        .map(|c| {
            let mut v = c.to_vec();
            v.sort_unstable();
            v
        })
        .collect();

    banner("bulk-loading a 2-6 tree index, one pipelined bulk insert per batch");
    let mut oracle: BTreeSet<i64> = BTreeSet::new();
    let mut keys_so_far: Vec<i64> = Vec::new();

    for (i, batch) in batches.iter().enumerate() {
        oracle.extend(batch.iter().copied());

        // Cost model: measure this batch's insert in isolation, pipelined
        // and strict, against the index built so far.
        let (root_p, cost_p) = Sim::new().run(|ctx| {
            let t0 = TsTree::preload_from_sorted(ctx, &keys_so_far);
            let ft = ctx.preload(t0);
            insert_many(ctx, batch, ft, Mode::Pipelined)
        });
        let (_, cost_s) = Sim::new().run(|ctx| {
            let t0 = TsTree::preload_from_sorted(ctx, &keys_so_far);
            let ft = ctx.preload(t0);
            insert_many(ctx, batch, ft, Mode::Strict)
        });

        let tree = root_p.get();
        tree.validate().expect("2-6 invariants");
        keys_so_far = tree.to_sorted_vec();
        assert_eq!(keys_so_far, oracle.iter().copied().collect::<Vec<_>>());

        println!(
            "batch {i}: +{} keys -> index {:>6} keys, height {}, depth {:>4} (strict {:>5}, {:.1}x), work {}",
            batch.len(),
            keys_so_far.len(),
            tree.height(),
            cost_p.depth,
            cost_s.depth,
            cost_s.depth as f64 / cost_p.depth as f64,
            cost_p.work,
        );
    }

    println!(
        "\nindex loaded: {} keys, all 2-6 tree invariants verified after every batch.",
        keys_so_far.len()
    );
}
