//! Model tests for the `pf_rt` runtime under the pf-check virtual
//! scheduler. The whole file compiles only under
//! `RUSTFLAGS='--cfg pf_check'` — in that configuration `pf_rt::sync`
//! routes every atomic, lock, park, and yield through pf-check, so each
//! test here explores many interleavings of the *real* runtime code, not
//! a re-model of it.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS='--cfg pf_check' cargo test -p pf-check --test model_rt
//! ```
//!
//! Replay one failing schedule with `PF_CHECK_REPLAY=<schedule string>`
//! (printed in the failure message), same RUSTFLAGS.
//!
//! The non-vacuity test (`seeded_lost_wakeup_is_caught`) additionally
//! needs the seeded-bug mutation compiled in:
//!
//! ```text
//! RUSTFLAGS='--cfg pf_check --cfg pf_check_lost_wakeup' \
//!     cargo test -p pf-check --test model_rt
//! ```
//!
//! Under that mutation the pool's sleeper re-check is removed
//! (`pool.rs`), so the regular pool tests would themselves find the
//! deadlock; they are cfg'd off and only the catch-the-bug test runs.
//!
//! Auxiliary test state (result counters) deliberately uses `std`
//! atomics: they are not part of the protocol under test, and keeping
//! them off the model's scheduling points avoids exploding the schedule
//! space with irrelevant interleavings.
#![cfg(pf_check)]
// Under the mutation, most tests (and their helpers/imports) are cfg'd off.
#![cfg_attr(pf_check_lost_wakeup, allow(unused_imports, dead_code))]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pf_check::sync::thread;
use pf_check::CheckBuilder;

use pf_rt::deque::{deque, Steal, MAX_STEAL_BATCH};
use pf_rt::mutex_cell::mx_cell;
use pf_rt::{cell, CancelToken, ResumePlace, Runtime, SchedPolicy, Session, SessionError};

/// Exploration budgets for models embedding the full `Runtime` (worker
/// threads + session protocol): these have hundreds of choice points, so
/// exhaustive DFS cannot finish and is skipped in favor of PCT + random.
fn rt_budget() -> CheckBuilder {
    CheckBuilder::new()
        .dfs_budget(0)
        .pct_iters(40)
        .random_iters(120)
}

/// Budgets for small hand-built models (a deque + a couple of raw model
/// threads): DFS first — for the smallest ones it is exhaustive.
fn small_budget() -> CheckBuilder {
    CheckBuilder::new()
        .dfs_budget(600)
        .pct_iters(30)
        .random_iters(100)
}

// ---------------------------------------------------------------------------
// Chase–Lev deque races
// ---------------------------------------------------------------------------

/// Owner pop races a thief's steal for the single last element: exactly
/// one side must claim it, and the claimed value must be intact.
#[test]
fn deque_last_element_pop_vs_steal() {
    small_budget().run(|| {
        let q = deque::<Box<u64>>();
        q.push(Box::new(41));
        let s = q.stealer();
        let stolen = Arc::new(AtomicUsize::new(0));
        let st2 = Arc::clone(&stolen);
        let thief = thread::spawn(move || loop {
            match s.steal() {
                Steal::Success(v) => {
                    assert_eq!(*v, 41);
                    st2.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Steal::Empty => return,
                Steal::Retry => {}
            }
        });
        let popped = match q.pop() {
            Some(v) => {
                assert_eq!(*v, 41);
                1
            }
            None => 0,
        };
        thief.join().unwrap();
        assert_eq!(
            popped + stolen.load(Ordering::Relaxed),
            1,
            "the last element must be claimed exactly once"
        );
    });
}

/// A thief steals concurrently with owner pushes that force the ring
/// buffer to grow (INITIAL_CAP is 2 under pf_check, so 6 pushes double
/// it twice): every element is claimed exactly once, none torn.
#[test]
fn deque_steal_during_grow() {
    small_budget().run(|| {
        const N: u64 = 6;
        let q = deque::<Box<u64>>();
        let s = q.stealer();
        let sum = Arc::new(AtomicUsize::new(0));
        let claimed = Arc::new(AtomicUsize::new(0));
        let (s2, c2) = (Arc::clone(&sum), Arc::clone(&claimed));
        let thief = thread::spawn(move || {
            // A bounded number of attempts: the owner drains leftovers.
            for _ in 0..4 {
                match s.steal() {
                    Steal::Success(v) => {
                        s2.fetch_add(*v as usize, Ordering::Relaxed);
                        c2.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty | Steal::Retry => {}
                }
            }
        });
        for i in 1..=N {
            q.push(Box::new(i));
        }
        thief.join().unwrap();
        while let Some(v) = q.pop() {
            sum.fetch_add(*v as usize, Ordering::Relaxed);
            claimed.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(claimed.load(Ordering::Relaxed) as u64, N);
        assert_eq!(
            sum.load(Ordering::Relaxed) as u64,
            N * (N + 1) / 2,
            "an element was lost, duplicated, or torn during growth"
        );
    });
}

/// Two thieves race each other (and the owner's pops) on a short queue:
/// every element claimed exactly once across all three parties.
#[test]
fn deque_two_thieves_claim_disjoint() {
    small_budget().run(|| {
        const N: usize = 4;
        let q = deque::<Box<usize>>();
        for i in 1..=N {
            q.push(Box::new(i));
        }
        let claimed = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let mut thieves = Vec::new();
        for _ in 0..2 {
            let s = q.stealer();
            let (c2, s2) = (Arc::clone(&claimed), Arc::clone(&sum));
            thieves.push(thread::spawn(move || {
                for _ in 0..3 {
                    match s.steal() {
                        Steal::Success(v) => {
                            c2.fetch_add(1, Ordering::Relaxed);
                            s2.fetch_add(*v, Ordering::Relaxed);
                        }
                        Steal::Empty | Steal::Retry => {}
                    }
                }
            }));
        }
        while let Some(v) = q.pop() {
            claimed.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(*v, Ordering::Relaxed);
        }
        for t in thieves {
            t.join().unwrap();
        }
        // The owner may have drained before the thieves got going; claim
        // whatever is left.
        while let Some(v) = q.pop() {
            claimed.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(*v, Ordering::Relaxed);
        }
        assert_eq!(claimed.load(Ordering::Relaxed), N);
        assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2);
    });
}

// ---------------------------------------------------------------------------
// Pool: quiescence, sessions, panic rendezvous
// ---------------------------------------------------------------------------
// The regular pool tests are cfg'd off under the lost-wakeup mutation:
// with the sleeper re-check removed they would (correctly!) deadlock.

/// The heart of PR 1's lost-wakeup argument: tasks spawned right as
/// workers go idle must still be executed and the session must reach
/// quiescence. A missed wakeup shows up as the deadlock oracle firing
/// (root stuck in the done-condvar, workers parked with work queued).
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn pool_quiescence_no_lost_wakeup() {
    rt_budget().run(|| {
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&done);
        let rt = Runtime::new(2);
        rt.run(move |wk| {
            let (a, b) = (Arc::clone(&d2), Arc::clone(&d2));
            wk.spawn(move |_| {
                a.fetch_add(1, Ordering::Relaxed);
            });
            wk.spawn(move |_| {
                b.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(done.load(Ordering::Relaxed), 2);
        drop(rt);
    });
}

/// Back-to-back sessions on one pool: the second session must see a
/// fully reset pool (stats, done flag, live counter) in every
/// interleaving of the first session's teardown with its setup.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn pool_two_sessions_reuse() {
    rt_budget().run(|| {
        let rt = Runtime::new(2);
        for round in 0..2usize {
            let (w, r) = cell::<usize>();
            rt.run(move |wk| {
                wk.spawn(move |wk| w.fulfill(wk, round + 7));
            });
            assert_eq!(r.expect(), round + 7);
        }
        drop(rt);
    });
}

/// A panicking task must propagate out of `run` and leave the pool
/// reusable: the abort rendezvous (workers parked, queues drained by the
/// client) must work in every interleaving, and the next session must
/// run normally.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn pool_panic_rendezvous_leaves_pool_reusable() {
    rt_budget().run(|| {
        let rt = Runtime::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|wk| {
                wk.spawn(|_| {});
                wk.spawn(|_| panic!("model task boom"));
                wk.spawn(|_| {});
            });
        }));
        assert!(r.is_err(), "task panic must propagate out of run()");
        // The same pool must complete a fresh session afterwards.
        let (w, out) = cell::<u32>();
        rt.run(move |wk| {
            wk.spawn(move |wk| w.fulfill(wk, 5));
        });
        assert_eq!(out.expect(), 5);
        drop(rt);
    });
}

/// Single-worker pool: quiescence and cell handoff must not rely on a
/// sibling existing (notify_push skips the fence for 1-worker pools —
/// that shortcut must still be wakeup-correct against the client).
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn pool_single_worker_suspend_resume() {
    rt_budget().run(|| {
        let (w, r) = cell::<u32>();
        let (ow, or) = cell::<u32>();
        let rt = Runtime::new(1);
        rt.run(move |wk| {
            r.touch(wk, move |v, wk| ow.fulfill(wk, v + 1));
            wk.spawn(move |wk| w.fulfill(wk, 10));
        });
        assert_eq!(or.expect(), 11);
        drop(rt);
    });
}

// ---------------------------------------------------------------------------
// Cell: fulfill-vs-touch waiter handoff
// ---------------------------------------------------------------------------

/// The EMPTY→WAITING→FULL race: a writer and a toucher hit the cell
/// concurrently from two workers. In every interleaving the continuation
/// must run exactly once with the written value (never zero times — a
/// lost waiter would deadlock quiescence; never twice — a double-run
/// would double-fire the counter; and the single-box waiter must not be
/// double-dropped — that would segfault/abort the process).
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn cell_fulfill_vs_touch_exactly_once() {
    rt_budget().run(|| {
        let runs = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&runs);
        let (w, r) = cell::<u32>();
        let rt = Runtime::new(2);
        rt.run(move |wk| {
            let counter = Arc::clone(&r2);
            wk.spawn2(
                move |wk| w.fulfill(wk, 9),
                move |wk| {
                    r.touch(wk, move |v, _| {
                        assert_eq!(v, 9);
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                },
            );
        });
        assert_eq!(
            runs.load(Ordering::Relaxed),
            1,
            "continuation must run exactly once"
        );
        drop(rt);
    });
}

/// Forced suspension order (touch strictly before fulfill, sequenced on
/// one worker): exercises the WAITING branch of the writer's swap — the
/// waiter box is taken and re-enqueued as a task exactly once.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn cell_waiter_handoff_after_suspension() {
    rt_budget().run(|| {
        let runs = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&runs);
        let (w, r) = cell::<u32>();
        let rt = Runtime::new(2);
        rt.run(move |wk| {
            let counter = Arc::clone(&r2);
            // Touch first, from the root task itself: the cell cannot be
            // full yet, so this suspends (or races the spawned write).
            r.touch(wk, move |v, _| {
                assert_eq!(v, 3);
                counter.fetch_add(1, Ordering::Relaxed);
            });
            wk.spawn(move |wk| w.fulfill(wk, 3));
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        drop(rt);
    });
}

// ---------------------------------------------------------------------------
// Mutex cell contention
// ---------------------------------------------------------------------------

/// The non-linear mutexed cell: two touchers and one writer race; both
/// continuations run exactly once each with the written value.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn mutex_cell_two_touchers_one_writer() {
    rt_budget().run(|| {
        let runs = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&runs);
        let (w, r) = mx_cell::<u32>();
        let rt = Runtime::new(2);
        rt.run(move |wk| {
            let ra = r.clone();
            let rb = r;
            let (ca, cb) = (Arc::clone(&r2), Arc::clone(&r2));
            wk.spawn(move |wk| {
                ra.touch(wk, move |v, _| {
                    assert_eq!(v, 6);
                    ca.fetch_add(1, Ordering::Relaxed);
                })
            });
            wk.spawn(move |wk| {
                rb.touch(wk, move |v, _| {
                    assert_eq!(v, 6);
                    cb.fetch_add(1, Ordering::Relaxed);
                })
            });
            wk.spawn(move |wk| w.fulfill(wk, 6));
        });
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        drop(rt);
    });
}

// ---------------------------------------------------------------------------
// Scheduling policies (PR 8): mailbox handoff, inline resume, steal-half
// ---------------------------------------------------------------------------

/// A thief's batched `steal_half_into` races the owner's pops on the
/// last few elements: every element must be claimed exactly once across
/// the batch steal and the pops — the batched primitive must not
/// double-claim against a concurrent `pop` (the reason it is built from
/// repeated single steals rather than a range CAS).
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn deque_steal_half_vs_owner_pop_exactly_once() {
    small_budget().run(|| {
        const N: usize = 4;
        let q = deque::<Box<usize>>();
        for i in 1..=N {
            q.push(Box::new(i));
        }
        let s = q.stealer();
        let claimed = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let (c2, s2) = (Arc::clone(&claimed), Arc::clone(&sum));
        let thief = thread::spawn(move || {
            let dst = deque::<Box<usize>>();
            for _ in 0..3 {
                match s.steal_half_into(&dst, MAX_STEAL_BATCH) {
                    Steal::Success((first, _extra)) => {
                        c2.fetch_add(1, Ordering::Relaxed);
                        s2.fetch_add(*first, Ordering::Relaxed);
                        break;
                    }
                    Steal::Empty => break,
                    Steal::Retry => {}
                }
            }
            while let Some(v) = dst.pop() {
                c2.fetch_add(1, Ordering::Relaxed);
                s2.fetch_add(*v, Ordering::Relaxed);
            }
        });
        while let Some(v) = q.pop() {
            claimed.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(*v, Ordering::Relaxed);
        }
        thief.join().unwrap();
        // Anything the thief left behind (Retry exhaustion) stays with
        // the owner; claim it now.
        while let Some(v) = q.pop() {
            claimed.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(*v, Ordering::Relaxed);
        }
        assert_eq!(claimed.load(Ordering::Relaxed), N);
        assert_eq!(
            sum.load(Ordering::Relaxed),
            N * (N + 1) / 2,
            "an element was lost, duplicated, or torn by the batched steal"
        );
    });
}

/// Mailbox resume under the fulfill-vs-touch race: the fulfiller hands
/// the resumed waiter to the *cell-owning* worker's mailbox and issues a
/// targeted wakeup. The lost-wakeup hazard: the owner parks right as the
/// handoff lands. In every interleaving the continuation runs exactly
/// once and the session reaches quiescence (a missed mailbox wakeup
/// shows up as the deadlock oracle firing).
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn pool_mailbox_handoff_no_lost_wakeup() {
    rt_budget().run(|| {
        let policy = SchedPolicy {
            resume: ResumePlace::Mailbox,
            ..SchedPolicy::default()
        };
        let runs = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&runs);
        let (w, r) = cell::<u32>();
        let rt = Runtime::with_policy(2, policy);
        rt.run(move |wk| {
            let counter = Arc::clone(&r2);
            wk.spawn2(
                move |wk| w.fulfill(wk, 4),
                move |wk| {
                    r.touch(wk, move |v, _| {
                        assert_eq!(v, 4);
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                },
            );
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        drop(rt);
    });
}

/// Mailbox resume with a forced suspension (touch strictly before the
/// write, sequenced on the root): the waiter crosses via the owner's
/// mailbox even when the fulfiller is another worker, and a later
/// session on the same pool must find the mailboxes empty.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn pool_mailbox_forced_suspension_then_reuse() {
    rt_budget().run(|| {
        let policy = SchedPolicy {
            resume: ResumePlace::Mailbox,
            ..SchedPolicy::default()
        };
        let runs = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&runs);
        let (w, r) = cell::<u32>();
        let rt = Runtime::with_policy(2, policy);
        rt.run(move |wk| {
            let counter = Arc::clone(&r2);
            r.touch(wk, move |v, _| {
                assert_eq!(v, 8);
                counter.fetch_add(1, Ordering::Relaxed);
            });
            wk.spawn(move |wk| w.fulfill(wk, 8));
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        let (w2, out) = cell::<u32>();
        rt.run(move |wk| {
            wk.spawn(move |wk| w2.fulfill(wk, 2));
        });
        assert_eq!(out.expect(), 2);
        drop(rt);
    });
}

/// Inline (LIFO-front) resume under the same race: the fulfiller runs
/// the waiter in its own stack frame, which transfers the waiter's
/// liveness unit without touching a queue — quiescence accounting must
/// survive every interleaving (an over-decrement would end the session
/// early and lose the continuation; an under-decrement would hang it).
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn pool_inline_resume_exactly_once() {
    rt_budget().run(|| {
        let policy = SchedPolicy {
            resume: ResumePlace::Inline,
            ..SchedPolicy::default()
        };
        let runs = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&runs);
        let (w, r) = cell::<u32>();
        let rt = Runtime::with_policy(2, policy);
        rt.run(move |wk| {
            let counter = Arc::clone(&r2);
            wk.spawn2(
                move |wk| w.fulfill(wk, 6),
                move |wk| {
                    r.touch(wk, move |v, _| {
                        assert_eq!(v, 6);
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                },
            );
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        drop(rt);
    });
}

/// An abort with a waiter parked in a worker's mailbox: the injected
/// panic races the mailbox handoff, and the abort cleanup must drain
/// mailboxes too — a leaked mailbox task would either leak its boxed
/// closure or corrupt the next session's accounting.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn pool_mailbox_abort_drains_cleanly() {
    rt_budget().run(|| {
        let policy = SchedPolicy {
            resume: ResumePlace::Mailbox,
            ..SchedPolicy::default()
        };
        let rt = Runtime::with_policy(2, policy);
        let (w, r) = cell::<u32>();
        let res = rt.try_run_session(Session::new(), move |wk| {
            r.touch(wk, |_v, _wk| {});
            wk.spawn(move |wk| w.fulfill(wk, 1));
            wk.spawn(|_| panic!("model mailbox boom"));
        });
        assert!(res.is_err(), "the injected panic must abort the session");
        // The pool must be fully clean for the next session.
        let (w2, out) = cell::<u32>();
        rt.try_run(move |wk| {
            wk.spawn(move |wk| w2.fulfill(wk, 3));
        })
        .unwrap();
        assert_eq!(out.expect(), 3);
        drop(rt);
    });
}

// ---------------------------------------------------------------------------
// Fault containment: recoverable aborts, poisoning, cancellation
// ---------------------------------------------------------------------------

/// The recoverable abort rendezvous: a panicking task must surface as
/// `Err(Panicked)` from `try_run` — never a deadlock, never a missed
/// rendezvous — in every interleaving, and the same pool must complete a
/// clean session afterwards.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn try_run_abort_rendezvous_under_injected_panic() {
    rt_budget().run(|| {
        let rt = Runtime::new(2);
        let err = rt
            .try_run(|wk| {
                wk.spawn(|_| {});
                wk.spawn(|_| panic!("model task boom"));
                wk.spawn(|_| {});
            })
            .unwrap_err();
        assert!(matches!(err, SessionError::Panicked { .. }), "{err}");
        assert_eq!(err.panic_message(), Some("model task boom"));
        let (w, out) = cell::<u32>();
        rt.try_run(move |wk| {
            wk.spawn(move |wk| w.fulfill(wk, 5));
        })
        .unwrap();
        assert_eq!(out.expect(), 5);
        drop(rt);
    });
}

/// Poison-then-touch: a continuation suspended when its session aborts
/// must be poisoned with the aborting session's context (program order
/// makes the suspension precede the panicking task here), and a straggler
/// touch in a later session must fail fast with that context rather than
/// suspend forever.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn poison_then_touch_fails_fast() {
    rt_budget().run(|| {
        let rt = Runtime::new(2);
        let (_w, r) = cell::<u32>(); // never fulfilled
        let r_in = r.clone();
        let err = rt
            .try_run(move |wk| {
                r_in.touch(wk, |_v, _wk| {});
                wk.spawn(|_| panic!("poisoner"));
            })
            .unwrap_err();
        assert!(matches!(err, SessionError::Panicked { .. }), "{err}");
        let info = r.poison_info().expect("suspended cell must be poisoned");
        assert_eq!(info.session, err.session());
        let r_late = r.clone();
        let err2 = rt
            .try_run(move |wk| r_late.touch(wk, |_v, _wk| {}))
            .unwrap_err();
        let msg = err2.panic_message().unwrap_or("");
        assert!(msg.contains("poisoned"), "{msg}");
        drop(rt);
    });
}

/// A cancel racing the session's own completion: every interleaving must
/// end in either a clean `Ok` (with the result written) or
/// `Err(Cancelled)` — nothing else, no hang — and the pool must be
/// reusable afterwards in both cases.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn cancel_racing_fulfill() {
    rt_budget().run(|| {
        let rt = Runtime::new(2);
        let tok = CancelToken::new();
        let t2 = tok.clone();
        let canceller = thread::spawn(move || t2.cancel());
        let (w, out) = cell::<u32>();
        let res = rt.try_run_session(Session::new().cancel_token(&tok), move |wk| {
            wk.spawn(move |wk| w.fulfill(wk, 7));
        });
        canceller.join().unwrap();
        match res {
            Ok(_) => assert_eq!(out.expect(), 7),
            Err(e) => assert!(matches!(e, SessionError::Cancelled { .. }), "{e}"),
        }
        let (w2, out2) = cell::<u32>();
        rt.try_run(move |wk| {
            wk.spawn(move |wk| w2.fulfill(wk, 9));
        })
        .unwrap();
        assert_eq!(out2.expect(), 9);
        drop(rt);
    });
}

// ---------------------------------------------------------------------------
// Concurrent sessions (PR 9: the session table)
// ---------------------------------------------------------------------------

/// Two client threads run sessions concurrently on one pool: both must
/// complete with their own results in every interleaving. This is the
/// cross-session lost-wakeup model — each session's quiescence counter
/// lives in its own slot, and a worker parked after draining session
/// A's tasks must still wake for session B's push (and vice versa).
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn two_concurrent_sessions_both_complete() {
    rt_budget().run(|| {
        let rt = Arc::new(Runtime::new(2));
        let rt2 = Arc::clone(&rt);
        let other = thread::spawn(move || {
            let (w, r) = cell::<u32>();
            rt2.try_run(move |wk| {
                wk.spawn(move |wk| w.fulfill(wk, 7));
            })
            .unwrap();
            assert_eq!(r.expect(), 7);
        });
        let (w, r) = cell::<u32>();
        let (ow, or) = cell::<u32>();
        rt.try_run(move |wk| {
            r.touch(wk, move |v, wk| ow.fulfill(wk, v + 1));
            wk.spawn(move |wk| w.fulfill(wk, 9));
        })
        .unwrap();
        assert_eq!(or.expect(), 10);
        other.join().unwrap();
        drop(rt);
    });
}

/// A panicking session co-executing with a healthy sibling: in every
/// interleaving the sibling completes with the right value, the abort
/// poisons only the faulting session's cell, and the poison context
/// carries the faulting session's id — abort isolation and poison
/// confinement at model-checker granularity.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn concurrent_abort_is_isolated_to_its_slot() {
    rt_budget().run(|| {
        let rt = Arc::new(Runtime::new(2));
        let rt2 = Arc::clone(&rt);
        let faulty = thread::spawn(move || {
            let (_w, r) = cell::<u32>(); // never written; poisoned on abort
            let r_in = r.clone();
            let err = rt2
                .try_run(move |wk| {
                    // Suspension commits in the root body, so the abort
                    // deterministically has a cell to poison.
                    r_in.touch(wk, |_v, _wk| {});
                    wk.spawn(|_| panic!("model sibling boom"));
                })
                .unwrap_err();
            assert!(matches!(err, SessionError::Panicked { .. }), "{err}");
            let info = r.poison_info().expect("faulting session's cell poisoned");
            assert_eq!(info.session, err.session());
        });
        // The sibling: its own suspend/fulfill chain in separate cells.
        let (w, r) = cell::<u32>();
        let (ow, or) = cell::<u32>();
        rt.try_run(move |wk| {
            r.touch(wk, move |v, wk| ow.fulfill(wk, v * 2));
            wk.spawn(move |wk| w.fulfill(wk, 21));
        })
        .expect("sibling of a panicking session");
        assert_eq!(or.expect(), 42);
        faulty.join().unwrap();
        drop(rt);
    });
}

/// A pre-cancelled session aborts cleanly while a concurrent sibling
/// completes: the cancel lands in exactly one slot, and the closed
/// slot's token can be re-cancelled without disturbing anything.
#[cfg(not(pf_check_lost_wakeup))]
#[test]
fn concurrent_cancel_hits_only_its_slot() {
    rt_budget().run(|| {
        let rt = Arc::new(Runtime::new(2));
        let rt2 = Arc::clone(&rt);
        let tok = CancelToken::new();
        tok.cancel();
        let t2 = tok.clone();
        let cancelled = thread::spawn(move || {
            let err = rt2
                .try_run_session(Session::new().cancel_token(&t2), |wk| {
                    wk.spawn(|_| {});
                })
                .unwrap_err();
            assert!(matches!(err, SessionError::Cancelled { .. }), "{err}");
        });
        let (w, r) = cell::<u32>();
        rt.try_run(move |wk| {
            wk.spawn(move |wk| w.fulfill(wk, 3));
        })
        .expect("sibling of a cancelled session");
        assert_eq!(r.expect(), 3);
        cancelled.join().unwrap();
        // Stale cancel on the closed slot: must be a no-op.
        tok.cancel();
        drop(rt);
    });
}

// ---------------------------------------------------------------------------
// Non-vacuity: the seeded lost-wakeup mutation must be caught
// ---------------------------------------------------------------------------

/// With `--cfg pf_check_lost_wakeup`, `pool.rs` omits the sleeper's
/// post-bit-set queue re-check — reopening the exact race the re-check
/// closes (producer pushes + reads the sleeper mask before the worker
/// publishes its bit; worker then parks over a non-empty queue). The
/// checker must find the resulting deadlock and hand back a schedule
/// that replays it. This is the proof that the harness can actually see
/// the bug class PR 1's quiescence argument defends against.
#[cfg(pf_check_lost_wakeup)]
#[test]
fn seeded_lost_wakeup_is_caught() {
    let failure = CheckBuilder::new()
        .dfs_budget(0)
        .pct_iters(60)
        .random_iters(300)
        .expect_failure()
        .run(|| {
            let done = Arc::new(AtomicUsize::new(0));
            let d2 = Arc::clone(&done);
            let rt = Runtime::new(2);
            rt.run(move |wk| {
                let (a, b) = (Arc::clone(&d2), Arc::clone(&d2));
                wk.spawn(move |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                });
                wk.spawn(move |_| {
                    b.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(done.load(Ordering::Relaxed), 2);
            drop(rt);
        });
    let f =
        failure.expect("the seeded lost-wakeup bug was NOT found — the model checker is vacuous");
    assert_eq!(
        f.kind_desc, "deadlock",
        "expected the deadlock oracle: {}",
        f.message
    );
    assert!(
        !f.schedule.is_empty(),
        "failure must carry a replayable schedule"
    );
    assert!(f.confirmed, "failing schedule must reproduce on replay");
    eprintln!(
        "pf-check caught the seeded lost wakeup; replay with PF_CHECK_REPLAY=\"{}\"",
        f.schedule
    );
}
