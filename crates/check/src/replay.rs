//! Compact schedule strings: encode/decode the choice sequence of one
//! model execution so a failure can be replayed exactly.
//!
//! A schedule is the list of thread ids chosen at each *choice point*
//! (a scheduling point where more than one thread was runnable). Thread
//! ids are encoded as single characters from a 62-symbol alphabet
//! (`0-9a-zA-Z`), with runs of the same id compressed as `<char>x<count>`
//! when the run is longer than 3. Example: `0011112` encodes as
//! `001x42` — threads 0,0 then 1 four times then 2.

use crate::exec::MAX_MODEL_THREADS;

const ALPHABET: &[u8; 62] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

fn enc_tid(tid: usize) -> char {
    assert!(tid < MAX_MODEL_THREADS, "thread id {tid} out of range");
    ALPHABET[tid] as char
}

fn dec_tid(c: char) -> Option<usize> {
    ALPHABET.iter().position(|&b| b as char == c)
}

/// Encode a choice sequence as a replay string.
pub fn encode(schedule: &[usize]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < schedule.len() {
        let tid = schedule[i];
        let mut run = 1;
        while i + run < schedule.len() && schedule[i + run] == tid {
            run += 1;
        }
        if run > 3 {
            out.push(enc_tid(tid));
            out.push('x');
            out.push_str(&run.to_string());
            // A count is terminated by the next non-digit; 'x' never
            // follows a digit ambiguously because counts never precede it.
            out.push('.');
        } else {
            for _ in 0..run {
                out.push(enc_tid(tid));
            }
        }
        i += run;
    }
    out
}

/// Decode a replay string back into a choice sequence.
///
/// Returns `Err` with a description on malformed input.
pub fn decode(s: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '.' {
            continue; // run terminator, no content
        }
        let tid = dec_tid(c).ok_or_else(|| format!("invalid schedule char {c:?}"))?;
        if chars.peek() == Some(&'x') {
            chars.next(); // consume 'x'
            let mut digits = String::new();
            while let Some(d) = chars.peek() {
                if d.is_ascii_digit() {
                    digits.push(*d);
                    chars.next();
                } else {
                    break;
                }
            }
            let count: usize = digits
                .parse()
                .map_err(|_| format!("invalid run count after {c:?}x"))?;
            if count == 0 {
                return Err(format!("zero run count after {c:?}x"));
            }
            out.extend(std::iter::repeat_n(tid, count));
        } else {
            out.push(tid);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::{decode, encode};

    #[test]
    fn roundtrip_simple() {
        for sched in [
            vec![],
            vec![0],
            vec![0, 1, 2],
            vec![0, 0, 1, 1, 1, 1, 2],
            vec![5; 100],
            vec![0, 10, 36, 61],
        ] {
            let s = encode(&sched);
            assert_eq!(decode(&s).unwrap(), sched, "string was {s:?}");
        }
    }

    #[test]
    fn runs_compress() {
        let sched = vec![1; 40];
        let s = encode(&sched);
        assert!(s.len() < 10, "expected RLE, got {s:?}");
    }

    #[test]
    fn run_followed_by_digit_tid_is_unambiguous() {
        // run of t1 (len 12) followed by a single t3: "1x12.3"
        let sched: Vec<usize> = std::iter::repeat_n(1, 12).chain([3]).collect();
        let s = encode(&sched);
        assert_eq!(decode(&s).unwrap(), sched, "string was {s:?}");
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode("!").is_err());
        assert!(decode("1x").is_err());
        assert!(decode("1x0").is_err());
    }
}
