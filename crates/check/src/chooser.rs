//! Exploration strategies: each chooser answers "which runnable thread
//! runs next?" at every choice point of one model execution.
//!
//! * [`RandomChooser`] — seeded uniform random walk (SplitMix64). Cheap,
//!   surprisingly effective at shallow bugs, and the workhorse for large
//!   models where systematic exploration is out of reach.
//! * [`PctChooser`] — Probabilistic Concurrency Testing (Burckhardt et
//!   al., ASPLOS '10): random static thread priorities plus `d - 1`
//!   random priority-change points. A bug of *depth* `d` (needing `d`
//!   ordering constraints) is found with probability ≥ 1/(n·kᵈ⁻¹) per
//!   run — far better than uniform random for deep races.
//! * [`DfsChooser`] — bounded exhaustive depth-first enumeration for
//!   small models: replays a forced prefix, then takes the first
//!   runnable thread and records the remaining alternatives for
//!   backtracking. Completes only when the whole (bounded) tree is
//!   explored.
//! * [`ReplayChooser`] — replays a recorded schedule exactly; used for
//!   `PF_CHECK_REPLAY` and for double-checking that a failure
//!   reproduces from its schedule string alone.

/// A scheduling strategy. `choose` is called only at *choice points*
/// (≥ 2 runnable threads) and returns an **index into `runnable`**, not
/// a thread id.
pub trait Chooser: Send + 'static {
    /// Called when a new model thread is registered (including the root).
    fn on_spawn(&mut self, _tid: usize) {}

    /// Pick the next thread: an index into `runnable` (which is sorted
    /// by thread id and has length ≥ 2).
    fn choose(&mut self, runnable: &[usize]) -> usize;
}

/// SplitMix64 — the same tiny PRNG the vendored shims use.
#[derive(Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub(crate) fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Uniform random walk over the schedule tree.
pub struct RandomChooser {
    rng: SplitMix64,
}

impl RandomChooser {
    /// A random walk driven by `seed`.
    pub fn new(seed: u64) -> Self {
        RandomChooser {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, runnable: &[usize]) -> usize {
        self.rng.below(runnable.len())
    }
}

/// PCT: priority-based scheduling with `d - 1` priority-change points.
pub struct PctChooser {
    rng: SplitMix64,
    /// priorities[tid]: higher runs first. Assigned at spawn.
    priorities: Vec<u64>,
    /// Choice points remaining until each priority change fires.
    change_points: Vec<usize>,
    /// Low priorities handed out at change points (descending, below all
    /// initial priorities so a changed thread drops to the back).
    next_low: u64,
    choices_seen: usize,
}

impl PctChooser {
    /// A PCT schedule with bug-depth budget `d` (≥ 1). `max_steps` is an
    /// estimate of the schedule length used to place the `d - 1`
    /// priority-change points uniformly.
    pub fn new(seed: u64, d: usize, max_steps: usize) -> Self {
        assert!(d >= 1);
        let mut rng = SplitMix64::new(seed);
        let mut change_points: Vec<usize> = (1..d).map(|_| rng.below(max_steps.max(1))).collect();
        change_points.sort_unstable();
        PctChooser {
            rng,
            priorities: Vec::new(),
            change_points,
            // Initial priorities are ≥ 1_000_000; change-point priorities
            // count down from 999_999 so each change sends the running
            // thread below everyone, and successive changes stack.
            next_low: 999_999,
            choices_seen: 0,
        }
    }
}

impl Chooser for PctChooser {
    fn on_spawn(&mut self, tid: usize) {
        debug_assert_eq!(tid, self.priorities.len());
        self.priorities
            .push(1_000_000 + self.rng.next_u64() % 1_000_000);
    }

    fn choose(&mut self, runnable: &[usize]) -> usize {
        // Highest-priority runnable thread runs.
        let best = runnable
            .iter()
            .enumerate()
            .max_by_key(|(_, &tid)| self.priorities[tid])
            .map(|(i, _)| i)
            .unwrap();
        // Fire a priority-change point? Deprioritize the thread *about to
        // run* so the schedule is perturbed exactly here.
        self.choices_seen += 1;
        while self
            .change_points
            .first()
            .is_some_and(|&cp| cp < self.choices_seen)
        {
            self.change_points.remove(0);
            self.priorities[runnable[best]] = self.next_low;
            self.next_low = self.next_low.saturating_sub(1);
        }
        best
    }
}

/// One frame of DFS state: at schedule position `pos` the alternatives
/// `remaining` (thread ids) have not been taken yet.
#[derive(Clone, Debug)]
pub(crate) struct DfsFrame {
    pos: usize,
    remaining: Vec<usize>,
}

/// Bounded exhaustive DFS. Drive it with [`DfsChooser::next_prefix`]
/// between executions:
///
/// ```ignore
/// let mut prefix = Vec::new();
/// loop {
///     let chooser = DfsChooser::new(prefix.clone(), depth_bound);
///     let outcome = /* run one execution with `chooser` */;
///     // outcome.chooser is the DfsChooser back; mine it:
///     match dfs.next_prefix() { Some(p) => prefix = p, None => break }
/// }
/// ```
pub struct DfsChooser {
    /// Forced choices (thread ids) replayed at the start of the run.
    prefix: Vec<usize>,
    /// Thread id actually chosen at every choice point of this run.
    taken: Vec<usize>,
    /// Stack of unexplored alternatives discovered this run (and inherited
    /// from the prefix computation).
    frames: Vec<DfsFrame>,
    /// Beyond this many choice points, stop branching (take first
    /// runnable) so the tree stays bounded.
    depth_bound: usize,
    /// Set when the prefix fails to replay (schedule tree changed under
    /// us — the model is nondeterministic beyond scheduling).
    pub(crate) diverged: bool,
}

impl DfsChooser {
    /// A DFS step forcing `prefix`, branching up to `depth_bound` choice
    /// points deep. `frames` from the previous run are threaded through
    /// [`Self::with_frames`].
    pub fn new(prefix: Vec<usize>, depth_bound: usize) -> Self {
        DfsChooser::with_frames(prefix, depth_bound, Vec::new())
    }

    /// Like [`Self::new`] but carrying over the unexplored-alternative
    /// stack from the previous execution.
    pub(crate) fn with_frames(
        prefix: Vec<usize>,
        depth_bound: usize,
        frames: Vec<DfsFrame>,
    ) -> Self {
        DfsChooser {
            prefix,
            taken: Vec::new(),
            frames,
            depth_bound,
            diverged: false,
        }
    }

    /// After a run: the forced prefix for the next execution, or `None`
    /// when the tree is exhausted. Consumes one alternative from the
    /// deepest frame with any left.
    pub(crate) fn next_step(mut self) -> Option<(Vec<usize>, Vec<DfsFrame>)> {
        while let Some(frame) = self.frames.last_mut() {
            if let Some(tid) = frame.remaining.pop() {
                // Force everything actually taken up to the branch point,
                // then the alternative.
                let pos = frame.pos;
                let mut prefix = self.taken[..pos].to_vec();
                prefix.push(tid);
                // Frames deeper than this branch point are stale.
                let frames: Vec<DfsFrame> = self
                    .frames
                    .iter()
                    .filter(|f| f.pos <= pos)
                    .cloned()
                    .collect();
                return Some((prefix, frames));
            }
            self.frames.pop();
        }
        None
    }
}

impl Chooser for DfsChooser {
    fn choose(&mut self, runnable: &[usize]) -> usize {
        let pos = self.taken.len();
        if pos < self.prefix.len() {
            // Replay the forced prefix.
            let want = self.prefix[pos];
            match runnable.iter().position(|&t| t == want) {
                Some(i) => {
                    self.taken.push(want);
                    return i;
                }
                None => {
                    // The tree shifted (shouldn't happen for deterministic
                    // models); fall back to first runnable and flag it.
                    self.diverged = true;
                    self.taken.push(runnable[0]);
                    return 0;
                }
            }
        }
        if pos < self.depth_bound {
            // New territory: take the first alternative, remember the rest.
            self.frames.push(DfsFrame {
                pos,
                remaining: runnable[1..].to_vec(),
            });
        }
        self.taken.push(runnable[0]);
        0
    }
}

/// Replays a recorded schedule; past its end, takes the first runnable
/// thread (a correct continuation when the schedule was complete).
pub struct ReplayChooser {
    schedule: Vec<usize>,
    pos: usize,
    /// Set when the recorded choice wasn't runnable (model changed since
    /// the schedule was recorded).
    pub(crate) diverged: bool,
}

impl ReplayChooser {
    /// Replay `schedule` (thread ids per choice point).
    pub fn new(schedule: Vec<usize>) -> Self {
        ReplayChooser {
            schedule,
            pos: 0,
            diverged: false,
        }
    }
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, runnable: &[usize]) -> usize {
        let pos = self.pos;
        self.pos += 1;
        if let Some(&want) = self.schedule.get(pos) {
            if let Some(i) = runnable.iter().position(|&t| t == want) {
                return i;
            }
            self.diverged = true;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = RandomChooser::new(7);
        let mut b = RandomChooser::new(7);
        let runnable = [0usize, 1, 2, 3];
        for _ in 0..100 {
            assert_eq!(a.choose(&runnable), b.choose(&runnable));
        }
    }

    #[test]
    fn pct_runs_highest_priority() {
        let mut c = PctChooser::new(1, 1, 100);
        c.on_spawn(0);
        c.on_spawn(1);
        let runnable = [0usize, 1];
        let first = c.choose(&runnable);
        // d = 1 means no change points: the same thread keeps winning.
        for _ in 0..10 {
            assert_eq!(c.choose(&runnable), first);
        }
    }

    #[test]
    fn replay_follows_schedule() {
        let mut c = ReplayChooser::new(vec![2, 0, 1]);
        assert_eq!(c.choose(&[0, 1, 2]), 2);
        assert_eq!(c.choose(&[0, 1]), 0);
        assert_eq!(c.choose(&[0, 1]), 1);
        // Past the end: first runnable.
        assert_eq!(c.choose(&[0, 1]), 0);
        assert!(!c.diverged);
    }

    #[test]
    fn dfs_enumerates_a_small_tree() {
        // Simulate a model with two choice points of width 2 → 4 leaves.
        let mut schedules = Vec::new();
        let mut prefix: Vec<usize> = Vec::new();
        let mut frames = Vec::new();
        loop {
            let mut c = DfsChooser::with_frames(prefix.clone(), 10, std::mem::take(&mut frames));
            let mut sched = Vec::new();
            for _ in 0..2 {
                let i = c.choose(&[0, 1]);
                sched.push([0usize, 1][i]);
            }
            schedules.push(sched);
            match c.next_step() {
                Some((p, f)) => {
                    prefix = p;
                    frames = f;
                }
                None => break,
            }
        }
        schedules.sort();
        assert_eq!(
            schedules,
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
        );
    }
}
