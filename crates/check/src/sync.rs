//! Model synchronization primitives: drop-in stand-ins for the subset of
//! `std::sync` / `std::thread` the `pf_rt` runtime uses, with every
//! operation routed through the virtual scheduler as a scheduling point.
//!
//! Memory model: **sequential consistency only.** Each atomic op yields to
//! the scheduler and then acts on a plain value under the scheduler lock,
//! so explorations cover all SC interleavings but no weak-memory
//! reorderings. `Ordering` arguments are accepted and ignored. This is the
//! classic loom-lite trade-off: SC exploration still catches lost wakeups,
//! double-drops, ABA bugs, and protocol races — everything except bugs
//! that *require* a non-SC execution to surface (those are the
//! ThreadSanitizer job's department).
//!
//! Everything here panics when used outside a model execution; the shim
//! layer in `pf_rt::sync` selects std or this module at compile time, so
//! mixed use is impossible by construction.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::exec::{self, Execution, TState};

pub use std::sync::atomic::Ordering;

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! model_atomic_int {
    ($name:ident, $t:ty) => {
        /// Model atomic integer: every operation is a scheduling point.
        #[derive(Default)]
        pub struct $name {
            v: UnsafeCell<$t>,
        }

        // SAFETY: all access is serialized by the virtual scheduler (only
        // one model thread runs at a time, and op_point sequences the
        // accesses), so the UnsafeCell is never aliased mutably.
        unsafe impl Send for $name {}
        unsafe impl Sync for $name {}

        impl $name {
            /// New atomic holding `v`.
            pub const fn new(v: $t) -> Self {
                $name {
                    v: UnsafeCell::new(v),
                }
            }

            fn yield_point(&self) {
                exec::with_current(|e, tid| e.op_point(tid));
            }

            /// Atomic load (SC; ordering ignored).
            pub fn load(&self, _o: Ordering) -> $t {
                self.yield_point();
                unsafe { *self.v.get() }
            }

            /// Atomic store (SC; ordering ignored).
            pub fn store(&self, val: $t, _o: Ordering) {
                self.yield_point();
                unsafe { *self.v.get() = val }
            }

            /// Atomic swap.
            pub fn swap(&self, val: $t, _o: Ordering) -> $t {
                self.yield_point();
                unsafe {
                    let old = *self.v.get();
                    *self.v.get() = val;
                    old
                }
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $t,
                new: $t,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$t, $t> {
                self.yield_point();
                unsafe {
                    let old = *self.v.get();
                    if old == current {
                        *self.v.get() = new;
                        Ok(old)
                    } else {
                        Err(old)
                    }
                }
            }

            /// Atomic weak compare-exchange (never fails spuriously in the
            /// model: spurious failure adds schedules but no new
            /// behaviors under SC).
            pub fn compare_exchange_weak(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, val: $t, _o: Ordering) -> $t {
                self.yield_point();
                unsafe {
                    let old = *self.v.get();
                    *self.v.get() = old.wrapping_add(val);
                    old
                }
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, val: $t, _o: Ordering) -> $t {
                self.yield_point();
                unsafe {
                    let old = *self.v.get();
                    *self.v.get() = old.wrapping_sub(val);
                    old
                }
            }

            /// Atomic bitwise AND, returning the previous value.
            pub fn fetch_and(&self, val: $t, _o: Ordering) -> $t {
                self.yield_point();
                unsafe {
                    let old = *self.v.get();
                    *self.v.get() = old & val;
                    old
                }
            }

            /// Atomic bitwise OR, returning the previous value.
            pub fn fetch_or(&self, val: $t, _o: Ordering) -> $t {
                self.yield_point();
                unsafe {
                    let old = *self.v.get();
                    *self.v.get() = old | val;
                    old
                }
            }

            /// Non-atomic access through `&mut` (no scheduling point: the
            /// exclusive borrow proves no concurrency).
            pub fn get_mut(&mut self) -> &mut $t {
                self.v.get_mut()
            }

            /// Consume, returning the value.
            pub fn into_inner(self) -> $t {
                self.v.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Debug-printing must not perturb the schedule: read the
                // value without a scheduling point.
                f.debug_tuple(stringify!($name))
                    .field(unsafe { &*self.v.get() })
                    .finish()
            }
        }
    };
}

model_atomic_int!(AtomicUsize, usize);
model_atomic_int!(AtomicIsize, isize);
model_atomic_int!(AtomicU64, u64);
model_atomic_int!(AtomicU32, u32);
model_atomic_int!(AtomicU8, u8);

/// Model atomic boolean.
#[derive(Default)]
pub struct AtomicBool {
    inner: AtomicU8,
}

impl AtomicBool {
    /// New atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            inner: AtomicU8::new(v as u8),
        }
    }

    /// Atomic load.
    pub fn load(&self, o: Ordering) -> bool {
        self.inner.load(o) != 0
    }

    /// Atomic store.
    pub fn store(&self, v: bool, o: Ordering) {
        self.inner.store(v as u8, o)
    }

    /// Atomic swap.
    pub fn swap(&self, v: bool, o: Ordering) -> bool {
        self.inner.swap(v as u8, o) != 0
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        s: Ordering,
        f: Ordering,
    ) -> Result<bool, bool> {
        self.inner
            .compare_exchange(current as u8, new as u8, s, f)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Model atomic pointer.
pub struct AtomicPtr<T> {
    inner: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T> Send for AtomicPtr<T> {}
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    /// New atomic holding `p`.
    pub fn new(p: *mut T) -> Self {
        AtomicPtr {
            inner: AtomicUsize::new(p as usize),
            _marker: PhantomData,
        }
    }

    /// Atomic load.
    pub fn load(&self, o: Ordering) -> *mut T {
        self.inner.load(o) as *mut T
    }

    /// Atomic store.
    pub fn store(&self, p: *mut T, o: Ordering) {
        self.inner.store(p as usize, o)
    }

    /// Atomic swap.
    pub fn swap(&self, p: *mut T, o: Ordering) -> *mut T {
        self.inner.swap(p as usize, o) as *mut T
    }

    /// Non-atomic access through `&mut`.
    pub fn get_mut(&mut self) -> &mut *mut T {
        // SAFETY: usize and *mut T have identical layout; the exclusive
        // borrow rules out concurrent access.
        unsafe { &mut *(self.inner.get_mut() as *mut usize as *mut *mut T) }
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Model memory fence: a pure scheduling point (under SC semantics a
/// fence adds no ordering that isn't already present).
pub fn fence(_o: Ordering) {
    exec::with_current(|e, tid| e.op_point(tid));
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// Mirror of `std::sync::PoisonError` — model locks are never poisoned,
/// so this is never constructed, but the type keeps call sites
/// (`lock().unwrap_or_else(|e| e.into_inner())`) source-compatible.
pub struct PoisonError<G> {
    guard: G,
}

impl<G> PoisonError<G> {
    /// Recover the guard (unreachable: model locks never poison).
    pub fn into_inner(self) -> G {
        self.guard
    }
}

impl<G> std::fmt::Debug for PoisonError<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoisonError")
    }
}

/// Mirror of `std::sync::LockResult`; always `Ok` in the model.
pub type LockResult<G> = Result<G, PoisonError<G>>;

/// Model mutex. Blocking a model thread on it parks the thread in the
/// virtual scheduler (never the OS), so the scheduler sees the full
/// waits-for graph and can report deadlocks.
pub struct Mutex<T: ?Sized> {
    core: OnceId,
    data: UnsafeCell<T>,
}

/// Lazily-allocated scheduler id (model mutexes/condvars can be created
/// outside an execution, e.g. in `const` position or before the model
/// starts, so the id is minted on first use).
struct OnceId {
    id: std::sync::OnceLock<usize>,
    locked: UnsafeCell<bool>,
}

impl OnceId {
    const fn new() -> Self {
        OnceId {
            id: std::sync::OnceLock::new(),
            locked: UnsafeCell::new(false),
        }
    }

    fn id(&self, e: &Arc<Execution>) -> usize {
        *self.id.get_or_init(|| e.alloc_sync_id())
    }
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; unlocking is a scheduling point.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// New unlocked mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex {
            core: OnceId::new(),
            data: UnsafeCell::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (in the virtual scheduler) while held
    /// elsewhere.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        exec::with_current(|e, tid| {
            let id = self.core.id(e);
            e.op_point(tid);
            loop {
                // SAFETY: scheduler serializes access to `locked`.
                let held = unsafe { *self.core.locked.get() };
                if !held {
                    unsafe { *self.core.locked.get() = true };
                    return;
                }
                // Block until an unlock wakes every LockWait(id).
                e.block(tid, TState::LockWait(id), |_| {});
            }
        });
        Ok(MutexGuard { lock: self })
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError> {
        let got = exec::with_current(|e, tid| {
            let _ = self.core.id(e);
            e.op_point(tid);
            let held = unsafe { *self.core.locked.get() };
            if !held {
                unsafe { *self.core.locked.get() = true };
                true
            } else {
                false
            }
        });
        if got {
            Ok(MutexGuard { lock: self })
        } else {
            Err(TryLockError::WouldBlock)
        }
    }

    /// Access through `&mut` (no lock needed).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(unsafe { &mut *self.data.get() })
    }
}

/// Mirror of `std::sync::TryLockError` (model locks never poison).
#[derive(Debug)]
pub enum TryLockError {
    /// The lock is currently held elsewhere.
    WouldBlock,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        exec::with_current(|e, tid| {
            let id = self.lock.core.id(e);
            e.with_state(|st| {
                // SAFETY: scheduler lock serializes this.
                unsafe { *self.lock.core.locked.get() = false };
                Execution::wake_where(st, |s| *s == TState::LockWait(id));
            });
            e.op_point(tid);
        });
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

/// Model condition variable. `wait` atomically releases the mutex and
/// parks in the virtual scheduler; a waiter is eligible to wake only
/// after a `notify_*` that *follows* its wait (no lost wakeups are
/// hidden, no spurious wakeups are injected).
pub struct Condvar {
    id: std::sync::OnceLock<usize>,
}

impl Condvar {
    /// New condvar.
    pub const fn new() -> Self {
        Condvar {
            id: std::sync::OnceLock::new(),
        }
    }

    fn id(&self, e: &Arc<Execution>) -> usize {
        *self.id.get_or_init(|| e.alloc_sync_id())
    }

    /// Release `guard`'s mutex, wait for a notification, reacquire.
    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.lock;
        exec::with_current(|e, tid| {
            let cv_id = self.id(e);
            let mu_id = mutex.core.id(e);
            // Atomically (under the scheduler lock): unlock + enter CvWait.
            e.block(tid, TState::CvWait(cv_id), |st| {
                unsafe { *mutex.core.locked.get() = false };
                Execution::wake_where(st, |s| *s == TState::LockWait(mu_id));
            });
            // Woken: reacquire.
            loop {
                let held = unsafe { *mutex.core.locked.get() };
                if !held {
                    unsafe { *mutex.core.locked.get() = true };
                    break;
                }
                e.block(tid, TState::LockWait(mu_id), |_| {});
            }
        });
        Ok(MutexGuard { lock: mutex })
    }

    /// Wake every waiter (scheduling point).
    pub fn notify_all(&self) {
        exec::with_current(|e, tid| {
            let cv_id = self.id(e);
            e.with_state(|st| {
                Execution::wake_where(st, |s| *s == TState::CvWait(cv_id));
            });
            e.op_point(tid);
        });
    }

    /// Wake one waiter — the lowest-id one, deterministically. (Choosing
    /// *which* waiter is a real scheduling freedom, but pf_rt only uses
    /// notify_all + targeted unpark, so the simple rule suffices.)
    pub fn notify_one(&self) {
        exec::with_current(|e, tid| {
            let cv_id = self.id(e);
            e.with_state(|st| {
                if let Some(t) = st
                    .threads
                    .iter_mut()
                    .find(|t| t.state == TState::CvWait(cv_id))
                {
                    t.state = TState::Runnable;
                }
            });
            e.op_point(tid);
        });
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Model replacement for `std::thread`.
pub mod thread {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Handle to a model thread (mirror of `std::thread::Thread`):
    /// supports `unpark`.
    #[derive(Clone)]
    pub struct Thread {
        exec: Arc<Execution>,
        tid: usize,
    }

    impl Thread {
        /// Wake the thread if parked; otherwise bank the token.
        pub fn unpark(&self) {
            let exec = &self.exec;
            let tid = self.tid;
            // unpark may be called from a non-model thread only if the
            // model has ended; inside a model it is a scheduling point.
            exec.with_state(|st| {
                let t = &mut st.threads[tid];
                if t.state == TState::Parked {
                    t.state = TState::Runnable;
                } else {
                    t.park_token = true;
                }
            });
            if exec::in_model() {
                exec::with_current(|e, me| e.op_point(me));
            }
        }

        /// The thread's id, stringified (for diagnostics).
        pub fn name(&self) -> Option<String> {
            Some(format!("t{}", self.tid))
        }
    }

    impl std::fmt::Debug for Thread {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Thread(t{})", self.tid)
        }
    }

    /// Handle to a spawned model thread's result (mirror of
    /// `std::thread::JoinHandle`).
    pub struct JoinHandle<T> {
        thread: Thread,
        result: Arc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// The underlying [`Thread`] handle.
        pub fn thread(&self) -> &Thread {
            &self.thread
        }

        /// Wait (in the virtual scheduler) for the thread to finish.
        ///
        /// A panicking model thread aborts the whole execution, so unlike
        /// std this never observes an `Err`.
        pub fn join(self) -> std::thread::Result<T> {
            let target = self.thread.tid;
            exec::with_current(|e, tid| {
                loop {
                    let finished = e.with_state(|st| st.threads[target].state == TState::Finished);
                    if finished {
                        break;
                    }
                    e.block(tid, TState::JoinWait(target), |_| {});
                }
                e.op_point(tid);
            });
            let v = self
                .result
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .expect("model thread finished without storing a result");
            Ok(v)
        }
    }

    /// Mirror of `std::thread::Builder` (name and stack size accepted;
    /// stack size is ignored — model threads run tiny workloads).
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// New builder.
        pub fn new() -> Self {
            Builder::default()
        }

        /// Name the thread (diagnostics only).
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Accepted and ignored.
        pub fn stack_size(self, _bytes: usize) -> Self {
            self
        }

        /// Spawn a model thread.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            let (exec, tid) = exec::with_current(|e, me| {
                let new_tid = e.spawn_model_thread(self.name, move || {
                    let v = f();
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                });
                // Spawning is a scheduling point (the child may run first).
                e.op_point(me);
                (Arc::clone(e), new_tid)
            });
            Ok(JoinHandle {
                thread: Thread { exec, tid },
                result,
            })
        }
    }

    /// Spawn a model thread with default settings.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("model spawn cannot fail")
    }

    /// Handle to the calling model thread.
    pub fn current() -> Thread {
        exec::with_current(|e, tid| Thread {
            exec: Arc::clone(e),
            tid,
        })
    }

    /// Park until unparked (or return immediately on a banked token).
    pub fn park() {
        exec::with_current(|e, tid| {
            let mut st_parked = false;
            e.with_state(|st| {
                let t = &mut st.threads[tid];
                if t.park_token {
                    t.park_token = false;
                } else {
                    st_parked = true;
                }
            });
            if st_parked {
                e.block(tid, TState::Parked, |_| {});
            } else {
                e.op_point(tid);
            }
        });
    }

    /// Deprioritizing scheduling point: the caller is ineligible at the
    /// next choice if any other thread can run (so spin-wait loops make
    /// progress under every strategy), then eligible again.
    pub fn yield_now() {
        exec::with_current(|e, tid| {
            e.block(tid, TState::Yielded, |_| {});
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check, CheckBuilder};
    use std::sync::Arc;

    #[test]
    fn atomics_interleave_and_count() {
        // Two incrementing threads with a racy read-modify-write *split*
        // across a scheduling point would lose updates; fetch_add must not.
        check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let n = Arc::clone(&n);
                hs.push(thread::spawn(move || {
                    for _ in 0..3 {
                        n.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 6);
        });
    }

    #[test]
    fn naive_load_store_race_is_found() {
        // The classic lost-update: load, then store load+1. The model
        // checker must find an interleaving where the final count < 2.
        let result = CheckBuilder::new().expect_failure().run(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let n = Arc::clone(&n);
                hs.push(thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = result.expect("expected the lost update to be found");
        assert!(
            failure.message.contains("lost update"),
            "{}",
            failure.message
        );
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn mutex_excludes_and_counts() {
        check(|| {
            let m = Arc::new(Mutex::new(0u32));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let m = Arc::clone(&m);
                hs.push(thread::spawn(move || {
                    for _ in 0..2 {
                        let mut g = m.lock().unwrap();
                        // Non-atomic RMW under the lock is safe.
                        let v = *g;
                        thread::yield_now();
                        *g = v + 1;
                    }
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 4);
        });
    }

    #[test]
    fn condvar_handoff() {
        check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock().unwrap();
                while !*g {
                    g = cv.wait(g).unwrap();
                }
            });
            {
                let (m, cv) = &*pair;
                *m.lock().unwrap() = true;
                cv.notify_all();
            }
            h.join().unwrap();
        });
    }

    #[test]
    fn park_unpark_token_semantics() {
        check(|| {
            let h = thread::spawn(|| {
                thread::park();
            });
            h.thread().unpark();
            h.join().unwrap();
        });
    }

    #[test]
    fn deadlock_is_reported() {
        // park with no unpark anywhere: the scheduler must report a
        // deadlock, not hang.
        let result = CheckBuilder::new().expect_failure().run(|| {
            let h = thread::spawn(|| {
                thread::park();
            });
            h.join().unwrap();
        });
        let failure = result.expect("expected a deadlock");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }
}
