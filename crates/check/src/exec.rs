//! The execution core: model threads and the virtual scheduler.
//!
//! A *model execution* runs N model threads — real OS threads, but
//! serialized so that **exactly one** executes model code at any moment.
//! Every operation on a model synchronization primitive ([`crate::sync`])
//! is a *scheduling point*: the running thread hands control to the
//! scheduler, which picks the next thread to run from the runnable set
//! according to the active exploration strategy ([`crate::chooser`]).
//! Because only the chosen thread ever runs between scheduling points, an
//! execution is a deterministic function of the sequence of choices — the
//! *schedule* — which is what makes failures replayable.
//!
//! ## What counts as a scheduling point
//!
//! Atomic loads/stores/RMWs, fences, mutex lock/unlock, condvar
//! wait/notify, park/unpark, spawn, join, and `yield_now`. Operations on
//! plain (non-model) memory are *not* scheduling points: under the
//! sequentially-consistent interleaving semantics modelled here, a
//! preemption between two operations that touch no shared state is
//! unobservable, so skipping those points loses no distinct behaviors.
//!
//! ## Failure modes
//!
//! * **Panic** — a panic escapes a model thread's body (an assertion in
//!   the test, or a bug in the code under test). Panics *caught inside*
//!   the model (e.g. a worker pool's panic protocol) are not failures.
//! * **Deadlock** — no thread is runnable but some are still blocked
//!   (parked / waiting on a lock, condvar, or join). This is the oracle
//!   that catches lost wakeups: a missed unpark leaves the sleeper parked
//!   and everyone else waiting on it.
//! * **Step limit** — the schedule exceeded the configured decision
//!   budget; either the model is too large or the code livelocks.
//!
//! On failure the execution *aborts*: the failing schedule is recorded,
//! and every other model thread is frozen at its current scheduling point
//! (they are never scheduled again; the harness reports the failure
//! without joining them). A panicking thread first unwinds normally —
//! destructors run under the scheduler as ordinary model code — so the
//! common case tears down cleanly.

use std::any::Any;
use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::chooser::Chooser;

/// Hard cap on model threads per execution (schedule strings encode a
/// thread id as one of 62 characters).
pub const MAX_MODEL_THREADS: usize = 62;

pub(crate) type PanicPayload = Box<dyn Any + Send + 'static>;

/// Why a schedule failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// A panic escaped a model thread (message, thread id).
    Panic(String, usize),
    /// No thread runnable, some still blocked; the string describes every
    /// live thread's blocked state.
    Deadlock(String),
    /// The schedule exceeded the per-execution decision limit.
    StepLimit(usize),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic(msg, tid) => write!(f, "panic in model thread t{tid}: {msg}"),
            FailureKind::Deadlock(desc) => write!(f, "deadlock: {desc}"),
            FailureKind::StepLimit(n) => {
                write!(
                    f,
                    "schedule exceeded {n} decisions (livelock or model too large)"
                )
            }
        }
    }
}

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    /// May be chosen to run.
    Runnable,
    /// Called `yield_now`: not eligible until some *other* thread has
    /// been scheduled (or no other thread can run). This is what makes
    /// spin-wait loops (`while !flag { yield_now() }`) explorable: a
    /// strategy that always favors the spinner would otherwise livelock
    /// into the step limit without the flag-setter ever running.
    Yielded,
    /// In `thread::park()` with no token available.
    Parked,
    /// Waiting to acquire the model mutex with this id.
    LockWait(usize),
    /// Waiting on the model condvar with this id.
    CvWait(usize),
    /// Waiting for the thread with this id to finish.
    JoinWait(usize),
    /// Body returned (or unwound); never scheduled again.
    Finished,
}

impl TState {
    fn describe(&self) -> String {
        match self {
            TState::Runnable => "runnable".into(),
            TState::Yielded => "yielded".into(),
            TState::Parked => "parked".into(),
            TState::LockWait(id) => format!("waiting on mutex #{id}"),
            TState::CvWait(id) => format!("waiting on condvar #{id}"),
            TState::JoinWait(t) => format!("joining t{t}"),
            TState::Finished => "finished".into(),
        }
    }
}

pub(crate) struct ThreadRec {
    pub(crate) state: TState,
    /// `unpark` before `park` is remembered (std token semantics).
    pub(crate) park_token: bool,
    name: Option<String>,
}

#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub(crate) enum Mode {
    /// Normal scheduling.
    Run,
    /// All threads finished; harness may collect the result.
    Done,
    /// A failure was recorded; remaining threads are frozen forever.
    Abort,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadRec>,
    /// The single thread currently allowed to execute model code.
    pub(crate) active: usize,
    pub(crate) mode: Mode,
    /// The exploration strategy making the scheduling choices.
    pub(crate) chooser: Option<Box<dyn Chooser>>,
    /// Chosen thread id at every *choice point* (|runnable| > 1).
    pub(crate) schedule: Vec<usize>,
    /// Decision budget: choice points remaining before StepLimit.
    pub(crate) steps_left: usize,
    pub(crate) failure: Option<FailureKind>,
    /// Monotonic id source for model mutexes and condvars.
    pub(crate) next_sync_id: usize,
}

/// One model execution: the scheduler state plus the handoff condvar every
/// model thread sleeps on while it is not the active thread.
pub(crate) struct Execution {
    pub(crate) state: Mutex<ExecState>,
    pub(crate) cond: Condvar,
    /// OS handles of all model threads, joined by the harness on success.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Run `f` with the calling thread's execution context. Panics (with an
/// actionable message) when called from outside a model thread.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (exec, tid) = b.as_ref().expect(
            "pf-check model synchronization used outside a model execution; \
             run this code under pf_check::check()/explore()",
        );
        f(exec, *tid)
    })
}

/// True when the calling thread is a model thread.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn lock_state(e: &Execution) -> MutexGuard<'_, ExecState> {
    e.state.lock().unwrap_or_else(|p| p.into_inner())
}

fn payload_to_string(p: &PanicPayload) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Execution {
    fn new(chooser: Box<dyn Chooser>, max_steps: usize) -> Execution {
        Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                mode: Mode::Run,
                chooser: Some(chooser),
                schedule: Vec::new(),
                steps_left: max_steps,
                failure: None,
                next_sync_id: 0,
            }),
            cond: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    /// Record a failure and freeze the execution. Lock held by caller.
    fn fail_locked(&self, st: &mut ExecState, kind: FailureKind) {
        if st.failure.is_none() {
            st.failure = Some(kind);
        }
        st.mode = Mode::Abort;
        self.cond.notify_all();
    }

    /// Pick the next active thread (the heart of the scheduler). Called
    /// with the lock held by the thread leaving its active slot.
    fn schedule_locked(&self, st: &mut ExecState) {
        if st.mode != Mode::Run {
            return;
        }
        let collect = |st: &ExecState| -> Vec<usize> {
            st.threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state == TState::Runnable)
                .map(|(i, _)| i)
                .collect()
        };
        let mut runnable = collect(st);
        // Yielded threads: excluded from this choice when anyone else can
        // run (the yield contract), then immediately eligible again.
        if runnable.is_empty() {
            Execution::wake_where(st, |s| *s == TState::Yielded);
            runnable = collect(st);
        } else {
            Execution::wake_where(st, |s| *s == TState::Yielded);
        }
        match runnable.len() {
            0 => {
                if st.threads.iter().all(|t| t.state == TState::Finished) {
                    st.mode = Mode::Done;
                    self.cond.notify_all();
                } else {
                    let desc = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.state != TState::Finished)
                        .map(|(i, t)| {
                            let name = t.name.as_deref().unwrap_or("");
                            if name.is_empty() {
                                format!("t{i}: {}", t.state.describe())
                            } else {
                                format!("t{i} [{name}]: {}", t.state.describe())
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    self.fail_locked(st, FailureKind::Deadlock(desc));
                }
            }
            1 => {
                // No choice to make: not recorded in the schedule. Waking
                // the other (blocked) threads is only needed when control
                // actually moves to a different thread.
                let prev = st.active;
                st.active = runnable[0];
                if st.active != prev {
                    self.cond.notify_all();
                }
            }
            _ => {
                if st.steps_left == 0 {
                    let limit = st.schedule.len();
                    self.fail_locked(st, FailureKind::StepLimit(limit));
                    return;
                }
                st.steps_left -= 1;
                let chooser = st.chooser.as_mut().expect("chooser taken mid-run");
                let idx = chooser.choose(&runnable);
                debug_assert!(idx < runnable.len());
                st.schedule.push(runnable[idx]);
                let prev = st.active;
                st.active = runnable[idx];
                if st.active != prev {
                    self.cond.notify_all();
                }
            }
        }
    }

    /// Sleep until this thread is runnable *and* chosen. In Abort mode the
    /// thread freezes here forever (the harness reports the failure and
    /// leaks it).
    fn wait_for_go(&self, mut st: MutexGuard<'_, ExecState>, tid: usize) {
        loop {
            if st.mode == Mode::Run && st.threads[tid].state == TState::Runnable && st.active == tid
            {
                return;
            }
            st = self.cond.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// A scheduling point: possibly hand control to another thread.
    pub(crate) fn op_point(self: &Arc<Self>, tid: usize) {
        let mut st = lock_state(self);
        if st.mode == Mode::Abort {
            // Freeze (e.g. a destructor running while the execution is
            // tearing down after a failure elsewhere).
            self.wait_for_go(st, tid);
            return;
        }
        debug_assert_eq!(st.active, tid, "a non-active model thread executed code");
        self.schedule_locked(&mut st);
        self.wait_for_go(st, tid);
    }

    /// Block the calling thread in `state` after running `setup` under the
    /// scheduler lock; returns when the thread is rescheduled.
    pub(crate) fn block(
        self: &Arc<Self>,
        tid: usize,
        state: TState,
        setup: impl FnOnce(&mut ExecState),
    ) {
        let mut st = lock_state(self);
        setup(&mut st);
        st.threads[tid].state = state;
        self.schedule_locked(&mut st);
        self.wait_for_go(st, tid);
    }

    /// Run `f` under the scheduler lock *without* yielding — for effects
    /// that must be atomic with respect to scheduling (waking waiters,
    /// transferring a park token).
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut ExecState) -> R) -> R {
        let mut st = lock_state(self);
        f(&mut st)
    }

    /// Make every thread matching `pred` runnable.
    pub(crate) fn wake_where(st: &mut ExecState, pred: impl Fn(&TState) -> bool) {
        for t in st.threads.iter_mut() {
            if pred(&t.state) {
                t.state = TState::Runnable;
            }
        }
    }

    /// Register a new model thread and start its OS thread. Called by the
    /// active thread (or the harness for the root). Returns its id.
    pub(crate) fn spawn_model_thread(
        self: &Arc<Self>,
        name: Option<String>,
        body: impl FnOnce() + Send + 'static,
    ) -> usize {
        let tid = self.with_state(|st| {
            assert!(
                st.threads.len() < MAX_MODEL_THREADS,
                "model spawned more than {MAX_MODEL_THREADS} threads"
            );
            st.threads.push(ThreadRec {
                state: TState::Runnable,
                park_token: false,
                name: name.clone(),
            });
            let tid = st.threads.len() - 1;
            if let Some(c) = st.chooser.as_mut() {
                c.on_spawn(tid);
            }
            tid
        });
        let exec = Arc::clone(self);
        let os = std::thread::Builder::new()
            .name(format!("pf-check-t{tid}"))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                // Wait to be scheduled for the first time.
                {
                    let st = lock_state(&exec);
                    exec.wait_for_go(st, tid);
                }
                let result = std::panic::catch_unwind(AssertUnwindSafe(body));
                exec.thread_finished(tid, result.err());
                CURRENT.with(|c| *c.borrow_mut() = None);
            })
            .expect("failed to spawn model OS thread");
        self.os_handles
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(os);
        tid
    }

    fn thread_finished(self: &Arc<Self>, tid: usize, panic: Option<PanicPayload>) {
        let mut st = lock_state(self);
        st.threads[tid].state = TState::Finished;
        Execution::wake_where(&mut st, |s| *s == TState::JoinWait(tid));
        if let Some(p) = panic {
            if st.mode != Mode::Abort {
                let msg = payload_to_string(&p);
                self.fail_locked(&mut st, FailureKind::Panic(msg, tid));
            }
            return;
        }
        if st.mode == Mode::Run {
            self.schedule_locked(&mut st);
        }
    }

    /// Allocate an id for a model mutex or condvar.
    pub(crate) fn alloc_sync_id(&self) -> usize {
        self.with_state(|st| {
            let id = st.next_sync_id;
            st.next_sync_id += 1;
            id
        })
    }
}

/// The outcome of one schedule.
pub(crate) struct RunOutcome {
    /// Chosen tid at every choice point.
    pub(crate) schedule: Vec<usize>,
    /// The strategy, returned so stateful strategies (DFS) can be mined.
    pub(crate) chooser: Box<dyn Chooser>,
    pub(crate) failure: Option<FailureKind>,
}

/// Global count of model executions that aborted and leaked their frozen
/// threads (observable for diagnostics; failing runs leak by design).
pub(crate) static LEAKED_EXECUTIONS: AtomicUsize = AtomicUsize::new(0);

/// Run one schedule of `f` under `chooser`.
pub(crate) fn run_one(
    chooser: Box<dyn Chooser>,
    max_steps: usize,
    f: impl FnOnce() + Send + 'static,
) -> RunOutcome {
    assert!(
        !in_model(),
        "pf_check executions cannot be nested inside a model thread"
    );
    let exec = Arc::new(Execution::new(chooser, max_steps));
    let root = exec.spawn_model_thread(Some("root".into()), f);
    debug_assert_eq!(root, 0);
    // The root is the only thread: it is already active (active == 0).
    let (schedule, chooser, failure) = {
        let mut st = lock_state(&exec);
        while st.mode == Mode::Run {
            st = exec.cond.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        (
            std::mem::take(&mut st.schedule),
            st.chooser.take().expect("chooser vanished"),
            st.failure.take(),
        )
    };
    if failure.is_none() {
        // Clean completion: every model thread has finished; join the OS
        // threads so nothing leaks.
        for h in exec
            .os_handles
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
        {
            let _ = h.join();
        }
    } else {
        // Aborted: frozen threads are leaked deliberately.
        LEAKED_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
    }
    RunOutcome {
        schedule,
        chooser,
        failure,
    }
}
