//! # pf-check — loom-lite deterministic concurrency testing
//!
//! A vendored-dependency-free model checker for the `pf_rt` futures
//! runtime (and any other code written against its `sync` shim layer).
//! A model — a closure spawning model threads and using the primitives in
//! [`sync`] — is executed many times, each time under a different
//! *schedule* chosen by the virtual scheduler, with a preemption point at
//! every synchronization operation. Exactly one model thread runs at any
//! moment, so an execution is a deterministic function of its schedule:
//! any failure can be replayed bit-for-bit from a compact schedule string.
//!
//! ## Exploration strategy
//!
//! [`check`] runs, in order:
//!
//! 1. **Bounded exhaustive DFS** while the schedule tree stays small —
//!    complete coverage for models with few choice points.
//! 2. **PCT schedules** (random priorities + `d - 1` priority-change
//!    points, `d = 1..=3`) — probabilistically strong for races needing a
//!    small number of ordering constraints.
//! 3. **Seeded random walks** — broad coverage of everything else.
//!
//! On failure it prints the schedule string and re-runs it to confirm the
//! failure reproduces, then panics with:
//!
//! ```text
//! pf-check: failing schedule (PF_CHECK_REPLAY="1021x5.0"): panic in model thread t2: ...
//! ```
//!
//! Setting `PF_CHECK_REPLAY` replays exactly that one schedule instead of
//! exploring — attach a debugger, add prints, the interleaving is frozen.
//!
//! ## Limits
//!
//! Sequentially-consistent interleavings only (no weak-memory modelling —
//! that's the ThreadSanitizer CI job's department), and every blocking
//! operation must go through [`sync`]: a model thread blocking on a real
//! OS primitive would wedge the whole execution.

#![warn(missing_docs)]

pub mod chooser;
mod exec;
pub mod replay;
pub mod sync;

use chooser::{Chooser, DfsChooser, PctChooser, RandomChooser, ReplayChooser};
use exec::run_one;

pub use exec::FailureKind;

/// A reproducible failure found by exploration.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable description (panic message, deadlock state, …).
    pub message: String,
    /// The replay string — set `PF_CHECK_REPLAY` to this to re-execute.
    pub schedule: String,
    /// Which failure oracle fired.
    pub kind_desc: String,
    /// Whether re-running the schedule reproduced the failure.
    pub confirmed: bool,
}

/// Configuration for one exploration ([`check`] uses the defaults).
pub struct CheckBuilder {
    seed: u64,
    random_iters: usize,
    pct_iters_per_depth: usize,
    dfs_schedule_budget: usize,
    dfs_depth_bound: usize,
    max_steps: usize,
    expect_failure: bool,
    quiet: bool,
}

impl Default for CheckBuilder {
    fn default() -> Self {
        CheckBuilder {
            seed: 0x5EED_C0FF_EE42_0001,
            random_iters: 400,
            pct_iters_per_depth: 100,
            dfs_schedule_budget: 2_000,
            dfs_depth_bound: 40,
            max_steps: 20_000,
            expect_failure: false,
            quiet: false,
        }
    }
}

impl CheckBuilder {
    /// A builder with the default exploration budgets.
    pub fn new() -> Self {
        CheckBuilder::default()
    }

    /// Base seed for the random and PCT phases.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of random-walk schedules.
    pub fn random_iters(mut self, n: usize) -> Self {
        self.random_iters = n;
        self
    }

    /// Number of PCT schedules per depth (depths 1..=3).
    pub fn pct_iters(mut self, n: usize) -> Self {
        self.pct_iters_per_depth = n;
        self
    }

    /// Max schedules the exhaustive-DFS phase may spend before giving up
    /// (0 disables DFS).
    pub fn dfs_budget(mut self, n: usize) -> Self {
        self.dfs_schedule_budget = n;
        self
    }

    /// Max choice points per schedule before the StepLimit oracle fires.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Invert the harness: exploration *returns* the first failure
    /// (`Some`) instead of panicking, and returns `None` if the model
    /// survives the whole budget. For testing the checker itself and for
    /// mutation tests that prove non-vacuity.
    pub fn expect_failure(mut self) -> Self {
        self.expect_failure = true;
        self.quiet = true;
        self
    }

    /// Run the exploration. Panics on failure (unless
    /// [`Self::expect_failure`] was set, in which case the failure is
    /// returned).
    pub fn run<F>(self, f: F) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = std::sync::Arc::new(f);

        // Replay mode: run exactly one schedule and stop.
        if let Ok(replay_str) = std::env::var("PF_CHECK_REPLAY") {
            let sched = replay::decode(&replay_str)
                .unwrap_or_else(|e| panic!("bad PF_CHECK_REPLAY string: {e}"));
            let g = std::sync::Arc::clone(&f);
            let out = run_one(
                Box::new(ReplayChooser::new(sched)),
                self.max_steps,
                move || g(),
            );
            if let Some(k) = out.failure {
                panic!("pf-check replay of {replay_str:?} failed: {k}");
            }
            eprintln!("pf-check: replay of {replay_str:?} passed");
            return None;
        }

        let mut schedules_run = 0usize;

        // Phase 1: bounded exhaustive DFS.
        if self.dfs_schedule_budget > 0 {
            let mut prefix: Vec<usize> = Vec::new();
            let mut frames = Vec::new();
            let mut exhausted = false;
            for _ in 0..self.dfs_schedule_budget {
                let chooser = DfsChooser::with_frames(
                    std::mem::take(&mut prefix),
                    self.dfs_depth_bound,
                    std::mem::take(&mut frames),
                );
                let g = std::sync::Arc::clone(&f);
                let out = run_one(Box::new(chooser), self.max_steps, move || g());
                schedules_run += 1;
                if let Some(kind) = out.failure {
                    return self.report(kind, &out.schedule, &f);
                }
                // Downcast the chooser back to mine the DFS state.
                let dfs = downcast_chooser::<DfsChooser>(out.chooser);
                if dfs.diverged {
                    // Model isn't schedule-deterministic; DFS bookkeeping
                    // is unsound for it — fall through to random phases.
                    break;
                }
                match dfs.next_step() {
                    Some((p, fr)) => {
                        prefix = p;
                        frames = fr;
                    }
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            if exhausted {
                // Complete coverage of the (depth-bounded) tree: the
                // random phases would only repeat schedules.
                if !self.quiet {
                    eprintln!(
                        "pf-check: exhaustive DFS covered the model in {schedules_run} schedules"
                    );
                }
                return None;
            }
        }

        // Phase 2: PCT, depths 1..=3.
        for d in 1..=3usize {
            for i in 0..self.pct_iters_per_depth {
                let seed = mix(self.seed, (d * 1_000_003 + i) as u64);
                let chooser =
                    PctChooser::new(seed, d, self.max_steps.min(4 * self.dfs_depth_bound));
                let g = std::sync::Arc::clone(&f);
                let out = run_one(Box::new(chooser), self.max_steps, move || g());
                schedules_run += 1;
                if let Some(kind) = out.failure {
                    return self.report(kind, &out.schedule, &f);
                }
            }
        }

        // Phase 3: seeded random walks.
        for i in 0..self.random_iters {
            let seed = mix(self.seed, 0xDEAD_0000 + i as u64);
            let g = std::sync::Arc::clone(&f);
            let out = run_one(
                Box::new(RandomChooser::new(seed)),
                self.max_steps,
                move || g(),
            );
            schedules_run += 1;
            if let Some(kind) = out.failure {
                return self.report(kind, &out.schedule, &f);
            }
        }

        if self.expect_failure {
            return None;
        }
        let _ = schedules_run;
        None
    }

    fn report<F>(
        &self,
        kind: FailureKind,
        schedule: &[usize],
        f: &std::sync::Arc<F>,
    ) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let sched_str = replay::encode(schedule);
        // Confirm: replay the schedule and check the failure reproduces.
        let g = std::sync::Arc::clone(f);
        let replay_out = run_one(
            Box::new(ReplayChooser::new(schedule.to_vec())),
            self.max_steps,
            move || g(),
        );
        let confirmed = replay_out.failure.is_some();
        let failure = Failure {
            message: kind.to_string(),
            schedule: sched_str.clone(),
            kind_desc: match &kind {
                FailureKind::Panic(..) => "panic".into(),
                FailureKind::Deadlock(_) => "deadlock".into(),
                FailureKind::StepLimit(_) => "step-limit".into(),
            },
            confirmed,
        };
        if self.expect_failure {
            return Some(failure);
        }
        let confirm_note = if confirmed {
            "reproduced on replay"
        } else {
            "DID NOT reproduce on replay — model may be nondeterministic beyond scheduling"
        };
        panic!(
            "pf-check: failing schedule (PF_CHECK_REPLAY=\"{sched_str}\", {confirm_note}): {kind}"
        );
    }
}

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn downcast_chooser<T: Chooser>(c: Box<dyn Chooser>) -> Box<T> {
    // Box<dyn Chooser> has no Any supertrait; recover the concrete type
    // via raw-pointer cast, sound because callers pass back the exact box
    // they were given.
    unsafe { Box::from_raw(Box::into_raw(c) as *mut T) }
}

/// Explore a model with the default budgets; panics (with a replayable
/// schedule string) on the first failure found.
///
/// ```ignore
/// pf_check::check(|| {
///     let m = Arc::new(sync::Mutex::new(0));
///     // ... spawn sync::thread::spawn model threads, assert invariants
/// });
/// ```
pub fn check<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    CheckBuilder::new().run(f);
}

/// Like [`check`] with an explicit base seed (for suites that want
/// distinct exploration randomness per test).
pub fn check_with_seed<F>(seed: u64, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    CheckBuilder::new().seed(seed).run(f);
}
