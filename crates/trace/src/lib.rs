//! # pf-trace — runtime event tracing for the futures scheduler
//!
//! The simulator (`pf-core`) records full DAG traces; the real runtime
//! (`pf-rt`) was a black box. This crate is the data layer of the
//! runtime's opt-in tracing feature (`pf-rt --features trace`):
//!
//! * [`TraceEvent`] — one scheduler event (`{spawn, steal, exec, suspend,
//!   resume, fulfill, poison, park, unpark}`) with a monotonic
//!   nanosecond timestamp and a one-word argument (a victim index, a
//!   cell address);
//! * [`TraceRing`] — a fixed-capacity wraparound buffer of events. The
//!   owning worker pushes; when full, the **oldest** event is
//!   overwritten (the newest events are the ones a post-mortem wants)
//!   and a drop counter records the loss — nothing disappears silently;
//! * [`SessionTrace`] — the per-worker rings of one runtime session,
//!   drained at the session rendezvous, plus a lane for events the
//!   *client* thread records during an abort (cell poisoning);
//! * [`TraceStats`] — the compact per-worker summary (steals,
//!   suspensions, tasks executed, park/unpark churn) that
//!   `pf_rt::RunStats` carries when tracing is compiled in;
//! * [`SessionTrace::to_chrome_trace`] — a Chrome-trace/Perfetto JSON
//!   export (open in `ui.perfetto.dev` or `chrome://tracing`), one
//!   timeline row per worker.
//!
//! This crate is intentionally free of any runtime dependency (and of
//! `unsafe`): `pf-rt` owns the synchronization and the clock; everything
//! here is plain data, so the exporters and summaries are unit-testable
//! without threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// What happened. One byte; the discriminants index the per-kind count
/// arrays in [`WorkerSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// A task was pushed by `Worker::spawn`/`spawn2`/a boxed spawn
    /// (one event per spawned task; `arg` = 0).
    Spawn = 0,
    /// A task was obtained from a sibling's deque (`arg` = victim index).
    Steal = 1,
    /// A task body started executing (`arg` = 0). One event per task the
    /// worker loop runs — inline continuations are part of their host
    /// task, exactly like the `tasks_executed` counter.
    Exec = 2,
    /// A touch found its cell unwritten and suspended its continuation in
    /// it (`arg` = cell address).
    Suspend = 3,
    /// A write reactivated a suspended continuation: its task was pushed
    /// back onto a queue (`arg` = 0; recorded by the fulfilling worker).
    Resume = 4,
    /// A future cell was written (`arg` = cell address). Writes from
    /// outside the runtime (`fulfill_outside`) are not recorded — there
    /// is no worker to record them.
    Fulfill = 5,
    /// The abort cleanup poisoned a cell that still held a suspended
    /// continuation (`arg` = cell address; recorded on the client lane —
    /// poisoning happens single-threadedly at the abort rendezvous).
    Poison = 6,
    /// The worker found no work and parked its thread (`arg` = 0).
    Park = 7,
    /// The worker's park returned (`arg` = 0).
    Unpark = 8,
}

/// Number of [`TraceKind`] variants (size of the per-kind count arrays).
pub const KIND_COUNT: usize = 9;

/// All kinds, in discriminant order.
pub const ALL_KINDS: [TraceKind; KIND_COUNT] = [
    TraceKind::Spawn,
    TraceKind::Steal,
    TraceKind::Exec,
    TraceKind::Suspend,
    TraceKind::Resume,
    TraceKind::Fulfill,
    TraceKind::Poison,
    TraceKind::Park,
    TraceKind::Unpark,
];

impl TraceKind {
    /// Lower-case event name (also the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Spawn => "spawn",
            TraceKind::Steal => "steal",
            TraceKind::Exec => "exec",
            TraceKind::Suspend => "suspend",
            TraceKind::Resume => "resume",
            TraceKind::Fulfill => "fulfill",
            TraceKind::Poison => "poison",
            TraceKind::Park => "park",
            TraceKind::Unpark => "unpark",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic nanoseconds since the owning pool's epoch (pool
    /// creation), so events of different workers — and of different
    /// sessions on one pool — share one timeline.
    pub ts_ns: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific argument (victim index, cell address, or 0).
    pub arg: u64,
}

/// A fixed-capacity wraparound event buffer, owned by one worker.
///
/// Push is owner-only and O(1); when the ring is full the **oldest**
/// event is overwritten, so a drained ring always holds the newest
/// `capacity` events in FIFO order, plus a count of how many were lost.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer is full (next overwrite
    /// target); 0 while still filling.
    next: usize,
    dropped: u64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        TraceRing {
            cap: capacity,
            buf: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten since the last [`TraceRing::drain`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append an event, overwriting the oldest one when full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next += 1;
            if self.next == self.cap {
                self.next = 0;
            }
            self.dropped += 1;
        }
    }

    /// Take every retained event in FIFO (oldest-retained → newest)
    /// order together with the drop count, leaving the ring empty.
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut out = std::mem::take(&mut self.buf);
        // When the ring wrapped, `next` points at the oldest event:
        // rotate it to the front to restore FIFO order.
        if self.next != 0 {
            out.rotate_left(self.next);
        }
        self.next = 0;
        (out, std::mem::take(&mut self.dropped))
    }

    /// Drop every retained event and reset the drop counter (session
    /// start: stale idle-loop events of the gap between sessions go).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }
}

/// One drained lane of a [`SessionTrace`]: a worker's (or the client's)
/// events in FIFO order, plus how many were overwritten.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerTrace {
    /// Events in record order (oldest retained first).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound (oldest-first), reported so a
    /// truncated trace is never mistaken for a complete one.
    pub dropped: u64,
}

impl WorkerTrace {
    fn summary(&self) -> WorkerSummary {
        let mut s = WorkerSummary {
            counts: [0; KIND_COUNT],
            dropped: self.dropped,
        };
        for ev in &self.events {
            s.counts[ev.kind as usize] += 1;
        }
        s
    }
}

/// The full event record of one runtime session: one lane per worker,
/// drained at the session rendezvous, plus the client lane (poison
/// events recorded during an abort).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionTrace {
    /// Pool-local id of the traced session (sessions number from 1).
    pub session: u64,
    /// Session start, in nanoseconds since the pool epoch — the zero
    /// point of the Chrome-trace export.
    pub start_ns: u64,
    /// Label of the scheduling policy the session ran under (e.g.
    /// `"one-sweep-deque-parent"`), so per-policy timelines stay
    /// distinguishable after export. Empty when the recorder predates
    /// policy tagging.
    pub policy: String,
    /// Per-lane ring capacity the recorder used — together with the
    /// per-lane drop counts this makes a truncated timeline
    /// self-describing.
    pub ring_capacity: usize,
    /// Per-worker lanes, indexed by worker.
    pub workers: Vec<WorkerTrace>,
    /// Events recorded by the client thread (abort-time poisoning).
    pub client: WorkerTrace,
}

impl SessionTrace {
    /// Total events retained across every lane.
    pub fn events(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum::<usize>() + self.client.events.len()
    }

    /// Total events lost to ring wraparound across every lane.
    pub fn dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum::<u64>() + self.client.dropped
    }

    /// Summarize into per-worker behavior counters.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            session: self.session,
            policy: self.policy.clone(),
            per_worker: self.workers.iter().map(|w| w.summary()).collect(),
            client: self.client.summary(),
        }
    }

    /// Render as Chrome-trace JSON (the "JSON Object Format" both
    /// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
    /// directly): one instant event per [`TraceEvent`], one timeline row
    /// (`tid`) per worker plus one for the client lane, timestamps in
    /// microseconds relative to the session start. A trailing
    /// `"metadata"` object carries the session's scheduling-policy
    /// label, the ring capacity, and the total drop count, so a
    /// truncated export is self-describing.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 * (self.events() + self.workers.len() + 2));
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
             \"args\":{\"name\":\"pf-rt session\"}}",
        );
        let client_tid = self.workers.len();
        for (tid, _) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"worker {tid}\"}}}}"
            ));
        }
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{client_tid},\
             \"args\":{{\"name\":\"client\"}}}}"
        ));
        let mut emit = |tid: usize, ev: &TraceEvent| {
            // Rebase onto the session start; idle-loop events recorded
            // just before the drain may trail the quiescence signal, but
            // never precede the session (lanes are cleared at start).
            let us = ev.ts_ns.saturating_sub(self.start_ns) as f64 / 1e3;
            out.push_str(&format!(
                ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{us:.3},\
                 \"pid\":0,\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                ev.kind.name(),
                ev.arg
            ));
        };
        for (tid, lane) in self.workers.iter().enumerate() {
            for ev in &lane.events {
                emit(tid, ev);
            }
        }
        for ev in &self.client.events {
            emit(client_tid, ev);
        }
        // The policy label is machine-generated ([a-z-] only), so it
        // needs no JSON escaping.
        out.push_str(&format!(
            "\n],\"metadata\":{{\"policy\":\"{}\",\"ringCapacity\":{},\
             \"droppedEvents\":{}}}}}\n",
            self.policy,
            self.ring_capacity,
            self.dropped()
        ));
        out
    }
}

/// Per-kind event counts of one lane, plus its drop count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Event counts, indexed by `TraceKind as usize`.
    pub counts: [u64; KIND_COUNT],
    /// Events lost to ring wraparound (the counts above only cover
    /// retained events — a non-zero drop count means undercounting).
    pub dropped: u64,
}

impl WorkerSummary {
    /// Events of `kind` retained on this lane.
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Tasks obtained by stealing.
    pub fn steals(&self) -> u64 {
        self.count(TraceKind::Steal)
    }

    /// Tasks executed.
    pub fn executed(&self) -> u64 {
        self.count(TraceKind::Exec)
    }

    /// Touches that suspended in their cell.
    pub fn suspends(&self) -> u64 {
        self.count(TraceKind::Suspend)
    }

    /// Suspended continuations this lane's writes reactivated.
    pub fn resumes(&self) -> u64 {
        self.count(TraceKind::Resume)
    }

    /// Times this worker parked.
    pub fn parks(&self) -> u64 {
        self.count(TraceKind::Park)
    }

    /// Times this worker's park returned.
    pub fn unparks(&self) -> u64 {
        self.count(TraceKind::Unpark)
    }

    /// Tasks spawned from this lane.
    pub fn spawns(&self) -> u64 {
        self.count(TraceKind::Spawn)
    }

    fn merge(&mut self, other: &WorkerSummary) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.dropped += other.dropped;
    }
}

/// The compact scheduler-behavior summary of one (or, after
/// [`TraceStats::merge`], several) traced sessions: per-worker steal,
/// suspension, execution, and park/unpark counts. This is what
/// `pf_rt::RunStats` carries when the `trace` feature is on — cheap
/// enough to keep per session, precise enough to *assert* scheduler
/// behavior in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Session id of the (first) summarized session.
    pub session: u64,
    /// Scheduling-policy label of the (first) summarized session —
    /// per-policy summaries come free when sweeping policies. Empty
    /// when the recorder predates policy tagging.
    pub policy: String,
    /// One summary per worker, indexed by worker.
    pub per_worker: Vec<WorkerSummary>,
    /// The client lane's summary (abort-time poison events).
    pub client: WorkerSummary,
}

impl TraceStats {
    /// Total events of `kind` across every worker lane (client excluded;
    /// its only events are poisons — see [`TraceStats::poisons`]).
    pub fn total(&self, kind: TraceKind) -> u64 {
        self.per_worker.iter().map(|w| w.count(kind)).sum()
    }

    /// Total successful steals.
    pub fn steals(&self) -> u64 {
        self.total(TraceKind::Steal)
    }

    /// Total touches that suspended.
    pub fn suspends(&self) -> u64 {
        self.total(TraceKind::Suspend)
    }

    /// Total suspended continuations reactivated by writes.
    pub fn resumes(&self) -> u64 {
        self.total(TraceKind::Resume)
    }

    /// Total tasks executed.
    pub fn executed(&self) -> u64 {
        self.total(TraceKind::Exec)
    }

    /// Total tasks spawned.
    pub fn spawns(&self) -> u64 {
        self.total(TraceKind::Spawn)
    }

    /// Total parks (idle workers going to sleep during the session).
    pub fn parks(&self) -> u64 {
        self.total(TraceKind::Park)
    }

    /// Total unparks (parked workers waking).
    pub fn unparks(&self) -> u64 {
        self.total(TraceKind::Unpark)
    }

    /// Cells poisoned by an abort of the session (client lane).
    pub fn poisons(&self) -> u64 {
        self.client.count(TraceKind::Poison)
    }

    /// Total events lost to ring wraparound, all lanes.
    pub fn dropped(&self) -> u64 {
        self.per_worker.iter().map(|w| w.dropped).sum::<u64>() + self.client.dropped
    }

    /// Fold another summary into this one, lane by lane (a service
    /// accumulating per-session stats over a whole run). Keeps `self`'s
    /// session id and policy label; lane counts are added, extra lanes
    /// appended.
    pub fn merge(&mut self, other: &TraceStats) {
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker
                .resize(other.per_worker.len(), WorkerSummary::default());
        }
        for (a, b) in self.per_worker.iter_mut().zip(other.per_worker.iter()) {
            a.merge(b);
        }
        self.client.merge(&other.client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: TraceKind, arg: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind,
            arg,
        }
    }

    #[test]
    fn ring_push_and_drain_fifo() {
        let mut r = TraceRing::new(8);
        for i in 0..5 {
            r.push(ev(i, TraceKind::Spawn, i));
        }
        assert_eq!(r.len(), 5);
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(
            evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0, "drain resets the drop counter");
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let mut r = TraceRing::new(4);
        for i in 0..10 {
            r.push(ev(i, TraceKind::Exec, 0));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6, "6 of 10 events were overwritten");
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 6);
        assert_eq!(
            evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            [6, 7, 8, 9],
            "the newest events survive, in FIFO order"
        );
    }

    #[test]
    fn ring_wraparound_boundary_cases() {
        // Exactly full: nothing dropped.
        let mut r = TraceRing::new(3);
        for i in 0..3 {
            r.push(ev(i, TraceKind::Park, 0));
        }
        assert_eq!(r.dropped(), 0);
        let (evs, d) = r.drain();
        assert_eq!((evs.len(), d), (3, 0));

        // One over: exactly one dropped, order still FIFO.
        for i in 0..4 {
            r.push(ev(i, TraceKind::Park, 0));
        }
        let (evs, d) = r.drain();
        assert_eq!(d, 1);
        assert_eq!(evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), [1, 2, 3]);

        // Capacity 1 degenerates to "last event wins".
        let mut r1 = TraceRing::new(1);
        for i in 0..5 {
            r1.push(ev(i, TraceKind::Steal, 0));
        }
        let (evs, d) = r1.drain();
        assert_eq!(d, 4);
        assert_eq!(evs[0].ts_ns, 4);
    }

    #[test]
    fn ring_clear_discards_everything() {
        let mut r = TraceRing::new(2);
        for i in 0..5 {
            r.push(ev(i, TraceKind::Spawn, 0));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        let (evs, d) = r.drain();
        assert!(evs.is_empty());
        assert_eq!(d, 0);
    }

    #[test]
    fn stats_count_per_kind_and_per_worker() {
        let tr = SessionTrace {
            session: 7,
            start_ns: 100,
            policy: "one-sweep-deque-parent".to_string(),
            ring_capacity: 16,
            workers: vec![
                WorkerTrace {
                    events: vec![
                        ev(110, TraceKind::Exec, 0),
                        ev(120, TraceKind::Spawn, 0),
                        ev(130, TraceKind::Steal, 1),
                        ev(140, TraceKind::Exec, 0),
                    ],
                    dropped: 0,
                },
                WorkerTrace {
                    events: vec![
                        ev(115, TraceKind::Suspend, 0xdead),
                        ev(125, TraceKind::Resume, 0),
                        ev(135, TraceKind::Park, 0),
                        ev(145, TraceKind::Unpark, 0),
                    ],
                    dropped: 3,
                },
            ],
            client: WorkerTrace {
                events: vec![ev(150, TraceKind::Poison, 0xbeef)],
                dropped: 0,
            },
        };
        let s = tr.stats();
        assert_eq!(s.session, 7);
        assert_eq!(s.policy, "one-sweep-deque-parent");
        assert_eq!(s.per_worker.len(), 2);
        assert_eq!(s.per_worker[0].executed(), 2);
        assert_eq!(s.per_worker[0].steals(), 1);
        assert_eq!(s.per_worker[1].suspends(), 1);
        assert_eq!(s.per_worker[1].parks(), 1);
        assert_eq!(s.per_worker[1].unparks(), 1);
        assert_eq!(
            (s.executed(), s.steals(), s.suspends(), s.resumes()),
            (2, 1, 1, 1)
        );
        assert_eq!(s.poisons(), 1);
        assert_eq!(s.dropped(), 3);
        assert_eq!(tr.events(), 9);
    }

    #[test]
    fn stats_merge_adds_lanes_elementwise() {
        let mut a = TraceStats {
            session: 1,
            policy: "one-sweep-deque-parent".to_string(),
            per_worker: vec![WorkerSummary {
                counts: {
                    let mut c = [0; KIND_COUNT];
                    c[TraceKind::Exec as usize] = 2;
                    c
                },
                dropped: 1,
            }],
            client: WorkerSummary::default(),
        };
        let b = TraceStats {
            session: 2,
            policy: "half-lastv-mailbox-child".to_string(),
            per_worker: vec![
                WorkerSummary {
                    counts: {
                        let mut c = [0; KIND_COUNT];
                        c[TraceKind::Exec as usize] = 3;
                        c[TraceKind::Steal as usize] = 1;
                        c
                    },
                    dropped: 0,
                },
                WorkerSummary::default(),
            ],
            client: WorkerSummary::default(),
        };
        a.merge(&b);
        assert_eq!(a.session, 1, "merge keeps the first session id");
        assert_eq!(
            a.policy, "one-sweep-deque-parent",
            "merge keeps the first policy label"
        );
        assert_eq!(a.per_worker.len(), 2, "extra lanes are appended");
        assert_eq!(a.per_worker[0].executed(), 5);
        assert_eq!(a.per_worker[0].steals(), 1);
        assert_eq!(a.dropped(), 1);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let tr = SessionTrace {
            session: 3,
            start_ns: 1_000,
            policy: "one-sweep-deque-parent".to_string(),
            ring_capacity: 1 << 14,
            workers: vec![WorkerTrace {
                events: vec![
                    ev(1_500, TraceKind::Exec, 0),
                    ev(2_500, TraceKind::Steal, 1),
                ],
                dropped: 5,
            }],
            client: WorkerTrace {
                events: vec![ev(3_000, TraceKind::Poison, 42)],
                dropped: 0,
            },
        };
        let json = tr.to_chrome_trace();
        // Structurally sound JSON (balanced braces/brackets — the format
        // is machine-written with no user strings, so this plus content
        // checks pins it).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        // One instant event per TraceEvent, rebased to the session start.
        assert!(json.contains("\"name\":\"exec\""));
        assert!(json.contains("\"ts\":0.500"));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"name\":\"steal\""));
        assert!(json.contains("\"name\":\"poison\""));
        assert!(json.contains("\"args\":{\"arg\":42}"));
        // Thread-name metadata for the worker and the client lanes.
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"client\""));
        // The trailing metadata object makes the export self-describing.
        assert!(json.contains(
            "\"metadata\":{\"policy\":\"one-sweep-deque-parent\",\
             \"ringCapacity\":16384,\"droppedEvents\":5}"
        ));
        // A timestamp before the session start clamps to zero.
        let early = SessionTrace {
            session: 1,
            start_ns: 10_000,
            policy: String::new(),
            ring_capacity: 4,
            workers: vec![WorkerTrace {
                events: vec![ev(5_000, TraceKind::Park, 0)],
                dropped: 0,
            }],
            client: WorkerTrace::default(),
        };
        assert!(early.to_chrome_trace().contains("\"ts\":0.000"));
    }

    #[test]
    fn kind_names_cover_all_kinds() {
        let mut seen = std::collections::BTreeSet::new();
        for k in ALL_KINDS {
            assert!(seen.insert(k.name()), "duplicate name for {k:?}");
            assert!((k as usize) < KIND_COUNT);
        }
        assert_eq!(seen.len(), KIND_COUNT);
    }
}
