//! §3.4 — **2-6 trees**: the top-down variant of Paul–Vishkin–Wagener's
//! pipelined 2-3 trees (Theorem 3.13).
//!
//! The algorithm is written once, engine-generically, in
//! [`pf_algs::two_six`]; this module instantiates it on the simulator,
//! keeps the historical signatures, and holds the γ-value cost tests.
//!
//! A 2-6 tree stores one to five keys per node (hence two to six children);
//! every key appears exactly once, either as an internal splitter or in a
//! leaf, and all leaves sit at the same level. Inserting `m` sorted keys
//! proceeds in `lg m` waves of *well-separated* key arrays (the levels of
//! the conceptual balanced binary tree over the keys: median, quartiles,
//! octiles, …). Each wave descends top-down, splitting any child that has
//! grown to three or more keys before recursing into it — which keeps the
//! node being inserted into a 2-3 node and bounds every node at five
//! keys / six children.
//!
//! The pipelining (γ-value argument): a wave's `insert` writes the new
//! root after a *constant* amount of work, so wave `i + 1` can enter the
//! root while wave `i` is still several levels down — O(lg n + lg m) depth
//! overall versus O(lg n · lg m) for strictly sequential waves.
//!
//! Key arrays are manipulated with the paper's `array_split` primitive
//! (O(1) depth, O(len) work — [`pf_core::Ctx::flat`]).

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::{Key, Mode};

pub use pf_algs::two_six::level_arrays;
pub use pf_algs::two_six::{TsFut, TsWr};

/// A 2-6 tree with future children, on the simulator engine.
pub type TsTree<K> = pf_algs::two_six::TsTree<Ctx, K>;

/// An internal node of a [`TsTree`].
pub type TsNode<K> = pf_algs::two_six::TsNode<Ctx, K>;

/// Simulator-only extensions of [`TsTree`]: free input construction and
/// the timestamp walk. Bring this trait into scope to call them as
/// `TsTree::preload_from_sorted(..)` etc.
pub trait SimTsTree<K: Key>: Sized {
    /// Build a valid 2-6 tree from sorted distinct keys using free cells
    /// (input construction). Leaves get one or two keys, internal nodes
    /// two or three children — a well-filled tree with insertion slack.
    fn preload_from_sorted(ctx: &Ctx, keys: &[K]) -> Self;

    /// Post-run inspection: visit every cell with
    /// `(write_time, depth_in_tree, subtree_height)` — feeds the γ-value
    /// checker ([`crate::analysis::min_rho_k`], Definition 3). Returns the
    /// subtree height.
    fn walk_cells(cell: &Fut<Self>, depth: usize, f: &mut impl FnMut(u64, usize, usize)) -> usize;
}

impl<K: Key> SimTsTree<K> for TsTree<K> {
    fn preload_from_sorted(ctx: &Ctx, keys: &[K]) -> TsTree<K> {
        TsTree::from_sorted(ctx, keys)
    }

    fn walk_cells(
        cell: &Fut<TsTree<K>>,
        depth: usize,
        f: &mut impl FnMut(u64, usize, usize),
    ) -> usize {
        let t = cell.time();
        let h = cell.with(|tree| match tree {
            TsTree::Leaf(_) => 0,
            TsTree::Node(n) => {
                let mut hmax = 0;
                for c in &n.children {
                    hmax = hmax.max(Self::walk_cells(c, depth + 1, f));
                }
                hmax + 1
            }
        });
        f(t, depth, h);
        h
    }
}

/// The paper's `array_split` primitive: partition a sorted key array by a
/// splitter in O(1) depth, O(len) work. Keys equal to the splitter are
/// dropped (the splitter is already in the tree — set semantics).
pub fn array_split<K: Key>(ctx: &Ctx, keys: &[K], s: &K) -> (Vec<K>, Vec<K>) {
    pf_algs::two_six::array_split(ctx, keys, s)
}

/// Insert a well-separated key array into the node value `t` (which the
/// caller has already touched and, if necessary, split down to a 2-3
/// node). See [`pf_algs::two_six::insert_val`].
pub fn insert_val<K: Key>(ctx: &Ctx, keys: Vec<K>, t: TsTree<K>, out: Promise<TsTree<K>>) {
    pf_algs::two_six::insert_val(ctx, keys, t, out);
}

/// Insert one well-separated wave into the tree rooted at `t`, splitting
/// the root first if needed (the only place the tree grows in height).
pub fn insert_wave<K: Key>(ctx: &Ctx, keys: Vec<K>, t: Fut<TsTree<K>>, out: Promise<TsTree<K>>) {
    pf_algs::two_six::insert_wave(ctx, keys, t, out);
}

/// Insert `m` sorted distinct keys into the 2-6 tree behind `t`, one wave
/// per conceptual level, pipelined (or strictly, wave-after-wave, in
/// [`Mode::Strict`]). Returns the future of the final tree.
pub fn insert_many<K: Key>(ctx: &Ctx, keys: &[K], t: Fut<TsTree<K>>, mode: Mode) -> Fut<TsTree<K>> {
    pf_algs::two_six::insert_many(ctx, keys, t, mode)
}

/// Like [`insert_many`], but returns the root future of **every** wave
/// (the last element is the final tree). The successive root write times
/// are the γ-values of Theorem 3.13: the proof shows
/// `γ(i+1) ≤ γ(i) + 3·kb`, i.e. bounded increments — experiment E07
/// checks exactly that on the returned futures.
pub fn insert_many_with_waves<K: Key>(
    ctx: &Ctx,
    keys: &[K],
    t: Fut<TsTree<K>>,
    mode: Mode,
) -> Vec<Fut<TsTree<K>>> {
    pf_algs::two_six::insert_many_with_waves(ctx, keys, t, mode)
}

/// Build a tree from `initial`, insert `keys`, return the final root
/// future, the per-wave root futures' write times, and the cost report.
pub fn run_insert_many<K: Key>(
    initial: &[K],
    keys: &[K],
    mode: Mode,
) -> (Fut<TsTree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let t = TsTree::preload_from_sorted(ctx, initial);
        let ft = ctx.preload(t);
        insert_many(ctx, keys, ft, mode)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    #[test]
    fn preload_builds_valid_trees() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 20, 26, 27, 80, 81, 500, 1000] {
            let (t, r) = Sim::new().run(|ctx| TsTree::preload_from_sorted(ctx, &evens(n)));
            assert_eq!(r.work, 0);
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(t.size(), n, "n={n}");
            assert_eq!(t.to_sorted_vec(), evens(n), "n={n}");
        }
    }

    #[test]
    fn empty_tree_is_valid() {
        let t = TsTree::<i64>::empty();
        t.validate().unwrap();
        assert_eq!(t.size(), 0);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn level_arrays_are_well_separated() {
        let keys: Vec<i64> = (0..100).collect();
        let waves = level_arrays(&keys);
        assert_eq!(waves.iter().map(|w| w.len()).sum::<usize>(), 100);
        assert_eq!(waves[0].len(), 1);
        // Within each wave, between any two consecutive keys there must be
        // a key from an earlier wave.
        let mut earlier: Vec<i64> = Vec::new();
        for w in &waves {
            assert!(w.windows(2).all(|p| p[0] < p[1]), "wave not sorted");
            for pair in w.windows(2) {
                assert!(
                    earlier.iter().any(|k| *k > pair[0] && *k < pair[1]),
                    "no separator between {} and {}",
                    pair[0],
                    pair[1]
                );
            }
            earlier.extend(w.iter().copied());
        }
    }

    #[test]
    fn insert_into_empty() {
        let keys: Vec<i64> = (0..50).collect();
        let (root, _) = run_insert_many(&[], &keys, Mode::Pipelined);
        let t = root.get();
        t.validate().unwrap();
        assert_eq!(t.to_sorted_vec(), keys);
    }

    #[test]
    fn insert_correct_many_sizes() {
        for (n, m) in [
            (10usize, 3usize),
            (50, 20),
            (200, 64),
            (333, 100),
            (1000, 1),
        ] {
            let initial = evens(n);
            let new_keys: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
            let (root, _) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
            let t = root.get();
            t.validate().unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
            let mut expect = initial.clone();
            expect.extend(&new_keys);
            expect.sort_unstable();
            assert_eq!(t.to_sorted_vec(), expect, "n={n} m={m}");
        }
    }

    #[test]
    fn insert_spread_keys() {
        // Inserted keys spread across the whole key space.
        let initial: Vec<i64> = (0..500).map(|i| 10 * i).collect();
        let new_keys: Vec<i64> = (0..200).map(|i| 25 * i + 1).collect();
        let (root, _) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
        let t = root.get();
        t.validate().unwrap();
        let mut expect = initial.clone();
        expect.extend(&new_keys);
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(t.to_sorted_vec(), expect);
    }

    #[test]
    fn insert_duplicates_of_existing_keys() {
        // Set semantics: re-inserting existing keys is a no-op.
        let initial = evens(100);
        let (root, _) = run_insert_many(&initial, &evens(50), Mode::Pipelined);
        let t = root.get();
        t.validate().unwrap();
        assert_eq!(t.to_sorted_vec(), initial);
    }

    #[test]
    fn strict_same_result() {
        let initial = evens(300);
        let new_keys: Vec<i64> = (0..100).map(|i| 6 * i + 1).collect();
        let (r1, c1) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
        let (r2, c2) = run_insert_many(&initial, &new_keys, Mode::Strict);
        assert_eq!(r1.get().to_sorted_vec(), r2.get().to_sorted_vec());
        assert_eq!(c1.work, c2.work);
        assert!(c1.depth <= c2.depth);
    }

    #[test]
    fn pipelined_depth_beats_strict() {
        let n = 1 << 12;
        let m = 1 << 8;
        let initial = evens(n);
        let new_keys: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
        let (_, cp) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
        let (_, cs) = run_insert_many(&initial, &new_keys, Mode::Strict);
        // lg m = 8 waves of depth ~lg n each vs pipelined lg n + lg m.
        assert!(
            cs.depth as f64 > 1.8 * cp.depth as f64,
            "strict {} vs pipelined {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn depth_logarithmic_in_n() {
        let d = |n: usize| {
            let initial = evens(n);
            let m = 64;
            let new_keys: Vec<i64> = (0..m).map(|i| 2 * i + 1).collect();
            run_insert_many(&initial, &new_keys, Mode::Pipelined)
                .1
                .depth as i64
        };
        let (d1, d2, d3) = (d(1 << 9), d(1 << 10), d(1 << 11));
        let g1 = d2 - d1;
        let g2 = d3 - d2;
        assert!(
            g2 < g1 + d1 / 3,
            "doubling n should add ~constant depth: {d1} {d2} {d3}"
        );
    }

    #[test]
    fn insert_is_linear_code() {
        let initial = evens(200);
        let new_keys: Vec<i64> = (0..64).map(|i| 2 * i + 1).collect();
        let (_, c) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
        assert!(c.is_linear());
    }

    #[test]
    fn array_split_semantics() {
        let (out, r) = Sim::new().run(|ctx| array_split(ctx, &[1i64, 3, 5, 7, 9], &5));
        assert_eq!(out.0, vec![1, 3]);
        assert_eq!(out.1, vec![7, 9]); // 5 dropped
        assert_eq!(r.depth, 2);
        assert_eq!(r.work, 6); // 5 units + sink
    }

    #[test]
    fn tall_tree_after_many_inserts_stays_valid() {
        // Repeated bulk inserts force many root splits.
        let (root, _) = Sim::new().run(|ctx| {
            let t = TsTree::<i64>::empty();
            let mut cur = ctx.preload(t);
            for round in 0..6i64 {
                let keys: Vec<i64> = (0..100).map(|i| i * 7 + round).collect();
                cur = insert_many(ctx, &keys, cur, Mode::Pipelined);
            }
            cur
        });
        let t = root.get();
        t.validate().unwrap();
        assert!(t.height() >= 2);
    }
}
