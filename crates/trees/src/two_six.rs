//! §3.4 — **2-6 trees**: the top-down variant of Paul–Vishkin–Wagener's
//! pipelined 2-3 trees (Theorem 3.13).
//!
//! A 2-6 tree stores one to five keys per node (hence two to six children);
//! every key appears exactly once, either as an internal splitter or in a
//! leaf, and all leaves sit at the same level. Inserting `m` sorted keys
//! proceeds in `lg m` waves of *well-separated* key arrays (the levels of
//! the conceptual balanced binary tree over the keys: median, quartiles,
//! octiles, …). Each wave descends top-down, splitting any child that has
//! grown to three or more keys before recursing into it — which keeps the
//! node being inserted into a 2-3 node and bounds every node at five
//! keys / six children.
//!
//! The pipelining (γ-value argument): a wave's `insert` writes the new
//! root after a *constant* amount of work, so wave `i + 1` can enter the
//! root while wave `i` is still several levels down — O(lg n + lg m) depth
//! overall versus O(lg n · lg m) for strictly sequential waves.
//!
//! Key arrays are manipulated with the paper's `array_split` primitive
//! (O(1) depth, O(len) work — [`pf_core::Ctx::flat`]).

use std::rc::Rc;

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::{Key, Mode};

/// A 2-6 tree with future children.
pub enum TsTree<K> {
    /// A leaf holding 1–5 keys (0 keys only for the empty tree).
    Leaf(Rc<Vec<K>>),
    /// An internal node: 1–5 splitter keys, `keys + 1` children.
    Node(Rc<TsNode<K>>),
}

/// An internal node of a [`TsTree`].
pub struct TsNode<K> {
    /// Splitter keys, sorted; these are real keys of the set.
    pub keys: Vec<K>,
    /// Children (`keys.len() + 1` of them), as futures.
    pub children: Vec<Fut<TsTree<K>>>,
}

impl<K> Clone for TsTree<K> {
    fn clone(&self) -> Self {
        match self {
            TsTree::Leaf(ks) => TsTree::Leaf(Rc::clone(ks)),
            TsTree::Node(n) => TsTree::Node(Rc::clone(n)),
        }
    }
}

impl<K: Key> TsTree<K> {
    /// The empty tree.
    pub fn empty() -> Self {
        TsTree::Leaf(Rc::new(Vec::new()))
    }

    fn key_count(&self) -> usize {
        match self {
            TsTree::Leaf(ks) => ks.len(),
            TsTree::Node(n) => n.keys.len(),
        }
    }

    /// Post-run inspection: all keys in sorted order (leaf keys and
    /// internal splitters interleaved in symmetric order).
    pub fn to_sorted_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.inorder_into(&mut out);
        out
    }

    fn inorder_into(&self, out: &mut Vec<K>) {
        match self {
            TsTree::Leaf(ks) => out.extend(ks.iter().cloned()),
            TsTree::Node(n) => {
                for i in 0..n.children.len() {
                    n.children[i].with(|c| c.inorder_into(out));
                    if i < n.keys.len() {
                        out.push(n.keys[i].clone());
                    }
                }
            }
        }
    }

    /// Post-run inspection: number of keys stored.
    pub fn size(&self) -> usize {
        match self {
            TsTree::Leaf(ks) => ks.len(),
            TsTree::Node(n) => {
                n.keys.len()
                    + n.children
                        .iter()
                        .map(|c| c.with(|t| t.size()))
                        .sum::<usize>()
            }
        }
    }

    /// Post-run inspection: number of levels (a lone leaf is height 0).
    pub fn height(&self) -> usize {
        match self {
            TsTree::Leaf(_) => 0,
            TsTree::Node(n) => 1 + n.children[0].with(|c| c.height()),
        }
    }

    /// Post-run inspection: check every 2-6 tree invariant. Returns a
    /// description of the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        let keys = self.to_sorted_vec();
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("keys not strictly increasing in symmetric order".into());
        }
        fn rec<K: Key>(t: &TsTree<K>, is_root: bool) -> Result<usize, String> {
            match t {
                TsTree::Leaf(ks) => {
                    if ks.is_empty() && !is_root {
                        return Err("empty non-root leaf".into());
                    }
                    if ks.len() > 5 {
                        return Err(format!("leaf with {} keys", ks.len()));
                    }
                    Ok(0)
                }
                TsTree::Node(n) => {
                    if n.keys.is_empty() || n.keys.len() > 5 {
                        return Err(format!("internal node with {} keys", n.keys.len()));
                    }
                    if n.children.len() != n.keys.len() + 1 {
                        return Err(format!(
                            "node with {} keys but {} children",
                            n.keys.len(),
                            n.children.len()
                        ));
                    }
                    let mut depth = None;
                    for c in &n.children {
                        let d = c.with(|t| rec(t, false))?;
                        match depth {
                            None => depth = Some(d),
                            Some(prev) if prev != d => {
                                return Err("leaves at different levels".into())
                            }
                            _ => {}
                        }
                    }
                    Ok(depth.expect("at least two children") + 1)
                }
            }
        }
        rec(self, true).map(|_| ())
    }

    /// Post-run inspection: visit every cell with
    /// `(write_time, depth_in_tree, subtree_height)` — feeds the γ-value
    /// checker ([`crate::analysis::min_rho_k`], Definition 3). Returns the
    /// subtree height.
    pub fn walk_cells(
        cell: &Fut<TsTree<K>>,
        depth: usize,
        f: &mut impl FnMut(u64, usize, usize),
    ) -> usize {
        let t = cell.time();
        let h = cell.with(|tree| match tree {
            TsTree::Leaf(_) => 0,
            TsTree::Node(n) => {
                let mut hmax = 0;
                for c in &n.children {
                    hmax = hmax.max(Self::walk_cells(c, depth + 1, f));
                }
                hmax + 1
            }
        });
        f(t, depth, h);
        h
    }

    /// Build a valid 2-6 tree from sorted distinct keys using free cells
    /// (input construction). Leaves get one or two keys, internal nodes
    /// two or three children — a well-filled tree with insertion slack.
    pub fn preload_from_sorted(ctx: &mut Ctx, keys: &[K]) -> TsTree<K> {
        if keys.is_empty() {
            return TsTree::empty();
        }
        // Height: smallest h with n <= 3^(h+1) - 1 (capacity with <= 2
        // keys per leaf and <= 2 keys per internal node).
        let mut h = 0usize;
        let mut cap = 2usize; // 3^(h+1) - 1 for h = 0
        while keys.len() > cap {
            h += 1;
            cap = cap * 3 + 2;
        }
        Self::build_h(ctx, keys, h)
    }

    fn build_h(ctx: &mut Ctx, keys: &[K], h: usize) -> TsTree<K> {
        if h == 0 {
            debug_assert!((1..=2).contains(&keys.len()));
            return TsTree::Leaf(Rc::new(keys.to_vec()));
        }
        // min/max keys a subtree of height h-1 can hold:
        let min_keys = (1usize << h) - 1; // 2^h - 1
        let max_keys = 3usize.pow(h as u32) - 1; // 3^h - 1
        let n = keys.len();
        // Prefer 2 children, fall back to 3.
        let c = if n > 2 * min_keys && n <= 2 * max_keys + 1 {
            2
        } else {
            debug_assert!(
                n >= 3 * min_keys + 2 && n <= 3 * max_keys + 2,
                "no feasible fanout for n={n}, h={h}"
            );
            3
        };
        let mut sizes = vec![min_keys; c];
        let mut rem = n - (c - 1) - c * min_keys;
        for s in sizes.iter_mut() {
            let add = rem.min(max_keys - min_keys);
            *s += add;
            rem -= add;
        }
        debug_assert_eq!(rem, 0);
        let mut node_keys = Vec::with_capacity(c - 1);
        let mut children = Vec::with_capacity(c);
        let mut at = 0usize;
        for (i, s) in sizes.iter().enumerate() {
            let sub = Self::build_h(ctx, &keys[at..at + s], h - 1);
            children.push(ctx.preload(sub));
            at += s;
            if i < c - 1 {
                node_keys.push(keys[at].clone());
                at += 1;
            }
        }
        TsTree::Node(Rc::new(TsNode {
            keys: node_keys,
            children,
        }))
    }
}

/// The paper's `array_split` primitive: partition a sorted key array by a
/// splitter in O(1) depth, O(len) work. Keys equal to the splitter are
/// dropped (the splitter is already in the tree — set semantics).
pub fn array_split<K: Key>(ctx: &mut Ctx, keys: &[K], s: &K) -> (Vec<K>, Vec<K>) {
    ctx.flat(keys.len() as u64);
    let less = keys.iter().filter(|k| *k < s).cloned().collect();
    let greater = keys.iter().filter(|k| *k > s).cloned().collect();
    (less, greater)
}

/// Partition sorted `keys` into `splitters.len() + 1` buckets with repeated
/// `array_split`s (one per splitter — a 2-6 node has at most five).
fn partition_keys<K: Key>(ctx: &mut Ctx, keys: Vec<K>, splitters: &[K]) -> Vec<Vec<K>> {
    let mut parts = Vec::with_capacity(splitters.len() + 1);
    let mut rest = keys;
    for s in splitters {
        let (l, g) = array_split(ctx, &rest, s);
        parts.push(l);
        rest = g;
    }
    parts.push(rest);
    parts
}

/// Sorted merge of two sorted key vectors, dropping duplicates.
fn sorted_merge_dedup<K: Key>(a: &[K], b: &[K]) -> Vec<K> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            let k = a[i].clone();
            i += 1;
            k
        } else {
            let k = b[j].clone();
            j += 1;
            k
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    out
}

/// Does this node need a split before we recurse into it? (It must be a
/// 2-3 node — at most two keys — when a wave enters it.)
fn needs_split<K: Key>(t: &TsTree<K>) -> bool {
    t.key_count() >= 3
}

/// Split a node with ≥ 3 keys around its middle key: `(left, middle,
/// right)`; both halves are 2-3 nodes.
fn split_node<K: Key>(t: &TsTree<K>) -> (TsTree<K>, K, TsTree<K>) {
    match t {
        TsTree::Leaf(ks) => {
            let mid = ks.len() / 2;
            (
                TsTree::Leaf(Rc::new(ks[..mid].to_vec())),
                ks[mid].clone(),
                TsTree::Leaf(Rc::new(ks[mid + 1..].to_vec())),
            )
        }
        TsTree::Node(n) => {
            let mid = n.keys.len() / 2;
            (
                TsTree::Node(Rc::new(TsNode {
                    keys: n.keys[..mid].to_vec(),
                    children: n.children[..=mid].to_vec(),
                })),
                n.keys[mid].clone(),
                TsTree::Node(Rc::new(TsNode {
                    keys: n.keys[mid + 1..].to_vec(),
                    children: n.children[mid + 1..].to_vec(),
                })),
            )
        }
    }
}

/// A deferred recursive insertion (created in pass 1, forked in pass 2 —
/// after the new node has been written, so the node is available in
/// constant depth).
struct PendingInsert<K> {
    part: Vec<K>,
    subtree: TsTree<K>,
    out: Promise<TsTree<K>>,
}

/// Insert a well-separated key array into the node value `t` (which the
/// caller has already touched and, if necessary, split down to a 2-3
/// node). Writes the new node to `out` in constant depth; children are
/// futures filled by forked recursive inserts.
pub fn insert_val<K: Key>(ctx: &mut Ctx, keys: Vec<K>, t: TsTree<K>, out: Promise<TsTree<K>>) {
    ctx.tick(1);
    if keys.is_empty() {
        out.fulfill(ctx, t);
        return;
    }
    match t {
        TsTree::Leaf(existing) => {
            ctx.flat((keys.len() + existing.len()) as u64);
            let merged = sorted_merge_dedup(&existing, &keys);
            assert!(
                merged.len() <= 5,
                "leaf overflow ({} keys): key array not well-separated",
                merged.len()
            );
            out.fulfill(ctx, TsTree::Leaf(Rc::new(merged)));
        }
        TsTree::Node(n) => {
            debug_assert!(n.keys.len() <= 2, "must insert into a 2-3 node");
            let parts = partition_keys(ctx, keys, &n.keys);
            let mut new_keys: Vec<K> = Vec::with_capacity(5);
            let mut new_children: Vec<Fut<TsTree<K>>> = Vec::with_capacity(6);
            let mut pending: Vec<PendingInsert<K>> = Vec::new();
            // Pass 1: determine the new node's structure, touching only the
            // children that receive keys.
            for (i, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    // Untouched child: reuse the future as-is.
                    new_children.push(n.children[i].clone());
                } else {
                    let cv = ctx.touch(&n.children[i]);
                    ctx.tick(1);
                    if needs_split(&cv) {
                        let (l, sep, r) = split_node(&cv);
                        ctx.tick(1);
                        let (pl, pr) = array_split(ctx, &part, &sep);
                        new_children.push(queue_insert(ctx, pl, l, &mut pending));
                        new_keys.push(sep);
                        new_children.push(queue_insert(ctx, pr, r, &mut pending));
                    } else {
                        new_children.push(queue_insert(ctx, part, cv, &mut pending));
                    }
                }
                if i < n.keys.len() {
                    new_keys.push(n.keys[i].clone());
                }
            }
            debug_assert!(new_keys.len() <= 5 && new_children.len() == new_keys.len() + 1);
            ctx.tick(1);
            out.fulfill(
                ctx,
                TsTree::Node(Rc::new(TsNode {
                    keys: new_keys,
                    children: new_children,
                })),
            );
            // Pass 2: fork the recursive inserts.
            for p in pending {
                ctx.fork_unit(move |ctx| insert_val(ctx, p.part, p.subtree, p.out));
            }
        }
    }
}

fn queue_insert<K: Key>(
    ctx: &mut Ctx,
    part: Vec<K>,
    subtree: TsTree<K>,
    pending: &mut Vec<PendingInsert<K>>,
) -> Fut<TsTree<K>> {
    if part.is_empty() {
        ctx.filled(subtree)
    } else {
        let (p, f) = ctx.promise();
        pending.push(PendingInsert {
            part,
            subtree,
            out: p,
        });
        f
    }
}

/// Insert one well-separated wave into the tree rooted at `t`, splitting
/// the root first if needed (the only place the tree grows in height).
pub fn insert_wave<K: Key>(
    ctx: &mut Ctx,
    keys: Vec<K>,
    t: Fut<TsTree<K>>,
    out: Promise<TsTree<K>>,
) {
    let tv = ctx.touch(&t);
    ctx.tick(1);
    if keys.is_empty() {
        out.fulfill(ctx, tv);
        return;
    }
    let tv = if needs_split(&tv) {
        let (l, sep, r) = split_node(&tv);
        ctx.tick(1);
        let lf = ctx.filled(l);
        let rf = ctx.filled(r);
        TsTree::Node(Rc::new(TsNode {
            keys: vec![sep],
            children: vec![lf, rf],
        }))
    } else {
        tv
    };
    insert_val(ctx, keys, tv, out);
}

/// Compute the well-separated wave arrays for a sorted key slice: the
/// levels of the conceptual balanced binary tree (median; quartiles; …).
/// Each wave is sorted, and consecutive keys within a wave are separated
/// by a key from an earlier wave.
pub fn level_arrays<K: Key>(keys: &[K]) -> Vec<Vec<K>> {
    fn rec<K: Key>(keys: &[K], lo: usize, hi: usize, d: usize, out: &mut Vec<Vec<K>>) {
        if lo >= hi {
            return;
        }
        if out.len() == d {
            out.push(Vec::new());
        }
        let mid = lo + (hi - lo) / 2;
        out[d].push(keys[mid].clone());
        rec(keys, lo, mid, d + 1, out);
        rec(keys, mid + 1, hi, d + 1, out);
    }
    let mut out = Vec::new();
    rec(keys, 0, keys.len(), 0, &mut out);
    out
}

/// Insert `m` sorted distinct keys into the 2-6 tree behind `t`, one wave
/// per conceptual level, pipelined (or strictly, wave-after-wave, in
/// [`Mode::Strict`]). Returns the future of the final tree.
pub fn insert_many<K: Key>(
    ctx: &mut Ctx,
    keys: &[K],
    t: Fut<TsTree<K>>,
    mode: Mode,
) -> Fut<TsTree<K>> {
    insert_many_with_waves(ctx, keys, t, mode)
        .pop()
        .expect("at least the initial tree")
}

/// Like [`insert_many`], but returns the root future of **every** wave
/// (the last element is the final tree). The successive root write times
/// are the γ-values of Theorem 3.13: the proof shows
/// `γ(i+1) ≤ γ(i) + 3·kb`, i.e. bounded increments — experiment E07
/// checks exactly that on the returned futures.
pub fn insert_many_with_waves<K: Key>(
    ctx: &mut Ctx,
    keys: &[K],
    t: Fut<TsTree<K>>,
    mode: Mode,
) -> Vec<Fut<TsTree<K>>> {
    let mut waves_out = vec![t.clone()];
    let mut cur = t;
    for wave in level_arrays(keys) {
        ctx.flat(wave.len() as u64); // forming the next well-separated array
        let (p, f) = ctx.promise();
        let prev = cur;
        match mode {
            Mode::Pipelined => {
                ctx.fork_unit(move |ctx| insert_wave(ctx, wave, prev, p));
            }
            Mode::Strict => {
                ctx.call_strict(move |ctx| {
                    ctx.fork_unit(move |ctx| insert_wave(ctx, wave, prev, p));
                });
            }
        }
        waves_out.push(f.clone());
        cur = f;
    }
    waves_out
}

/// Build a tree from `initial`, insert `keys`, return the final root
/// future, the per-wave root futures' write times, and the cost report.
pub fn run_insert_many<K: Key>(
    initial: &[K],
    keys: &[K],
    mode: Mode,
) -> (Fut<TsTree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let t = TsTree::preload_from_sorted(ctx, initial);
        let ft = ctx.preload(t);
        insert_many(ctx, keys, ft, mode)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    #[test]
    fn preload_builds_valid_trees() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 20, 26, 27, 80, 81, 500, 1000] {
            let (t, r) = Sim::new().run(|ctx| TsTree::preload_from_sorted(ctx, &evens(n)));
            assert_eq!(r.work, 0);
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(t.size(), n, "n={n}");
            assert_eq!(t.to_sorted_vec(), evens(n), "n={n}");
        }
    }

    #[test]
    fn empty_tree_is_valid() {
        let t = TsTree::<i64>::empty();
        t.validate().unwrap();
        assert_eq!(t.size(), 0);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn level_arrays_are_well_separated() {
        let keys: Vec<i64> = (0..100).collect();
        let waves = level_arrays(&keys);
        assert_eq!(waves.iter().map(|w| w.len()).sum::<usize>(), 100);
        assert_eq!(waves[0].len(), 1);
        // Within each wave, between any two consecutive keys there must be
        // a key from an earlier wave.
        let mut earlier: Vec<i64> = Vec::new();
        for w in &waves {
            assert!(w.windows(2).all(|p| p[0] < p[1]), "wave not sorted");
            for pair in w.windows(2) {
                assert!(
                    earlier.iter().any(|k| *k > pair[0] && *k < pair[1]),
                    "no separator between {} and {}",
                    pair[0],
                    pair[1]
                );
            }
            earlier.extend(w.iter().copied());
        }
    }

    #[test]
    fn insert_into_empty() {
        let keys: Vec<i64> = (0..50).collect();
        let (root, _) = run_insert_many(&[], &keys, Mode::Pipelined);
        let t = root.get();
        t.validate().unwrap();
        assert_eq!(t.to_sorted_vec(), keys);
    }

    #[test]
    fn insert_correct_many_sizes() {
        for (n, m) in [
            (10usize, 3usize),
            (50, 20),
            (200, 64),
            (333, 100),
            (1000, 1),
        ] {
            let initial = evens(n);
            let new_keys: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
            let (root, _) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
            let t = root.get();
            t.validate().unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
            let mut expect = initial.clone();
            expect.extend(&new_keys);
            expect.sort_unstable();
            assert_eq!(t.to_sorted_vec(), expect, "n={n} m={m}");
        }
    }

    #[test]
    fn insert_spread_keys() {
        // Inserted keys spread across the whole key space.
        let initial: Vec<i64> = (0..500).map(|i| 10 * i).collect();
        let new_keys: Vec<i64> = (0..200).map(|i| 25 * i + 1).collect();
        let (root, _) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
        let t = root.get();
        t.validate().unwrap();
        let mut expect = initial.clone();
        expect.extend(&new_keys);
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(t.to_sorted_vec(), expect);
    }

    #[test]
    fn insert_duplicates_of_existing_keys() {
        // Set semantics: re-inserting existing keys is a no-op.
        let initial = evens(100);
        let (root, _) = run_insert_many(&initial, &evens(50), Mode::Pipelined);
        let t = root.get();
        t.validate().unwrap();
        assert_eq!(t.to_sorted_vec(), initial);
    }

    #[test]
    fn strict_same_result() {
        let initial = evens(300);
        let new_keys: Vec<i64> = (0..100).map(|i| 6 * i + 1).collect();
        let (r1, c1) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
        let (r2, c2) = run_insert_many(&initial, &new_keys, Mode::Strict);
        assert_eq!(r1.get().to_sorted_vec(), r2.get().to_sorted_vec());
        assert_eq!(c1.work, c2.work);
        assert!(c1.depth <= c2.depth);
    }

    #[test]
    fn pipelined_depth_beats_strict() {
        let n = 1 << 12;
        let m = 1 << 8;
        let initial = evens(n);
        let new_keys: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
        let (_, cp) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
        let (_, cs) = run_insert_many(&initial, &new_keys, Mode::Strict);
        // lg m = 8 waves of depth ~lg n each vs pipelined lg n + lg m.
        assert!(
            cs.depth as f64 > 1.8 * cp.depth as f64,
            "strict {} vs pipelined {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn depth_logarithmic_in_n() {
        let d = |n: usize| {
            let initial = evens(n);
            let m = 64;
            let new_keys: Vec<i64> = (0..m).map(|i| 2 * i + 1).collect();
            run_insert_many(&initial, &new_keys, Mode::Pipelined)
                .1
                .depth as i64
        };
        let (d1, d2, d3) = (d(1 << 9), d(1 << 10), d(1 << 11));
        let g1 = d2 - d1;
        let g2 = d3 - d2;
        assert!(
            g2 < g1 + d1 / 3,
            "doubling n should add ~constant depth: {d1} {d2} {d3}"
        );
    }

    #[test]
    fn insert_is_linear_code() {
        let initial = evens(200);
        let new_keys: Vec<i64> = (0..64).map(|i| 2 * i + 1).collect();
        let (_, c) = run_insert_many(&initial, &new_keys, Mode::Pipelined);
        assert!(c.is_linear());
    }

    #[test]
    fn array_split_semantics() {
        let (out, r) = Sim::new().run(|ctx| array_split(ctx, &[1i64, 3, 5, 7, 9], &5));
        assert_eq!(out.0, vec![1, 3]);
        assert_eq!(out.1, vec![7, 9]); // 5 dropped
        assert_eq!(r.depth, 2);
        assert_eq!(r.work, 6); // 5 units + sink
    }

    #[test]
    fn tall_tree_after_many_inserts_stays_valid() {
        // Repeated bulk inserts force many root splits.
        let (root, _) = Sim::new().run(|ctx| {
            let t = TsTree::<i64>::empty();
            let mut cur = ctx.preload(t);
            for round in 0..6i64 {
                let keys: Vec<i64> = (0..100).map(|i| i * 7 + round).collect();
                cur = insert_many(ctx, &keys, cur, Mode::Pipelined);
            }
            cur
        });
        let t = root.get();
        t.validate().unwrap();
        assert!(t.height() >= 2);
    }
}
