//! Cole's pipelined (cascading) mergesort — the hand-pipelined sorting
//! baseline of experiment E18.
//!
//! The cascade itself is written once, round-engine-generically, in
//! [`pf_algs::cole`]; this module re-exports the sequential (virtual-time)
//! instantiation whose stage counts the experiments report, and keeps the
//! simulator-side property tests. The worker-pool instantiation
//! (`cole_sort_with` + `pf_rt::rounds::PoolRounds`) is driven from
//! `pf_rt_algs::baselines`.

pub use pf_algs::cole::{cole_sort, cole_sort_with, ColeStats};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n as i64).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn sorts_correctly() {
        for n in [0usize, 1, 2, 3, 5, 8, 13, 64, 100, 1000] {
            let keys = shuffled(n, n as u64 + 7);
            let (sorted, _) = cole_sort(&keys);
            assert_eq!(sorted, (0..n as i64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn sorts_with_duplicates() {
        let keys = vec![5i64, 1, 5, 2, 2, 9, 0];
        let (sorted, _) = cole_sort(&keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn stages_are_three_log_n() {
        for lg in [4u32, 6, 8, 10] {
            let n = 1usize << lg;
            let (_, s) = cole_sort(&shuffled(n, 3));
            assert_eq!(
                s.stages,
                3 * lg as u64,
                "power-of-two input must complete at exactly 3·lg n stages"
            );
        }
    }

    #[test]
    fn work_is_n_log_n() {
        let w = |lg: u32| cole_sort(&shuffled(1 << lg, 5)).1.work as f64;
        let r = w(12) / w(10);
        // n lg n: ratio 4·(12/10) = 4.8.
        assert!((4.0..6.0).contains(&r), "work ratio {r}");
    }

    #[test]
    fn footprint_is_linear() {
        // Cole: total live sample arrays are O(n).
        let f = |lg: u32| cole_sort(&shuffled(1 << lg, 5)).1.max_stage_footprint as f64;
        let r = f(12) / f(10);
        assert!((3.4..4.6).contains(&r), "footprint ratio {r} should be ~4");
    }
}
