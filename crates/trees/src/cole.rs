//! Cole's pipelined (cascading) mergesort — the paper's second flagship
//! example of hand pipelining: "the approach was later used by Cole in
//! the first O(lg n) time sorting algorithm on the PRAM not based on the
//! AKS sorting network" (§1). The conclusions leave open whether futures
//! can express it; experiment E18 puts the two side by side.
//!
//! This is a synchronous **cascade simulator** of Cole's algorithm over a
//! complete binary merge tree:
//!
//! * a node becomes *complete* three stages after both children are
//!   complete (leaves are complete at stage 0);
//! * every stage, each child sends its parent a **sample** of its current
//!   array: every 4th element while incomplete, then every 4th / 2nd /
//!   1st element in the three stages after completion;
//! * the parent's array for the next stage is the merge of the two
//!   samples — so partial merge results flow up the tree while the lower
//!   merges are still in progress, and the root completes at stage
//!   3·lg n.
//!
//! **Substitution note** (cf. DESIGN.md): Cole's contribution includes
//! maintaining cross-ranks so each stage's merge runs in O(1) PRAM time;
//! this simulator performs each stage's merges directly (charging their
//! element operations as work) and counts *stages* as the parallel time,
//! which is exactly the quantity the O(lg n) claim is about. The rank
//! machinery affects the per-stage constant only. Cole's proof bounds the
//! total work at O(n lg n); the simulator measures it.

use crate::Key;

/// Statistics from one cascade run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColeStats {
    /// Synchronous stages until the root completed (the parallel time;
    /// Cole: 3·lg n).
    pub stages: u64,
    /// Total element operations across all stage merges (Cole: O(n lg n)).
    pub work: u64,
    /// Maximum total array length alive in any single stage (space).
    pub max_stage_footprint: usize,
}

struct Node<K> {
    /// Stage at which this node completed (valid once `complete`).
    complete_at: Option<u64>,
    /// Current array (the node's `up` array in Cole's terminology).
    up: Vec<K>,
    /// Children indices (empty for leaves).
    children: Vec<usize>,
}

/// Every `k`-th element, starting so the sample is of the suffix-regular
/// kind Cole uses (positions k-1, 2k-1, ...).
fn sample<K: Clone>(a: &[K], k: usize) -> Vec<K> {
    a.iter().skip(k - 1).step_by(k).cloned().collect()
}

fn merge_count<K: Ord + Clone>(a: &[K], b: &[K], work: &mut u64) -> Vec<K> {
    *work += (a.len() + b.len()) as u64;
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out
}

/// Sort `keys` with the cascading merge; returns the sorted vector and
/// the cascade statistics.
pub fn cole_sort<K: Key>(keys: &[K]) -> (Vec<K>, ColeStats) {
    if keys.is_empty() {
        return (
            Vec::new(),
            ColeStats {
                stages: 0,
                work: 0,
                max_stage_footprint: 0,
            },
        );
    }
    // Build a complete binary tree over the (padded) leaves; padding uses
    // index-paired sentinels handled by sorting Option-free: we pad by
    // distributing leaves of size 1 and allowing missing siblings.
    let n = keys.len();
    let mut nodes: Vec<Node<K>> = Vec::new();
    // Level 0: leaves, complete at stage 0.
    let mut level: Vec<usize> = (0..n)
        .map(|i| {
            nodes.push(Node {
                complete_at: Some(0),
                up: vec![keys[i].clone()],
                children: Vec::new(),
            });
            nodes.len() - 1
        })
        .collect();
    // Build parents pairwise; odd node promoted.
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
            } else {
                nodes.push(Node {
                    complete_at: None,
                    up: Vec::new(),
                    children: vec![pair[0], pair[1]],
                });
                next.push(nodes.len() - 1);
            }
        }
        level = next;
    }
    let root = level[0];

    let mut stats = ColeStats {
        stages: 0,
        work: 0,
        max_stage_footprint: 0,
    };
    let mut stage: u64 = 0;
    while nodes[root].complete_at.is_none() {
        stage += 1;
        // Compute all sends based on the PREVIOUS stage's state, then
        // apply — the synchronous discipline.
        let mut updates: Vec<(usize, Vec<K>, bool)> = Vec::new();
        for v in 0..nodes.len() {
            if nodes[v].children.is_empty() || nodes[v].complete_at.is_some() {
                continue;
            }
            let sends: Vec<Vec<K>> = nodes[v]
                .children
                .iter()
                .map(|&c| {
                    let child = &nodes[c];
                    match child.complete_at {
                        None => sample(&child.up, 4),
                        Some(s) => {
                            // Stages after completion: s+1 -> 4, s+2 -> 2,
                            // s+3 and beyond -> 1 (full array).
                            match stage.saturating_sub(s) {
                                0 | 1 => sample(&child.up, 4),
                                2 => sample(&child.up, 2),
                                _ => child.up.clone(),
                            }
                        }
                    }
                })
                .collect();
            let merged = merge_count(&sends[0], &sends[1], &mut stats.work);
            // v completes once both children are complete and it has
            // received their full arrays (3 stages after the later child).
            let full = nodes[v]
                .children
                .iter()
                .all(|&c| matches!(nodes[c].complete_at, Some(s) if stage >= s + 3));
            updates.push((v, merged, full));
        }
        for (v, merged, full) in updates {
            nodes[v].up = merged;
            if full {
                nodes[v].complete_at = Some(stage);
                // Cole's space discipline: once a node holds the full
                // merge of its subtree, the children's arrays are dead.
                let kids = nodes[v].children.clone();
                for c in kids {
                    nodes[c].up = Vec::new();
                }
            }
        }
        let footprint: usize = nodes.iter().map(|nd| nd.up.len()).sum();
        stats.max_stage_footprint = stats.max_stage_footprint.max(footprint);
        assert!(
            stage <= 8 * (64 - (n as u64).leading_zeros() as u64 + 1),
            "cascade failed to converge by stage {stage}"
        );
    }
    stats.stages = stage;
    (nodes[root].up.clone(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n as i64).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn sorts_correctly() {
        for n in [0usize, 1, 2, 3, 5, 8, 13, 64, 100, 1000] {
            let keys = shuffled(n, n as u64 + 7);
            let (sorted, _) = cole_sort(&keys);
            assert_eq!(sorted, (0..n as i64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn sorts_with_duplicates() {
        let keys = vec![5i64, 1, 5, 2, 2, 9, 0];
        let (sorted, _) = cole_sort(&keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn stages_are_three_log_n() {
        for lg in [4u32, 6, 8, 10] {
            let n = 1usize << lg;
            let (_, s) = cole_sort(&shuffled(n, 3));
            assert_eq!(
                s.stages,
                3 * lg as u64,
                "power-of-two input must complete at exactly 3·lg n stages"
            );
        }
    }

    #[test]
    fn work_is_n_log_n() {
        let w = |lg: u32| cole_sort(&shuffled(1 << lg, 5)).1.work as f64;
        let r = w(12) / w(10);
        // n lg n: ratio 4·(12/10) = 4.8.
        assert!((4.0..6.0).contains(&r), "work ratio {r}");
    }

    #[test]
    fn footprint_is_linear() {
        // Cole: total live sample arrays are O(n).
        let f = |lg: u32| cole_sort(&shuffled(1 << lg, 5)).1.max_stage_footprint as f64;
        let r = f(12) / f(10);
        assert!((3.4..4.6).contains(&r), "footprint ratio {r} should be ~4");
    }
}
