//! Figure 1 — the producer/consumer list pipeline, the paper's
//! introductory example of futures-based pipelining.
//!
//! `produce(n)` builds the list `n :: n−1 :: … :: 0 :: nil` with every tail
//! a future; `consume` folds it with `+`. With pipelining the consumer
//! processes element *i* while the producer builds element *i + 1*, so the
//! whole computation has depth ≈ c·n instead of the strict 2·c·n — the
//! consumer finishes O(1) after the producer.
//!
//! The producer and consumer are written once, engine-generically, in
//! [`pf_algs::list`]; this module instantiates them on the simulator and
//! holds the Figure-1 cost tests.

use pf_core::{CostReport, Ctx, Promise, Sim};

use crate::quicksort::List;
use crate::Mode;

/// `produce(n)`: the list `n, n−1, …, 1` where each tail is computed by
/// its own future thread; the head cons is written to `out` as soon as the
/// first element is known.
pub fn produce(ctx: &Ctx, n: u64, out: Promise<List<u64>>) {
    pf_algs::list::produce(ctx, n, out);
}

/// `consume`: sum the list, touching each tail future as it goes; the
/// total is written to `out` once the nil is reached.
pub fn consume(ctx: &Ctx, list: List<u64>, acc: u64, out: Promise<u64>) {
    pf_algs::list::consume(ctx, list, acc, out);
}

/// Run the Figure-1 pipeline for `n` elements under `mode`; returns the
/// sum and the cost report. In [`Mode::Strict`] the consumer only starts
/// once the producer has built the entire list.
pub fn run_pipeline(n: u64, mode: Mode) -> (u64, CostReport) {
    Sim::new().run(|ctx| {
        let (lp, lf) = ctx.promise();
        match mode {
            Mode::Pipelined => produce(ctx, n, lp),
            Mode::Strict => ctx.call_strict(move |ctx| produce(ctx, n, lp)),
        }
        let list = ctx.touch(&lf);
        let (sp, sf) = ctx.promise();
        consume(ctx, list, 0, sp);
        ctx.touch(&sf)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_correctly() {
        for n in [0u64, 1, 2, 17, 100] {
            let (s, _) = run_pipeline(n, Mode::Pipelined);
            assert_eq!(s, n * (n + 1) / 2, "n = {n}");
        }
    }

    #[test]
    fn pipelined_depth_close_to_producer_alone() {
        let n = 1000;
        let (_, cp) = run_pipeline(n, Mode::Pipelined);
        let (_, cs) = run_pipeline(n, Mode::Strict);
        assert_eq!(cp.work, cs.work);
        // Pipelined: consumer trails the producer by O(1) ⇒ depth ≈ c·n.
        // Strict: the whole production is re-stamped to its completion
        // time, so the consumer starts after the full production and the
        // depth ≈ producer + consumer ≈ 2·c·n.
        assert!(
            cs.depth as f64 > 1.3 * cp.depth as f64,
            "strict {} vs pipelined {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn depth_linear_in_n() {
        let (_, c1) = run_pipeline(500, Mode::Pipelined);
        let (_, c2) = run_pipeline(1000, Mode::Pipelined);
        let ratio = c2.depth as f64 / c1.depth as f64;
        assert!((1.8..2.2).contains(&ratio), "depth should be Θ(n): {ratio}");
    }

    #[test]
    fn work_linear_in_n() {
        let (_, c1) = run_pipeline(500, Mode::Pipelined);
        let (_, c2) = run_pipeline(1000, Mode::Pipelined);
        let ratio = c2.work as f64 / c1.work as f64;
        assert!((1.8..2.2).contains(&ratio), "work should be Θ(n): {ratio}");
    }

    #[test]
    fn is_linear_code() {
        let (_, c) = run_pipeline(200, Mode::Pipelined);
        assert!(c.is_linear());
    }
}
