//! Figure 1 — the producer/consumer list pipeline, the paper's
//! introductory example of futures-based pipelining.
//!
//! `produce(n)` builds the list `n :: n−1 :: … :: 0 :: nil` with every tail
//! a future; `consume` folds it with `+`. With pipelining the consumer
//! processes element *i* while the producer builds element *i + 1*, so the
//! whole computation has depth ≈ c·n instead of the strict 2·c·n — the
//! consumer finishes O(1) after the producer.

use pf_core::{CostReport, Ctx, FList, Sim};

use crate::Mode;

/// `produce(n)`: the list `n, n−1, …, 1` where each tail is computed by
/// its own future thread.
pub fn produce(ctx: &mut Ctx, n: u64) -> FList<u64> {
    ctx.tick(1);
    if n == 0 {
        FList::nil()
    } else {
        let tail = ctx.fork(move |ctx| produce(ctx, n - 1));
        FList::cons(n, tail)
    }
}

/// `consume`: sum the list, touching each tail future as it goes.
pub fn consume(ctx: &mut Ctx, list: FList<u64>, mut acc: u64) -> u64 {
    let mut cur = list;
    loop {
        ctx.tick(1);
        match cur.as_cons() {
            None => return acc,
            Some((h, t)) => {
                acc += *h;
                cur = ctx.touch(t);
            }
        }
    }
}

/// Run the Figure-1 pipeline for `n` elements under `mode`; returns the
/// sum and the cost report. In [`Mode::Strict`] the consumer only starts
/// once the producer has built the entire list.
pub fn run_pipeline(n: u64, mode: Mode) -> (u64, CostReport) {
    Sim::new().run(|ctx| {
        let list = match mode {
            Mode::Pipelined => {
                let f = ctx.fork(move |ctx| produce(ctx, n));
                ctx.touch(&f)
            }
            Mode::Strict => {
                let (p, f) = ctx.promise();
                ctx.call_strict(move |ctx| {
                    ctx.fork_unit(move |ctx| {
                        let l = produce(ctx, n);
                        p.fulfill(ctx, l);
                    });
                });
                ctx.touch(&f)
            }
        };
        consume(ctx, list, 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_correctly() {
        for n in [0u64, 1, 2, 17, 100] {
            let (s, _) = run_pipeline(n, Mode::Pipelined);
            assert_eq!(s, n * (n + 1) / 2, "n = {n}");
        }
    }

    #[test]
    fn pipelined_depth_close_to_producer_alone() {
        let n = 1000;
        let (_, cp) = run_pipeline(n, Mode::Pipelined);
        let (_, cs) = run_pipeline(n, Mode::Strict);
        assert_eq!(cp.work, cs.work);
        // Pipelined: consumer trails the producer by O(1) ⇒ depth ≈ c·n.
        // Strict: depth ≈ producer + consumer ≈ 2·c·n — but the strict
        // variant re-stamps the *head* cell only, and the head of the list
        // holds the whole chain, so the strict consumer starts after the
        // full production.
        assert!(
            cs.depth as f64 > 1.3 * cp.depth as f64,
            "strict {} vs pipelined {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn depth_linear_in_n() {
        let (_, c1) = run_pipeline(500, Mode::Pipelined);
        let (_, c2) = run_pipeline(1000, Mode::Pipelined);
        let ratio = c2.depth as f64 / c1.depth as f64;
        assert!((1.8..2.2).contains(&ratio), "depth should be Θ(n): {ratio}");
    }

    #[test]
    fn work_linear_in_n() {
        let (_, c1) = run_pipeline(500, Mode::Pipelined);
        let (_, c2) = run_pipeline(1000, Mode::Pipelined);
        let ratio = c2.work as f64 / c1.work as f64;
        assert!((1.8..2.2).contains(&ratio), "work should be Θ(n): {ratio}");
    }

    #[test]
    fn is_linear_code() {
        let (_, c) = run_pipeline(200, Mode::Pipelined);
        assert!(c.is_linear());
    }
}
