//! Binary search trees with **futures as child pointers** — the data
//! representation that makes implicit pipelining possible (§3.1).
//!
//! A consumer holding a [`Tree`] node can read its key and hand each child
//! future to a further consumer *before the producer has materialized the
//! child*: "if an operation examines the head of a linked list to get a
//! pointer to the second element, the operation is strict on the head but
//! not the second or any other element. We make significant use of this
//! property" (§2).

use std::rc::Rc;

use pf_core::{Ctx, Fut};

use crate::Key;

/// A binary search tree whose children are future cells.
pub enum Tree<K> {
    /// The empty tree.
    Leaf,
    /// An interior node (shared, immutable).
    Node(Rc<Node<K>>),
}

/// An interior node of a [`Tree`].
pub struct Node<K> {
    /// The key stored at this node.
    pub key: K,
    /// Future of the left subtree (keys `< key`).
    pub left: Fut<Tree<K>>,
    /// Future of the right subtree (keys `> key`).
    pub right: Fut<Tree<K>>,
}

impl<K> Clone for Tree<K> {
    fn clone(&self) -> Self {
        match self {
            Tree::Leaf => Tree::Leaf,
            Tree::Node(n) => Tree::Node(Rc::clone(n)),
        }
    }
}

impl<K> Tree<K> {
    /// Construct an interior node.
    pub fn node(key: K, left: Fut<Tree<K>>, right: Fut<Tree<K>>) -> Self {
        Tree::Node(Rc::new(Node { key, left, right }))
    }

    /// Is this the empty tree?
    pub fn is_leaf(&self) -> bool {
        matches!(self, Tree::Leaf)
    }
}

impl<K: Key> Tree<K> {
    /// Build a balanced tree from a sorted slice using **free** pre-written
    /// cells ([`Ctx::preload`]) — input construction must not pollute the
    /// measured cost of the algorithm under test.
    pub fn preload_balanced(ctx: &mut Ctx, sorted: &[K]) -> Tree<K> {
        if sorted.is_empty() {
            return Tree::Leaf;
        }
        let mid = sorted.len() / 2;
        let left = Self::preload_balanced(ctx, &sorted[..mid]);
        let right = Self::preload_balanced(ctx, &sorted[mid + 1..]);
        let lf = ctx.preload(left);
        let rf = ctx.preload(right);
        Tree::node(sorted[mid].clone(), lf, rf)
    }

    /// Post-run inspection: collect the keys in symmetric order.
    ///
    /// # Panics
    /// If any child cell is still unwritten.
    pub fn to_sorted_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.inorder_into(&mut out);
        out
    }

    fn inorder_into(&self, out: &mut Vec<K>) {
        if let Tree::Node(n) = self {
            n.left.with(|l| l.inorder_into(out));
            out.push(n.key.clone());
            n.right.with(|r| r.inorder_into(out));
        }
    }

    /// Post-run inspection: number of keys.
    pub fn size(&self) -> usize {
        match self {
            Tree::Leaf => 0,
            Tree::Node(n) => 1 + n.left.with(|l| l.size()) + n.right.with(|r| r.size()),
        }
    }

    /// Post-run inspection: height (empty tree has height 0, a single node
    /// height 1) — the paper's `h(T)` up to the off-by-one convention.
    pub fn height(&self) -> usize {
        match self {
            Tree::Leaf => 0,
            Tree::Node(n) => {
                1 + n
                    .left
                    .with(|l| l.height())
                    .max(n.right.with(|r| r.height()))
            }
        }
    }

    /// Post-run inspection: is this a valid BST with strictly increasing
    /// keys in symmetric order?
    pub fn is_search_tree(&self) -> bool {
        let keys = self.to_sorted_vec();
        keys.windows(2).all(|w| w[0] < w[1])
    }

    /// Post-run inspection: the largest write timestamp of any node cell in
    /// the tree reachable from `root` — the virtual time at which the tree
    /// was fully materialized. `root` itself counts.
    pub fn completion_time(root: &Fut<Tree<K>>) -> u64 {
        let mut t = root.time();
        root.with(|tree| {
            if let Tree::Node(n) = tree {
                t = t
                    .max(Self::completion_time(&n.left))
                    .max(Self::completion_time(&n.right));
            }
        });
        t
    }

    /// Post-run inspection: visit every *node cell* in the tree with its
    /// `(write_time, depth_in_tree, height_of_subtree)` triple; used by the
    /// τ/ρ-value checkers in [`crate::analysis`]. Returns the height of the
    /// subtree stored in `cell` (leaf = 0).
    pub fn walk_cells(
        cell: &Fut<Tree<K>>,
        depth: usize,
        f: &mut impl FnMut(u64, usize, usize),
    ) -> usize {
        let t = cell.time();
        let h = cell.with(|tree| match tree {
            Tree::Leaf => 0,
            Tree::Node(n) => {
                let hl = Self::walk_cells(&n.left, depth + 1, f);
                let hr = Self::walk_cells(&n.right, depth + 1, f);
                1 + hl.max(hr)
            }
        });
        f(t, depth, h);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_core::Sim;

    fn keys(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    #[test]
    fn preload_balanced_shape() {
        let (t, r) = Sim::new().run(|ctx| Tree::preload_balanced(ctx, &keys(127)));
        assert_eq!(r.work, 0, "input construction must be free");
        assert_eq!(t.size(), 127);
        assert_eq!(t.height(), 7, "127 nodes must pack into height 7");
        assert!(t.is_search_tree());
        assert_eq!(t.to_sorted_vec(), keys(127));
    }

    #[test]
    fn empty_tree() {
        let (t, _) = Sim::new().run(|ctx| Tree::<i64>::preload_balanced(ctx, &[]));
        assert!(t.is_leaf());
        assert_eq!(t.size(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.to_sorted_vec().is_empty());
    }

    #[test]
    fn single_node() {
        let (t, _) = Sim::new().run(|ctx| Tree::preload_balanced(ctx, &[5i64]));
        assert_eq!(t.size(), 1);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn completion_time_sees_deep_writes() {
        let (root, _) = Sim::new().run(|ctx| {
            // Build a node whose right child is written late.
            let (rp, rf) = ctx.promise();
            let lf = ctx.preload(Tree::Leaf);
            let t = Tree::node(1i64, lf, rf);
            let root = ctx.preload(t);
            ctx.fork_unit(move |c| {
                c.tick(100);
                rp.fulfill(c, Tree::Leaf);
            });
            root
        });
        assert_eq!(root.time(), 0);
        assert!(Tree::completion_time(&root) > 100);
    }

    #[test]
    fn walk_cells_heights() {
        let (root, _) = Sim::new().run(|ctx| {
            let t = Tree::preload_balanced(ctx, &keys(7));
            ctx.preload(t)
        });
        let mut seen = 0usize;
        let h = Tree::walk_cells(&root, 0, &mut |_, _, _| seen += 1);
        assert_eq!(h, 3);
        // 7 nodes + 8 leaf cells + ... every cell visited once:
        // a tree of 7 nodes has 14 child cells + the root cell = 15.
        assert_eq!(seen, 15);
    }
}
