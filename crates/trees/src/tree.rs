//! Binary search trees with **futures as child pointers** — the data
//! representation that makes implicit pipelining possible (§3.1).
//!
//! The tree type itself is engine-generic and lives in
//! [`pf_algs::tree`]; this module pins it to the simulator engine
//! ([`pf_core::Ctx`]) and adds the sim-only machinery: free preloaded
//! input construction and the timestamp inspectors used by the τ/ρ-value
//! checkers in [`crate::analysis`].
//!
//! A consumer holding a [`Tree`] node can read its key and hand each child
//! future to a further consumer *before the producer has materialized the
//! child*: "if an operation examines the head of a linked list to get a
//! pointer to the second element, the operation is strict on the head but
//! not the second or any other element. We make significant use of this
//! property" (§2).

use pf_core::{Ctx, Fut};

use crate::Key;

pub use pf_algs::tree::{TreeFut, TreeWr};

/// A binary search tree whose children are future cells, on the simulator
/// engine.
pub type Tree<K> = pf_algs::tree::Tree<Ctx, K>;

/// An interior node of a [`Tree`].
pub type Node<K> = pf_algs::tree::Node<Ctx, K>;

/// Simulator-only extensions of [`Tree`]: free input construction and
/// post-run timestamp inspection. The methods live in a trait because
/// `Tree<K>` is an alias of the generic tree at `B = Ctx` — bring this
/// trait into scope to call them as `Tree::preload_balanced(..)` etc.
pub trait SimTree<K: Key>: Sized {
    /// Build a balanced tree from a sorted slice using **free** pre-written
    /// cells ([`Ctx::preload`]) — input construction must not pollute the
    /// measured cost of the algorithm under test.
    fn preload_balanced(ctx: &Ctx, sorted: &[K]) -> Self;

    /// Post-run inspection: the largest write timestamp of any node cell in
    /// the tree reachable from `root` — the virtual time at which the tree
    /// was fully materialized. `root` itself counts.
    fn completion_time(root: &Fut<Self>) -> u64;

    /// Post-run inspection: visit every *node cell* in the tree with its
    /// `(write_time, depth_in_tree, height_of_subtree)` triple; used by the
    /// τ/ρ-value checkers in [`crate::analysis`]. Returns the height of the
    /// subtree stored in `cell` (leaf = 0).
    fn walk_cells(cell: &Fut<Self>, depth: usize, f: &mut impl FnMut(u64, usize, usize)) -> usize;
}

impl<K: Key> SimTree<K> for Tree<K> {
    fn preload_balanced(ctx: &Ctx, sorted: &[K]) -> Tree<K> {
        Tree::from_sorted(ctx, sorted)
    }

    fn completion_time(root: &Fut<Tree<K>>) -> u64 {
        let mut t = root.time();
        root.with(|tree| {
            if let Tree::Node(n) = tree {
                t = t
                    .max(Self::completion_time(&n.left))
                    .max(Self::completion_time(&n.right));
            }
        });
        t
    }

    fn walk_cells(
        cell: &Fut<Tree<K>>,
        depth: usize,
        f: &mut impl FnMut(u64, usize, usize),
    ) -> usize {
        let t = cell.time();
        let h = cell.with(|tree| match tree {
            Tree::Leaf => 0,
            Tree::Node(n) => {
                let hl = Self::walk_cells(&n.left, depth + 1, f);
                let hr = Self::walk_cells(&n.right, depth + 1, f);
                1 + hl.max(hr)
            }
        });
        f(t, depth, h);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_core::Sim;

    fn keys(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    #[test]
    fn preload_balanced_shape() {
        let (t, r) = Sim::new().run(|ctx| Tree::preload_balanced(ctx, &keys(127)));
        assert_eq!(r.work, 0, "input construction must be free");
        assert_eq!(t.size(), 127);
        assert_eq!(t.height(), 7, "127 nodes must pack into height 7");
        assert!(t.is_search_tree());
        assert_eq!(t.to_sorted_vec(), keys(127));
    }

    #[test]
    fn empty_tree() {
        let (t, _) = Sim::new().run(|ctx| Tree::<i64>::preload_balanced(ctx, &[]));
        assert!(t.is_leaf());
        assert_eq!(t.size(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.to_sorted_vec().is_empty());
    }

    #[test]
    fn single_node() {
        let (t, _) = Sim::new().run(|ctx| Tree::preload_balanced(ctx, &[5i64]));
        assert_eq!(t.size(), 1);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn completion_time_sees_deep_writes() {
        let (root, _) = Sim::new().run(|ctx| {
            // Build a node whose right child is written late.
            let (rp, rf) = ctx.promise();
            let lf = ctx.preload(Tree::Leaf);
            let t = Tree::node(1i64, lf, rf);
            let root = ctx.preload(t);
            ctx.fork_unit(move |c| {
                c.tick(100);
                rp.fulfill(c, Tree::Leaf);
            });
            root
        });
        assert_eq!(root.time(), 0);
        assert!(Tree::completion_time(&root) > 100);
    }

    #[test]
    fn walk_cells_heights() {
        let (root, _) = Sim::new().run(|ctx| {
            let t = Tree::preload_balanced(ctx, &keys(7));
            ctx.preload(t)
        });
        let mut seen = 0usize;
        let h = Tree::walk_cells(&root, 0, &mut |_, _, _| seen += 1);
        assert_eq!(h, 3);
        // 7 nodes + 8 leaf cells + ... every cell visited once:
        // a tree of 7 nodes has 14 child cells + the root cell = 15.
        assert_eq!(seen, 15);
    }
}
