//! §3.1 (end) — rebalancing an unbalanced BST with pipelining.
//!
//! The three-phase algorithm is written once, engine-generically, in
//! [`pf_algs::rebalance`]; this module instantiates it on the simulator,
//! keeps the historical signatures, and holds the cost tests for the
//! O(lg n + lg m) depth / O(n + m) work bounds:
//!
//! 1. a bottom-up pass storing subtree **sizes** ([`annotate_sizes`]);
//! 2. a top-down pass assigning each node its in-order **rank**
//!    ([`assign_ranks`]) — neither pass needs pipelining;
//! 3. a pipelined rebuild ([`rebuild`]) that repeatedly splits by rank
//!    (`split_rank`, the rank analogue of `splitm`) and uses the rank-`mid`
//!    node as the root — the splits at different levels overlap exactly
//!    like the splits in `merge`.
//!
//! Storing each node's **left-subtree size** during phase 1 is what lets
//! phase 2 compute ranks without touching children a second time, keeping
//! the program linear (§4).

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::tree::{SimTree, Tree};
use crate::{Key, Mode};

pub use pf_algs::rebalance::{SizedNode, SizedTree};

/// A rank-annotated tree (phase-2 output) on the simulator engine.
pub type RankedTree<K> = pf_algs::rebalance::RankedTree<Ctx, K>;

/// Node of a [`RankedTree`].
pub type RankedNode<K> = pf_algs::rebalance::RankedNode<Ctx, K>;

/// Phase 1: bottom-up size annotation. Depth O(h), work O(n).
pub fn annotate_sizes<K: Key>(ctx: &Ctx, t: Fut<Tree<K>>, out: Promise<SizedTree<K>>) {
    pf_algs::rebalance::annotate_sizes(ctx, t, out);
}

/// Phase 2: top-down rank assignment. `offset` is the number of keys to
/// the left of this subtree. Depth O(h), work O(n).
pub fn assign_ranks<K: Key>(
    ctx: &Ctx,
    t: SizedTree<K>,
    offset: usize,
    out: Promise<RankedTree<K>>,
) {
    pf_algs::rebalance::assign_ranks(ctx, t, offset, out);
}

/// Phase 3a: `split_rank(r, t)` — partition by global rank: nodes with
/// rank `< r` to `lout`, rank `> r` to `rout`, and the key of the rank-`r`
/// node to `kout`. Structurally `splitm` with ranks as keys.
pub fn split_rank<K: Key>(
    ctx: &Ctx,
    r: usize,
    t: RankedTree<K>,
    lout: Promise<RankedTree<K>>,
    rout: Promise<RankedTree<K>>,
    kout: Promise<K>,
) {
    pf_algs::rebalance::split_rank(ctx, r, t, lout, rout, kout);
}

/// Phase 3b: rebuild the subtree holding ranks `lo..hi` of `t` into a
/// perfectly balanced tree: split at the median rank, use that node as the
/// root, recurse on the halves (pipelined like `merge`).
pub fn rebuild<K: Key>(
    ctx: &Ctx,
    t: Fut<RankedTree<K>>,
    lo: usize,
    hi: usize,
    out: Promise<Tree<K>>,
    mode: Mode,
) {
    pf_algs::rebalance::rebuild(ctx, t, lo, hi, out, mode);
}

/// The full three-phase rebalance of an arbitrary BST.
pub fn rebalance<K: Key>(ctx: &Ctx, t: Fut<Tree<K>>, out: Promise<Tree<K>>, mode: Mode) {
    pf_algs::rebalance::rebalance(ctx, t, out, mode);
}

/// The §3.1 composite the rebalance exists for: **merge two balanced
/// trees, then rebalance the result** — both phases pipelined, the
/// rebalance consuming the merge's output tree while the merge is still
/// producing it. Total depth O(lg n + lg m), work O(n + m), and the
/// output is perfectly balanced (unlike raw merge, whose height can reach
/// lg n + lg m).
pub fn merge_balanced<K: Key>(
    ctx: &Ctx,
    a: Fut<Tree<K>>,
    b: Fut<Tree<K>>,
    out: Promise<Tree<K>>,
    mode: Mode,
) {
    pf_algs::rebalance::merge_balanced(ctx, a, b, out, mode);
}

/// Run [`merge_balanced`] on two sorted disjoint key sets.
pub fn run_merge_balanced<K: Key>(a: &[K], b: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let ta = Tree::preload_balanced(ctx, a);
        let tb = Tree::preload_balanced(ctx, b);
        let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
        let (op, of) = ctx.promise();
        merge_balanced(ctx, fa, fb, op, mode);
        of
    })
}

/// Build the input from a (possibly unbalanced) insertion sequence, run
/// the rebalance, and return the result root with the cost report.
pub fn run_rebalance<K: Key>(keys_in_tree_order: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let t = preload_unbalanced(ctx, keys_in_tree_order);
        let ft = ctx.preload(t);
        let (op, of) = ctx.promise();
        rebalance(ctx, ft, op, mode);
        of
    })
}

/// Build a BST by naive (unbalanced) insertion order using free cells —
/// a worst-case input generator for the rebalancer.
pub fn preload_unbalanced<K: Key>(ctx: &Ctx, keys: &[K]) -> Tree<K> {
    pf_algs::rebalance::unbalanced_from(ctx, keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n as i64).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn rebalance_preserves_keys_and_balances() {
        let keys = shuffled(200, 1);
        let (root, _) = run_rebalance(&keys, Mode::Pipelined);
        let t = root.get();
        assert!(t.is_search_tree());
        assert_eq!(t.to_sorted_vec(), (0..200).collect::<Vec<_>>());
        assert_eq!(t.height(), 8, "200 keys must pack into height 8");
    }

    #[test]
    fn rebalance_pathological_input() {
        // A fully sorted insertion order gives a height-n right spine.
        let keys: Vec<i64> = (0..128).collect();
        let (root, _) = run_rebalance(&keys, Mode::Pipelined);
        let t = root.get();
        assert_eq!(t.height(), 8);
        assert_eq!(t.size(), 128);
    }

    #[test]
    fn rebalance_small_cases() {
        for n in [0usize, 1, 2, 3] {
            let keys: Vec<i64> = (0..n as i64).collect();
            let (root, _) = run_rebalance(&keys, Mode::Pipelined);
            let t = root.get();
            assert_eq!(t.size(), n);
            assert!(t.is_search_tree());
        }
    }

    #[test]
    fn pipelined_rebuild_shallower_than_strict() {
        let keys = shuffled(1 << 10, 4);
        let (_, cp) = run_rebalance(&keys, Mode::Pipelined);
        let (_, cs) = run_rebalance(&keys, Mode::Strict);
        assert_eq!(cp.work, cs.work);
        assert!(
            cs.depth > cp.depth + cp.depth / 4,
            "strict {} vs pipelined {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn merge_balanced_composite() {
        let a: Vec<i64> = (0..700).map(|i| 2 * i).collect();
        let b: Vec<i64> = (0..500).map(|i| 2 * i + 1).collect();
        let (root, c) = run_merge_balanced(&a, &b, Mode::Pipelined);
        let t = root.get();
        assert!(t.is_search_tree());
        assert_eq!(t.size(), 1200);
        // Perfectly balanced: 1200 keys fit in height 11.
        assert_eq!(t.height(), 11);
        assert!(c.is_linear());
        // The composite depth stays close to the raw merge + a rebalance,
        // i.e. logarithmic — far below the sequential work.
        assert!(c.depth * 20 < c.work, "depth {} work {}", c.depth, c.work);
    }

    #[test]
    fn merge_balanced_depth_logarithmic() {
        let d = |lg: u32| {
            let n = 1usize << lg;
            let a: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
            let b: Vec<i64> = (0..n as i64).map(|i| 2 * i + 1).collect();
            run_merge_balanced(&a, &b, Mode::Pipelined).1.depth as i64
        };
        let (d1, d2, d3) = (d(9), d(10), d(11));
        let (g1, g2) = (d2 - d1, d3 - d2);
        assert!(
            g2 <= g1 + d1 / 4,
            "composite depth should add ~constant per doubling: {d1} {d2} {d3}"
        );
    }

    #[test]
    fn rebalance_is_linear_code() {
        let keys = shuffled(300, 9);
        let (_, c) = run_rebalance(&keys, Mode::Pipelined);
        assert!(c.is_linear());
    }

    #[test]
    fn work_is_linear_in_n() {
        let w = |n: usize| run_rebalance(&shuffled(n, 2), Mode::Pipelined).1.work as f64;
        let ratio = w(2048) / w(1024);
        assert!(
            (1.7..2.4).contains(&ratio),
            "rebalance work should be Θ(n): ratio {ratio}"
        );
    }

    #[test]
    fn depth_is_logarithmic() {
        // The rebalance depth is O(height of the input), which for a random
        // BST is ~3 lg n with noticeable variance; quadrupling n must not
        // come close to doubling the depth.
        let d = |n: usize| run_rebalance(&shuffled(n, 6), Mode::Pipelined).1.depth as i64;
        let (d1, d3) = (d(1 << 9), d(1 << 11));
        assert!(
            d3 < 2 * d1,
            "depth should grow logarithmically: {d1} -> {d3}"
        );
    }
}
