//! §3.1 (end) — rebalancing an unbalanced BST with pipelining.
//!
//! The merge of two balanced trees can produce a tree of height
//! `lg n + lg m`. The paper sketches a three-phase fix, all within
//! O(lg n + lg m) depth and O(n + m) work:
//!
//! 1. a bottom-up pass storing subtree **sizes** ([`annotate_sizes`]);
//! 2. a top-down pass assigning each node its in-order **rank**
//!    ([`assign_ranks`]) — neither pass needs pipelining;
//! 3. a pipelined rebuild ([`rebuild`]) that repeatedly splits by rank
//!    (`split_rank`, the rank analogue of `splitm`) and uses the rank-`mid`
//!    node as the root — the splits at different levels overlap exactly
//!    like the splits in `merge`.
//!
//! Storing each node's **left-subtree size** during phase 1 is what lets
//! phase 2 compute ranks without touching children a second time, keeping
//! the program linear (§4).

use std::rc::Rc;

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::tree::Tree;
use crate::{Key, Mode};

/// A size-annotated tree (phase-1 output). Built strictly bottom-up, so
/// children are plain values, not futures.
pub enum SizedTree<K> {
    /// Empty.
    Leaf,
    /// Node with subtree size and left-subtree size cached.
    Node(Rc<SizedNode<K>>),
}

/// Node of a [`SizedTree`].
pub struct SizedNode<K> {
    /// The key.
    pub key: K,
    /// Total number of keys in this subtree.
    pub size: usize,
    /// Number of keys in the left subtree (caches the rank offset).
    pub left_size: usize,
    /// Left subtree.
    pub left: SizedTree<K>,
    /// Right subtree.
    pub right: SizedTree<K>,
}

impl<K> Clone for SizedTree<K> {
    fn clone(&self) -> Self {
        match self {
            SizedTree::Leaf => SizedTree::Leaf,
            SizedTree::Node(n) => SizedTree::Node(Rc::clone(n)),
        }
    }
}

impl<K> SizedTree<K> {
    /// Size of the subtree (0 for leaf).
    pub fn size(&self) -> usize {
        match self {
            SizedTree::Leaf => 0,
            SizedTree::Node(n) => n.size,
        }
    }
}

/// A rank-annotated tree (phase-2 output). Children are futures again:
/// phase 2 emits nodes top-down and `split_rank`/`rebuild` consume them in
/// pipelined fashion.
pub enum RankedTree<K> {
    /// Empty.
    Leaf,
    /// Node carrying its global in-order rank.
    Node(Rc<RankedNode<K>>),
}

/// Node of a [`RankedTree`].
pub struct RankedNode<K> {
    /// The key.
    pub key: K,
    /// Global in-order index of this key in the whole tree.
    pub rank: usize,
    /// Future of the left subtree.
    pub left: Fut<RankedTree<K>>,
    /// Future of the right subtree.
    pub right: Fut<RankedTree<K>>,
}

impl<K> Clone for RankedTree<K> {
    fn clone(&self) -> Self {
        match self {
            RankedTree::Leaf => RankedTree::Leaf,
            RankedTree::Node(n) => RankedTree::Node(Rc::clone(n)),
        }
    }
}

/// Phase 1: bottom-up size annotation. Depth O(h), work O(n).
pub fn annotate_sizes<K: Key>(ctx: &mut Ctx, t: Fut<Tree<K>>, out: Promise<SizedTree<K>>) {
    let tv = ctx.touch(&t);
    ctx.tick(1);
    match tv {
        Tree::Leaf => out.fulfill(ctx, SizedTree::Leaf),
        Tree::Node(n) => {
            let (lp, lf) = ctx.promise();
            let (rp, rf) = ctx.promise();
            let l = n.left.clone();
            let r = n.right.clone();
            ctx.fork_unit(move |ctx| annotate_sizes(ctx, l, lp));
            ctx.fork_unit(move |ctx| annotate_sizes(ctx, r, rp));
            let lv = ctx.touch(&lf);
            let rv = ctx.touch(&rf);
            ctx.tick(1);
            let left_size = lv.size();
            let size = 1 + left_size + rv.size();
            out.fulfill(
                ctx,
                SizedTree::Node(Rc::new(SizedNode {
                    key: n.key.clone(),
                    size,
                    left_size,
                    left: lv,
                    right: rv,
                })),
            );
        }
    }
}

/// Phase 2: top-down rank assignment. `offset` is the number of keys to
/// the left of this subtree. Depth O(h), work O(n).
pub fn assign_ranks<K: Key>(
    ctx: &mut Ctx,
    t: SizedTree<K>,
    offset: usize,
    out: Promise<RankedTree<K>>,
) {
    ctx.tick(1);
    match t {
        SizedTree::Leaf => out.fulfill(ctx, RankedTree::Leaf),
        SizedTree::Node(n) => {
            let rank = offset + n.left_size;
            let (lp, lf) = ctx.promise();
            let (rp, rf) = ctx.promise();
            out.fulfill(
                ctx,
                RankedTree::Node(Rc::new(RankedNode {
                    key: n.key.clone(),
                    rank,
                    left: lf,
                    right: rf,
                })),
            );
            let (l, r) = (n.left.clone(), n.right.clone());
            ctx.fork_unit(move |ctx| assign_ranks(ctx, l, offset, lp));
            ctx.fork_unit(move |ctx| assign_ranks(ctx, r, rank + 1, rp));
        }
    }
}

/// Phase 3a: `split_rank(r, t)` — partition by global rank: nodes with
/// rank `< r` to `lout`, rank `> r` to `rout`, and the key of the rank-`r`
/// node to `kout`. Structurally `splitm` with ranks as keys.
pub fn split_rank<K: Key>(
    ctx: &mut Ctx,
    r: usize,
    t: RankedTree<K>,
    lout: Promise<RankedTree<K>>,
    rout: Promise<RankedTree<K>>,
    kout: Promise<K>,
) {
    ctx.tick(1);
    match t {
        RankedTree::Leaf => unreachable!("split_rank: rank {r} not present"),
        RankedTree::Node(n) => {
            if r == n.rank {
                kout.fulfill(ctx, n.key.clone());
                let lv = ctx.touch(&n.left);
                lout.fulfill(ctx, lv);
                let rv = ctx.touch(&n.right);
                rout.fulfill(ctx, rv);
            } else if r < n.rank {
                let (rp1, rf1) = ctx.promise();
                rout.fulfill(
                    ctx,
                    RankedTree::Node(Rc::new(RankedNode {
                        key: n.key.clone(),
                        rank: n.rank,
                        left: rf1,
                        right: n.right.clone(),
                    })),
                );
                let lv = ctx.touch(&n.left);
                split_rank(ctx, r, lv, lout, rp1, kout);
            } else {
                let (lp1, lf1) = ctx.promise();
                lout.fulfill(
                    ctx,
                    RankedTree::Node(Rc::new(RankedNode {
                        key: n.key.clone(),
                        rank: n.rank,
                        left: n.left.clone(),
                        right: lf1,
                    })),
                );
                let rv = ctx.touch(&n.right);
                split_rank(ctx, r, rv, lp1, rout, kout);
            }
        }
    }
}

/// Phase 3b: rebuild the subtree holding ranks `lo..hi` of `t` into a
/// perfectly balanced tree: split at the median rank, use that node as the
/// root, recurse on the halves (pipelined like `merge`).
pub fn rebuild<K: Key>(
    ctx: &mut Ctx,
    t: Fut<RankedTree<K>>,
    lo: usize,
    hi: usize,
    out: Promise<Tree<K>>,
    mode: Mode,
) {
    ctx.tick(1);
    if lo >= hi {
        out.fulfill(ctx, Tree::Leaf);
        return;
    }
    let tv = ctx.touch(&t);
    let mid = lo + (hi - lo) / 2;
    let (lp, lf) = ctx.promise();
    let (rp, rf) = ctx.promise();
    let (kp, kf) = ctx.promise();
    match mode {
        Mode::Pipelined => {
            ctx.fork_unit(move |ctx| split_rank(ctx, mid, tv, lp, rp, kp));
        }
        Mode::Strict => {
            ctx.call_strict(move |ctx| {
                ctx.fork_unit(move |ctx| split_rank(ctx, mid, tv, lp, rp, kp));
            });
        }
    }
    // Fork the child rebuilds *before* touching the median key: they need
    // only the piece futures, which `split_rank` streams out node by node,
    // so they start peeling while this level's split is still searching
    // for its median.
    let (blp, blf) = ctx.promise();
    let (brp, brf) = ctx.promise();
    ctx.fork_unit(move |ctx| rebuild(ctx, lf, lo, mid, blp, mode));
    ctx.fork_unit(move |ctx| rebuild(ctx, rf, mid + 1, hi, brp, mode));
    let key = ctx.touch(&kf);
    ctx.tick(1);
    out.fulfill(ctx, Tree::node(key, blf, brf));
}

/// The full three-phase rebalance of an arbitrary BST.
pub fn rebalance<K: Key>(ctx: &mut Ctx, t: Fut<Tree<K>>, out: Promise<Tree<K>>, mode: Mode) {
    let (sp, sf) = ctx.promise();
    ctx.fork_unit(move |ctx| annotate_sizes(ctx, t, sp));
    let sv = ctx.touch(&sf);
    let n = sv.size();
    let (rp, rf) = ctx.promise();
    ctx.fork_unit(move |ctx| assign_ranks(ctx, sv, 0, rp));
    rebuild(ctx, rf, 0, n, out, mode);
}

/// The §3.1 composite the rebalance exists for: **merge two balanced
/// trees, then rebalance the result** — both phases pipelined, the
/// rebalance consuming the merge's output tree while the merge is still
/// producing it. Total depth O(lg n + lg m), work O(n + m), and the
/// output is perfectly balanced (unlike raw merge, whose height can reach
/// lg n + lg m).
pub fn merge_balanced<K: Key>(
    ctx: &mut Ctx,
    a: Fut<Tree<K>>,
    b: Fut<Tree<K>>,
    out: Promise<Tree<K>>,
    mode: Mode,
) {
    let (mp, mf) = ctx.promise();
    ctx.fork_unit(move |ctx| crate::merge::merge(ctx, a, b, mp, mode));
    rebalance(ctx, mf, out, mode);
}

/// Run [`merge_balanced`] on two sorted disjoint key sets.
pub fn run_merge_balanced<K: Key>(a: &[K], b: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let ta = Tree::preload_balanced(ctx, a);
        let tb = Tree::preload_balanced(ctx, b);
        let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
        let (op, of) = ctx.promise();
        merge_balanced(ctx, fa, fb, op, mode);
        of
    })
}

/// Build the input from a (possibly unbalanced) insertion sequence, run
/// the rebalance, and return the result root with the cost report.
pub fn run_rebalance<K: Key>(keys_in_tree_order: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let t = preload_unbalanced(ctx, keys_in_tree_order);
        let ft = ctx.preload(t);
        let (op, of) = ctx.promise();
        rebalance(ctx, ft, op, mode);
        of
    })
}

/// Build a BST by naive (unbalanced) insertion order using free cells —
/// a worst-case input generator for the rebalancer.
pub fn preload_unbalanced<K: Key>(ctx: &mut Ctx, keys: &[K]) -> Tree<K> {
    #[derive(Clone)]
    enum P<K> {
        Leaf,
        Node(K, Box<P<K>>, Box<P<K>>),
    }
    fn ins<K: Ord + Clone>(t: P<K>, k: K) -> P<K> {
        match t {
            P::Leaf => P::Node(k, Box::new(P::Leaf), Box::new(P::Leaf)),
            P::Node(key, l, r) => {
                if k < key {
                    P::Node(key, Box::new(ins(*l, k)), r)
                } else if k > key {
                    P::Node(key, l, Box::new(ins(*r, k)))
                } else {
                    P::Node(key, l, r)
                }
            }
        }
    }
    fn conv<K: Key>(ctx: &mut Ctx, t: &P<K>) -> Tree<K> {
        match t {
            P::Leaf => Tree::Leaf,
            P::Node(k, l, r) => {
                let lv = conv(ctx, l);
                let rv = conv(ctx, r);
                let lf = ctx.preload(lv);
                let rf = ctx.preload(rv);
                Tree::node(k.clone(), lf, rf)
            }
        }
    }
    let mut p = P::Leaf;
    for k in keys {
        p = ins(p, k.clone());
    }
    conv(ctx, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n as i64).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn rebalance_preserves_keys_and_balances() {
        let keys = shuffled(200, 1);
        let (root, _) = run_rebalance(&keys, Mode::Pipelined);
        let t = root.get();
        assert!(t.is_search_tree());
        assert_eq!(t.to_sorted_vec(), (0..200).collect::<Vec<_>>());
        assert_eq!(t.height(), 8, "200 keys must pack into height 8");
    }

    #[test]
    fn rebalance_pathological_input() {
        // A fully sorted insertion order gives a height-n right spine.
        let keys: Vec<i64> = (0..128).collect();
        let (root, _) = run_rebalance(&keys, Mode::Pipelined);
        let t = root.get();
        assert_eq!(t.height(), 8);
        assert_eq!(t.size(), 128);
    }

    #[test]
    fn rebalance_small_cases() {
        for n in [0usize, 1, 2, 3] {
            let keys: Vec<i64> = (0..n as i64).collect();
            let (root, _) = run_rebalance(&keys, Mode::Pipelined);
            let t = root.get();
            assert_eq!(t.size(), n);
            assert!(t.is_search_tree());
        }
    }

    #[test]
    fn pipelined_rebuild_shallower_than_strict() {
        let keys = shuffled(1 << 10, 4);
        let (_, cp) = run_rebalance(&keys, Mode::Pipelined);
        let (_, cs) = run_rebalance(&keys, Mode::Strict);
        assert_eq!(cp.work, cs.work);
        assert!(
            cs.depth > cp.depth + cp.depth / 4,
            "strict {} vs pipelined {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn merge_balanced_composite() {
        let a: Vec<i64> = (0..700).map(|i| 2 * i).collect();
        let b: Vec<i64> = (0..500).map(|i| 2 * i + 1).collect();
        let (root, c) = run_merge_balanced(&a, &b, Mode::Pipelined);
        let t = root.get();
        assert!(t.is_search_tree());
        assert_eq!(t.size(), 1200);
        // Perfectly balanced: 1200 keys fit in height 11.
        assert_eq!(t.height(), 11);
        assert!(c.is_linear());
        // The composite depth stays close to the raw merge + a rebalance,
        // i.e. logarithmic — far below the sequential work.
        assert!(c.depth * 20 < c.work, "depth {} work {}", c.depth, c.work);
    }

    #[test]
    fn merge_balanced_depth_logarithmic() {
        let d = |lg: u32| {
            let n = 1usize << lg;
            let a: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
            let b: Vec<i64> = (0..n as i64).map(|i| 2 * i + 1).collect();
            run_merge_balanced(&a, &b, Mode::Pipelined).1.depth as i64
        };
        let (d1, d2, d3) = (d(9), d(10), d(11));
        let (g1, g2) = (d2 - d1, d3 - d2);
        assert!(
            g2 <= g1 + d1 / 4,
            "composite depth should add ~constant per doubling: {d1} {d2} {d3}"
        );
    }

    #[test]
    fn rebalance_is_linear_code() {
        let keys = shuffled(300, 9);
        let (_, c) = run_rebalance(&keys, Mode::Pipelined);
        assert!(c.is_linear());
    }

    #[test]
    fn work_is_linear_in_n() {
        let w = |n: usize| run_rebalance(&shuffled(n, 2), Mode::Pipelined).1.work as f64;
        let ratio = w(2048) / w(1024);
        assert!(
            (1.7..2.4).contains(&ratio),
            "rebalance work should be Θ(n): ratio {ratio}"
        );
    }

    #[test]
    fn depth_is_logarithmic() {
        // The rebalance depth is O(height of the input), which for a random
        // BST is ~3 lg n with noticeable variance; quadrupling n must not
        // come close to doubling the depth.
        let d = |n: usize| run_rebalance(&shuffled(n, 6), Mode::Pipelined).1.depth as i64;
        let (d1, d3) = (d(1 << 9), d(1 << 11));
        assert!(
            d3 < 2 * d1,
            "depth should grow logarithmically: {d1} -> {d3}"
        );
    }
}
