//! Figure 2 — Halstead's futures quicksort, the paper's *negative*
//! example: the algorithm pipelines (partial partition output feeds the
//! recursive calls), yet its expected depth stays Θ(n), no better
//! asymptotically than the non-pipelined version — only a constant factor
//! more parallelism.
//!
//! The algorithm is written once, engine-generically, in
//! [`pf_algs::list`]; this module instantiates it on the simulator and
//! holds the Θ(n)-depth cost tests. The implementation follows the
//! Multilisp original: `qs(l, rest)` computes `sort(l) ++ rest` with an
//! accumulator, and `partition` streams its two output lists element by
//! element through future-tailed cons cells.

use pf_core::{CostReport, Ctx, Promise, Sim};

use crate::{Key, Mode};

pub use pf_algs::list::{ListFut, ListWr};

/// A list with future tails on the simulator engine.
pub type List<K> = pf_algs::list::List<Ctx, K>;

/// Build a [`List`] from a slice using free pre-written cells (input
/// construction).
pub fn preload_list<K: Key>(ctx: &Ctx, keys: &[K]) -> List<K> {
    List::from_slice(ctx, keys)
}

/// `partition(pivot, l)`: stream `l` into elements `< pivot` (`lout`) and
/// elements `>= pivot` (`gout`). Each output element is written as soon as
/// it is classified — the pipelined producer for the recursive sorts.
pub fn partition<K: Key>(
    ctx: &Ctx,
    pivot: &K,
    l: List<K>,
    lout: Promise<List<K>>,
    gout: Promise<List<K>>,
) {
    pf_algs::list::partition(ctx, pivot.clone(), l, lout, gout);
}

/// `qs(l, rest)`: sort `l` and append `rest` (Figure 2, with the standard
/// accumulator formulation). The `< pivot` side is consumed by the
/// continuing recursion; the `>= pivot` side is sorted by a forked future
/// whose result becomes the tail of `pivot :: …`.
pub fn qs<K: Key>(ctx: &Ctx, l: List<K>, rest: List<K>, out: Promise<List<K>>, mode: Mode) {
    pf_algs::list::qs(ctx, l, rest, out, mode);
}

/// Sort `keys` with the futures quicksort under `mode`; returns the result
/// list (post-run inspectable) and the cost report.
pub fn run_quicksort<K: Key>(keys: &[K], mode: Mode) -> (List<K>, CostReport) {
    Sim::new().run(|ctx| {
        let l = preload_list(ctx, keys);
        let (op, of) = ctx.promise();
        qs(ctx, l, List::nil(), op, mode);
        ctx.touch(&of)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n as i64).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn sorts_correctly() {
        for n in [0usize, 1, 2, 3, 10, 100, 500] {
            let keys = shuffled(n, 42 + n as u64);
            let (l, _) = run_quicksort(&keys, Mode::Pipelined);
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(l.collect_vec(), expect, "n = {n}");
        }
    }

    #[test]
    fn sorts_with_duplicates() {
        let keys = vec![3i64, 1, 3, 2, 1, 3, 0];
        let (l, _) = run_quicksort(&keys, Mode::Pipelined);
        assert_eq!(l.collect_vec(), vec![0, 1, 1, 2, 3, 3, 3]);
    }

    #[test]
    fn strict_same_result_same_work() {
        let keys = shuffled(300, 7);
        let (l1, c1) = run_quicksort(&keys, Mode::Pipelined);
        let (l2, c2) = run_quicksort(&keys, Mode::Strict);
        assert_eq!(l1.collect_vec(), l2.collect_vec());
        assert_eq!(c1.work, c2.work);
        assert!(c1.depth <= c2.depth);
    }

    #[test]
    fn depth_is_linear_even_pipelined() {
        // The paper's point: pipelining does NOT make quicksort polylog.
        let d = |n: usize| run_quicksort(&shuffled(n, 99), Mode::Pipelined).1.depth as f64;
        let (d1, d2) = (d(400), d(800));
        let ratio = d2 / d1;
        assert!(
            ratio > 1.6,
            "expected ~linear depth growth, got ratio {ratio} ({d1} -> {d2})"
        );
    }

    #[test]
    fn pipelining_gains_only_constant_factor() {
        let keys = shuffled(600, 3);
        let (_, cp) = run_quicksort(&keys, Mode::Pipelined);
        let (_, cs) = run_quicksort(&keys, Mode::Strict);
        let gain = cs.depth as f64 / cp.depth as f64;
        // The exact constant depends on the pivot sequence, i.e. on the
        // shuffle RNG; any small constant (vs. the Θ(lg n) gap a real
        // asymptotic win would show) confirms the paper's claim.
        assert!(
            (1.0..6.0).contains(&gain),
            "pipelining gain should be a small constant, got {gain}"
        );
    }

    #[test]
    fn work_is_n_log_n_expected() {
        let w = |n: usize| run_quicksort(&shuffled(n, 5), Mode::Pipelined).1.work as f64;
        let (w1, w2) = (w(256), w(1024));
        // n lg n: 1024·10 / 256·8 = 5: ratio should be near 5, certainly < 8.
        let ratio = w2 / w1;
        assert!((3.0..8.0).contains(&ratio), "work ratio {ratio}");
    }
}
