//! Sequential treap oracle — re-exported from [`pf_algs::plain`].
//!
//! The plain (future-free) treap used as the correctness oracle and as the
//! priority source for the pipelined treap lives in `pf-algs` now, next to
//! the generic algorithms it validates. This module keeps the historical
//! `pf_trees::seq` paths working.

pub use pf_algs::plain::{splitmix64, Entry, PlainTreap};
