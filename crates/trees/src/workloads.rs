//! Workload generators shared by the tests, integration tests, and the
//! experiment binaries. All generators are deterministic given a seed.

use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::seq::Entry;

/// `n` sorted distinct keys spread over `0 .. n * stride`.
pub fn sorted_keys(n: usize, stride: i64) -> Vec<i64> {
    assert!(stride >= 1);
    (0..n as i64).map(|i| i * stride).collect()
}

/// Two disjoint sorted key sets that interleave perfectly (evens/odds
/// pattern scaled) — the adversarial case for merge pipelining.
pub fn interleaved_pair(n: usize, m: usize) -> (Vec<i64>, Vec<i64>) {
    let a = (0..n as i64).map(|i| 2 * i).collect();
    let b = (0..m as i64).map(|i| 2 * i + 1).collect();
    (a, b)
}

/// Two disjoint sorted key sets where the `m` keys of the second are
/// spread **uniformly across the whole range** of the first — the workload
/// under which merge work is Θ(m·lg(n/m)) (clustered keys would only
/// touch a corner of the big tree).
pub fn spread_pair(n: usize, m: usize) -> (Vec<i64>, Vec<i64>) {
    let a: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
    let b: Vec<i64> = (0..m as i64)
        .map(|i| 2 * ((i * n as i64) / m as i64) + 1)
        .collect();
    (a, b)
}

/// Two sorted key sets where a `overlap` fraction (0.0–1.0) of the second
/// set's keys also appear in the first.
pub fn overlapping_pair(n: usize, m: usize, overlap: f64, seed: u64) -> (Vec<i64>, Vec<i64>) {
    assert!((0.0..=1.0).contains(&overlap));
    let mut rng = SmallRng::seed_from_u64(seed);
    let a: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
    let mut b: Vec<i64> = (0..m as i64)
        .map(|i| {
            if rng.gen_bool(overlap) {
                2 * (rng.gen_range(0..n as i64)) // collides with a
            } else {
                2 * (i + n as i64) + 1 // fresh odd key
            }
        })
        .collect();
    b.sort_unstable();
    b.dedup();
    (a, b)
}

/// Random distinct keys in random order (for quicksort / mergesort).
pub fn shuffled_keys(n: usize, seed: u64) -> Vec<i64> {
    let mut v: Vec<i64> = (0..n as i64).collect();
    v.shuffle(&mut SmallRng::seed_from_u64(seed));
    v
}

/// Attach independent random priorities to keys (treap entries).
pub fn entries_with_random_prios(keys: &[i64], seed: u64) -> Vec<Entry<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    keys.iter().map(|&k| (k, rng.gen::<u64>())).collect()
}

/// Treap inputs for a union experiment: sizes n and m, keys drawn from a
/// shared universe so the treaps interleave.
pub fn union_entries(n: usize, m: usize, seed: u64) -> (Vec<Entry<i64>>, Vec<Entry<i64>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut universe: Vec<i64> = (0..(2 * (n + m)) as i64).collect();
    universe.shuffle(&mut rng);
    let a_keys = &universe[..n];
    let b_keys = &universe[n..n + m];
    let mut a: Vec<Entry<i64>> = a_keys.iter().map(|&k| (k, rng.gen())).collect();
    let mut b: Vec<Entry<i64>> = b_keys.iter().map(|&k| (k, rng.gen())).collect();
    a.sort_unstable();
    b.sort_unstable();
    (a, b)
}

/// Treap inputs for a difference experiment: `b` is a random subset of
/// `a`'s keys of size `m` (the keys actually removed) — maximal join
/// pressure.
pub fn diff_entries(n: usize, m: usize, seed: u64) -> (Vec<Entry<i64>>, Vec<Entry<i64>>) {
    assert!(m <= n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let a_keys: Vec<i64> = (0..n as i64).collect();
    let mut picks = a_keys.clone();
    picks.shuffle(&mut rng);
    let mut b_keys: Vec<i64> = picks[..m].to_vec();
    b_keys.sort_unstable();
    let a = a_keys.iter().map(|&k| (k, rng.gen())).collect();
    let b = b_keys.iter().map(|&k| (k, rng.gen())).collect();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_disjoint() {
        let (a, b) = interleaved_pair(10, 10);
        assert!(a.iter().all(|k| !b.contains(k)));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn overlap_zero_is_disjoint() {
        let (a, b) = overlapping_pair(100, 50, 0.0, 1);
        let aset: std::collections::BTreeSet<_> = a.iter().collect();
        assert!(b.iter().all(|k| !aset.contains(k)));
    }

    #[test]
    fn overlap_one_is_subset() {
        let (a, b) = overlapping_pair(100, 50, 1.0, 1);
        let aset: std::collections::BTreeSet<_> = a.iter().collect();
        assert!(b.iter().all(|k| aset.contains(k)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v = shuffled_keys(100, 3);
        v.sort_unstable();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn union_entries_sizes_and_disjoint() {
        let (a, b) = union_entries(50, 20, 7);
        assert_eq!(a.len(), 50);
        assert_eq!(b.len(), 20);
        let ak: std::collections::BTreeSet<_> = a.iter().map(|e| e.0).collect();
        assert!(b.iter().all(|e| !ak.contains(&e.0)));
    }

    #[test]
    fn diff_entries_subset() {
        let (a, b) = diff_entries(50, 20, 7);
        let ak: std::collections::BTreeSet<_> = a.iter().map(|e| e.0).collect();
        assert!(b.iter().all(|e| ak.contains(&e.0)));
        assert_eq!(b.len(), 20);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(shuffled_keys(64, 9), shuffled_keys(64, 9));
        assert_eq!(union_entries(30, 10, 2), union_entries(30, 10, 2));
    }
}
