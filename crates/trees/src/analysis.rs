//! Empirical checkers for the paper's timestamp-bounding definitions —
//! τ-values (Definition 1), ρ-values (Definition 2), and γ-values
//! (Definition 3) — plus small fitting helpers used by the experiment
//! binaries.
//!
//! The simulator stamps every tree node with the exact DAG time `t(v)` at
//! which it was written, so the lemmas' *existence of a bounding constant*
//! can be tested directly: we compute the **smallest constant** that makes
//! the bound hold on a concrete run and check that it stays bounded as the
//! input grows.

/// One observed cell: `(write_time, depth_in_tree, subtree_height)`.
/// Produced by the `walk_cells` inspectors on the tree types.
pub type CellObs = (u64, usize, usize);

/// Collect the observations of a walker into a vector.
pub fn collect<F>(walk: F) -> Vec<CellObs>
where
    F: FnOnce(&mut dyn FnMut(u64, usize, usize)),
{
    let mut v = Vec::new();
    walk(&mut |t, d, h| v.push((t, d, h)));
    v
}

/// Definition 1 (τ-values): τ is valid for tree `T` if for every node `v`,
/// `t(v) <= τ + ks·(h(T) − h(v))`.
///
/// Given a proposed τ (usually the call time of the operation plus the
/// O(h) slack of the theorem), return the **minimum `ks`** for which the
/// bound holds, or `None` if some node with `h(v) = h(T)` already violates
/// `t(v) <= τ` (no `ks` can fix a violation at height distance zero).
pub fn min_tau_ks(cells: &[CellObs], tau: u64) -> Option<f64> {
    let h_t = cells.iter().map(|c| c.2).max().unwrap_or(0);
    let mut ks: f64 = 0.0;
    for &(t, _d, h) in cells {
        if t <= tau {
            continue;
        }
        let gap = h_t - h;
        if gap == 0 {
            return None;
        }
        ks = ks.max((t - tau) as f64 / gap as f64);
    }
    Some(ks)
}

/// Definition 2 (ρ-values) and Definition 3 (γ-values) share one shape:
/// `t(v) <= ρ + k·d_T(v)` with `d_T` the depth of `v` in the tree. Return
/// the minimum `k` for which the bound holds with the proposed ρ, or
/// `None` if the root itself violates `t(root) <= ρ`.
pub fn min_rho_k(cells: &[CellObs], rho: u64) -> Option<f64> {
    let mut k: f64 = 0.0;
    for &(t, d, _h) in cells {
        if t <= rho {
            continue;
        }
        if d == 0 {
            return None;
        }
        k = k.max((t - rho) as f64 / d as f64);
    }
    Some(k)
}

/// Least-squares fit of `y ≈ a·x + b`; returns `(a, b)`. Used to fit
/// measured depths against `lg n` (Θ(lg n) claims fit with small residual;
/// Θ(lg² n) shows up as a strongly growing slope between windows).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate x values");
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    (a, b)
}

/// Base-2 logarithm of a positive count, as f64.
pub fn lg(n: usize) -> f64 {
    assert!(n > 0);
    (n as f64).log2()
}

/// Ratio sequence `y[i+1] / y[i]`, for eyeballing growth rates in
/// experiment output.
pub fn growth_ratios(ys: &[f64]) -> Vec<f64> {
    ys.windows(2).map(|w| w[1] / w[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_bound_simple() {
        // Tree of height 2: root (h=2) at t=5, child (h=1) at t=9,
        // grandchild cell (h=0) at t=15.
        let cells = vec![(5, 0, 2), (9, 1, 1), (15, 2, 0)];
        // With τ = 5: child needs ks >= 4, grandchild ks >= 5.
        assert_eq!(min_tau_ks(&cells, 5), Some(5.0));
        // With τ = 15 everything is within τ.
        assert_eq!(min_tau_ks(&cells, 15), Some(0.0));
        // τ = 4 cannot hold at the root (gap 0).
        assert_eq!(min_tau_ks(&cells, 4), None);
    }

    #[test]
    fn rho_bound_simple() {
        let cells = vec![(5, 0, 2), (9, 1, 1), (15, 2, 0)];
        // ρ = 5: child needs k >= 4, grandchild k >= 5.
        assert_eq!(min_rho_k(&cells, 5), Some(5.0));
        assert_eq!(min_rho_k(&cells, 4), None);
    }

    #[test]
    fn leaf_only_tree() {
        let cells = vec![(3, 0, 0)];
        assert_eq!(min_tau_ks(&cells, 3), Some(0.0));
        assert_eq!(min_tau_ks(&cells, 2), None);
    }

    #[test]
    fn fit_recovers_line() {
        let xs: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x + 2.0).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.5).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn growth_ratios_shape() {
        let r = growth_ratios(&[1.0, 2.0, 4.0]);
        assert_eq!(r, vec![2.0, 2.0]);
    }

    #[test]
    fn collect_adapts_walker() {
        let cells = collect(|f| {
            f(1, 0, 1);
            f(2, 1, 0);
        });
        assert_eq!(cells, vec![(1, 0, 1), (2, 1, 0)]);
    }
}
