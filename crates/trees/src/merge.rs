//! §3.1 — merging two binary search trees (Theorem 3.1).
//!
//! The algorithm itself is written once, engine-generically, in
//! [`pf_algs::merge`]; this module instantiates it on the simulator and
//! provides the preloaded-input entry point [`run_merge`] plus the cost
//! tests that check Theorem 3.1 against the virtual clock.
//!
//! With pipelining the merge of balanced trees of sizes n and m runs in
//! Θ(lg n + lg m) depth; with a strict split (the [`crate::Mode::Strict`]
//! variant) the natural Θ(lg n · lg m) reappears.

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::tree::{SimTree, Tree};
use crate::{Key, Mode};

/// `split(s, t)`: partition `t` into keys `< s` (written to `lout`) and
/// keys `>= s` (written to `rout`). See [`pf_algs::merge::split`].
pub fn split<K: Key>(ctx: &Ctx, s: &K, t: Tree<K>, lout: Promise<Tree<K>>, rout: Promise<Tree<K>>) {
    pf_algs::merge::split(ctx, s.clone(), t, lout, rout);
}

/// `merge(a, b)`: merge two BSTs with disjoint key sets into one BST,
/// writing the result to `out` (Figure 3). See [`pf_algs::merge::merge`].
pub fn merge<K: Key>(
    ctx: &Ctx,
    a: Fut<Tree<K>>,
    b: Fut<Tree<K>>,
    out: Promise<Tree<K>>,
    mode: Mode,
) {
    pf_algs::merge::merge(ctx, a, b, out, mode);
}

/// Convenience entry point: build both input trees (free), run `merge`
/// under `mode`, and return the result root future together with the cost
/// report. Key sets must be sorted and mutually disjoint.
pub fn run_merge<K: Key>(a: &[K], b: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    let sim = Sim::new();
    sim.run(|ctx| {
        let ta = Tree::preload_balanced(ctx, a);
        let tb = Tree::preload_balanced(ctx, b);
        let fa = ctx.preload(ta);
        let fb = ctx.preload(tb);
        let (op, of) = ctx.promise();
        merge(ctx, fa, fb, op, mode);
        of
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }
    fn odds(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i + 1).collect()
    }

    fn oracle(a: &[i64], b: &[i64]) -> Vec<i64> {
        let mut v: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merges_correctly_small() {
        for (na, nb) in [(0, 0), (1, 0), (0, 1), (3, 5), (8, 8), (17, 4)] {
            let a = evens(na);
            let b = odds(nb);
            let (root, _) = run_merge(&a, &b, Mode::Pipelined);
            let t = root.get();
            assert!(t.is_search_tree());
            assert_eq!(t.to_sorted_vec(), oracle(&a, &b), "na={na} nb={nb}");
        }
    }

    #[test]
    fn strict_mode_same_result_same_work() {
        let a = evens(100);
        let b = odds(100);
        let (r1, c1) = run_merge(&a, &b, Mode::Pipelined);
        let (r2, c2) = run_merge(&a, &b, Mode::Strict);
        assert_eq!(r1.get().to_sorted_vec(), r2.get().to_sorted_vec());
        assert_eq!(c1.work, c2.work, "strictness must not change the work");
        assert!(c1.depth <= c2.depth);
    }

    #[test]
    fn pipelined_depth_is_logarithmic() {
        // depth(n, n) should grow by a constant (not by lg n) when n doubles.
        let d = |n: usize| run_merge(&evens(n), &odds(n), Mode::Pipelined).1.depth;
        let (d1k, d2k, d4k) = (d(1 << 10), d(1 << 11), d(1 << 12));
        let g1 = d2k as i64 - d1k as i64;
        let g2 = d4k as i64 - d2k as i64;
        assert!(g1 > 0 && g2 > 0);
        // Θ(lg n + lg m): doubling n adds O(1) depth. Allow slack for the
        // constant but rule out Θ(lg² n) (which would add ~lg n ≈ 11 per
        // doubling times the constant).
        assert!(
            g2 <= g1 + 16,
            "depth increments should be ~constant: {d1k} {d2k} {d4k}"
        );
    }

    #[test]
    fn strict_depth_is_log_squared() {
        let n = 1 << 10;
        let (_, cp) = run_merge(&evens(n), &odds(n), Mode::Pipelined);
        let (_, cs) = run_merge(&evens(n), &odds(n), Mode::Strict);
        // lg(1024) = 10: the strict depth must be several times the
        // pipelined depth.
        assert!(
            cs.depth > 2 * cp.depth,
            "strict {} vs pipelined {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn merge_is_linear_code() {
        let (_, c) = run_merge(&evens(256), &odds(256), Mode::Pipelined);
        assert!(c.is_linear(), "every future cell must be read at most once");
    }

    #[test]
    fn work_is_m_log_n_over_m() {
        // With m << n the work should be far below O(n).
        let n = 1 << 14;
        let m = 1 << 4;
        let (_, c) = run_merge(&evens(n), &odds(m), Mode::Pipelined);
        assert!(
            c.work < (n as u64) / 4,
            "work {} should be o(n) for m << n",
            c.work
        );
    }

    #[test]
    fn result_height_bounded() {
        let n = 1 << 8;
        let (root, _) = run_merge(&evens(n), &odds(n), Mode::Pipelined);
        let t = root.get();
        // Paper: result height can reach lg n + lg m but no more.
        assert!(t.height() <= 8 + 8 + 2, "height {}", t.height());
    }

    #[test]
    fn split_partitions() {
        let (parts, _) = Sim::new().run(|ctx| {
            let t = Tree::preload_balanced(ctx, &evens(100));
            let (lp, lf) = ctx.promise();
            let (rp, rf) = ctx.promise();
            split(ctx, &41, t, lp, rp);
            (lf, rf)
        });
        let l = parts.0.get().to_sorted_vec();
        let r = parts.1.get().to_sorted_vec();
        assert!(l.iter().all(|&k| k < 41));
        assert!(r.iter().all(|&k| k >= 41));
        assert_eq!(l.len() + r.len(), 100);
    }

    #[test]
    fn split_at_extremes() {
        for s in [-1i64, 0, 199, 500] {
            let (parts, _) = Sim::new().run(|ctx| {
                let t = Tree::preload_balanced(ctx, &evens(100));
                let (lp, lf) = ctx.promise();
                let (rp, rf) = ctx.promise();
                split(ctx, &s, t, lp, rp);
                (lf, rf)
            });
            let l = parts.0.get().to_sorted_vec();
            let r = parts.1.get().to_sorted_vec();
            assert_eq!(l.len() + r.len(), 100);
            assert!(l.iter().all(|&k| k < s));
            assert!(r.iter().all(|&k| k >= s));
        }
    }
}
