//! §3.1 — merging two binary search trees (Theorem 3.1).
//!
//! The code is the paper's Figure 3, transcribed with explicit promise
//! passing: where the ML version writes `let (L2, R2) = ?split(v, B)`,
//! the Rust version creates the two result cells and hands their write
//! pointers into the forked `split` — the same multi-cell future. Passing
//! the *write pointer* down the recursion (instead of returning a read
//! pointer) is exactly how the model avoids chains of future cells, which
//! the paper forbids ("a read pointer cannot be written into a future
//! cell", §2).
//!
//! With pipelining the merge of balanced trees of sizes n and m runs in
//! Θ(lg n + lg m) depth; with a strict split (the [`crate::Mode::Strict`]
//! variant) the natural Θ(lg n · lg m) reappears.

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::tree::Tree;
use crate::{Key, Mode};

/// `split(s, t)`: partition `t` into keys `< s` (written to `lout`) and
/// keys `>= s` (written to `rout`).
///
/// The function walks one root-to-leaf path of `t`; each step peels one
/// node off into whichever output tree it belongs to, writing that output's
/// root **immediately** with a future for the still-unknown part — the
/// source of the pipeline. `t` is the already-touched root value; the
/// recursion touches each child on the way down.
pub fn split<K: Key>(
    ctx: &mut Ctx,
    s: &K,
    t: Tree<K>,
    lout: Promise<Tree<K>>,
    rout: Promise<Tree<K>>,
) {
    ctx.tick(1); // pattern match + comparison dispatch
    match t {
        Tree::Leaf => {
            lout.fulfill(ctx, Tree::Leaf);
            rout.fulfill(ctx, Tree::Leaf);
        }
        Tree::Node(n) => {
            if n.key >= *s {
                // Node belongs to the >= side; its left part is still
                // unknown, so it becomes a fresh future filled by the
                // recursion on the left child.
                let (rp1, rf1) = ctx.promise();
                rout.fulfill(ctx, Tree::node(n.key.clone(), rf1, n.right.clone()));
                let lt = ctx.touch(&n.left);
                split(ctx, s, lt, lout, rp1);
            } else {
                let (lp1, lf1) = ctx.promise();
                lout.fulfill(ctx, Tree::node(n.key.clone(), n.left.clone(), lf1));
                let rt = ctx.touch(&n.right);
                split(ctx, s, rt, lp1, rout);
            }
        }
    }
}

/// `merge(a, b)`: merge two BSTs with disjoint key sets into one BST,
/// writing the result to `out` (Figure 3). The root of `a` becomes the
/// root of the result; `b` is split by that root's key and the halves are
/// merged into the subtrees by parallel recursive calls.
pub fn merge<K: Key>(
    ctx: &mut Ctx,
    a: Fut<Tree<K>>,
    b: Fut<Tree<K>>,
    out: Promise<Tree<K>>,
    mode: Mode,
) {
    let av = ctx.touch(&a);
    ctx.tick(1); // pattern dispatch on the first argument
    match av {
        Tree::Leaf => {
            // merge(Leaf, B) = B: writing is strict on the value, so the
            // write waits for (touches) B's root and stores the value —
            // never a pointer to the cell.
            let bv = ctx.touch(&b);
            out.fulfill(ctx, bv);
        }
        Tree::Node(n) => {
            let bv = ctx.touch(&b);
            ctx.tick(1);
            if bv.is_leaf() {
                out.fulfill(ctx, Tree::Node(n));
                return;
            }
            // let (L2, R2) = ?split(v, B)
            let (lp2, lf2) = ctx.promise();
            let (rp2, rf2) = ctx.promise();
            let key = n.key.clone();
            match mode {
                Mode::Pipelined => {
                    ctx.fork_unit(move |ctx| split(ctx, &key, bv, lp2, rp2));
                }
                Mode::Strict => {
                    // Non-pipelined: the same forked split, but its outputs
                    // become visible only when the whole split completes.
                    ctx.call_strict(move |ctx| {
                        ctx.fork_unit(move |ctx| split(ctx, &key, bv, lp2, rp2));
                    });
                }
            }
            // Node(v, ?merge(L, L2), ?merge(R, R2)) — the result root is
            // available in constant time; its children are futures.
            let (mlp, mlf) = ctx.promise();
            let (mrp, mrf) = ctx.promise();
            ctx.tick(1); // allocate the node
            out.fulfill(ctx, Tree::node(n.key.clone(), mlf, mrf));
            let l = n.left.clone();
            let r = n.right.clone();
            ctx.fork_unit(move |ctx| merge(ctx, l, lf2, mlp, mode));
            ctx.fork_unit(move |ctx| merge(ctx, r, rf2, mrp, mode));
        }
    }
}

/// Convenience entry point: build both input trees (free), run `merge`
/// under `mode`, and return the result root future together with the cost
/// report. Key sets must be sorted and mutually disjoint.
pub fn run_merge<K: Key>(a: &[K], b: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    let sim = Sim::new();
    sim.run(|ctx| {
        let ta = Tree::preload_balanced(ctx, a);
        let tb = Tree::preload_balanced(ctx, b);
        let fa = ctx.preload(ta);
        let fb = ctx.preload(tb);
        let (op, of) = ctx.promise();
        merge(ctx, fa, fb, op, mode);
        of
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }
    fn odds(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i + 1).collect()
    }

    fn oracle(a: &[i64], b: &[i64]) -> Vec<i64> {
        let mut v: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merges_correctly_small() {
        for (na, nb) in [(0, 0), (1, 0), (0, 1), (3, 5), (8, 8), (17, 4)] {
            let a = evens(na);
            let b = odds(nb);
            let (root, _) = run_merge(&a, &b, Mode::Pipelined);
            let t = root.get();
            assert!(t.is_search_tree());
            assert_eq!(t.to_sorted_vec(), oracle(&a, &b), "na={na} nb={nb}");
        }
    }

    #[test]
    fn strict_mode_same_result_same_work() {
        let a = evens(100);
        let b = odds(100);
        let (r1, c1) = run_merge(&a, &b, Mode::Pipelined);
        let (r2, c2) = run_merge(&a, &b, Mode::Strict);
        assert_eq!(r1.get().to_sorted_vec(), r2.get().to_sorted_vec());
        assert_eq!(c1.work, c2.work, "strictness must not change the work");
        assert!(c1.depth <= c2.depth);
    }

    #[test]
    fn pipelined_depth_is_logarithmic() {
        // depth(n, n) should grow by a constant (not by lg n) when n doubles.
        let d = |n: usize| run_merge(&evens(n), &odds(n), Mode::Pipelined).1.depth;
        let (d1k, d2k, d4k) = (d(1 << 10), d(1 << 11), d(1 << 12));
        let g1 = d2k as i64 - d1k as i64;
        let g2 = d4k as i64 - d2k as i64;
        assert!(g1 > 0 && g2 > 0);
        // Θ(lg n + lg m): doubling n adds O(1) depth. Allow slack for the
        // constant but rule out Θ(lg² n) (which would add ~lg n ≈ 11 per
        // doubling times the constant).
        assert!(
            g2 <= g1 + 16,
            "depth increments should be ~constant: {d1k} {d2k} {d4k}"
        );
    }

    #[test]
    fn strict_depth_is_log_squared() {
        let n = 1 << 10;
        let (_, cp) = run_merge(&evens(n), &odds(n), Mode::Pipelined);
        let (_, cs) = run_merge(&evens(n), &odds(n), Mode::Strict);
        // lg(1024) = 10: the strict depth must be several times the
        // pipelined depth.
        assert!(
            cs.depth > 2 * cp.depth,
            "strict {} vs pipelined {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn merge_is_linear_code() {
        let (_, c) = run_merge(&evens(256), &odds(256), Mode::Pipelined);
        assert!(c.is_linear(), "every future cell must be read at most once");
    }

    #[test]
    fn work_is_m_log_n_over_m() {
        // With m << n the work should be far below O(n).
        let n = 1 << 14;
        let m = 1 << 4;
        let (_, c) = run_merge(&evens(n), &odds(m), Mode::Pipelined);
        assert!(
            c.work < (n as u64) / 4,
            "work {} should be o(n) for m << n",
            c.work
        );
    }

    #[test]
    fn result_height_bounded() {
        let n = 1 << 8;
        let (root, _) = run_merge(&evens(n), &odds(n), Mode::Pipelined);
        let t = root.get();
        // Paper: result height can reach lg n + lg m but no more.
        assert!(t.height() <= 8 + 8 + 2, "height {}", t.height());
    }

    #[test]
    fn split_partitions() {
        let (parts, _) = Sim::new().run(|ctx| {
            let t = Tree::preload_balanced(ctx, &evens(100));
            let (lp, lf) = ctx.promise();
            let (rp, rf) = ctx.promise();
            split(ctx, &41, t, lp, rp);
            (lf, rf)
        });
        let l = parts.0.get().to_sorted_vec();
        let r = parts.1.get().to_sorted_vec();
        assert!(l.iter().all(|&k| k < 41));
        assert!(r.iter().all(|&k| k >= 41));
        assert_eq!(l.len() + r.len(), 100);
    }

    #[test]
    fn split_at_extremes() {
        for s in [-1i64, 0, 199, 500] {
            let (parts, _) = Sim::new().run(|ctx| {
                let t = Tree::preload_balanced(ctx, &evens(100));
                let (lp, lf) = ctx.promise();
                let (rp, rf) = ctx.promise();
                split(ctx, &s, t, lp, rp);
                (lf, rf)
            });
            let l = parts.0.get().to_sorted_vec();
            let r = parts.1.get().to_sorted_vec();
            assert_eq!(l.len() + r.len(), 100);
            assert!(l.iter().all(|&k| k < s));
            assert!(r.iter().all(|&k| k >= s));
        }
    }
}
