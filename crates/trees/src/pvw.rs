//! The **hand-pipelined** baseline: the synchronous PVW-style wave
//! pipeline for the §3.4 bulk insert — the thing the paper argues futures
//! make unnecessary.
//!
//! The wave scheduler itself is written once, round-engine-generically, in
//! [`pf_algs::pvw`]; this module re-exports the sequential (virtual-time)
//! instantiation whose round counts experiment E16 reports, and keeps the
//! simulator-side property tests (including the agreement check against
//! the futures version). The worker-pool instantiation
//! (`pvw_insert_many_with` + `pf_rt::rounds::PoolRounds`) is driven from
//! `pf_rt_algs::baselines`.

pub use pf_algs::pvw::{pvw_insert_many, pvw_insert_many_with, PvwStats, PvwTree};

#[cfg(test)]
mod tests {
    use super::*;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    #[test]
    fn builds_valid_trees() {
        for n in [0usize, 1, 2, 3, 7, 26, 27, 100, 1000] {
            let t = PvwTree::from_sorted(&evens(n));
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(t.to_sorted_vec(), evens(n));
        }
    }

    #[test]
    fn insert_correct() {
        for (n, m) in [(50usize, 20usize), (200, 64), (1000, 100), (0, 30)] {
            let mut t = PvwTree::from_sorted(&evens(n));
            let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
            let stats = pvw_insert_many(&mut t, &newk);
            t.validate().unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
            let mut expect = evens(n);
            expect.extend(&newk);
            expect.sort_unstable();
            assert_eq!(t.to_sorted_vec(), expect, "n={n} m={m}");
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn rounds_are_lg_n_plus_lg_m() {
        // rounds ≈ 2·waves + height: O(lg n + lg m).
        let rounds = |n: usize, m: usize| {
            let mut t = PvwTree::from_sorted(&evens(n));
            let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
            pvw_insert_many(&mut t, &newk).rounds
        };
        let r1 = rounds(1 << 10, 1 << 6);
        let r2 = rounds(1 << 12, 1 << 6);
        let r3 = rounds(1 << 14, 1 << 6);
        // Doubling n adds O(1) rounds (one tree level per two doublings
        // for 2-6 trees built at ~3x fanout).
        assert!(r2 - r1 <= 4, "{r1} {r2}");
        assert!(r3 - r2 <= 4, "{r2} {r3}");
        // And rounds grow with lg m, roughly 2 per wave.
        let rm1 = rounds(1 << 12, 1 << 4);
        let rm2 = rounds(1 << 12, 1 << 8);
        assert!(rm2 > rm1 + 4);
        assert!(rm2 < rm1 + 24);
    }

    #[test]
    fn pipeline_actually_overlaps() {
        let mut t = PvwTree::from_sorted(&evens(1 << 12));
        let newk: Vec<i64> = (0..256).map(|i| 2 * i + 1).collect();
        let stats = pvw_insert_many(&mut t, &newk);
        assert!(
            stats.max_concurrent_waves >= 3,
            "waves should overlap: {}",
            stats.max_concurrent_waves
        );
        // Strictly sequential waves would need ~waves × height rounds.
        let height_bound = 8; // tree of 4096 keys has ~7 levels
        assert!(
            stats.rounds < (stats.waves as u64) * height_bound / 2 + height_bound,
            "rounds {} suggest no pipelining",
            stats.rounds
        );
    }

    #[test]
    fn repeated_bulk_inserts_stay_valid() {
        let mut t = PvwTree::from_sorted(&evens(100));
        for round in 0..5i64 {
            let keys: Vec<i64> = (0..60).map(|i| i * 11 + round * 2 + 1).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            pvw_insert_many(&mut t, &sorted);
            t.validate().unwrap();
        }
    }

    #[test]
    fn agrees_with_futures_version() {
        use crate::two_six::run_insert_many;
        use crate::Mode;
        let n = 500;
        let initial = evens(n);
        let newk: Vec<i64> = (0..120).map(|i| 5 * i + 1).collect();
        let mut newk_sorted = newk.clone();
        newk_sorted.sort_unstable();
        newk_sorted.dedup();
        let mut t = PvwTree::from_sorted(&initial);
        pvw_insert_many(&mut t, &newk_sorted);
        let (root, _) = run_insert_many(&initial, &newk_sorted, Mode::Pipelined);
        assert_eq!(t.to_sorted_vec(), root.get().to_sorted_vec());
    }
}
