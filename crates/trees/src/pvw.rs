//! The **hand-pipelined** baseline: a synchronous, round-based, PVW-style
//! execution of the §3.4 bulk insert, with the pipeline managed
//! explicitly — the thing the paper argues futures make unnecessary.
//!
//! Paul–Vishkin–Wagener insert m keys into a 2-3 tree in O(lg n + lg m)
//! *synchronous rounds* by letting the insertion waves chase each other
//! through the tree, each wave a fixed number of levels behind its
//! predecessor. This module reproduces that discipline for the paper's
//! top-down 2-6 variant:
//!
//! * the tree is a mutable arena (indices, no futures);
//! * wave *i* (the i-th well-separated key array) enters the root at round
//!   `2·i`; every round, each active wave advances **one level**;
//! * therefore wave *i + 1* works on level ℓ exactly when wave *i* works
//!   on level ℓ + 2 — the "task i is working on level j of the tree, task
//!   i + 1 can work on level j − 1" schedule of the paper's introduction,
//!   with the extra level of slack needed because a wave mutates its
//!   children (splits) as it descends;
//! * the scheduler *asserts* non-interference every round (no two waves
//!   within two levels of each other) — the bookkeeping burden that the
//!   futures version discharges onto the runtime.
//!
//! The measured round count is the hand-pipelined "time":
//! `rounds ≈ 2·lg m + lg n + O(1)`, compared in experiment E16 against
//! the futures version's DAG depth. The point of the reproduction is not
//! that either number is smaller — both are Θ(lg n + lg m) — but that
//! this file needs an explicit schedule, an arena, and an interference
//! proof, while `two_six.rs` is the obvious recursive code.

use crate::two_six::level_arrays;
use crate::Key;

/// Arena node of the mutable 2-6 tree.
#[derive(Debug, Clone)]
enum PvwNode<K> {
    Leaf(Vec<K>),
    Internal { keys: Vec<K>, children: Vec<usize> },
}

/// A mutable 2-6 tree in an index arena (the synchronous-PRAM-style
/// shared memory).
#[derive(Debug, Clone)]
pub struct PvwTree<K> {
    nodes: Vec<PvwNode<K>>,
    root: usize,
}

/// One wave's single descent task: a node and the keys destined for its
/// subtree.
struct Task<K> {
    node: usize,
    keys: Vec<K>,
}

/// Statistics from a synchronous hand-pipelined run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvwStats {
    /// Synchronous rounds executed (the hand-pipelined parallel time).
    pub rounds: u64,
    /// Total key-moves plus node visits (sequential work, for reference).
    pub work: u64,
    /// Number of waves (lg m + 1).
    pub waves: usize,
    /// Maximum number of waves simultaneously active in any round.
    pub max_concurrent_waves: usize,
}

impl<K: Key> PvwTree<K> {
    /// Build from sorted keys (same shape discipline as
    /// [`crate::two_six::SimTsTree::preload_from_sorted`]: ≤ 2 keys per leaf,
    /// 2–3 children per internal node).
    pub fn from_sorted(keys: &[K]) -> Self {
        let mut t = PvwTree {
            nodes: Vec::new(),
            root: 0,
        };
        if keys.is_empty() {
            t.root = t.alloc(PvwNode::Leaf(Vec::new()));
            return t;
        }
        let mut h = 0usize;
        let mut cap = 2usize;
        while keys.len() > cap {
            h += 1;
            cap = cap * 3 + 2;
        }
        t.root = t.build(keys, h);
        t
    }

    fn alloc(&mut self, n: PvwNode<K>) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    fn build(&mut self, keys: &[K], h: usize) -> usize {
        if h == 0 {
            debug_assert!((1..=2).contains(&keys.len()));
            return self.alloc(PvwNode::Leaf(keys.to_vec()));
        }
        let min_keys = (1usize << h) - 1;
        let max_keys = 3usize.pow(h as u32) - 1;
        let n = keys.len();
        let c = if n > 2 * min_keys && n <= 2 * max_keys + 1 {
            2
        } else {
            3
        };
        let mut sizes = vec![min_keys; c];
        let mut rem = n - (c - 1) - c * min_keys;
        for s in sizes.iter_mut() {
            let add = rem.min(max_keys - min_keys);
            *s += add;
            rem -= add;
        }
        let mut node_keys = Vec::with_capacity(c - 1);
        let mut children = Vec::with_capacity(c);
        let mut at = 0usize;
        for (i, s) in sizes.iter().enumerate() {
            let sub = self.build(&keys[at..at + s], h - 1);
            children.push(sub);
            at += s;
            if i < c - 1 {
                node_keys.push(keys[at].clone());
                at += 1;
            }
        }
        self.alloc(PvwNode::Internal {
            keys: node_keys,
            children,
        })
    }

    /// All keys in symmetric order.
    pub fn to_sorted_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.inorder(self.root, &mut out);
        out
    }

    fn inorder(&self, at: usize, out: &mut Vec<K>) {
        match &self.nodes[at] {
            PvwNode::Leaf(ks) => out.extend(ks.iter().cloned()),
            PvwNode::Internal { keys, children } => {
                for i in 0..children.len() {
                    self.inorder(children[i], out);
                    if i < keys.len() {
                        out.push(keys[i].clone());
                    }
                }
            }
        }
    }

    /// Check all 2-6 invariants (arity, order, uniform leaf depth).
    pub fn validate(&self) -> Result<(), String> {
        let keys = self.to_sorted_vec();
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("keys not strictly increasing".into());
        }
        self.check(self.root, true).map(|_| ())
    }

    fn check(&self, at: usize, is_root: bool) -> Result<usize, String> {
        match &self.nodes[at] {
            PvwNode::Leaf(ks) => {
                if ks.is_empty() && !is_root {
                    return Err("empty non-root leaf".into());
                }
                if ks.len() > 5 {
                    return Err(format!("leaf with {} keys", ks.len()));
                }
                Ok(0)
            }
            PvwNode::Internal { keys, children } => {
                if keys.is_empty() || keys.len() > 5 {
                    return Err(format!("internal node with {} keys", keys.len()));
                }
                if children.len() != keys.len() + 1 {
                    return Err("child count mismatch".into());
                }
                let mut d = None;
                for &c in children {
                    let dc = self.check(c, false)?;
                    match d {
                        None => d = Some(dc),
                        Some(prev) if prev != dc => return Err("ragged leaves".into()),
                        _ => {}
                    }
                }
                Ok(d.expect("children") + 1)
            }
        }
    }

    fn key_count(&self, at: usize) -> usize {
        match &self.nodes[at] {
            PvwNode::Leaf(ks) => ks.len(),
            PvwNode::Internal { keys, .. } => keys.len(),
        }
    }

    /// Split node `at` (≥ 3 keys) around its middle key; returns
    /// `(left_idx, middle_key, right_idx)`.
    fn split_node(&mut self, at: usize) -> (usize, K, usize) {
        match self.nodes[at].clone() {
            PvwNode::Leaf(ks) => {
                let mid = ks.len() / 2;
                let l = self.alloc(PvwNode::Leaf(ks[..mid].to_vec()));
                let r = self.alloc(PvwNode::Leaf(ks[mid + 1..].to_vec()));
                (l, ks[mid].clone(), r)
            }
            PvwNode::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let l = self.alloc(PvwNode::Internal {
                    keys: keys[..mid].to_vec(),
                    children: children[..=mid].to_vec(),
                });
                let r = self.alloc(PvwNode::Internal {
                    keys: keys[mid + 1..].to_vec(),
                    children: children[mid + 1..].to_vec(),
                });
                (l, keys[mid].clone(), r)
            }
        }
    }

    /// Advance one task by one level; returns the tasks for the next level
    /// and adds the key-move cost to `work`.
    fn step_task(&mut self, task: Task<K>, work: &mut u64) -> Vec<Task<K>> {
        let Task { node, keys } = task;
        *work += keys.len() as u64 + 1;
        if keys.is_empty() {
            return Vec::new();
        }
        match self.nodes[node].clone() {
            PvwNode::Leaf(existing) => {
                let mut merged = existing;
                for k in keys {
                    if let Err(pos) = merged.binary_search(&k) {
                        merged.insert(pos, k);
                    }
                }
                assert!(merged.len() <= 5, "leaf overflow: separation violated");
                self.nodes[node] = PvwNode::Leaf(merged);
                Vec::new()
            }
            PvwNode::Internal {
                keys: nkeys,
                children,
            } => {
                debug_assert!(nkeys.len() <= 2, "wave entered a non-2-3 node");
                // Partition the wave keys by the node's splitters.
                let mut parts: Vec<Vec<K>> = Vec::with_capacity(nkeys.len() + 1);
                let mut rest = keys;
                for s in &nkeys {
                    let (l, g): (Vec<K>, Vec<K>) =
                        rest.into_iter().filter(|k| k != s).partition(|k| k < s);
                    parts.push(l);
                    rest = g;
                }
                parts.push(rest);
                let mut new_keys: Vec<K> = Vec::with_capacity(5);
                let mut new_children: Vec<usize> = Vec::with_capacity(6);
                let mut next = Vec::new();
                for (i, part) in parts.into_iter().enumerate() {
                    if part.is_empty() {
                        new_children.push(children[i]);
                    } else if self.key_count(children[i]) >= 3 {
                        let (l, sep, r) = self.split_node(children[i]);
                        *work += 1;
                        let (pl, pr): (Vec<K>, Vec<K>) = part
                            .into_iter()
                            .filter(|k| *k != sep)
                            .partition(|k| *k < sep);
                        if !pl.is_empty() {
                            next.push(Task { node: l, keys: pl });
                        }
                        new_children.push(l);
                        new_keys.push(sep);
                        if !pr.is_empty() {
                            next.push(Task { node: r, keys: pr });
                        }
                        new_children.push(r);
                    } else {
                        next.push(Task {
                            node: children[i],
                            keys: part,
                        });
                        new_children.push(children[i]);
                    }
                    if i < nkeys.len() {
                        new_keys.push(nkeys[i].clone());
                    }
                }
                debug_assert!(new_keys.len() <= 5);
                self.nodes[node] = PvwNode::Internal {
                    keys: new_keys,
                    children: new_children,
                };
                next
            }
        }
    }

    /// Split the root if needed before a wave enters (the only place the
    /// tree grows).
    fn maybe_split_root(&mut self, work: &mut u64) {
        if self.key_count(self.root) >= 3 {
            let (l, sep, r) = self.split_node(self.root);
            *work += 1;
            self.root = self.alloc(PvwNode::Internal {
                keys: vec![sep],
                children: vec![l, r],
            });
        }
    }
}

/// Insert `m` sorted distinct keys with the **explicit synchronous
/// pipeline**: wave `i` enters at round `2·i`, every wave advances one
/// level per round. Returns the per-run statistics; the tree is updated
/// in place.
pub fn pvw_insert_many<K: Key>(tree: &mut PvwTree<K>, keys: &[K]) -> PvwStats {
    let waves: Vec<Vec<K>> = level_arrays(keys);
    let n_waves = waves.len();
    // Active waves: (wave index, current tasks, entry round).
    let mut active: Vec<(usize, Vec<Task<K>>, u64)> = Vec::new();
    let mut next_wave = 0usize;
    let mut round: u64 = 0;
    let mut work: u64 = 0;
    let mut max_conc = 0usize;

    loop {
        // Admit the next wave every second round.
        if next_wave < n_waves && round == 2 * next_wave as u64 {
            tree.maybe_split_root(&mut work);
            active.push((
                next_wave,
                vec![Task {
                    node: tree.root,
                    keys: waves[next_wave].clone(),
                }],
                round,
            ));
            next_wave += 1;
        }
        if active.is_empty() && next_wave >= n_waves {
            break;
        }
        max_conc = max_conc.max(active.len());

        // Interference proof: wave i is at level round − entry_i; admitted
        // two rounds apart, consecutive active waves are exactly two
        // levels apart — a wave only mutates its own level and (via
        // splits) the level below, which the predecessor left at least
        // two rounds ago.
        for pair in active.windows(2) {
            let lead = round - pair[0].2;
            let trail = round - pair[1].2;
            assert!(
                lead >= trail + 2,
                "pipeline interference: waves at distance {}",
                lead - trail
            );
        }

        // One synchronous round: every active wave advances one level.
        let mut still: Vec<(usize, Vec<Task<K>>, u64)> = Vec::new();
        for (w, tasks, entry) in active {
            let mut next_tasks = Vec::new();
            for t in tasks {
                next_tasks.extend(tree.step_task(t, &mut work));
            }
            if !next_tasks.is_empty() {
                still.push((w, next_tasks, entry));
            }
        }
        active = still;
        round += 1;
    }

    PvwStats {
        rounds: round,
        work,
        waves: n_waves,
        max_concurrent_waves: max_conc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    #[test]
    fn builds_valid_trees() {
        for n in [0usize, 1, 2, 3, 7, 26, 27, 100, 1000] {
            let t = PvwTree::from_sorted(&evens(n));
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(t.to_sorted_vec(), evens(n));
        }
    }

    #[test]
    fn insert_correct() {
        for (n, m) in [(50usize, 20usize), (200, 64), (1000, 100), (0, 30)] {
            let mut t = PvwTree::from_sorted(&evens(n));
            let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
            let stats = pvw_insert_many(&mut t, &newk);
            t.validate().unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
            let mut expect = evens(n);
            expect.extend(&newk);
            expect.sort_unstable();
            assert_eq!(t.to_sorted_vec(), expect, "n={n} m={m}");
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn rounds_are_lg_n_plus_lg_m() {
        // rounds ≈ 2·waves + height: O(lg n + lg m).
        let rounds = |n: usize, m: usize| {
            let mut t = PvwTree::from_sorted(&evens(n));
            let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
            pvw_insert_many(&mut t, &newk).rounds
        };
        let r1 = rounds(1 << 10, 1 << 6);
        let r2 = rounds(1 << 12, 1 << 6);
        let r3 = rounds(1 << 14, 1 << 6);
        // Doubling n adds O(1) rounds (one tree level per two doublings
        // for 2-6 trees built at ~3x fanout).
        assert!(r2 - r1 <= 4, "{r1} {r2}");
        assert!(r3 - r2 <= 4, "{r2} {r3}");
        // And rounds grow with lg m, roughly 2 per wave.
        let rm1 = rounds(1 << 12, 1 << 4);
        let rm2 = rounds(1 << 12, 1 << 8);
        assert!(rm2 > rm1 + 4);
        assert!(rm2 < rm1 + 24);
    }

    #[test]
    fn pipeline_actually_overlaps() {
        let mut t = PvwTree::from_sorted(&evens(1 << 12));
        let newk: Vec<i64> = (0..256).map(|i| 2 * i + 1).collect();
        let stats = pvw_insert_many(&mut t, &newk);
        assert!(
            stats.max_concurrent_waves >= 3,
            "waves should overlap: {}",
            stats.max_concurrent_waves
        );
        // Strictly sequential waves would need ~waves × height rounds.
        let height_bound = 8; // tree of 4096 keys has ~7 levels
        assert!(
            stats.rounds < (stats.waves as u64) * height_bound / 2 + height_bound,
            "rounds {} suggest no pipelining",
            stats.rounds
        );
    }

    #[test]
    fn repeated_bulk_inserts_stay_valid() {
        let mut t = PvwTree::from_sorted(&evens(100));
        for round in 0..5i64 {
            let keys: Vec<i64> = (0..60).map(|i| i * 11 + round * 2 + 1).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            pvw_insert_many(&mut t, &sorted);
            t.validate().unwrap();
        }
    }

    #[test]
    fn agrees_with_futures_version() {
        use crate::two_six::run_insert_many;
        use crate::Mode;
        let n = 500;
        let initial = evens(n);
        let newk: Vec<i64> = (0..120).map(|i| 5 * i + 1).collect();
        let mut newk_sorted = newk.clone();
        newk_sorted.sort_unstable();
        newk_sorted.dedup();
        let mut t = PvwTree::from_sorted(&initial);
        pvw_insert_many(&mut t, &newk_sorted);
        let (root, _) = run_insert_many(&initial, &newk_sorted, Mode::Pipelined);
        assert_eq!(t.to_sorted_vec(), root.get().to_sorted_vec());
    }
}
