//! §5 (conclusions) — the pipelined tree mergesort the paper conjectures
//! about: "We conjecture that a simple mergesort based on the merge in
//! Section 3.1 has expected depth (averaged over all possible input
//! orderings) close to O(lg n), perhaps O(lg n lg lg n). This algorithm
//! has three levels of pipelining."
//!
//! `msort` recursively sorts the two halves of the input (as futures) and
//! merges the resulting trees with the pipelined `merge` — so merges at
//! different levels of the recursion tree overlap, exactly like Cole's
//! mergesort but managed implicitly. Experiment E13 measures the depth
//! growth empirically.

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::merge::merge;
use crate::tree::Tree;
use crate::{Key, Mode};

/// Sort `keys` (distinct, in any order) into a BST by recursive halving
/// and pipelined merging.
pub fn msort<K: Key>(ctx: &Ctx, keys: Vec<K>, out: Promise<Tree<K>>, mode: Mode) {
    ctx.tick(1);
    match keys.len() {
        0 => out.fulfill(ctx, Tree::Leaf),
        1 => {
            let lf = ctx.filled(Tree::Leaf);
            let rf = ctx.filled(Tree::Leaf);
            let k = keys.into_iter().next().expect("len checked");
            out.fulfill(ctx, Tree::node(k, lf, rf));
        }
        n => {
            let mut a = keys;
            let b = a.split_off(n / 2);
            let (pa, fa) = ctx.promise();
            ctx.fork_unit(move |ctx| msort(ctx, a, pa, mode));
            let (pb, fb) = ctx.promise();
            ctx.fork_unit(move |ctx| msort(ctx, b, pb, mode));
            merge(ctx, fa, fb, out, mode);
        }
    }
}

/// Run the mergesort; returns the result root future and cost report.
pub fn run_msort<K: Key>(keys: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let (op, of) = ctx.promise();
        msort(ctx, keys.to_vec(), op, mode);
        of
    })
}

/// Mergesort variant that **rebalances** the merged tree at every level of
/// the recursion (using the §3.1 pipelined rebalancer). Merge outputs can
/// reach height lg a + lg b, and those heights feed the next merge's
/// depth; rebalancing between levels keeps every merge input at the
/// optimal height — an ablation for the E13 conjecture measurement.
pub fn msort_balanced<K: Key>(ctx: &Ctx, keys: Vec<K>, out: Promise<Tree<K>>, mode: Mode) {
    ctx.tick(1);
    match keys.len() {
        0 => out.fulfill(ctx, Tree::Leaf),
        1 => {
            let lf = ctx.filled(Tree::Leaf);
            let rf = ctx.filled(Tree::Leaf);
            let k = keys.into_iter().next().expect("len checked");
            out.fulfill(ctx, Tree::node(k, lf, rf));
        }
        n => {
            let mut a = keys;
            let b = a.split_off(n / 2);
            let (pa, fa) = ctx.promise();
            ctx.fork_unit(move |ctx| msort_balanced(ctx, a, pa, mode));
            let (pb, fb) = ctx.promise();
            ctx.fork_unit(move |ctx| msort_balanced(ctx, b, pb, mode));
            let (mp, mf) = ctx.promise();
            merge(ctx, fa, fb, mp, mode);
            crate::rebalance::rebalance(ctx, mf, out, mode);
        }
    }
}

/// Run the rebalancing mergesort.
pub fn run_msort_balanced<K: Key>(keys: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let (op, of) = ctx.promise();
        msort_balanced(ctx, keys.to_vec(), op, mode);
        of
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n as i64).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn sorts_correctly() {
        for n in [0usize, 1, 2, 5, 64, 257] {
            let keys = shuffled(n, n as u64);
            let (root, _) = run_msort(&keys, Mode::Pipelined);
            let t = root.get();
            assert!(t.is_search_tree());
            assert_eq!(t.to_sorted_vec(), (0..n as i64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pipelined_shallower_than_strict() {
        let keys = shuffled(512, 11);
        let (_, cp) = run_msort(&keys, Mode::Pipelined);
        let (_, cs) = run_msort(&keys, Mode::Strict);
        assert!(
            cs.depth > cp.depth,
            "pipelining should reduce mergesort depth: {} vs {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn depth_grows_slowly() {
        // The conjecture: close to O(lg n). At minimum, doubling n must add
        // far less than a multiplicative factor.
        let d = |n: usize| run_msort(&shuffled(n, 3), Mode::Pipelined).1.depth as f64;
        let (d1, d2) = (d(512), d(2048));
        assert!(
            d2 / d1 < 2.0,
            "depth should be strongly sublinear: {d1} -> {d2}"
        );
    }

    #[test]
    fn balanced_variant_sorts_and_is_balanced() {
        for n in [0usize, 1, 2, 33, 200] {
            let keys = shuffled(n, 5);
            let (root, c) = run_msort_balanced(&keys, Mode::Pipelined);
            let t = root.get();
            assert!(t.is_search_tree());
            assert_eq!(t.to_sorted_vec(), (0..n as i64).collect::<Vec<_>>());
            if n > 0 {
                let perfect = (n as f64).log2().floor() as usize + 1;
                assert!(t.height() <= perfect, "height {} n {}", t.height(), n);
            }
            assert!(c.is_linear());
        }
    }

    #[test]
    fn balanced_variant_produces_shallower_result_tree() {
        let keys = shuffled(1 << 9, 13);
        let (plain, _) = run_msort(&keys, Mode::Pipelined);
        let (bal, _) = run_msort_balanced(&keys, Mode::Pipelined);
        assert!(bal.get().height() <= plain.get().height());
        assert_eq!(bal.get().height(), 10);
    }

    #[test]
    fn work_n_log_n() {
        let w = |n: usize| run_msort(&shuffled(n, 3), Mode::Pipelined).1.work as f64;
        let ratio = w(2048) / w(512);
        // 4x n with lg factor 11/9 ⇒ ≈ 4.9; allow generous range.
        assert!((3.5..7.0).contains(&ratio), "work ratio {ratio}");
    }
}
