//! §5 (conclusions) — the pipelined tree mergesort the paper conjectures
//! about (three levels of pipelining; expected depth close to O(lg n)).
//!
//! The algorithm itself is written once, engine-generically, in
//! [`pf_algs::mergesort`]; this module instantiates it on the simulator
//! and provides the [`run_msort`] / [`run_msort_balanced`] entry points
//! plus the cost tests behind the E13 conjecture measurement. The
//! wall-clock instantiation on the real runtime lives in
//! `pf_rt_algs::drivers`.

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::tree::Tree;
use crate::{Key, Mode};

/// Sort `keys` (distinct, in any order) into a BST by recursive halving
/// and pipelined merging. See [`pf_algs::mergesort::msort`].
pub fn msort<K: Key>(ctx: &Ctx, keys: Vec<K>, out: Promise<Tree<K>>, mode: Mode) {
    pf_algs::mergesort::msort(ctx, keys, out, mode);
}

/// Mergesort variant that rebalances the merged tree at every level of the
/// recursion. See [`pf_algs::mergesort::msort_balanced`].
pub fn msort_balanced<K: Key>(ctx: &Ctx, keys: Vec<K>, out: Promise<Tree<K>>, mode: Mode) {
    pf_algs::mergesort::msort_balanced(ctx, keys, out, mode);
}

/// Run the mergesort; returns the result root future and cost report.
pub fn run_msort<K: Key>(keys: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let (op, of) = ctx.promise();
        msort(ctx, keys.to_vec(), op, mode);
        of
    })
}

/// Run the rebalancing mergesort.
pub fn run_msort_balanced<K: Key>(keys: &[K], mode: Mode) -> (Fut<Tree<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let (op, of) = ctx.promise();
        msort_balanced(ctx, keys.to_vec(), op, mode);
        of
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n as i64).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn sorts_correctly() {
        for n in [0usize, 1, 2, 5, 64, 257] {
            let keys = shuffled(n, n as u64);
            let (root, _) = run_msort(&keys, Mode::Pipelined);
            let t = root.get();
            assert!(t.is_search_tree());
            assert_eq!(t.to_sorted_vec(), (0..n as i64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pipelined_shallower_than_strict() {
        let keys = shuffled(512, 11);
        let (_, cp) = run_msort(&keys, Mode::Pipelined);
        let (_, cs) = run_msort(&keys, Mode::Strict);
        assert!(
            cs.depth > cp.depth,
            "pipelining should reduce mergesort depth: {} vs {}",
            cs.depth,
            cp.depth
        );
    }

    #[test]
    fn depth_grows_slowly() {
        // The conjecture: close to O(lg n). At minimum, doubling n must add
        // far less than a multiplicative factor.
        let d = |n: usize| run_msort(&shuffled(n, 3), Mode::Pipelined).1.depth as f64;
        let (d1, d2) = (d(512), d(2048));
        assert!(
            d2 / d1 < 2.0,
            "depth should be strongly sublinear: {d1} -> {d2}"
        );
    }

    #[test]
    fn balanced_variant_sorts_and_is_balanced() {
        for n in [0usize, 1, 2, 33, 200] {
            let keys = shuffled(n, 5);
            let (root, c) = run_msort_balanced(&keys, Mode::Pipelined);
            let t = root.get();
            assert!(t.is_search_tree());
            assert_eq!(t.to_sorted_vec(), (0..n as i64).collect::<Vec<_>>());
            if n > 0 {
                let perfect = (n as f64).log2().floor() as usize + 1;
                assert!(t.height() <= perfect, "height {} n {}", t.height(), n);
            }
            assert!(c.is_linear());
        }
    }

    #[test]
    fn balanced_variant_produces_shallower_result_tree() {
        let keys = shuffled(1 << 9, 13);
        let (plain, _) = run_msort(&keys, Mode::Pipelined);
        let (bal, _) = run_msort_balanced(&keys, Mode::Pipelined);
        assert!(bal.get().height() <= plain.get().height());
        assert_eq!(bal.get().height(), 10);
    }

    #[test]
    fn work_n_log_n() {
        let w = |n: usize| run_msort(&shuffled(n, 3), Mode::Pipelined).1.work as f64;
        let ratio = w(2048) / w(512);
        // 4x n with lg factor 11/9 ⇒ ≈ 4.9; allow generous range.
        assert!((3.5..7.0).contains(&ratio), "work ratio {ratio}");
    }
}
