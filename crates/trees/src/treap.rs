//! §3.2–3.3 — pipelined treap **union** and **difference** (Figures 4
//! and 7; Theorems 3.5, 3.7, 3.11; Corollaries 3.6, 3.12).
//!
//! The algorithms are written once, engine-generically, in
//! [`pf_algs::treap`]; this module instantiates them on the simulator,
//! keeps the historical `pf_trees::treap` signatures, and adds the
//! sim-only input builders and timestamp inspectors plus the cost tests
//! for the paper's expected-depth theorems.
//!
//! Treaps (Seidel–Aragon randomized search trees) keep keys in symmetric
//! order and independently random priorities in max-heap order, giving
//! expected Θ(lg n) height. The paper shows that the *obvious sequential
//! code* for union and difference, annotated with futures, pipelines to
//! expected O(lg n + lg m) depth — and that the pipeline here is
//! **dynamic**: how soon `splitm` delivers each side of a split depends on
//! the data, which is what makes these algorithms essentially impossible to
//! pipeline by hand on a synchronous PRAM.
//!
//! The priority comparison breaks ties by key, so the result shape is a
//! total function of the (key, priority) entries; the sequential treap in
//! [`crate::seq`] uses the same rule, which the cross-backend tests rely
//! on.

use pf_core::{CostReport, Ctx, Fut, Promise, Sim};

use crate::seq::{Entry, PlainTreap};
use crate::{Key, Mode};

pub use pf_algs::treap::{TreapFut, TreapWr};

/// A treap whose children are future cells, on the simulator engine.
pub type Treap<K> = pf_algs::treap::Treap<Ctx, K>;

/// An interior node of a [`Treap`].
pub type TreapNode<K> = pf_algs::treap::TreapNode<Ctx, K>;

/// Simulator-only extensions of [`Treap`]: free input construction and
/// post-run timestamp inspection. Bring this trait into scope to call
/// them as `Treap::preload_entries(..)` etc.
pub trait SimTreap<K: Key>: Sized {
    /// Convert a sequential treap into a simulator treap using free
    /// pre-written cells (input construction, zero cost).
    fn preload_plain(ctx: &Ctx, t: &Option<Box<PlainTreap<K>>>) -> Self;

    /// Build directly from entries (builds a [`PlainTreap`] first).
    fn preload_entries(ctx: &Ctx, entries: &[Entry<K>]) -> Self;

    /// Post-run inspection: largest node-cell write time in the treap
    /// hanging off `root` (the result's full materialization time).
    fn completion_time(root: &Fut<Self>) -> u64;

    /// Post-run inspection: visit every cell with
    /// `(write_time, depth_in_tree, subtree_height)`; returns the height of
    /// the subtree in `cell`. Feeds the τ/ρ-value checkers in
    /// [`crate::analysis`].
    fn walk_cells(cell: &Fut<Self>, depth: usize, f: &mut impl FnMut(u64, usize, usize)) -> usize;
}

impl<K: Key> SimTreap<K> for Treap<K> {
    fn preload_plain(ctx: &Ctx, t: &Option<Box<PlainTreap<K>>>) -> Treap<K> {
        Treap::from_plain(ctx, t)
    }

    fn preload_entries(ctx: &Ctx, entries: &[Entry<K>]) -> Treap<K> {
        Treap::from_entries(ctx, entries)
    }

    fn completion_time(root: &Fut<Treap<K>>) -> u64 {
        let mut t = root.time();
        root.with(|tr| {
            if let Treap::Node(n) = tr {
                t = t
                    .max(Self::completion_time(&n.left))
                    .max(Self::completion_time(&n.right));
            }
        });
        t
    }

    fn walk_cells(
        cell: &Fut<Treap<K>>,
        depth: usize,
        f: &mut impl FnMut(u64, usize, usize),
    ) -> usize {
        let t = cell.time();
        let h = cell.with(|tr| match tr {
            Treap::Leaf => 0,
            Treap::Node(n) => {
                let hl = Self::walk_cells(&n.left, depth + 1, f);
                let hr = Self::walk_cells(&n.right, depth + 1, f);
                1 + hl.max(hr)
            }
        });
        f(t, depth, h);
        h
    }
}

/// `splitm(s, t)` (Figure 4): partition `t` by the splitter `s` into keys
/// `< s` (`lout`) and keys `> s` (`rout`), **excluding** `s` itself;
/// `fout` reports whether `s` was present. See [`pf_algs::treap::splitm`].
pub fn splitm<K: Key>(
    ctx: &Ctx,
    s: &K,
    t: Treap<K>,
    lout: Promise<Treap<K>>,
    rout: Promise<Treap<K>>,
    fout: Promise<bool>,
) {
    pf_algs::treap::splitm(ctx, s.clone(), t, lout, rout, fout);
}

/// `join(l, r)` (Figure 7): concatenate two treaps where every key of `l`
/// is smaller than every key of `r`. See [`pf_algs::treap::join`].
pub fn join<K: Key>(ctx: &Ctx, l: Treap<K>, r: Treap<K>, out: Promise<Treap<K>>) {
    pf_algs::treap::join(ctx, l, r, out);
}

/// `union(a, b)` (Figure 4): the keys of both treaps, duplicates removed.
/// See [`pf_algs::treap::union`].
pub fn union<K: Key>(
    ctx: &Ctx,
    a: Fut<Treap<K>>,
    b: Fut<Treap<K>>,
    out: Promise<Treap<K>>,
    mode: Mode,
) {
    pf_algs::treap::union(ctx, a, b, out, mode);
}

/// `diff(a, b)` (Figure 7): the keys of `a` that are not in `b`.
/// See [`pf_algs::treap::diff`].
pub fn diff<K: Key>(
    ctx: &Ctx,
    a: Fut<Treap<K>>,
    b: Fut<Treap<K>>,
    out: Promise<Treap<K>>,
    mode: Mode,
) {
    pf_algs::treap::diff(ctx, a, b, out, mode);
}

/// `intersect(a, b)`: the keys present in both treaps, with `a`'s
/// priorities. See [`pf_algs::treap::intersect`].
pub fn intersect<K: Key>(
    ctx: &Ctx,
    a: Fut<Treap<K>>,
    b: Fut<Treap<K>>,
    out: Promise<Treap<K>>,
    mode: Mode,
) {
    pf_algs::treap::intersect(ctx, a, b, out, mode);
}

/// Single-key search (§3.2: treaps "provide for search, insertion, and
/// deletion of keys"). A plain root-to-leaf walk touching each child on
/// the way down: O(h) depth and work.
pub fn contains<K: Key>(ctx: &Ctx, t: Fut<Treap<K>>, key: &K) -> bool {
    let (p, f) = ctx.promise();
    pf_algs::treap::contains(ctx, t, key.clone(), p);
    f.get()
}

/// Single-key insertion, expressed as a singleton union — exactly the
/// paper's reduction of dictionary operations to the bulk primitives.
pub fn insert_one<K: Key>(
    ctx: &Ctx,
    t: Fut<Treap<K>>,
    key: K,
    prio: u64,
    mode: Mode,
) -> Fut<Treap<K>> {
    pf_algs::treap::insert_one(ctx, t, key, prio, mode)
}

/// Single-key deletion via a singleton difference.
pub fn delete_one<K: Key>(ctx: &Ctx, t: Fut<Treap<K>>, key: K, mode: Mode) -> Fut<Treap<K>> {
    pf_algs::treap::delete_one(ctx, t, key, mode)
}

/// Bulk insert (§3.2: union "can be used to insert a set of keys into a
/// treap"). See [`pf_algs::treap::insert_keys`].
pub fn insert_keys<K: Key>(
    ctx: &Ctx,
    t: Fut<Treap<K>>,
    batch: &[Entry<K>],
    mode: Mode,
) -> Fut<Treap<K>> {
    pf_algs::treap::insert_keys(ctx, t, batch, mode)
}

/// Bulk delete (§3.3: difference "can be used to delete a set of keys").
/// The priorities in `batch` are irrelevant (only keys are matched).
pub fn delete_keys<K: Key>(
    ctx: &Ctx,
    t: Fut<Treap<K>>,
    batch: &[Entry<K>],
    mode: Mode,
) -> Fut<Treap<K>> {
    pf_algs::treap::delete_keys(ctx, t, batch, mode)
}

/// Run `union` on treaps built from the given entries; returns the result
/// root future and the cost report.
pub fn run_union<K: Key>(
    a: &[Entry<K>],
    b: &[Entry<K>],
    mode: Mode,
) -> (Fut<Treap<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let ta = Treap::preload_entries(ctx, a);
        let tb = Treap::preload_entries(ctx, b);
        let fa = ctx.preload(ta);
        let fb = ctx.preload(tb);
        let (op, of) = ctx.promise();
        union(ctx, fa, fb, op, mode);
        of
    })
}

/// Run `diff` (a minus b) on treaps built from the given entries.
pub fn run_diff<K: Key>(a: &[Entry<K>], b: &[Entry<K>], mode: Mode) -> (Fut<Treap<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let ta = Treap::preload_entries(ctx, a);
        let tb = Treap::preload_entries(ctx, b);
        let fa = ctx.preload(ta);
        let fb = ctx.preload(tb);
        let (op, of) = ctx.promise();
        diff(ctx, fa, fb, op, mode);
        of
    })
}

/// Run `intersect` on treaps built from the given entries.
pub fn run_intersect<K: Key>(
    a: &[Entry<K>],
    b: &[Entry<K>],
    mode: Mode,
) -> (Fut<Treap<K>>, CostReport) {
    Sim::new().run(|ctx| {
        let ta = Treap::preload_entries(ctx, a);
        let tb = Treap::preload_entries(ctx, b);
        let fa = ctx.preload(ta);
        let fb = ctx.preload(tb);
        let (op, of) = ctx.promise();
        intersect(ctx, fa, fb, op, mode);
        of
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::splitmix64;

    fn entries(keys: impl IntoIterator<Item = i64>) -> Vec<Entry<i64>> {
        keys.into_iter()
            .map(|k| (k, splitmix64(k as u64 ^ 0xABCD_EF01)))
            .collect()
    }

    fn sorted_union(a: &[Entry<i64>], b: &[Entry<i64>]) -> Vec<i64> {
        let mut v: Vec<i64> = a.iter().chain(b.iter()).map(|e| e.0).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn sorted_diff(a: &[Entry<i64>], b: &[Entry<i64>]) -> Vec<i64> {
        let bs: std::collections::BTreeSet<i64> = b.iter().map(|e| e.0).collect();
        a.iter().map(|e| e.0).filter(|k| !bs.contains(k)).collect()
    }

    #[test]
    fn union_correct_disjoint() {
        let a = entries((0..100).map(|i| 2 * i));
        let b = entries((0..50).map(|i| 2 * i + 1));
        let (root, _) = run_union(&a, &b, Mode::Pipelined);
        let t = root.get();
        assert!(t.check_invariants());
        assert_eq!(t.to_sorted_vec(), sorted_union(&a, &b));
    }

    #[test]
    fn union_correct_overlapping() {
        let a = entries(0..80);
        let b = entries(40..120);
        let (root, _) = run_union(&a, &b, Mode::Pipelined);
        let t = root.get();
        assert!(t.check_invariants());
        assert_eq!(t.to_sorted_vec(), sorted_union(&a, &b));
        assert_eq!(t.size(), 120);
    }

    #[test]
    fn union_matches_sequential_shape() {
        // Same tie-break rule ⇒ same treap shape as the sequential oracle.
        let a = entries((0..200).map(|i| 3 * i));
        let b = entries((0..150).map(|i| 2 * i));
        let (root, _) = run_union(&a, &b, Mode::Pipelined);
        let pa = PlainTreap::from_entries(&a);
        let pb = PlainTreap::from_entries(&b);
        let pu = PlainTreap::union(pa, pb);
        assert_eq!(root.get().height(), PlainTreap::height(&pu));
        assert_eq!(root.get().to_sorted_vec(), PlainTreap::to_sorted_vec(&pu));
    }

    #[test]
    fn union_edge_cases() {
        let e: Vec<Entry<i64>> = vec![];
        let one = entries([7]);
        for (a, b) in [(&e, &e), (&one, &e), (&e, &one), (&one, &one)] {
            let (root, _) = run_union(a, b, Mode::Pipelined);
            assert_eq!(root.get().to_sorted_vec(), sorted_union(a, b));
        }
    }

    #[test]
    fn union_strict_same_result_more_depth() {
        let a = entries(0..512);
        let b = entries((0..512).map(|i| i + 256));
        let (r1, c1) = run_union(&a, &b, Mode::Pipelined);
        let (r2, c2) = run_union(&a, &b, Mode::Strict);
        assert_eq!(r1.get().to_sorted_vec(), r2.get().to_sorted_vec());
        assert_eq!(c1.work, c2.work);
        assert!(
            c2.depth > c1.depth + c1.depth / 2,
            "strict union should be noticeably deeper: {} vs {}",
            c2.depth,
            c1.depth
        );
    }

    #[test]
    fn union_depth_logarithmic() {
        let d = |n: i64| {
            let a = entries((0..n).map(|i| 2 * i));
            let b = entries((0..n).map(|i| 2 * i + 1));
            run_union(&a, &b, Mode::Pipelined).1.depth
        };
        let (d1, d2, d3) = (d(1 << 10), d(1 << 11), d(1 << 12));
        let g1 = d2 as i64 - d1 as i64;
        let g2 = d3 as i64 - d2 as i64;
        // Expected O(lg n + lg m): roughly constant increment per doubling.
        assert!(g1.abs() < d1 as i64 / 2, "increment {g1} vs base {d1}");
        assert!(g2.abs() < d1 as i64 / 2, "increment {g2} vs base {d1}");
    }

    #[test]
    fn union_is_linear_code() {
        let a = entries(0..300);
        let b = entries(150..450);
        let (_, c) = run_union(&a, &b, Mode::Pipelined);
        assert!(c.is_linear());
    }

    #[test]
    fn diff_correct() {
        let a = entries(0..100);
        let b = entries((0..100).filter(|k| k % 3 == 0));
        let (root, _) = run_diff(&a, &b, Mode::Pipelined);
        let t = root.get();
        assert!(t.check_invariants());
        assert_eq!(t.to_sorted_vec(), sorted_diff(&a, &b));
    }

    #[test]
    fn diff_disjoint_is_identity() {
        let a = entries((0..64).map(|i| 2 * i));
        let b = entries((0..64).map(|i| 2 * i + 1));
        let (root, _) = run_diff(&a, &b, Mode::Pipelined);
        assert_eq!(root.get().to_sorted_vec(), sorted_diff(&a, &b));
        assert_eq!(root.get().size(), 64);
    }

    #[test]
    fn diff_total_overlap_empties() {
        let a = entries(0..64);
        let (root, _) = run_diff(&a, &a, Mode::Pipelined);
        assert!(root.get().is_leaf());
    }

    #[test]
    fn diff_edge_cases() {
        let e: Vec<Entry<i64>> = vec![];
        let one = entries([7]);
        for (a, b) in [(&e, &e), (&one, &e), (&e, &one), (&one, &one)] {
            let (root, _) = run_diff(a, b, Mode::Pipelined);
            assert_eq!(root.get().to_sorted_vec(), sorted_diff(a, b));
        }
    }

    #[test]
    fn diff_strict_same_result() {
        let a = entries(0..256);
        let b = entries((0..256).filter(|k| k % 2 == 0));
        let (r1, c1) = run_diff(&a, &b, Mode::Pipelined);
        let (r2, c2) = run_diff(&a, &b, Mode::Strict);
        assert_eq!(r1.get().to_sorted_vec(), r2.get().to_sorted_vec());
        assert_eq!(c1.work, c2.work);
        assert!(c1.depth <= c2.depth);
    }

    #[test]
    fn diff_matches_sequential_oracle_shape() {
        let a = entries(0..300);
        let b = entries((0..300).filter(|k| k % 5 == 0));
        let (root, _) = run_diff(&a, &b, Mode::Pipelined);
        let pd = PlainTreap::diff(PlainTreap::from_entries(&a), PlainTreap::from_entries(&b));
        assert_eq!(root.get().to_sorted_vec(), PlainTreap::to_sorted_vec(&pd));
        assert_eq!(root.get().height(), PlainTreap::height(&pd));
    }

    #[test]
    fn diff_is_linear_code() {
        let a = entries(0..200);
        let b = entries((0..200).filter(|k| k % 4 == 0));
        let (_, c) = run_diff(&a, &b, Mode::Pipelined);
        assert!(c.is_linear());
    }

    #[test]
    fn splitm_excludes_splitter() {
        let (out, _) = Sim::new().run(|ctx| {
            let t = Treap::preload_entries(ctx, &entries(0..50));
            let (lp, lf) = ctx.promise();
            let (rp, rf) = ctx.promise();
            let (fp, ff) = ctx.promise();
            splitm(ctx, &25, t, lp, rp, fp);
            (lf, rf, ff)
        });
        assert!(out.2.get());
        let l = out.0.get().to_sorted_vec();
        let r = out.1.get().to_sorted_vec();
        assert_eq!(l, (0..25).collect::<Vec<_>>());
        assert_eq!(r, (26..50).collect::<Vec<_>>());
        assert!(out.0.get().check_invariants());
        assert!(out.1.get().check_invariants());
    }

    #[test]
    fn splitm_absent_splitter() {
        let (out, _) = Sim::new().run(|ctx| {
            let t = Treap::preload_entries(ctx, &entries((0..50).map(|i| 2 * i)));
            let (lp, lf) = ctx.promise();
            let (rp, rf) = ctx.promise();
            let (fp, ff) = ctx.promise();
            splitm(ctx, &31, t, lp, rp, fp);
            (lf, rf, ff)
        });
        assert!(!out.2.get());
        assert_eq!(out.0.get().size() + out.1.get().size(), 50);
    }

    #[test]
    fn join_concatenates() {
        let (root, _) = Sim::new().run(|ctx| {
            let l = Treap::preload_entries(ctx, &entries(0..40));
            let r = Treap::preload_entries(ctx, &entries(100..140));
            let (jp, jf) = ctx.promise();
            join(ctx, l, r, jp);
            jf
        });
        let t = root.get();
        assert!(t.check_invariants());
        assert_eq!(t.size(), 80);
        let keys = t.to_sorted_vec();
        assert_eq!(keys[..40], (0..40).collect::<Vec<_>>()[..]);
        assert_eq!(keys[40..], (100..140).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn intersect_correct() {
        let a = entries(0..120);
        let b = entries((0..240).filter(|k| k % 3 == 0));
        let (root, c) = run_intersect(&a, &b, Mode::Pipelined);
        let t = root.get();
        assert!(t.check_invariants());
        assert_eq!(
            t.to_sorted_vec(),
            (0..120).filter(|k| k % 3 == 0).collect::<Vec<_>>()
        );
        assert!(c.is_linear());
    }

    #[test]
    fn intersect_edge_cases() {
        let e: Vec<Entry<i64>> = vec![];
        let one = entries([7]);
        let other = entries([9]);
        for (a, b, expect) in [
            (&e, &e, vec![]),
            (&one, &e, vec![]),
            (&e, &one, vec![]),
            (&one, &one, vec![7]),
            (&one, &other, vec![]),
        ] {
            let (root, _) = run_intersect(a, b, Mode::Pipelined);
            assert_eq!(root.get().to_sorted_vec(), expect);
        }
    }

    #[test]
    fn intersect_is_diff_of_diff() {
        // a ∩ b == a \ (a \ b): check against the other two set operations.
        let a = entries((0..200).map(|i| 3 * i));
        let b = entries((0..200).map(|i| 2 * i));
        let (i1, _) = run_intersect(&a, &b, Mode::Pipelined);
        let (d1, _) = run_diff(&a, &b, Mode::Pipelined);
        let d1e: Vec<Entry<i64>> = entries(d1.get().to_sorted_vec());
        let (d2, _) = run_diff(&a, &d1e, Mode::Pipelined);
        assert_eq!(i1.get().to_sorted_vec(), d2.get().to_sorted_vec());
    }

    #[test]
    fn intersect_strict_same_result() {
        let a = entries(0..150);
        let b = entries(75..225);
        let (r1, c1) = run_intersect(&a, &b, Mode::Pipelined);
        let (r2, c2) = run_intersect(&a, &b, Mode::Strict);
        assert_eq!(r1.get().to_sorted_vec(), r2.get().to_sorted_vec());
        assert_eq!(c1.work, c2.work);
        assert!(c1.depth <= c2.depth);
    }

    #[test]
    fn single_key_dictionary_ops() {
        let (result, _) = Sim::new().run(|ctx| {
            let t = Treap::preload_entries(ctx, &entries((0..50).map(|i| 2 * i)));
            let ft = ctx.preload(t);
            assert!(contains(ctx, ft.clone(), &48));
            // (contains is a read-only probe; re-touching for the update
            // chain below makes this test intentionally non-linear, which
            // is fine — linearity is asserted on the algorithms, not on
            // ad-hoc client code.)
            let t1 = insert_one(ctx, ft, 7, 12345, Mode::Pipelined);
            let t2 = insert_one(ctx, t1, 9, 999, Mode::Pipelined);
            let t3 = delete_one(ctx, t2, 48, Mode::Pipelined);
            let missing = !contains(ctx, t3.clone(), &48);
            let present = contains(ctx, t3.clone(), &9);
            (t3, missing, present)
        });
        let (t3, missing, present) = result;
        assert!(missing && present);
        let keys = t3.get().to_sorted_vec();
        assert!(keys.contains(&7) && keys.contains(&9) && !keys.contains(&48));
        assert!(t3.get().check_invariants());
        assert_eq!(keys.len(), 51);
    }

    #[test]
    fn contains_on_empty_and_absent() {
        let (r, _) = Sim::new().run(|ctx| {
            let e = ctx.preload(Treap::<i64>::Leaf);
            let empty_miss = !contains(ctx, e, &5);
            let t = Treap::preload_entries(ctx, &entries([1, 3, 5]));
            let ft = ctx.preload(t);
            let absent = !contains(ctx, ft, &4);
            empty_miss && absent
        });
        assert!(r);
    }

    #[test]
    fn bulk_insert_delete_pipeline() {
        // A chain of batched updates, all pipelined within ONE simulation:
        // each batch consumes the previous batch's root future.
        let (root, c) = Sim::new().run(|ctx| {
            let t = Treap::preload_entries(ctx, &entries(0..100));
            let ft = ctx.preload(t);
            let t1 = insert_keys(ctx, ft, &entries(100..180), Mode::Pipelined);
            let t2 = delete_keys(
                ctx,
                t1,
                &entries((0..180).filter(|k| k % 3 == 0)),
                Mode::Pipelined,
            );
            insert_keys(ctx, t2, &entries(200..240), Mode::Pipelined)
        });
        let t = root.get();
        assert!(t.check_invariants());
        let expect: Vec<i64> = (0..180).filter(|k| k % 3 != 0).chain(200..240).collect();
        assert_eq!(t.to_sorted_vec(), expect);
        assert!(c.is_linear());
    }

    #[test]
    fn chained_batches_pipeline_across_operations() {
        // The second batch may start before the first completes: its root
        // must be written well before the first operation's deepest write.
        let ((r1, r2), _) = Sim::new().run(|ctx| {
            let t = Treap::preload_entries(ctx, &entries(0..2000));
            let ft = ctx.preload(t);
            let t1 = insert_keys(ctx, ft, &entries(2000..3000), Mode::Pipelined);
            let t2 = insert_keys(ctx, t1.clone(), &entries(3000..4000), Mode::Pipelined);
            (t1, t2)
        });
        let first_done = Treap::completion_time(&r1);
        assert!(
            r2.time() < first_done,
            "op 2's root ({}) should beat op 1's completion ({first_done})",
            r2.time()
        );
        assert!(r2.get().check_invariants());
    }

    #[test]
    fn join_with_empty_sides() {
        let (roots, _) = Sim::new().run(|ctx| {
            let t = Treap::preload_entries(ctx, &entries(0..10));
            let (p1, f1) = ctx.promise();
            join(ctx, Treap::Leaf, t.clone(), p1);
            let (p2, f2) = ctx.promise();
            join(ctx, t, Treap::Leaf, p2);
            let (p3, f3) = ctx.promise();
            join(ctx, Treap::<i64>::Leaf, Treap::Leaf, p3);
            (f1, f2, f3)
        });
        assert_eq!(roots.0.get().size(), 10);
        assert_eq!(roots.1.get().size(), 10);
        assert!(roots.2.get().is_leaf());
    }
}
