//! # pf-trees — the pipelined algorithms of *Pipelining with Futures*
//!
//! This crate implements, on top of the [`pf_core`] cost model, every
//! algorithm analyzed in §3 of Blelloch & Reid-Miller plus the two
//! calibration examples of §1 and the mergesort conjectured about in the
//! conclusions:
//!
//! | module | paper artifact | bound |
//! |---|---|---|
//! | [`merge`] | §3.1, Thm 3.1 | merge of two balanced BSTs in Θ(lg n + lg m) depth, O(m lg(n/m)) work |
//! | [`rebalance`] | §3.1 (end) | rebalance a merged tree in O(lg n + lg m) depth, O(n + m) work |
//! | [`treap`] | §3.2–3.3, Thms 3.5–3.11 | treap union / difference in expected O(lg n + lg m) depth |
//! | [`two_six`] | §3.4, Thm 3.13 | insert m sorted keys into a 2-6 tree in O(lg n + lg m) depth, O(m lg n) work |
//! | [`quicksort`] | Fig. 2 | Halstead's futures quicksort — pipelining does *not* beat Θ(n) depth |
//! | [`pipeline`] | Fig. 1 | producer/consumer list pipeline |
//! | [`mergesort`] | §5 (conclusions) | tree mergesort with three levels of pipelining |
//! | [`cole`] | §1/§5 baseline (Cole '88) | hand-pipelined cascading mergesort: 3·lg n synchronous stages |
//! | [`pvw`] | §1/§3.4 baseline (PVW) | hand-scheduled synchronous wave pipeline for 2-6 bulk insert, ≈ 2 lg m + lg n rounds |
//!
//! Every pipelined algorithm also has a **strict** (non-pipelined) mode —
//! the same code run under [`pf_core::Ctx::call_strict`] — so one
//! implementation yields both sides of each paper comparison, and a plain
//! **sequential** reference used as a correctness oracle and a work
//! baseline ([`seq`]).
//!
//! Since the backend refactor the §3 algorithms are written **once**, in
//! [`pf_algs`], generic over the [`pf_backend::PipeBackend`] engine trait.
//! This crate instantiates them at `B = `[`pf_core::Ctx`] (the virtual-time
//! simulator) and layers the sim-only machinery on top: preloaded input
//! builders, cost-report runners (`run_*`), completion-time and cell-walk
//! inspection, and the measurement suites in [`analysis`]. The same generic
//! code runs on the real scheduler via `pf-rt-algs` and on the sequential
//! oracle via `pf_backend::Seq`. The conclusions' [`mergesort`] and the
//! two hand-pipelined baselines ([`cole`], [`pvw`]) likewise live in
//! [`pf_algs`] — mergesort generic over the backend, the baselines generic
//! over the round-barrier executor (`pf_backend::RoundExec`) — with this
//! crate re-exporting them and keeping the cost-model tests.
//!
//! The tree types ([`tree::Tree`], [`treap::Treap`], [`two_six::TsTree`])
//! have *futures as child pointers*: a node can be handed to a consumer
//! while its subtrees are still being computed — this is the entire
//! mechanism by which the runtime pipelines the algorithms without any
//! explicit pipeline management in the algorithm code.
//!
//! ```
//! use pf_trees::treap::run_union;
//! use pf_trees::workloads::union_entries;
//! use pf_trees::Mode;
//!
//! let (a, b) = union_entries(1 << 10, 1 << 10, 7);
//! let (root, pipelined) = run_union(&a, &b, Mode::Pipelined);
//! let (_, strict) = run_union(&a, &b, Mode::Strict);
//!
//! assert!(root.get().check_invariants());
//! assert_eq!(pipelined.work, strict.work);       // same computation
//! assert!(2 * pipelined.depth < strict.depth);   // implicit pipelining
//! assert!(pipelined.is_linear());                // §4-ready
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cole;
pub mod merge;
pub mod mergesort;
pub mod pipeline;
pub mod pvw;
pub mod quicksort;
pub mod rebalance;
pub mod seq;
pub mod treap;
pub mod tree;
pub mod two_six;
pub mod workloads;

pub use pf_algs::{Key, Mode};
