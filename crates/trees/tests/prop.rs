//! Property-based tests of the tree algorithms beyond oracle equality
//! (those live in the workspace integration tests): structural depth
//! bounds, timestamp lemma checks, and inverse-operation round trips on
//! random inputs.

use pf_core::Sim;
use pf_trees::analysis::{collect, min_tau_ks};
use pf_trees::merge::run_merge;
use pf_trees::seq::{splitmix64, Entry, PlainTreap};
use pf_trees::treap::{join, run_union, splitm, SimTreap, Treap};
use pf_trees::tree::{SimTree, Tree};
use pf_trees::two_six::level_arrays;
use pf_trees::Mode;
use proptest::prelude::*;

fn entries(keys: impl IntoIterator<Item = i64>) -> Vec<Entry<i64>> {
    keys.into_iter()
        .map(|k| (k, splitmix64(k as u64 ^ 0x1234)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Thm 3.1 depth bound with an explicit constant: pipelined merge
    /// depth ≤ c·(lg n + lg m) + c for the fitted c = 16 (the measured
    /// slope is 9; 16 leaves randomization slack).
    #[test]
    fn merge_depth_bound_explicit(lg_n in 4u32..11, lg_m in 2u32..11) {
        let n = 1usize << lg_n;
        let m = 1usize << lg_m;
        let a: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
        let b: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
        let (_, c) = run_merge(&a, &b, Mode::Pipelined);
        let bound = 16 * (lg_n as u64 + lg_m as u64) + 16;
        prop_assert!(c.depth <= bound, "depth {} > {bound}", c.depth);
    }

    /// The union result's completion time equals the computation depth
    /// (the last action of a union IS a tree write), and every node's
    /// timestamp admits a bounded τ constant.
    #[test]
    fn union_timestamps_admit_tau(keys_a in proptest::collection::btree_set(0i64..2000, 1..200),
                                  keys_b in proptest::collection::btree_set(0i64..2000, 1..200)) {
        let a = entries(keys_a);
        let b = entries(keys_b);
        let (root, c) = run_union(&a, &b, Mode::Pipelined);
        let done = Treap::completion_time(&root);
        prop_assert!(done <= c.depth);
        let cells = collect(|f| {
            let mut g = |t, d, h| f(t, d, h);
            Treap::walk_cells(&root, 0, &mut g);
        });
        // τ anchored at a quarter of the depth: a valid bounded ks exists.
        let ks = min_tau_ks(&cells, c.depth / 4 + 1).unwrap_or(f64::INFINITY);
        prop_assert!(ks.is_finite() && ks <= 64.0, "ks = {ks}");
    }

    /// splitm then join is the identity on treaps (when the splitter is
    /// absent), preserving shape exactly.
    #[test]
    fn splitm_join_roundtrip(keys in proptest::collection::btree_set(0i64..1000, 1..150),
                             splitter in 0i64..1000) {
        let e = entries(keys.iter().copied().filter(|k| *k != splitter));
        let ((orig_keys, orig_h, joined), _) = Sim::new().run(|ctx| {
            let t = Treap::preload_entries(ctx, &e);
            let (ok, oh) = (t.to_sorted_vec(), t.height());
            let (lp, lf) = ctx.promise();
            let (rp, rf) = ctx.promise();
            let (fp, ff) = ctx.promise();
            splitm(ctx, &splitter, t, lp, rp, fp);
            assert!(!ff.get());
            let lv = ctx.touch(&lf);
            let rv = ctx.touch(&rf);
            let (jp, jf) = ctx.promise();
            join(ctx, lv, rv, jp);
            (ok, oh, jf)
        });
        let j = joined.get();
        prop_assert!(j.check_invariants());
        prop_assert_eq!(j.to_sorted_vec(), orig_keys);
        prop_assert_eq!(j.height(), orig_h, "split+join must reconstruct the exact shape");
    }

    /// Union agrees with the sequential treap in shape, not just keys,
    /// for arbitrary priority assignments (not only hashed ones).
    #[test]
    fn union_shape_matches_sequential_with_random_prios(
        pairs_a in proptest::collection::btree_map(0i64..500, 0u64..1_000_000, 1..100),
        pairs_b in proptest::collection::btree_map(0i64..500, 0u64..1_000_000, 1..100),
    ) {
        let a: Vec<Entry<i64>> = pairs_a.into_iter().collect();
        let b: Vec<Entry<i64>> = pairs_b.into_iter().collect();
        let (root, _) = run_union(&a, &b, Mode::Pipelined);
        let pu = PlainTreap::union(PlainTreap::from_entries(&a), PlainTreap::from_entries(&b));
        prop_assert_eq!(root.get().to_sorted_vec(), PlainTreap::to_sorted_vec(&pu));
        prop_assert_eq!(root.get().height(), PlainTreap::height(&pu));
    }

    /// The wave decomposition partitions the keys and every wave is
    /// separated by earlier waves (the §3.4 well-separation invariant).
    #[test]
    fn level_arrays_partition_and_separate(keys in proptest::collection::btree_set(-10_000i64..10_000, 0..400)) {
        let kv: Vec<i64> = keys.iter().copied().collect();
        let waves = level_arrays(&kv);
        let mut all: Vec<i64> = waves.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, kv.clone(), "waves must partition the keys");
        let mut earlier: Vec<i64> = Vec::new();
        for w in &waves {
            prop_assert!(w.windows(2).all(|p| p[0] < p[1]));
            for pair in w.windows(2) {
                prop_assert!(
                    earlier.iter().any(|k| *k > pair[0] && *k < pair[1]),
                    "wave keys {} and {} not separated",
                    pair[0],
                    pair[1]
                );
            }
            earlier.extend_from_slice(w);
        }
    }

    /// Merging with an empty side is the identity (both sides).
    #[test]
    fn merge_identity_element(keys in proptest::collection::btree_set(0i64..1000, 0..100)) {
        let kv: Vec<i64> = keys.into_iter().collect();
        let empty: Vec<i64> = vec![];
        let (r1, _) = run_merge(&kv, &empty, Mode::Pipelined);
        prop_assert_eq!(r1.get().to_sorted_vec(), kv.clone());
        let (r2, _) = run_merge(&empty, &kv, Mode::Pipelined);
        prop_assert_eq!(r2.get().to_sorted_vec(), kv);
    }

    /// Result tree of merge never exceeds the sum of the input heights
    /// (the paper's observation motivating the rebalance pass).
    #[test]
    fn merge_height_additive_bound(lg_n in 3u32..9, lg_m in 3u32..9) {
        let n = 1usize << lg_n;
        let m = 1usize << lg_m;
        let a: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
        let b: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
        let (root, _) = run_merge(&a, &b, Mode::Pipelined);
        let (ha, hb) = Sim::new().run(|ctx| {
            (
                Tree::preload_balanced(ctx, &a).height(),
                Tree::preload_balanced(ctx, &b).height(),
            )
        }).0;
        prop_assert!(root.get().height() <= ha + hb, "h {} > {} + {}", root.get().height(), ha, hb);
    }
}
