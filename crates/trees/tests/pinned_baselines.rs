//! Regression pins for the hand-pipelined baseline simulators.
//!
//! The round-barrier refactor (running Cole / PVW on the worker pool) must
//! keep the *virtual-time* numbers bit-identical: the synchronous stage /
//! round counts and the counted work are the quantities experiments
//! E16/E18 compare against the futures DAG depth, so any drift there would
//! silently change the paper comparison. These values were captured from
//! the pre-refactor single-threaded simulators and must never change.

use pf_trees::cole::cole_sort;
use pf_trees::pvw::{pvw_insert_many, PvwTree};
use pf_trees::workloads::shuffled_keys;

#[test]
fn cole_stage_counts_are_pinned() {
    // stages = 3·lg n exactly on power-of-two inputs; work is deterministic
    // for a fixed shuffle seed.
    for (lg, expect_stages, expect_work) in [
        (4u32, 12u64, 98u64),
        (6, 18, 642),
        (8, 24, 3586),
        (10, 30, 18434),
    ] {
        let n = 1usize << lg;
        let keys = shuffled_keys(n, 77);
        let (sorted, s) = cole_sort(&keys);
        assert_eq!(sorted.len(), n);
        assert_eq!(s.stages, expect_stages, "cole stages at n=2^{lg}");
        assert_eq!(s.work, expect_work, "cole work at n=2^{lg}");
    }
}

#[test]
fn pvw_round_counts_are_pinned() {
    // rounds ≈ 2·lg m + lg n + O(1); exact values pinned per workload.
    for (n, m, expect_rounds, expect_work, expect_waves) in [
        (1usize << 10, 1usize << 4, 15u64, 172u64, 5usize),
        (1 << 12, 1 << 6, 20, 695, 7),
        (1 << 14, 1 << 6, 21, 766, 7),
        (1 << 12, 1 << 8, 24, 2688, 9),
    ] {
        let initial: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
        let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
        let mut t = PvwTree::from_sorted(&initial);
        let stats = pvw_insert_many(&mut t, &newk);
        t.validate().unwrap();
        assert_eq!(stats.rounds, expect_rounds, "pvw rounds n={n} m={m}");
        assert_eq!(stats.work, expect_work, "pvw work n={n} m={m}");
        assert_eq!(stats.waves, expect_waves, "pvw waves n={n} m={m}");
    }
}
