//! The §3.4 2-6 tree bulk insert on the real runtime, in CPS.
//!
//! The interesting transcription problem: pass 1 of the node rebuild
//! touches *several* children (those that receive keys) before the new
//! node can be published. In CPS that becomes a chain of continuations
//! threading an accumulator (`Builder`) through the touches — one hop
//! per child with keys, constant per level, exactly the γ-value costing
//! of Theorem 3.13.
//!
//! The well-separated wave arrays are plain `Vec<K>`s (the paper's flat
//! arrays): array work happens inside the task that owns the array, and
//! the waves chase each other through the shared tree structure via the
//! future children.

use std::sync::Arc;

use pf_rt::{cell, ready, FutRead, FutWrite, Worker};
use pf_trees::two_six::level_arrays;

use crate::RKey;

/// A 2-6 tree with runtime future children.
pub enum RTsTree<K> {
    /// Leaf: 1–5 keys (0 only for the empty tree).
    Leaf(Arc<Vec<K>>),
    /// Internal node: 1–5 splitters, `keys + 1` children.
    Node(Arc<RTsNode<K>>),
}

/// Internal node of an [`RTsTree`].
pub struct RTsNode<K> {
    /// Splitter keys.
    pub keys: Vec<K>,
    /// Children as runtime futures.
    pub children: Vec<FutRead<RTsTree<K>>>,
}

impl<K> Clone for RTsTree<K> {
    fn clone(&self) -> Self {
        match self {
            RTsTree::Leaf(ks) => RTsTree::Leaf(Arc::clone(ks)),
            RTsTree::Node(n) => RTsTree::Node(Arc::clone(n)),
        }
    }
}

impl<K: RKey> RTsTree<K> {
    /// The empty tree.
    pub fn empty() -> Self {
        RTsTree::Leaf(Arc::new(Vec::new()))
    }

    fn key_count(&self) -> usize {
        match self {
            RTsTree::Leaf(ks) => ks.len(),
            RTsTree::Node(n) => n.keys.len(),
        }
    }

    /// Build from sorted keys with pre-written cells (same shape as the
    /// cost-model builder: ≤ 2 keys per leaf, 2–3 children per node).
    pub fn from_sorted(keys: &[K]) -> Self {
        if keys.is_empty() {
            return Self::empty();
        }
        let mut h = 0usize;
        let mut cap = 2usize;
        while keys.len() > cap {
            h += 1;
            cap = cap * 3 + 2;
        }
        Self::build_h(keys, h)
    }

    fn build_h(keys: &[K], h: usize) -> Self {
        if h == 0 {
            return RTsTree::Leaf(Arc::new(keys.to_vec()));
        }
        let min_keys = (1usize << h) - 1;
        let max_keys = 3usize.pow(h as u32) - 1;
        let n = keys.len();
        let c = if n > 2 * min_keys && n <= 2 * max_keys + 1 {
            2
        } else {
            3
        };
        let mut sizes = vec![min_keys; c];
        let mut rem = n - (c - 1) - c * min_keys;
        for s in sizes.iter_mut() {
            let add = rem.min(max_keys - min_keys);
            *s += add;
            rem -= add;
        }
        let mut node_keys = Vec::with_capacity(c - 1);
        let mut children = Vec::with_capacity(c);
        let mut at = 0usize;
        for (i, s) in sizes.iter().enumerate() {
            children.push(ready(Self::build_h(&keys[at..at + s], h - 1)));
            at += s;
            if i < c - 1 {
                node_keys.push(keys[at].clone());
                at += 1;
            }
        }
        RTsTree::Node(Arc::new(RTsNode {
            keys: node_keys,
            children,
        }))
    }

    /// Post-run inspection: all keys in symmetric order.
    pub fn to_sorted_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.inorder(&mut out);
        out
    }

    fn inorder(&self, out: &mut Vec<K>) {
        match self {
            RTsTree::Leaf(ks) => out.extend(ks.iter().cloned()),
            RTsTree::Node(n) => {
                for i in 0..n.children.len() {
                    n.children[i].expect().inorder(out);
                    if i < n.keys.len() {
                        out.push(n.keys[i].clone());
                    }
                }
            }
        }
    }

    /// Post-run inspection: validate all 2-6 invariants.
    pub fn validate(&self) -> Result<(), String> {
        let keys = self.to_sorted_vec();
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("keys not strictly increasing".into());
        }
        fn rec<K: RKey>(t: &RTsTree<K>, is_root: bool) -> Result<usize, String> {
            match t {
                RTsTree::Leaf(ks) => {
                    if ks.is_empty() && !is_root {
                        return Err("empty non-root leaf".into());
                    }
                    if ks.len() > 5 {
                        return Err(format!("leaf with {} keys", ks.len()));
                    }
                    Ok(0)
                }
                RTsTree::Node(n) => {
                    if n.keys.is_empty() || n.keys.len() > 5 {
                        return Err(format!("node with {} keys", n.keys.len()));
                    }
                    if n.children.len() != n.keys.len() + 1 {
                        return Err("child count mismatch".into());
                    }
                    let mut d = None;
                    for c in &n.children {
                        let dc = rec(&c.expect(), false)?;
                        match d {
                            None => d = Some(dc),
                            Some(p) if p != dc => return Err("ragged leaves".into()),
                            _ => {}
                        }
                    }
                    Ok(d.expect("children") + 1)
                }
            }
        }
        rec(self, true).map(|_| ())
    }
}

fn sorted_merge_dedup<K: RKey>(a: &[K], b: &[K]) -> Vec<K> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            let k = a[i].clone();
            i += 1;
            k
        } else {
            let k = b[j].clone();
            j += 1;
            k
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    out
}

fn split_node<K: RKey>(t: &RTsTree<K>) -> (RTsTree<K>, K, RTsTree<K>) {
    match t {
        RTsTree::Leaf(ks) => {
            let mid = ks.len() / 2;
            (
                RTsTree::Leaf(Arc::new(ks[..mid].to_vec())),
                ks[mid].clone(),
                RTsTree::Leaf(Arc::new(ks[mid + 1..].to_vec())),
            )
        }
        RTsTree::Node(n) => {
            let mid = n.keys.len() / 2;
            (
                RTsTree::Node(Arc::new(RTsNode {
                    keys: n.keys[..mid].to_vec(),
                    children: n.children[..=mid].to_vec(),
                })),
                n.keys[mid].clone(),
                RTsTree::Node(Arc::new(RTsNode {
                    keys: n.keys[mid + 1..].to_vec(),
                    children: n.children[mid + 1..].to_vec(),
                })),
            )
        }
    }
}

/// A deferred recursive insert: (keys, subtree, output cell).
type Pending<K> = Vec<(Vec<K>, RTsTree<K>, FutWrite<RTsTree<K>>)>;

/// Accumulator threaded through the CPS chain that rebuilds one node.
struct Builder<K: RKey> {
    node: Arc<RTsNode<K>>,
    parts: Vec<Vec<K>>, // one bucket per original child
    i: usize,
    new_keys: Vec<K>,
    new_children: Vec<FutRead<RTsTree<K>>>,
    pending: Pending<K>,
    out: FutWrite<RTsTree<K>>,
}

fn queue_insert<K: RKey>(
    part: Vec<K>,
    subtree: RTsTree<K>,
    pending: &mut Pending<K>,
) -> FutRead<RTsTree<K>> {
    if part.is_empty() {
        ready(subtree)
    } else {
        let (p, f) = cell();
        pending.push((part, subtree, p));
        f
    }
}

fn build_step<K: RKey>(wk: &Worker, mut b: Builder<K>) {
    while b.i < b.node.children.len() {
        let i = b.i;
        let part = std::mem::take(&mut b.parts[i]);
        if part.is_empty() {
            b.new_children.push(b.node.children[i].clone());
            if i < b.node.keys.len() {
                b.new_keys.push(b.node.keys[i].clone());
            }
            b.i += 1;
            continue;
        }
        // Touch the child, then continue the chain in the continuation.
        let child = b.node.children[i].clone();
        child.touch(wk, move |cv, wk| {
            if cv.key_count() >= 3 {
                let (l, sep, r) = split_node(&cv);
                let (pl, pr): (Vec<K>, Vec<K>) = part
                    .into_iter()
                    .filter(|k| *k != sep)
                    .partition(|k| *k < sep);
                let lf = queue_insert(pl, l, &mut b.pending);
                b.new_children.push(lf);
                b.new_keys.push(sep);
                let rf = queue_insert(pr, r, &mut b.pending);
                b.new_children.push(rf);
            } else {
                let f = queue_insert(part, cv, &mut b.pending);
                b.new_children.push(f);
            }
            if i < b.node.keys.len() {
                b.new_keys.push(b.node.keys[i].clone());
            }
            b.i += 1;
            build_step(wk, b);
        });
        return;
    }
    // All children processed: publish the node, then fork the recursions.
    debug_assert!(b.new_keys.len() <= 5);
    b.out.fulfill(
        wk,
        RTsTree::Node(Arc::new(RTsNode {
            keys: b.new_keys,
            children: b.new_children,
        })),
    );
    for (part, subtree, p) in b.pending {
        wk.spawn(move |wk| insert_val(wk, part, subtree, p));
    }
}

/// Insert a well-separated key array into the (touched) node value `t`.
pub fn insert_val<K: RKey>(wk: &Worker, keys: Vec<K>, t: RTsTree<K>, out: FutWrite<RTsTree<K>>) {
    if keys.is_empty() {
        out.fulfill(wk, t);
        return;
    }
    match t {
        RTsTree::Leaf(existing) => {
            let merged = sorted_merge_dedup(&existing, &keys);
            assert!(merged.len() <= 5, "leaf overflow: separation violated");
            out.fulfill(wk, RTsTree::Leaf(Arc::new(merged)));
        }
        RTsTree::Node(n) => {
            debug_assert!(n.keys.len() <= 2, "must insert into a 2-3 node");
            // Partition by splitters (the array_split work of §3.4).
            let mut parts: Vec<Vec<K>> = Vec::with_capacity(n.children.len());
            let mut rest = keys;
            for s in &n.keys {
                let (l, g): (Vec<K>, Vec<K>) =
                    rest.into_iter().filter(|k| k != s).partition(|k| k < s);
                parts.push(l);
                rest = g;
            }
            parts.push(rest);
            build_step(
                wk,
                Builder {
                    node: n,
                    parts,
                    i: 0,
                    new_keys: Vec::with_capacity(5),
                    new_children: Vec::with_capacity(6),
                    pending: Vec::new(),
                    out,
                },
            );
        }
    }
}

/// Insert one wave, splitting the root first if necessary.
pub fn insert_wave<K: RKey>(
    wk: &Worker,
    keys: Vec<K>,
    t: FutRead<RTsTree<K>>,
    out: FutWrite<RTsTree<K>>,
) {
    t.touch(wk, move |tv, wk| {
        if keys.is_empty() {
            out.fulfill(wk, tv);
            return;
        }
        let tv = if tv.key_count() >= 3 {
            let (l, sep, r) = split_node(&tv);
            RTsTree::Node(Arc::new(RTsNode {
                keys: vec![sep],
                children: vec![ready(l), ready(r)],
            }))
        } else {
            tv
        };
        insert_val(wk, keys, tv, out);
    });
}

/// Insert `m` sorted distinct keys, one pipelined wave per conceptual
/// level; returns the future of the final tree.
pub fn insert_many<K: RKey>(
    wk: &Worker,
    keys: &[K],
    t: FutRead<RTsTree<K>>,
) -> FutRead<RTsTree<K>> {
    let mut cur = t;
    for wave in level_arrays(keys) {
        let (p, f) = cell();
        let prev = cur;
        wk.spawn(move |wk| insert_wave(wk, wave, prev, p));
        cur = f;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::Runtime;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    fn run_insert(initial: &[i64], newk: &[i64], threads: usize) -> RTsTree<i64> {
        let t = ready(RTsTree::from_sorted(initial));
        let (op, of) = cell();
        let keys = newk.to_vec();
        Runtime::new(threads).run(move |wk| {
            let f = insert_many(wk, &keys, t);
            f.touch(wk, move |tv, wk| op.fulfill(wk, tv));
        });
        of.expect()
    }

    #[test]
    fn builder_valid() {
        for n in [0usize, 1, 5, 27, 300] {
            let t = RTsTree::from_sorted(&evens(n));
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(t.to_sorted_vec(), evens(n));
        }
    }

    #[test]
    fn insert_correct_across_threads() {
        let initial = evens(400);
        let newk: Vec<i64> = (0..100).map(|i| 8 * i + 1).collect();
        let mut expect = initial.clone();
        expect.extend(&newk);
        expect.sort_unstable();
        for threads in [1usize, 2, 4] {
            let t = run_insert(&initial, &newk, threads);
            t.validate().unwrap();
            assert_eq!(t.to_sorted_vec(), expect, "threads={threads}");
        }
    }

    #[test]
    fn insert_into_empty() {
        let keys: Vec<i64> = (0..64).collect();
        let t = run_insert(&[], &keys, 3);
        t.validate().unwrap();
        assert_eq!(t.to_sorted_vec(), keys);
    }

    #[test]
    fn agrees_with_cost_model_version() {
        use pf_trees::two_six::run_insert_many;
        use pf_trees::Mode;
        let initial = evens(1000);
        let newk: Vec<i64> = (0..300).map(|i| 6 * i + 3).collect();
        let mut newk_dedup = newk.clone();
        newk_dedup.dedup();
        let (root, _) = run_insert_many(&initial, &newk_dedup, Mode::Pipelined);
        let rt_tree = run_insert(&initial, &newk_dedup, 4);
        assert_eq!(rt_tree.to_sorted_vec(), root.get().to_sorted_vec());
    }

    #[test]
    fn stress_repeated() {
        let initial = evens(200);
        let newk: Vec<i64> = (0..80).map(|i| 4 * i + 1).collect();
        let mut expect = initial.clone();
        expect.extend(&newk);
        expect.sort_unstable();
        for _ in 0..25 {
            let t = run_insert(&initial, &newk, 4);
            assert_eq!(t.to_sorted_vec(), expect);
        }
    }
}
