//! The §3.4 2-6 tree bulk insert on the real runtime.
//!
//! The algorithm text lives once, engine-generically, in
//! [`pf_algs::two_six`]; this module instantiates it at `B = `[`Worker`].
//! The interesting transcription problem — pass 1 of the node rebuild
//! touches *several* children before the new node can be published, which
//! in CPS becomes a chain of continuations threading a `Builder`
//! accumulator through the touches — is solved once in the generic code
//! and monomorphizes here to exactly the hand-written runtime version.

use pf_algs::Mode;
use pf_rt::{ready, FutRead, FutWrite, Worker};

use crate::RKey;

/// A 2-6 tree with runtime future children.
pub type RTsTree<K> = pf_algs::two_six::TsTree<Worker, K>;

/// Internal node of an [`RTsTree`].
pub type RTsNode<K> = pf_algs::two_six::TsNode<Worker, K>;

/// Offline (no worker, pre-written cells) constructors for [`RTsTree`].
pub trait RtTsTree<K: RKey>: Sized {
    /// Build from sorted keys with pre-written cells (same shape as the
    /// cost-model builder: ≤ 2 keys per leaf, 2–3 children per node).
    fn from_sorted_ready(keys: &[K]) -> Self;
}

impl<K: RKey> RtTsTree<K> for RTsTree<K> {
    fn from_sorted_ready(keys: &[K]) -> Self {
        fn build_h<K: RKey>(keys: &[K], h: usize) -> RTsTree<K> {
            if h == 0 {
                return RTsTree::Leaf(std::sync::Arc::new(keys.to_vec()));
            }
            let min_keys = (1usize << h) - 1;
            let max_keys = 3usize.pow(h as u32) - 1;
            let n = keys.len();
            let c = if n > 2 * min_keys && n <= 2 * max_keys + 1 {
                2
            } else {
                3
            };
            let mut sizes = vec![min_keys; c];
            let mut rem = n - (c - 1) - c * min_keys;
            for s in sizes.iter_mut() {
                let add = rem.min(max_keys - min_keys);
                *s += add;
                rem -= add;
            }
            let mut node_keys = Vec::with_capacity(c - 1);
            let mut children = Vec::with_capacity(c);
            let mut at = 0usize;
            for (i, s) in sizes.iter().enumerate() {
                children.push(ready(build_h(&keys[at..at + s], h - 1)));
                at += s;
                if i < c - 1 {
                    node_keys.push(keys[at].clone());
                    at += 1;
                }
            }
            RTsTree::Node(std::sync::Arc::new(RTsNode {
                keys: node_keys,
                children,
            }))
        }
        if keys.is_empty() {
            return RTsTree::empty();
        }
        let mut h = 0usize;
        let mut cap = 2usize;
        while keys.len() > cap {
            h += 1;
            cap = cap * 3 + 2;
        }
        build_h(keys, h)
    }
}

/// Insert a well-separated key array into the (touched) node value `t`.
pub fn insert_val<K: RKey>(wk: &Worker, keys: Vec<K>, t: RTsTree<K>, out: FutWrite<RTsTree<K>>) {
    pf_algs::two_six::insert_val(wk, keys, t, out);
}

/// Insert one wave, splitting the root first if necessary.
pub fn insert_wave<K: RKey>(
    wk: &Worker,
    keys: Vec<K>,
    t: FutRead<RTsTree<K>>,
    out: FutWrite<RTsTree<K>>,
) {
    pf_algs::two_six::insert_wave(wk, keys, t, out);
}

/// Insert `m` sorted distinct keys, one pipelined wave per conceptual
/// level; returns the future of the final tree.
pub fn insert_many<K: RKey>(
    wk: &Worker,
    keys: &[K],
    t: FutRead<RTsTree<K>>,
) -> FutRead<RTsTree<K>> {
    pf_algs::two_six::insert_many(wk, keys, t, Mode::Pipelined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::{cell, Runtime};

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    fn run_insert(initial: &[i64], newk: &[i64], threads: usize) -> RTsTree<i64> {
        let t = ready(RTsTree::from_sorted_ready(initial));
        let (op, of) = cell();
        let keys = newk.to_vec();
        Runtime::new(threads).run(move |wk| {
            let f = insert_many(wk, &keys, t);
            f.touch(wk, move |tv, wk| op.fulfill(wk, tv));
        });
        of.expect()
    }

    #[test]
    fn builder_valid() {
        for n in [0usize, 1, 5, 27, 300] {
            let t = RTsTree::from_sorted_ready(&evens(n));
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(t.to_sorted_vec(), evens(n));
        }
    }

    #[test]
    fn insert_correct_across_threads() {
        let initial = evens(400);
        let newk: Vec<i64> = (0..100).map(|i| 8 * i + 1).collect();
        let mut expect = initial.clone();
        expect.extend(&newk);
        expect.sort_unstable();
        for threads in [1usize, 2, 4] {
            let t = run_insert(&initial, &newk, threads);
            t.validate().unwrap();
            assert_eq!(t.to_sorted_vec(), expect, "threads={threads}");
        }
    }

    #[test]
    fn insert_into_empty() {
        let keys: Vec<i64> = (0..64).collect();
        let t = run_insert(&[], &keys, 3);
        t.validate().unwrap();
        assert_eq!(t.to_sorted_vec(), keys);
    }

    #[test]
    fn agrees_with_cost_model_version() {
        use pf_trees::two_six::run_insert_many;
        use pf_trees::Mode;
        let initial = evens(1000);
        let newk: Vec<i64> = (0..300).map(|i| 6 * i + 3).collect();
        let mut newk_dedup = newk.clone();
        newk_dedup.dedup();
        let (root, _) = run_insert_many(&initial, &newk_dedup, Mode::Pipelined);
        let rt_tree = run_insert(&initial, &newk_dedup, 4);
        assert_eq!(rt_tree.to_sorted_vec(), root.get().to_sorted_vec());
    }

    #[test]
    fn stress_repeated() {
        let initial = evens(200);
        let newk: Vec<i64> = (0..80).map(|i| 4 * i + 1).collect();
        let mut expect = initial.clone();
        expect.extend(&newk);
        expect.sort_unstable();
        for _ in 0..25 {
            let t = run_insert(&initial, &newk, 4);
            assert_eq!(t.to_sorted_vec(), expect);
        }
    }
}
