//! Wall-clock measurement drivers for the real-runtime experiments (E12):
//! run one operation end to end — input construction excluded — and return
//! the elapsed time. Drivers run on the process-wide shared pool for the
//! requested width ([`Runtime::shared`]), so a timing sweep reuses warm
//! workers instead of paying thread creation inside every measurement.

use std::time::{Duration, Instant};

use pf_rt::{cell, ready, Runtime, Session, SessionError};
use pf_trees::seq::{Entry, PlainTreap};

use crate::rtreap::{diff, union, RTreap, RtTreap};
use crate::rtree::{merge, RTree, RtTree};
use crate::RKey;

/// Time one pipelined treap union of the given entry sets on `threads`
/// workers. Input treaps are built before the clock starts.
pub fn time_union_rt(a: &[Entry<i64>], b: &[Entry<i64>], threads: usize) -> Duration {
    let ta = RTreap::from_entries_ready(a);
    let tb = RTreap::from_entries_ready(b);
    let rt = Runtime::shared(threads);
    let (op, of) = cell();
    let (fa, fb) = (ready(ta), ready(tb));
    let start = Instant::now();
    rt.run(move |wk| union(wk, fa, fb, op));
    let dt = start.elapsed();
    assert!(of.expect().to_sorted_vec().len() >= a.len().max(b.len()));
    dt
}

/// Time the sequential treap union on the same inputs (the work baseline).
pub fn time_union_seq(a: &[Entry<i64>], b: &[Entry<i64>]) -> Duration {
    let ta = PlainTreap::from_entries(a);
    let tb = PlainTreap::from_entries(b);
    let start = Instant::now();
    let u = PlainTreap::union(ta, tb);
    let dt = start.elapsed();
    assert!(PlainTreap::size(&u) >= a.len().max(b.len()));
    dt
}

/// Time one pipelined BST merge on `threads` workers.
pub fn time_merge_rt(a: &[i64], b: &[i64], threads: usize) -> Duration {
    let ta = RTree::from_sorted_ready(a);
    let tb = RTree::from_sorted_ready(b);
    let rt = Runtime::shared(threads);
    let (op, of) = cell();
    let (fa, fb) = (ready(ta), ready(tb));
    let start = Instant::now();
    rt.run(move |wk| merge(wk, fa, fb, op));
    let dt = start.elapsed();
    assert_eq!(of.expect().to_sorted_vec().len(), a.len() + b.len());
    dt
}

/// Sequential baseline for merge: the textbook two-pointer merge of the
/// sorted key sequences (what a sequential implementation would do).
pub fn time_merge_seq(a: &[i64], b: &[i64]) -> Duration {
    let start = Instant::now();
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    let dt = start.elapsed();
    assert_eq!(out.len(), a.len() + b.len());
    dt
}

/// Time one pipelined 2-6 bulk insert on `threads` workers.
pub fn time_insert_rt(initial: &[i64], newk: &[i64], threads: usize) -> Duration {
    use crate::rtwosix::{insert_many, RTsTree, RtTsTree};
    let t = RTsTree::from_sorted_ready(initial);
    let rt = Runtime::shared(threads);
    let ft = ready(t);
    let (op, of) = cell();
    let keys = newk.to_vec();
    let start = Instant::now();
    rt.run(move |wk| {
        let f = insert_many(wk, &keys, ft);
        f.touch(wk, move |tv, wk| op.fulfill(wk, tv));
    });
    let dt = start.elapsed();
    assert!(of.expect().to_sorted_vec().len() >= initial.len());
    dt
}

/// Sequential baseline for the bulk insert: a `BTreeSet` extended with the
/// batch (what a production sequential index would do).
pub fn time_insert_seq(initial: &[i64], newk: &[i64]) -> Duration {
    let mut set: std::collections::BTreeSet<i64> = initial.iter().copied().collect();
    let start = Instant::now();
    set.extend(newk.iter().copied());
    let dt = start.elapsed();
    assert!(set.len() >= initial.len());
    dt
}

/// Time one pipelined rebalance of a degenerate (spine) BST.
pub fn time_rebalance_rt(n: usize, threads: usize) -> Duration {
    use crate::rrebalance::rebalance;
    // Build the worst case: a right spine, directly (no naive insertion).
    let mut t = crate::rtree::RTree::Leaf;
    for k in (0..n as i64).rev() {
        t = crate::rtree::RTree::node(k, ready(crate::rtree::RTree::Leaf), ready(t));
    }
    let rt = Runtime::shared(threads);
    let ft = ready(t);
    let (op, of) = cell();
    let start = Instant::now();
    rt.run(move |wk| rebalance(wk, ft, op));
    let dt = start.elapsed();
    assert_eq!(of.expect().to_sorted_vec().len(), n);
    dt
}

/// Apply one insert (union) or delete (diff) batch to a treap root inside
/// a fault-contained session, optionally under a per-batch deadline.
///
/// This is the error-aware entry a long-lived service front end wants:
/// the batch runs via [`Runtime::try_run_session`], so a panic inside the
/// operation, a deadline expiry, or a pool stall comes back as
/// `Err(SessionError)` with the pool intact — the caller keeps serving
/// from its previous root (treap nodes are shared, so cloning the root to
/// keep it is O(1)). On `Ok`, quiescence guarantees the output cell is
/// written, so the unwrap inside never fires.
pub fn try_apply_batch<K: RKey>(
    rt: &Runtime,
    state: RTreap<K>,
    batch: RTreap<K>,
    delete: bool,
    deadline: Option<Duration>,
) -> Result<RTreap<K>, SessionError> {
    let (fs, fb) = (ready(state), ready(batch));
    let (op, of) = cell();
    let mut sess = Session::new();
    if let Some(d) = deadline {
        sess = sess.deadline(d);
    }
    rt.try_run_session(sess, move |wk| {
        if delete {
            diff(wk, fs, fb, op)
        } else {
            union(wk, fs, fb, op)
        }
    })?;
    Ok(of.expect())
}

/// Run `f` `reps` times and return the minimum (the standard noise filter
/// for wall-clock microbenchmarks).
pub fn best_of(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    assert!(reps >= 1);
    (0..reps).map(|_| f()).min().expect("reps >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_trees::workloads::union_entries;

    #[test]
    fn drivers_run_and_return_nonzero() {
        let (a, b) = union_entries(2000, 2000, 5);
        let t_rt = time_union_rt(&a, &b, 2);
        let t_seq = time_union_seq(&a, &b);
        assert!(t_rt > Duration::ZERO);
        assert!(t_seq > Duration::ZERO);
    }

    #[test]
    fn merge_drivers_run() {
        let a: Vec<i64> = (0..4000).map(|i| 2 * i).collect();
        let b: Vec<i64> = (0..4000).map(|i| 2 * i + 1).collect();
        assert!(time_merge_rt(&a, &b, 2) > Duration::ZERO);
        assert!(time_merge_seq(&a, &b) > Duration::ZERO);
    }

    #[test]
    fn try_apply_batch_round_trips() {
        let (a, b) = union_entries(600, 120, 11);
        let rt = Runtime::shared(2);
        let state = RTreap::from_entries_ready(&a);
        let batch = RTreap::from_entries_ready(&b);
        let merged =
            try_apply_batch(&rt, state, batch, false, Some(Duration::from_secs(30))).unwrap();
        let shrunk = try_apply_batch(
            &rt,
            merged.clone(),
            RTreap::from_entries_ready(&b),
            true,
            None,
        )
        .unwrap();
        let want: std::collections::BTreeSet<i64> = a
            .iter()
            .map(|e| e.0)
            .filter(|k| !b.iter().any(|e| e.0 == *k))
            .collect();
        assert_eq!(
            shrunk.to_sorted_vec().len(),
            want.len(),
            "union then diff of the same batch leaves exactly the non-batch keys"
        );
        assert!(merged.to_sorted_vec().len() >= a.len().max(b.len()));
    }

    #[test]
    fn insert_and_rebalance_drivers_run() {
        let initial: Vec<i64> = (0..2000).map(|i| 2 * i).collect();
        let newk: Vec<i64> = (0..500).map(|i| 8 * i + 1).collect();
        assert!(time_insert_rt(&initial, &newk, 2) > Duration::ZERO);
        let _ = time_insert_seq(&initial, &newk);
        assert!(time_rebalance_rt(2000, 2) > Duration::ZERO);
    }

    #[test]
    fn best_of_takes_min() {
        let mut calls = 0;
        let d = best_of(3, || {
            calls += 1;
            Duration::from_millis(calls)
        });
        assert_eq!(d, Duration::from_millis(1));
    }
}
