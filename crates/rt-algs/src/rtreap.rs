//! Treap union and difference (§3.2–3.3) on the real runtime.
//!
//! The algorithm text lives once, engine-generically, in
//! [`pf_algs::treap`]; this module instantiates it at `B = `[`Worker`].
//! Same tie-break rule as the cost-model instantiation, so the result
//! shapes agree across backends — checked by the integration tests.

use pf_algs::Mode;
use pf_rt::{ready, FutRead, FutWrite, Worker};
use pf_trees::seq::{Entry, PlainTreap};

use crate::RKey;

/// A treap whose children are runtime future cells.
pub type RTreap<K> = pf_algs::treap::Treap<Worker, K>;

/// Interior node of an [`RTreap`].
pub type RTreapNode<K> = pf_algs::treap::TreapNode<Worker, K>;

/// Offline (no worker, pre-written cells) constructors for [`RTreap`].
pub trait RtTreap<K: RKey>: Sized {
    /// Convert a sequential treap (pre-written cells).
    fn from_plain_ready(t: &Option<Box<PlainTreap<K>>>) -> Self;

    /// Build from entries via the sequential treap.
    fn from_entries_ready(entries: &[Entry<K>]) -> Self;
}

impl<K: RKey> RtTreap<K> for RTreap<K> {
    fn from_plain_ready(t: &Option<Box<PlainTreap<K>>>) -> Self {
        match t {
            None => RTreap::Leaf,
            Some(n) => RTreap::node(
                n.key.clone(),
                n.prio,
                ready(Self::from_plain_ready(&n.left)),
                ready(Self::from_plain_ready(&n.right)),
            ),
        }
    }

    fn from_entries_ready(entries: &[Entry<K>]) -> Self {
        Self::from_plain_ready(&PlainTreap::from_entries(entries))
    }
}

/// `splitm(s, t)` in CPS (Figure 4): keys `< s` to `lout`, keys `> s` to
/// `rout`, `s` excluded; `fout` reports whether `s` was found.
pub fn splitm<K: RKey>(
    wk: &Worker,
    s: K,
    t: RTreap<K>,
    lout: FutWrite<RTreap<K>>,
    rout: FutWrite<RTreap<K>>,
    fout: FutWrite<bool>,
) {
    pf_algs::treap::splitm(wk, s, t, lout, rout, fout);
}

/// `join(l, r)` in CPS (Figure 7): concatenate two touched treap values
/// with all of `l`'s keys below all of `r`'s.
pub fn join<K: RKey>(wk: &Worker, l: RTreap<K>, r: RTreap<K>, out: FutWrite<RTreap<K>>) {
    pf_algs::treap::join(wk, l, r, out);
}

/// `union(a, b)` in CPS (Figure 4).
pub fn union<K: RKey>(
    wk: &Worker,
    a: FutRead<RTreap<K>>,
    b: FutRead<RTreap<K>>,
    out: FutWrite<RTreap<K>>,
) {
    pf_algs::treap::union(wk, a, b, out, Mode::Pipelined);
}

/// `diff(a, b)` in CPS (Figure 7): keys of `a` not in `b`.
pub fn diff<K: RKey>(
    wk: &Worker,
    a: FutRead<RTreap<K>>,
    b: FutRead<RTreap<K>>,
    out: FutWrite<RTreap<K>>,
) {
    pf_algs::treap::diff(wk, a, b, out, Mode::Pipelined);
}

/// Collapse `k` batch treap futures into one with a balanced **union
/// tree** (⌈lg k⌉ levels of pairwise [`union`]s, each pipelining into the
/// next): the apply plan for a coalescing ingress queue — see
/// [`pf_algs::treap::union_many`]. `k = 0` yields a ready `Leaf`.
pub fn union_many<K: RKey>(wk: &Worker, futs: Vec<FutRead<RTreap<K>>>) -> FutRead<RTreap<K>> {
    pf_algs::treap::union_many(wk, futs, Mode::Pipelined)
}

/// `intersect(a, b)` in CPS: keys in both treaps (dual of [`diff`]).
pub fn intersect<K: RKey>(
    wk: &Worker,
    a: FutRead<RTreap<K>>,
    b: FutRead<RTreap<K>>,
    out: FutWrite<RTreap<K>>,
) {
    pf_algs::treap::intersect(wk, a, b, out, Mode::Pipelined);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::{cell, Runtime};
    use pf_trees::seq::splitmix64;

    fn entries(keys: impl IntoIterator<Item = i64>) -> Vec<Entry<i64>> {
        keys.into_iter()
            .map(|k| (k, splitmix64(k as u64 ^ 0x5555)))
            .collect()
    }

    fn run_union(a: &[Entry<i64>], b: &[Entry<i64>], threads: usize) -> RTreap<i64> {
        let ta = ready(RTreap::from_entries_ready(a));
        let tb = ready(RTreap::from_entries_ready(b));
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| union(wk, ta, tb, op));
        of.expect()
    }

    fn run_diff(a: &[Entry<i64>], b: &[Entry<i64>], threads: usize) -> RTreap<i64> {
        let ta = ready(RTreap::from_entries_ready(a));
        let tb = ready(RTreap::from_entries_ready(b));
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| diff(wk, ta, tb, op));
        of.expect()
    }

    #[test]
    fn union_matches_oracle() {
        let a = entries(0..400);
        let b = entries(200..600);
        let t = run_union(&a, &b, 4);
        assert!(t.check_invariants());
        assert_eq!(t.to_sorted_vec(), (0..600).collect::<Vec<_>>());
        // Shape agreement with the sequential treap.
        let pu = PlainTreap::union(PlainTreap::from_entries(&a), PlainTreap::from_entries(&b));
        assert_eq!(t.height(), PlainTreap::height(&pu));
    }

    #[test]
    fn union_edge_cases() {
        let e: Vec<Entry<i64>> = vec![];
        let one = entries([3]);
        for (a, b) in [(&e, &e), (&one, &e), (&e, &one)] {
            let t = run_union(a, b, 2);
            let mut expect: Vec<i64> = a.iter().chain(b.iter()).map(|e| e.0).collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(t.to_sorted_vec(), expect);
        }
    }

    #[test]
    fn union_all_thread_counts() {
        let a = entries((0..500).map(|i| 2 * i));
        let b = entries((0..500).map(|i| 2 * i + 1));
        for threads in [1usize, 2, 4, 8] {
            let t = run_union(&a, &b, threads);
            assert_eq!(t.to_sorted_vec().len(), 1000, "threads={threads}");
            assert!(t.check_invariants());
        }
    }

    #[test]
    fn diff_matches_oracle() {
        let a = entries(0..300);
        let b = entries((0..300).filter(|k| k % 3 == 0));
        let t = run_diff(&a, &b, 4);
        assert!(t.check_invariants());
        assert_eq!(
            t.to_sorted_vec(),
            (0..300).filter(|k| k % 3 != 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn diff_complete_overlap() {
        let a = entries(0..100);
        let t = run_diff(&a, &a, 3);
        assert!(t.is_leaf());
    }

    #[test]
    fn intersect_matches_cost_model() {
        let a = entries((0..300).map(|i| 2 * i));
        let b = entries((0..300).map(|i| 3 * i));
        let (model_root, _) = pf_trees::treap::run_intersect(&a, &b, pf_trees::Mode::Pipelined);
        let ta = ready(RTreap::from_entries_ready(&a));
        let tb = ready(RTreap::from_entries_ready(&b));
        let (op, of) = cell();
        Runtime::new(4).run(move |wk| intersect(wk, ta, tb, op));
        let t = of.expect();
        assert!(t.check_invariants());
        assert_eq!(t.to_sorted_vec(), model_root.get().to_sorted_vec());
        assert_eq!(t.height(), model_root.get().height());
    }

    #[test]
    fn union_stress() {
        let a = entries((0..200).map(|i| 3 * i));
        let b = entries((0..200).map(|i| 3 * i + 1));
        let mut expect: Vec<i64> = a.iter().chain(b.iter()).map(|e| e.0).collect();
        expect.sort_unstable();
        for _ in 0..30 {
            let t = run_union(&a, &b, 4);
            assert_eq!(t.to_sorted_vec(), expect);
        }
    }
}
