//! Treap union and difference (§3.2–3.3) on the real runtime, in CPS.
//!
//! Identical structure to the cost-model version in `pf_trees::treap`
//! (same tie-break rule, so the result shapes agree across backends —
//! checked by the integration tests), but every touch is a continuation
//! hop on the work-stealing scheduler.

use std::sync::Arc;

use pf_rt::{cell, ready, FutRead, FutWrite, Worker};
use pf_trees::seq::{Entry, PlainTreap};

use crate::RKey;

/// A treap whose children are runtime future cells.
pub enum RTreap<K> {
    /// Empty treap.
    Leaf,
    /// Interior node.
    Node(Arc<RTreapNode<K>>),
}

/// Interior node of an [`RTreap`].
pub struct RTreapNode<K> {
    /// Key (BST order).
    pub key: K,
    /// Priority (max-heap order, ties by key).
    pub prio: u64,
    /// Future of the left subtreap.
    pub left: FutRead<RTreap<K>>,
    /// Future of the right subtreap.
    pub right: FutRead<RTreap<K>>,
}

impl<K> Clone for RTreap<K> {
    fn clone(&self) -> Self {
        match self {
            RTreap::Leaf => RTreap::Leaf,
            RTreap::Node(n) => RTreap::Node(Arc::clone(n)),
        }
    }
}

fn wins<K: Ord>(k1: &K, p1: u64, k2: &K, p2: u64) -> bool {
    (p1, k1) > (p2, k2)
}

impl<K: RKey> RTreap<K> {
    /// Construct an interior node.
    pub fn node(key: K, prio: u64, left: FutRead<RTreap<K>>, right: FutRead<RTreap<K>>) -> Self {
        RTreap::Node(Arc::new(RTreapNode {
            key,
            prio,
            left,
            right,
        }))
    }

    /// Is this the empty treap?
    pub fn is_leaf(&self) -> bool {
        matches!(self, RTreap::Leaf)
    }

    /// Convert a sequential treap (pre-written cells).
    pub fn from_plain(t: &Option<Box<PlainTreap<K>>>) -> RTreap<K> {
        match t {
            None => RTreap::Leaf,
            Some(n) => RTreap::node(
                n.key.clone(),
                n.prio,
                ready(Self::from_plain(&n.left)),
                ready(Self::from_plain(&n.right)),
            ),
        }
    }

    /// Build from entries via the sequential treap.
    pub fn from_entries(entries: &[Entry<K>]) -> RTreap<K> {
        Self::from_plain(&PlainTreap::from_entries(entries))
    }

    /// Post-run inspection: sorted keys.
    pub fn to_sorted_vec(&self) -> Vec<K> {
        enum Frame<K> {
            Tree(RTreap<K>),
            Key(K),
        }
        let mut out = Vec::new();
        let mut stack = vec![Frame::Tree(self.clone())];
        while let Some(f) = stack.pop() {
            match f {
                Frame::Key(k) => out.push(k),
                Frame::Tree(RTreap::Leaf) => {}
                Frame::Tree(RTreap::Node(n)) => {
                    stack.push(Frame::Tree(n.right.expect()));
                    stack.push(Frame::Key(n.key.clone()));
                    stack.push(Frame::Tree(n.left.expect()));
                }
            }
        }
        out
    }

    /// Post-run inspection: height.
    pub fn height(&self) -> usize {
        match self {
            RTreap::Leaf => 0,
            RTreap::Node(n) => 1 + n.left.expect().height().max(n.right.expect().height()),
        }
    }

    /// Post-run inspection: BST + heap invariants.
    pub fn check_invariants(&self) -> bool {
        fn rec<K: RKey>(t: &RTreap<K>, parent: Option<(u64, &K)>) -> bool {
            match t {
                RTreap::Leaf => true,
                RTreap::Node(n) => {
                    if let Some((p, k)) = parent {
                        if wins(&n.key, n.prio, k, p) {
                            return false;
                        }
                    }
                    rec(&n.left.expect(), Some((n.prio, &n.key)))
                        && rec(&n.right.expect(), Some((n.prio, &n.key)))
                }
            }
        }
        let keys = self.to_sorted_vec();
        keys.windows(2).all(|w| w[0] < w[1]) && rec(self, None)
    }
}

/// `splitm(s, t)` in CPS (Figure 4): keys `< s` to `lout`, keys `> s` to
/// `rout`, `s` excluded; `fout` reports whether `s` was found.
pub fn splitm<K: RKey>(
    wk: &Worker,
    s: K,
    t: RTreap<K>,
    lout: FutWrite<RTreap<K>>,
    rout: FutWrite<RTreap<K>>,
    fout: FutWrite<bool>,
) {
    match t {
        RTreap::Leaf => {
            lout.fulfill(wk, RTreap::Leaf);
            rout.fulfill(wk, RTreap::Leaf);
            fout.fulfill(wk, false);
        }
        RTreap::Node(n) => {
            if s == n.key {
                let left = n.left.clone();
                let right = n.right.clone();
                left.touch(wk, move |lv, wk| {
                    lout.fulfill(wk, lv);
                    right.touch(wk, move |rv, wk| {
                        rout.fulfill(wk, rv);
                        fout.fulfill(wk, true);
                    });
                });
            } else if s < n.key {
                let (rp1, rf1) = cell();
                rout.fulfill(
                    wk,
                    RTreap::node(n.key.clone(), n.prio, rf1, n.right.clone()),
                );
                n.left
                    .touch(wk, move |lv, wk| splitm(wk, s, lv, lout, rp1, fout));
            } else {
                let (lp1, lf1) = cell();
                lout.fulfill(wk, RTreap::node(n.key.clone(), n.prio, n.left.clone(), lf1));
                n.right
                    .touch(wk, move |rv, wk| splitm(wk, s, rv, lp1, rout, fout));
            }
        }
    }
}

/// `join(l, r)` in CPS (Figure 7): concatenate two touched treap values
/// with all of `l`'s keys below all of `r`'s.
pub fn join<K: RKey>(wk: &Worker, l: RTreap<K>, r: RTreap<K>, out: FutWrite<RTreap<K>>) {
    match (l, r) {
        (RTreap::Leaf, r) => out.fulfill(wk, r),
        (l, RTreap::Leaf) => out.fulfill(wk, l),
        (RTreap::Node(a), RTreap::Node(b)) => {
            if wins(&a.key, a.prio, &b.key, b.prio) {
                let (jp, jf) = cell();
                out.fulfill(wk, RTreap::node(a.key.clone(), a.prio, a.left.clone(), jf));
                let ar = a.right.clone();
                ar.touch(wk, move |rv, wk| join(wk, rv, RTreap::Node(b), jp));
            } else {
                let (jp, jf) = cell();
                out.fulfill(wk, RTreap::node(b.key.clone(), b.prio, jf, b.right.clone()));
                let bl = b.left.clone();
                bl.touch(wk, move |lv, wk| join(wk, RTreap::Node(a), lv, jp));
            }
        }
    }
}

/// `union(a, b)` in CPS (Figure 4).
pub fn union<K: RKey>(
    wk: &Worker,
    a: FutRead<RTreap<K>>,
    b: FutRead<RTreap<K>>,
    out: FutWrite<RTreap<K>>,
) {
    a.touch(wk, move |av, wk| {
        b.touch(wk, move |bv, wk| {
            let (w, loser) = match (av, bv) {
                (RTreap::Leaf, bv) => {
                    out.fulfill(wk, bv);
                    return;
                }
                (av, RTreap::Leaf) => {
                    out.fulfill(wk, av);
                    return;
                }
                (RTreap::Node(na), RTreap::Node(nb)) => {
                    if wins(&na.key, na.prio, &nb.key, nb.prio) {
                        (na, RTreap::Node(nb))
                    } else {
                        (nb, RTreap::Node(na))
                    }
                }
            };
            let (lp, lf) = cell();
            let (rp, rf) = cell();
            let (fp, _ff) = cell::<bool>();
            let key = w.key.clone();
            wk.spawn(move |wk| splitm(wk, key, loser, lp, rp, fp));
            let (ulp, ulf) = cell();
            let (urp, urf) = cell();
            out.fulfill(wk, RTreap::node(w.key.clone(), w.prio, ulf, urf));
            let wl = w.left.clone();
            let wr = w.right.clone();
            wk.spawn2(
                move |wk| union(wk, wl, lf, ulp),
                move |wk| union(wk, wr, rf, urp),
            );
        });
    });
}

/// `diff(a, b)` in CPS (Figure 7): keys of `a` not in `b`.
pub fn diff<K: RKey>(
    wk: &Worker,
    a: FutRead<RTreap<K>>,
    b: FutRead<RTreap<K>>,
    out: FutWrite<RTreap<K>>,
) {
    a.touch(wk, move |av, wk| {
        let n1 = match av {
            RTreap::Leaf => {
                out.fulfill(wk, RTreap::Leaf);
                return;
            }
            RTreap::Node(n) => n,
        };
        b.touch(wk, move |bv, wk| {
            if bv.is_leaf() {
                out.fulfill(wk, RTreap::Node(n1));
                return;
            }
            let (lp, lf) = cell();
            let (rp, rf) = cell();
            let (fp, ff) = cell();
            let key = n1.key.clone();
            wk.spawn(move |wk| splitm(wk, key, bv, lp, rp, fp));
            let (dlp, dlf) = cell();
            let (drp, drf) = cell();
            let al = n1.left.clone();
            let ar = n1.right.clone();
            wk.spawn2(
                move |wk| diff(wk, al, lf, dlp),
                move |wk| diff(wk, ar, rf, drp),
            );
            ff.touch(wk, move |found, wk| {
                if found {
                    dlf.touch(wk, move |lv, wk| {
                        drf.touch(wk, move |rv, wk| join(wk, lv, rv, out));
                    });
                } else {
                    out.fulfill(wk, RTreap::node(n1.key.clone(), n1.prio, dlf, drf));
                }
            });
        });
    });
}

/// `intersect(a, b)` in CPS: keys in both treaps (dual of [`diff`]).
pub fn intersect<K: RKey>(
    wk: &Worker,
    a: FutRead<RTreap<K>>,
    b: FutRead<RTreap<K>>,
    out: FutWrite<RTreap<K>>,
) {
    a.touch(wk, move |av, wk| {
        let n1 = match av {
            RTreap::Leaf => {
                out.fulfill(wk, RTreap::Leaf);
                return;
            }
            RTreap::Node(n) => n,
        };
        b.touch(wk, move |bv, wk| {
            if bv.is_leaf() {
                out.fulfill(wk, RTreap::Leaf);
                return;
            }
            let (lp, lf) = cell();
            let (rp, rf) = cell();
            let (fp, ff) = cell();
            let key = n1.key.clone();
            wk.spawn(move |wk| splitm(wk, key, bv, lp, rp, fp));
            let (ilp, ilf) = cell();
            let (irp, irf) = cell();
            let al = n1.left.clone();
            let ar = n1.right.clone();
            wk.spawn2(
                move |wk| intersect(wk, al, lf, ilp),
                move |wk| intersect(wk, ar, rf, irp),
            );
            ff.touch(wk, move |found, wk| {
                if found {
                    out.fulfill(wk, RTreap::node(n1.key.clone(), n1.prio, ilf, irf));
                } else {
                    ilf.touch(wk, move |lv, wk| {
                        irf.touch(wk, move |rv, wk| join(wk, lv, rv, out));
                    });
                }
            });
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::Runtime;
    use pf_trees::seq::splitmix64;

    fn entries(keys: impl IntoIterator<Item = i64>) -> Vec<Entry<i64>> {
        keys.into_iter()
            .map(|k| (k, splitmix64(k as u64 ^ 0x5555)))
            .collect()
    }

    fn run_union(a: &[Entry<i64>], b: &[Entry<i64>], threads: usize) -> RTreap<i64> {
        let ta = ready(RTreap::from_entries(a));
        let tb = ready(RTreap::from_entries(b));
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| union(wk, ta, tb, op));
        of.expect()
    }

    fn run_diff(a: &[Entry<i64>], b: &[Entry<i64>], threads: usize) -> RTreap<i64> {
        let ta = ready(RTreap::from_entries(a));
        let tb = ready(RTreap::from_entries(b));
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| diff(wk, ta, tb, op));
        of.expect()
    }

    #[test]
    fn union_matches_oracle() {
        let a = entries(0..400);
        let b = entries(200..600);
        let t = run_union(&a, &b, 4);
        assert!(t.check_invariants());
        assert_eq!(t.to_sorted_vec(), (0..600).collect::<Vec<_>>());
        // Shape agreement with the sequential treap.
        let pu = PlainTreap::union(PlainTreap::from_entries(&a), PlainTreap::from_entries(&b));
        assert_eq!(t.height(), PlainTreap::height(&pu));
    }

    #[test]
    fn union_edge_cases() {
        let e: Vec<Entry<i64>> = vec![];
        let one = entries([3]);
        for (a, b) in [(&e, &e), (&one, &e), (&e, &one)] {
            let t = run_union(a, b, 2);
            let mut expect: Vec<i64> = a.iter().chain(b.iter()).map(|e| e.0).collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(t.to_sorted_vec(), expect);
        }
    }

    #[test]
    fn union_all_thread_counts() {
        let a = entries((0..500).map(|i| 2 * i));
        let b = entries((0..500).map(|i| 2 * i + 1));
        for threads in [1usize, 2, 4, 8] {
            let t = run_union(&a, &b, threads);
            assert_eq!(t.to_sorted_vec().len(), 1000, "threads={threads}");
            assert!(t.check_invariants());
        }
    }

    #[test]
    fn diff_matches_oracle() {
        let a = entries(0..300);
        let b = entries((0..300).filter(|k| k % 3 == 0));
        let t = run_diff(&a, &b, 4);
        assert!(t.check_invariants());
        assert_eq!(
            t.to_sorted_vec(),
            (0..300).filter(|k| k % 3 != 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn diff_complete_overlap() {
        let a = entries(0..100);
        let t = run_diff(&a, &a, 3);
        assert!(t.is_leaf());
    }

    #[test]
    fn intersect_matches_cost_model() {
        let a = entries((0..300).map(|i| 2 * i));
        let b = entries((0..300).map(|i| 3 * i));
        let (model_root, _) = pf_trees::treap::run_intersect(&a, &b, pf_trees::Mode::Pipelined);
        let ta = ready(RTreap::from_entries(&a));
        let tb = ready(RTreap::from_entries(&b));
        let (op, of) = cell();
        Runtime::new(4).run(move |wk| intersect(wk, ta, tb, op));
        let t = of.expect();
        assert!(t.check_invariants());
        assert_eq!(t.to_sorted_vec(), model_root.get().to_sorted_vec());
        assert_eq!(t.height(), model_root.get().height());
    }

    #[test]
    fn union_stress() {
        let a = entries((0..200).map(|i| 3 * i));
        let b = entries((0..200).map(|i| 3 * i + 1));
        let mut expect: Vec<i64> = a.iter().chain(b.iter()).map(|e| e.0).collect();
        expect.sort_unstable();
        for _ in 0..30 {
            let t = run_union(&a, &b, 4);
            assert_eq!(t.to_sorted_vec(), expect);
        }
    }
}
