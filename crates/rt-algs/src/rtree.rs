//! BST merge and split (§3.1) on the real runtime, in CPS.

use std::sync::Arc;

use pf_rt::{cell, ready, FutRead, FutWrite, Worker};

use crate::RKey;

/// A BST whose children are runtime future cells.
pub enum RTree<K> {
    /// Empty tree.
    Leaf,
    /// Interior node.
    Node(Arc<RNode<K>>),
}

/// Interior node of an [`RTree`].
pub struct RNode<K> {
    /// Key at this node.
    pub key: K,
    /// Future of the left subtree.
    pub left: FutRead<RTree<K>>,
    /// Future of the right subtree.
    pub right: FutRead<RTree<K>>,
}

impl<K> Clone for RTree<K> {
    fn clone(&self) -> Self {
        match self {
            RTree::Leaf => RTree::Leaf,
            RTree::Node(n) => RTree::Node(Arc::clone(n)),
        }
    }
}

impl<K: RKey> RTree<K> {
    /// Construct an interior node.
    pub fn node(key: K, left: FutRead<RTree<K>>, right: FutRead<RTree<K>>) -> Self {
        RTree::Node(Arc::new(RNode { key, left, right }))
    }

    /// Is this the empty tree?
    pub fn is_leaf(&self) -> bool {
        matches!(self, RTree::Leaf)
    }

    /// Build a balanced tree from sorted keys with pre-written cells.
    pub fn from_sorted(sorted: &[K]) -> RTree<K> {
        if sorted.is_empty() {
            return RTree::Leaf;
        }
        let mid = sorted.len() / 2;
        let left = Self::from_sorted(&sorted[..mid]);
        let right = Self::from_sorted(&sorted[mid + 1..]);
        RTree::node(sorted[mid].clone(), ready(left), ready(right))
    }

    /// Post-run inspection: keys in symmetric order.
    ///
    /// # Panics
    /// If any cell in the tree is unwritten (the run has not quiesced).
    pub fn to_sorted_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        let mut stack = vec![];
        // Iterative in-order to keep the native stack shallow even for the
        // lg n + lg m tall merge results.
        enum Frame<K> {
            Tree(RTree<K>),
            Key(K),
        }
        stack.push(Frame::Tree(self.clone()));
        while let Some(f) = stack.pop() {
            match f {
                Frame::Key(k) => out.push(k),
                Frame::Tree(RTree::Leaf) => {}
                Frame::Tree(RTree::Node(n)) => {
                    stack.push(Frame::Tree(n.right.expect()));
                    stack.push(Frame::Key(n.key.clone()));
                    stack.push(Frame::Tree(n.left.expect()));
                }
            }
        }
        out
    }

    /// Post-run inspection: height.
    pub fn height(&self) -> usize {
        match self {
            RTree::Leaf => 0,
            RTree::Node(n) => 1 + n.left.expect().height().max(n.right.expect().height()),
        }
    }
}

/// `split(s, t)` in CPS: partition the already-touched tree value `t` by
/// `s` into `< s` (`lout`) and `>= s` (`rout`).
pub fn split<K: RKey>(
    wk: &Worker,
    s: K,
    t: RTree<K>,
    lout: FutWrite<RTree<K>>,
    rout: FutWrite<RTree<K>>,
) {
    match t {
        RTree::Leaf => {
            lout.fulfill(wk, RTree::Leaf);
            rout.fulfill(wk, RTree::Leaf);
        }
        RTree::Node(n) => {
            if n.key >= s {
                let (rp1, rf1) = cell();
                rout.fulfill(wk, RTree::node(n.key.clone(), rf1, n.right.clone()));
                n.left.touch(wk, move |lv, wk| split(wk, s, lv, lout, rp1));
            } else {
                let (lp1, lf1) = cell();
                lout.fulfill(wk, RTree::node(n.key.clone(), n.left.clone(), lf1));
                n.right.touch(wk, move |rv, wk| split(wk, s, rv, lp1, rout));
            }
        }
    }
}

/// `merge(a, b)` in CPS (Figure 3): write the merged tree into `out`.
pub fn merge<K: RKey>(
    wk: &Worker,
    a: FutRead<RTree<K>>,
    b: FutRead<RTree<K>>,
    out: FutWrite<RTree<K>>,
) {
    a.touch(wk, move |av, wk| {
        match av {
            RTree::Leaf => b.touch(wk, move |bv, wk| out.fulfill(wk, bv)),
            RTree::Node(n) => b.touch(wk, move |bv, wk| {
                if bv.is_leaf() {
                    out.fulfill(wk, RTree::Node(n));
                    return;
                }
                // let (L2, R2) = ?split(v, B)
                let (lp2, lf2) = cell();
                let (rp2, rf2) = cell();
                let key = n.key.clone();
                wk.spawn(move |wk| split(wk, key, bv, lp2, rp2));
                // Node(v, ?merge(L, L2), ?merge(R, R2))
                let (mlp, mlf) = cell();
                let (mrp, mrf) = cell();
                out.fulfill(wk, RTree::node(n.key.clone(), mlf, mrf));
                let l = n.left.clone();
                let r = n.right.clone();
                wk.spawn2(
                    move |wk| merge(wk, l, lf2, mlp),
                    move |wk| merge(wk, r, rf2, mrp),
                );
            }),
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::Runtime;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }
    fn odds(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i + 1).collect()
    }

    fn run_merge(a: &[i64], b: &[i64], threads: usize) -> Vec<i64> {
        let ta = ready(RTree::from_sorted(a));
        let tb = ready(RTree::from_sorted(b));
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| merge(wk, ta, tb, op));
        of.expect().to_sorted_vec()
    }

    #[test]
    fn merge_small_cases() {
        for (na, nb) in [(0, 0), (1, 0), (0, 1), (5, 3), (16, 16)] {
            let (a, b) = (evens(na), odds(nb));
            let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
            expect.sort_unstable();
            assert_eq!(run_merge(&a, &b, 2), expect, "na={na} nb={nb}");
        }
    }

    #[test]
    fn merge_larger_all_thread_counts() {
        let (a, b) = (evens(2000), odds(1500));
        let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        for threads in [1, 2, 4, 8] {
            assert_eq!(run_merge(&a, &b, threads), expect, "threads={threads}");
        }
    }

    #[test]
    fn merge_stress_repeated() {
        let (a, b) = (evens(300), odds(300));
        let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        for _ in 0..50 {
            assert_eq!(run_merge(&a, &b, 4), expect);
        }
    }

    #[test]
    fn split_partitions() {
        let t = RTree::from_sorted(&evens(100));
        let (lp, lf) = cell();
        let (rp, rf) = cell();
        Runtime::new(3).run(move |wk| split(wk, 41i64, t, lp, rp));
        let l = lf.expect().to_sorted_vec();
        let r = rf.expect().to_sorted_vec();
        assert!(l.iter().all(|&k| k < 41));
        assert!(r.iter().all(|&k| k >= 41));
        assert_eq!(l.len() + r.len(), 100);
    }
}
