//! BST merge and split (§3.1) on the real runtime.
//!
//! The algorithm text lives once, engine-generically, in
//! [`pf_algs::merge`]; this module instantiates it at `B = `[`Worker`].
//! Monomorphization turns the generic CPS code into exactly the
//! hand-written runtime code (the `tick`/`flat` cost hooks compile to
//! nothing, `touch` lowers to the single-allocation in-cell suspension),
//! so the thin wrappers below carry no runtime cost.

use pf_algs::Mode;
use pf_rt::{ready, FutRead, FutWrite, Worker};

use crate::RKey;

/// A BST whose children are runtime future cells.
pub type RTree<K> = pf_algs::tree::Tree<Worker, K>;

/// Interior node of an [`RTree`].
pub type RNode<K> = pf_algs::tree::Node<Worker, K>;

/// Offline (no worker, pre-written cells) constructors for [`RTree`] —
/// inputs are marshalled before `Runtime::run` starts the measured
/// computation.
pub trait RtTree<K: RKey>: Sized {
    /// Build a balanced tree from sorted keys with pre-written cells.
    fn from_sorted_ready(sorted: &[K]) -> Self;
}

impl<K: RKey> RtTree<K> for RTree<K> {
    fn from_sorted_ready(sorted: &[K]) -> Self {
        if sorted.is_empty() {
            return RTree::Leaf;
        }
        let mid = sorted.len() / 2;
        let left = Self::from_sorted_ready(&sorted[..mid]);
        let right = Self::from_sorted_ready(&sorted[mid + 1..]);
        RTree::node(sorted[mid].clone(), ready(left), ready(right))
    }
}

/// `split(s, t)` in CPS: partition the already-touched tree value `t` by
/// `s` into `< s` (`lout`) and `>= s` (`rout`).
pub fn split<K: RKey>(
    wk: &Worker,
    s: K,
    t: RTree<K>,
    lout: FutWrite<RTree<K>>,
    rout: FutWrite<RTree<K>>,
) {
    pf_algs::merge::split(wk, s, t, lout, rout);
}

/// `merge(a, b)` in CPS (Figure 3): write the merged tree into `out`.
/// (The runtime has no clocks, so the pipelined and strict modes coincide;
/// the real engine always pipelines.)
pub fn merge<K: RKey>(
    wk: &Worker,
    a: FutRead<RTree<K>>,
    b: FutRead<RTree<K>>,
    out: FutWrite<RTree<K>>,
) {
    pf_algs::merge::merge(wk, a, b, out, Mode::Pipelined);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::{cell, Runtime};

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }
    fn odds(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i + 1).collect()
    }

    fn run_merge(a: &[i64], b: &[i64], threads: usize) -> Vec<i64> {
        let ta = ready(RTree::from_sorted_ready(a));
        let tb = ready(RTree::from_sorted_ready(b));
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| merge(wk, ta, tb, op));
        of.expect().to_sorted_vec()
    }

    #[test]
    fn merge_small_cases() {
        for (na, nb) in [(0, 0), (1, 0), (0, 1), (5, 3), (16, 16)] {
            let (a, b) = (evens(na), odds(nb));
            let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
            expect.sort_unstable();
            assert_eq!(run_merge(&a, &b, 2), expect, "na={na} nb={nb}");
        }
    }

    #[test]
    fn merge_larger_all_thread_counts() {
        let (a, b) = (evens(2000), odds(1500));
        let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        for threads in [1, 2, 4, 8] {
            assert_eq!(run_merge(&a, &b, threads), expect, "threads={threads}");
        }
    }

    #[test]
    fn merge_stress_repeated() {
        let (a, b) = (evens(300), odds(300));
        let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        for _ in 0..50 {
            assert_eq!(run_merge(&a, &b, 4), expect);
        }
    }

    #[test]
    fn split_partitions() {
        let t = RTree::from_sorted_ready(&evens(100));
        let (lp, lf) = cell();
        let (rp, rf) = cell();
        Runtime::new(3).run(move |wk| split(wk, 41i64, t, lp, rp));
        let l = lf.expect().to_sorted_vec();
        let r = rf.expect().to_sorted_vec();
        assert!(l.iter().all(|&k| k < 41));
        assert!(r.iter().all(|&k| k >= 41));
        assert_eq!(l.len() + r.len(), 100);
    }
}
