//! # pf-rt-algs — the paper's algorithms on the real multicore runtime
//!
//! Continuation-passing-style transcriptions of the §3 algorithms onto
//! [`pf_rt`]: every *touch* in the paper's code becomes one
//! [`pf_rt::FutRead::touch`] whose continuation is the rest of the
//! function; every `?f(...)` becomes a [`pf_rt::Worker::spawn`] writing
//! into cells created by the caller. The pipelining happens exactly as in
//! the cost model: nodes carry future children, so consumers chase a
//! producer down the tree while it is still working.
//!
//! Modules:
//! * [`rtree`] — BST merge + split (Thm 3.1) on real threads;
//! * [`rtreap`] — treap union / difference / join (§3.2–3.3);
//! * [`rrebalance`] — the three-phase §3.1 rebalance;
//! * [`rtwosix`] — the 2-6 tree bulk insert (Thm 3.13);
//! * [`rlist`] — the producer/consumer pipeline (Fig. 1) and Halstead's
//!   quicksort (Fig. 2);
//! * [`drivers`] — wall-clock measurement drivers for experiment E12;
//! * [`baselines`] — paired futures-vs-hand-pipelined drivers for
//!   E13/E16/E18 (mergesort, PVW waves, Cole's cascade on the
//!   round-barrier engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod drivers;
pub mod rlist;
pub mod rrebalance;
pub mod rtreap;
pub mod rtree;
pub mod rtwosix;

/// Key bound for the runtime algorithms (values cross threads).
pub trait RKey: Clone + Ord + Send + Sync + 'static {}
impl<T: Clone + Ord + Send + Sync + 'static> RKey for T {}
