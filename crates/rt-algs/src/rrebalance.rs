//! The §3.1 three-phase rebalance on the real runtime: bottom-up sizes,
//! top-down ranks, pipelined rank-split rebuild.
//!
//! The algorithm text lives once, engine-generically, in
//! [`pf_algs::rebalance`]; this module instantiates it at
//! `B = `[`Worker`].

use pf_algs::Mode;
use pf_rt::{FutRead, FutWrite, Worker};

use crate::rtree::RTree;
use crate::RKey;

/// Size-annotated tree (phase 1 output; built strictly, plain values).
pub type RSized<K> = pf_algs::rebalance::SizedTree<K>;

/// Node of an [`RSized`].
pub type RSizedNode<K> = pf_algs::rebalance::SizedNode<K>;

/// Rank-annotated tree with future children (phase 2 output).
pub type RRanked<K> = pf_algs::rebalance::RankedTree<Worker, K>;

/// Node of an [`RRanked`].
pub type RRankedNode<K> = pf_algs::rebalance::RankedNode<Worker, K>;

/// Phase 1 (CPS): bottom-up size annotation.
pub fn annotate_sizes<K: RKey>(wk: &Worker, t: FutRead<RTree<K>>, out: FutWrite<RSized<K>>) {
    pf_algs::rebalance::annotate_sizes(wk, t, out);
}

/// Phase 2 (CPS): top-down rank assignment.
pub fn assign_ranks<K: RKey>(wk: &Worker, t: RSized<K>, offset: usize, out: FutWrite<RRanked<K>>) {
    pf_algs::rebalance::assign_ranks(wk, t, offset, out);
}

/// Phase 3a (CPS): split by global rank (streams both sides like `splitm`).
pub fn split_rank<K: RKey>(
    wk: &Worker,
    r: usize,
    t: RRanked<K>,
    lout: FutWrite<RRanked<K>>,
    rout: FutWrite<RRanked<K>>,
    kout: FutWrite<K>,
) {
    pf_algs::rebalance::split_rank(wk, r, t, lout, rout, kout);
}

/// Phase 3b (CPS): pipelined rebuild of ranks `lo..hi` into a perfectly
/// balanced tree.
pub fn rebuild<K: RKey>(
    wk: &Worker,
    t: FutRead<RRanked<K>>,
    lo: usize,
    hi: usize,
    out: FutWrite<RTree<K>>,
) {
    pf_algs::rebalance::rebuild(wk, t, lo, hi, out, Mode::Pipelined);
}

/// The full three-phase rebalance.
pub fn rebalance<K: RKey>(wk: &Worker, t: FutRead<RTree<K>>, out: FutWrite<RTree<K>>) {
    pf_algs::rebalance::rebalance(wk, t, out, Mode::Pipelined);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::{cell, ready, Runtime};
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    /// Build an intentionally unbalanced RTree by naive insertion.
    fn unbalanced(keys: &[i64]) -> RTree<i64> {
        #[derive(Clone)]
        enum P {
            Leaf,
            Node(i64, Box<P>, Box<P>),
        }
        fn ins(t: P, k: i64) -> P {
            match t {
                P::Leaf => P::Node(k, Box::new(P::Leaf), Box::new(P::Leaf)),
                P::Node(key, l, r) => {
                    if k < key {
                        P::Node(key, Box::new(ins(*l, k)), r)
                    } else if k > key {
                        P::Node(key, l, Box::new(ins(*r, k)))
                    } else {
                        P::Node(key, l, r)
                    }
                }
            }
        }
        fn conv(t: &P) -> RTree<i64> {
            match t {
                P::Leaf => RTree::Leaf,
                P::Node(k, l, r) => RTree::node(*k, ready(conv(l)), ready(conv(r))),
            }
        }
        let mut p = P::Leaf;
        for &k in keys {
            p = ins(p, k);
        }
        conv(&p)
    }

    fn run_rebalance(keys: &[i64], threads: usize) -> RTree<i64> {
        let t = ready(unbalanced(keys));
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| rebalance(wk, t, op));
        of.expect()
    }

    #[test]
    fn balances_shuffled_input() {
        let mut keys: Vec<i64> = (0..500).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(3));
        let t = run_rebalance(&keys, 4);
        assert_eq!(t.to_sorted_vec(), (0..500).collect::<Vec<_>>());
        assert_eq!(t.height(), 9, "500 keys must pack into height 9");
    }

    #[test]
    fn balances_pathological_spine() {
        let keys: Vec<i64> = (0..256).collect(); // right spine of height 256
        let t = run_rebalance(&keys, 2);
        assert_eq!(t.height(), 9);
        assert_eq!(t.to_sorted_vec(), keys);
    }

    #[test]
    fn small_cases() {
        for n in [0usize, 1, 2, 3] {
            let keys: Vec<i64> = (0..n as i64).collect();
            let t = run_rebalance(&keys, 2);
            assert_eq!(t.to_sorted_vec(), keys, "n={n}");
        }
    }

    #[test]
    fn agrees_with_cost_model_version() {
        use pf_trees::Mode;
        let mut keys: Vec<i64> = (0..300).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(8));
        let (root, _) = pf_trees::rebalance::run_rebalance(&keys, Mode::Pipelined);
        let model = root.get();
        let t = run_rebalance(&keys, 3);
        assert_eq!(t.to_sorted_vec(), model.to_sorted_vec());
        assert_eq!(t.height(), model.height(), "identical deterministic shape");
    }

    #[test]
    fn stress_threads() {
        let mut keys: Vec<i64> = (0..200).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(9));
        for threads in [1usize, 2, 8] {
            for _ in 0..10 {
                let t = run_rebalance(&keys, threads);
                assert_eq!(t.to_sorted_vec(), (0..200).collect::<Vec<_>>());
            }
        }
    }
}
