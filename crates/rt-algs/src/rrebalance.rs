//! The §3.1 three-phase rebalance on the real runtime, in CPS:
//! bottom-up sizes, top-down ranks, pipelined rank-split rebuild.

use std::sync::Arc;

use pf_rt::{cell, FutRead, FutWrite, Worker};

use crate::rtree::RTree;
use crate::RKey;

/// Size-annotated tree (phase 1 output; built strictly, plain values).
pub enum RSized<K> {
    /// Empty.
    Leaf,
    /// Node with cached sizes.
    Node(Arc<RSizedNode<K>>),
}

/// Node of an [`RSized`].
pub struct RSizedNode<K> {
    /// Key.
    pub key: K,
    /// Subtree size.
    pub size: usize,
    /// Left-subtree size (rank offset cache).
    pub left_size: usize,
    /// Left subtree.
    pub left: RSized<K>,
    /// Right subtree.
    pub right: RSized<K>,
}

impl<K> Clone for RSized<K> {
    fn clone(&self) -> Self {
        match self {
            RSized::Leaf => RSized::Leaf,
            RSized::Node(n) => RSized::Node(Arc::clone(n)),
        }
    }
}

impl<K> RSized<K> {
    fn size(&self) -> usize {
        match self {
            RSized::Leaf => 0,
            RSized::Node(n) => n.size,
        }
    }
}

/// Rank-annotated tree with future children (phase 2 output).
pub enum RRanked<K> {
    /// Empty.
    Leaf,
    /// Node with its global in-order rank.
    Node(Arc<RRankedNode<K>>),
}

/// Node of an [`RRanked`].
pub struct RRankedNode<K> {
    /// Key.
    pub key: K,
    /// Global in-order rank.
    pub rank: usize,
    /// Left subtree future.
    pub left: FutRead<RRanked<K>>,
    /// Right subtree future.
    pub right: FutRead<RRanked<K>>,
}

impl<K> Clone for RRanked<K> {
    fn clone(&self) -> Self {
        match self {
            RRanked::Leaf => RRanked::Leaf,
            RRanked::Node(n) => RRanked::Node(Arc::clone(n)),
        }
    }
}

/// Phase 1 (CPS): bottom-up size annotation.
pub fn annotate_sizes<K: RKey>(wk: &Worker, t: FutRead<RTree<K>>, out: FutWrite<RSized<K>>) {
    t.touch(wk, move |tv, wk| match tv {
        RTree::Leaf => out.fulfill(wk, RSized::Leaf),
        RTree::Node(n) => {
            let (lp, lf) = cell();
            let (rp, rf) = cell();
            let (l, r) = (n.left.clone(), n.right.clone());
            wk.spawn2(
                move |wk| annotate_sizes(wk, l, lp),
                move |wk| annotate_sizes(wk, r, rp),
            );
            lf.touch(wk, move |lv, wk| {
                rf.touch(wk, move |rv, wk| {
                    let left_size = lv.size();
                    let size = 1 + left_size + rv.size();
                    out.fulfill(
                        wk,
                        RSized::Node(Arc::new(RSizedNode {
                            key: n.key.clone(),
                            size,
                            left_size,
                            left: lv,
                            right: rv,
                        })),
                    );
                });
            });
        }
    });
}

/// Phase 2 (CPS): top-down rank assignment.
pub fn assign_ranks<K: RKey>(wk: &Worker, t: RSized<K>, offset: usize, out: FutWrite<RRanked<K>>) {
    match t {
        RSized::Leaf => out.fulfill(wk, RRanked::Leaf),
        RSized::Node(n) => {
            let rank = offset + n.left_size;
            let (lp, lf) = cell();
            let (rp, rf) = cell();
            out.fulfill(
                wk,
                RRanked::Node(Arc::new(RRankedNode {
                    key: n.key.clone(),
                    rank,
                    left: lf,
                    right: rf,
                })),
            );
            let (l, r) = (n.left.clone(), n.right.clone());
            wk.spawn2(
                move |wk| assign_ranks(wk, l, offset, lp),
                move |wk| assign_ranks(wk, r, rank + 1, rp),
            );
        }
    }
}

/// Phase 3a (CPS): split by global rank (streams both sides like `splitm`).
pub fn split_rank<K: RKey>(
    wk: &Worker,
    r: usize,
    t: RRanked<K>,
    lout: FutWrite<RRanked<K>>,
    rout: FutWrite<RRanked<K>>,
    kout: FutWrite<K>,
) {
    match t {
        RRanked::Leaf => unreachable!("split_rank: rank {r} absent"),
        RRanked::Node(n) => {
            if r == n.rank {
                kout.fulfill(wk, n.key.clone());
                let (left, right) = (n.left.clone(), n.right.clone());
                left.touch(wk, move |lv, wk| {
                    lout.fulfill(wk, lv);
                    right.touch(wk, move |rv, wk| rout.fulfill(wk, rv));
                });
            } else if r < n.rank {
                let (rp1, rf1) = cell();
                rout.fulfill(
                    wk,
                    RRanked::Node(Arc::new(RRankedNode {
                        key: n.key.clone(),
                        rank: n.rank,
                        left: rf1,
                        right: n.right.clone(),
                    })),
                );
                let l = n.left.clone();
                l.touch(wk, move |lv, wk| split_rank(wk, r, lv, lout, rp1, kout));
            } else {
                let (lp1, lf1) = cell();
                lout.fulfill(
                    wk,
                    RRanked::Node(Arc::new(RRankedNode {
                        key: n.key.clone(),
                        rank: n.rank,
                        left: n.left.clone(),
                        right: lf1,
                    })),
                );
                let rgt = n.right.clone();
                rgt.touch(wk, move |rv, wk| split_rank(wk, r, rv, lp1, rout, kout));
            }
        }
    }
}

/// Phase 3b (CPS): pipelined rebuild of ranks `lo..hi` into a perfectly
/// balanced tree.
pub fn rebuild<K: RKey>(
    wk: &Worker,
    t: FutRead<RRanked<K>>,
    lo: usize,
    hi: usize,
    out: FutWrite<RTree<K>>,
) {
    if lo >= hi {
        out.fulfill(wk, RTree::Leaf);
        return;
    }
    t.touch(wk, move |tv, wk| {
        let mid = lo + (hi - lo) / 2;
        let (lp, lf) = cell();
        let (rp, rf) = cell();
        let (kp, kf) = cell();
        wk.spawn(move |wk| split_rank(wk, mid, tv, lp, rp, kp));
        let (blp, blf) = cell();
        let (brp, brf) = cell();
        wk.spawn2(
            move |wk| rebuild(wk, lf, lo, mid, blp),
            move |wk| rebuild(wk, rf, mid + 1, hi, brp),
        );
        kf.touch(wk, move |key, wk| {
            out.fulfill(wk, RTree::node(key, blf, brf));
        });
    });
}

/// The full three-phase rebalance.
pub fn rebalance<K: RKey>(wk: &Worker, t: FutRead<RTree<K>>, out: FutWrite<RTree<K>>) {
    let (sp, sf) = cell();
    wk.spawn(move |wk| annotate_sizes(wk, t, sp));
    sf.touch(wk, move |sv, wk| {
        let n = sv.size();
        let (rp, rf) = cell();
        wk.spawn(move |wk| assign_ranks(wk, sv, 0, rp));
        rebuild(wk, rf, 0, n, out);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::{ready, Runtime};
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    /// Build an intentionally unbalanced RTree by naive insertion.
    fn unbalanced(keys: &[i64]) -> RTree<i64> {
        #[derive(Clone)]
        enum P {
            Leaf,
            Node(i64, Box<P>, Box<P>),
        }
        fn ins(t: P, k: i64) -> P {
            match t {
                P::Leaf => P::Node(k, Box::new(P::Leaf), Box::new(P::Leaf)),
                P::Node(key, l, r) => {
                    if k < key {
                        P::Node(key, Box::new(ins(*l, k)), r)
                    } else if k > key {
                        P::Node(key, l, Box::new(ins(*r, k)))
                    } else {
                        P::Node(key, l, r)
                    }
                }
            }
        }
        fn conv(t: &P) -> RTree<i64> {
            match t {
                P::Leaf => RTree::Leaf,
                P::Node(k, l, r) => RTree::node(*k, ready(conv(l)), ready(conv(r))),
            }
        }
        let mut p = P::Leaf;
        for &k in keys {
            p = ins(p, k);
        }
        conv(&p)
    }

    fn run_rebalance(keys: &[i64], threads: usize) -> RTree<i64> {
        let t = ready(unbalanced(keys));
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| rebalance(wk, t, op));
        of.expect()
    }

    #[test]
    fn balances_shuffled_input() {
        let mut keys: Vec<i64> = (0..500).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(3));
        let t = run_rebalance(&keys, 4);
        assert_eq!(t.to_sorted_vec(), (0..500).collect::<Vec<_>>());
        assert_eq!(t.height(), 9, "500 keys must pack into height 9");
    }

    #[test]
    fn balances_pathological_spine() {
        let keys: Vec<i64> = (0..256).collect(); // right spine of height 256
        let t = run_rebalance(&keys, 2);
        assert_eq!(t.height(), 9);
        assert_eq!(t.to_sorted_vec(), keys);
    }

    #[test]
    fn small_cases() {
        for n in [0usize, 1, 2, 3] {
            let keys: Vec<i64> = (0..n as i64).collect();
            let t = run_rebalance(&keys, 2);
            assert_eq!(t.to_sorted_vec(), keys, "n={n}");
        }
    }

    #[test]
    fn agrees_with_cost_model_version() {
        use pf_trees::Mode;
        let mut keys: Vec<i64> = (0..300).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(8));
        let (root, _) = pf_trees::rebalance::run_rebalance(&keys, Mode::Pipelined);
        let model = root.get();
        let t = run_rebalance(&keys, 3);
        assert_eq!(t.to_sorted_vec(), model.to_sorted_vec());
        assert_eq!(t.height(), model.height(), "identical deterministic shape");
    }

    #[test]
    fn stress_threads() {
        let mut keys: Vec<i64> = (0..200).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(9));
        for threads in [1usize, 2, 8] {
            for _ in 0..10 {
                let t = run_rebalance(&keys, threads);
                assert_eq!(t.to_sorted_vec(), (0..200).collect::<Vec<_>>());
            }
        }
    }
}
