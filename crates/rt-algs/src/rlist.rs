//! The producer/consumer pipeline (Figure 1) and Halstead's quicksort
//! (Figure 2) on the real runtime.
//!
//! The algorithm text lives once, engine-generically, in
//! [`pf_algs::list`]; this module instantiates it at `B = `[`Worker`].

use pf_algs::Mode;
use pf_rt::{ready, FutWrite, Worker};

use crate::RKey;

/// A list whose tail is a runtime future.
pub type RList<K> = pf_algs::list::List<Worker, K>;

/// Offline (no worker, pre-written cells) constructors for [`RList`].
pub trait RtList<K: RKey>: Sized {
    /// Build from a slice with pre-written tails.
    fn from_slice_ready(keys: &[K]) -> Self;
}

impl<K: RKey> RtList<K> for RList<K> {
    fn from_slice_ready(keys: &[K]) -> Self {
        let mut cur = RList::Nil;
        for k in keys.iter().rev() {
            cur = RList::cons(k.clone(), ready(cur));
        }
        cur
    }
}

/// `produce(n)`: build the list `n, n−1, …, 1`, one future per tail.
pub fn produce(wk: &Worker, n: u64, out: FutWrite<RList<u64>>) {
    pf_algs::list::produce(wk, n, out);
}

/// `consume`: fold the list with `+`, chasing the producer tail by tail.
pub fn consume(wk: &Worker, l: RList<u64>, acc: u64, out: FutWrite<u64>) {
    pf_algs::list::consume(wk, l, acc, out);
}

/// `partition(pivot, l)` in CPS: stream `l` into `< pivot` and `>= pivot`
/// output lists, element by element.
pub fn partition<K: RKey>(
    wk: &Worker,
    pivot: K,
    l: RList<K>,
    lout: FutWrite<RList<K>>,
    gout: FutWrite<RList<K>>,
) {
    pf_algs::list::partition(wk, pivot, l, lout, gout);
}

/// `qs(l, rest)` in CPS (Figure 2): sort `l`, append `rest`.
pub fn qs<K: RKey>(wk: &Worker, l: RList<K>, rest: RList<K>, out: FutWrite<RList<K>>) {
    pf_algs::list::qs(wk, l, rest, out, Mode::Pipelined);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::{cell, Runtime};
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    #[test]
    fn pipeline_sums() {
        for n in [0u64, 1, 10, 1000] {
            let (sp, sf) = cell();
            Runtime::new(2).run(move |wk| {
                let (lp, lf) = cell();
                wk.spawn(move |wk| produce(wk, n, lp));
                lf.touch(wk, move |l, wk| consume(wk, l, 0, sp));
            });
            assert_eq!(sf.expect(), n * (n + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn pipeline_many_threads() {
        let n = 20_000u64;
        let (sp, sf) = cell();
        Runtime::new(8).run(move |wk| {
            let (lp, lf) = cell();
            wk.spawn(move |wk| produce(wk, n, lp));
            lf.touch(wk, move |l, wk| consume(wk, l, 0, sp));
        });
        assert_eq!(sf.expect(), n * (n + 1) / 2);
    }

    fn run_qs(keys: &[i64], threads: usize) -> Vec<i64> {
        let l = RList::from_slice_ready(keys);
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| qs(wk, l, RList::Nil, op));
        of.expect().collect_vec()
    }

    #[test]
    fn quicksort_sorts() {
        for n in [0usize, 1, 2, 10, 500] {
            let mut keys: Vec<i64> = (0..n as i64).collect();
            keys.shuffle(&mut SmallRng::seed_from_u64(n as u64 + 1));
            let sorted = run_qs(&keys, 4);
            assert_eq!(sorted, (0..n as i64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn quicksort_with_duplicates() {
        let keys = vec![5i64, 3, 5, 1, 3, 5, 0, 0];
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_qs(&keys, 3), expect);
    }

    #[test]
    fn quicksort_stress() {
        let mut keys: Vec<i64> = (0..800).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(77));
        let expect: Vec<i64> = (0..800).collect();
        for threads in [1, 2, 8] {
            assert_eq!(run_qs(&keys, threads), expect, "threads={threads}");
        }
    }
}
