//! The producer/consumer pipeline (Figure 1) and Halstead's quicksort
//! (Figure 2) on the real runtime.

use std::sync::Arc;

use pf_rt::{cell, ready, FutRead, FutWrite, Worker};

use crate::RKey;

/// A list whose tail is a runtime future.
pub enum RList<K> {
    /// Empty list.
    Nil,
    /// Cons cell: head value, future tail.
    Cons(Arc<(K, FutRead<RList<K>>)>),
}

impl<K> Clone for RList<K> {
    fn clone(&self) -> Self {
        match self {
            RList::Nil => RList::Nil,
            RList::Cons(rc) => RList::Cons(Arc::clone(rc)),
        }
    }
}

impl<K: RKey> RList<K> {
    /// Cons constructor.
    pub fn cons(head: K, tail: FutRead<RList<K>>) -> Self {
        RList::Cons(Arc::new((head, tail)))
    }

    /// Build from a slice with pre-written tails.
    pub fn from_slice(keys: &[K]) -> RList<K> {
        let mut cur = RList::Nil;
        for k in keys.iter().rev() {
            cur = RList::cons(k.clone(), ready(cur));
        }
        cur
    }

    /// Post-run inspection: collect to a `Vec`.
    pub fn collect_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        while let RList::Cons(rc) = cur {
            out.push(rc.0.clone());
            cur = rc.1.expect();
        }
        out
    }
}

/// `produce(n)`: build the list `n, n−1, …, 1`, one future per tail.
pub fn produce(wk: &Worker, n: u64, out: FutWrite<RList<u64>>) {
    if n == 0 {
        out.fulfill(wk, RList::Nil);
    } else {
        let (tp, tf) = cell();
        out.fulfill(wk, RList::cons(n, tf));
        wk.spawn(move |wk| produce(wk, n - 1, tp));
    }
}

/// `consume`: fold the list with `+`, chasing the producer tail by tail.
pub fn consume(wk: &Worker, l: RList<u64>, acc: u64, out: FutWrite<u64>) {
    match l {
        RList::Nil => out.fulfill(wk, acc),
        RList::Cons(rc) => {
            let h = rc.0;
            rc.1.touch(wk, move |t, wk| consume(wk, t, acc + h, out));
        }
    }
}

/// `partition(pivot, l)` in CPS: stream `l` into `< pivot` and `>= pivot`
/// output lists, element by element.
pub fn partition<K: RKey>(
    wk: &Worker,
    pivot: K,
    l: RList<K>,
    lout: FutWrite<RList<K>>,
    gout: FutWrite<RList<K>>,
) {
    match l {
        RList::Nil => {
            lout.fulfill(wk, RList::Nil);
            gout.fulfill(wk, RList::Nil);
        }
        RList::Cons(rc) => {
            let h = rc.0.clone();
            let tail = rc.1.clone();
            if h < pivot {
                let (np, nf) = cell();
                lout.fulfill(wk, RList::cons(h, nf));
                tail.touch(wk, move |t, wk| partition(wk, pivot, t, np, gout));
            } else {
                let (np, nf) = cell();
                gout.fulfill(wk, RList::cons(h, nf));
                tail.touch(wk, move |t, wk| partition(wk, pivot, t, lout, np));
            }
        }
    }
}

/// `qs(l, rest)` in CPS (Figure 2): sort `l`, append `rest`.
pub fn qs<K: RKey>(wk: &Worker, l: RList<K>, rest: RList<K>, out: FutWrite<RList<K>>) {
    match l {
        RList::Nil => out.fulfill(wk, rest),
        RList::Cons(rc) => {
            let h = rc.0.clone();
            let tail = rc.1.clone();
            tail.touch(wk, move |t, wk| {
                let (lp, lf) = cell();
                let (gp, gf) = cell();
                let pivot = h.clone();
                wk.spawn(move |wk| partition(wk, pivot, t, lp, gp));
                let (gout_p, gout_f) = cell();
                wk.spawn(move |wk| {
                    gf.touch(wk, move |g, wk| qs(wk, g, rest, gout_p));
                });
                let mid = RList::cons(h, gout_f);
                lf.touch(wk, move |lv, wk| qs(wk, lv, mid, out));
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_rt::Runtime;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    #[test]
    fn pipeline_sums() {
        for n in [0u64, 1, 10, 1000] {
            let (sp, sf) = cell();
            Runtime::new(2).run(move |wk| {
                let (lp, lf) = cell();
                wk.spawn(move |wk| produce(wk, n, lp));
                lf.touch(wk, move |l, wk| consume(wk, l, 0, sp));
            });
            assert_eq!(sf.expect(), n * (n + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn pipeline_many_threads() {
        let n = 20_000u64;
        let (sp, sf) = cell();
        Runtime::new(8).run(move |wk| {
            let (lp, lf) = cell();
            wk.spawn(move |wk| produce(wk, n, lp));
            lf.touch(wk, move |l, wk| consume(wk, l, 0, sp));
        });
        assert_eq!(sf.expect(), n * (n + 1) / 2);
    }

    fn run_qs(keys: &[i64], threads: usize) -> Vec<i64> {
        let l = RList::from_slice(keys);
        let (op, of) = cell();
        Runtime::new(threads).run(move |wk| qs(wk, l, RList::Nil, op));
        of.expect().collect_vec()
    }

    #[test]
    fn quicksort_sorts() {
        for n in [0usize, 1, 2, 10, 500] {
            let mut keys: Vec<i64> = (0..n as i64).collect();
            keys.shuffle(&mut SmallRng::seed_from_u64(n as u64 + 1));
            let sorted = run_qs(&keys, 4);
            assert_eq!(sorted, (0..n as i64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn quicksort_with_duplicates() {
        let keys = vec![5i64, 3, 5, 1, 3, 5, 0, 0];
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_qs(&keys, 3), expect);
    }

    #[test]
    fn quicksort_stress() {
        let mut keys: Vec<i64> = (0..800).collect();
        keys.shuffle(&mut SmallRng::seed_from_u64(77));
        let expect: Vec<i64> = (0..800).collect();
        for threads in [1, 2, 8] {
            assert_eq!(run_qs(&keys, threads), expect, "threads={threads}");
        }
    }
}
