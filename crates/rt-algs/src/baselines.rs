//! Wall-clock drivers for the futures-vs-hand-pipelined head-to-heads
//! (experiments E13/E16/E18): each pair times the *same computation* twice
//! on the same warm shared pool — once as the futures program (the
//! scheduler discovers the pipeline) and once as the hand-scheduled
//! round-barrier baseline ([`PoolRounds`], one synchronous wave per
//! round). Sequential round execution ([`SeqRounds`]) and `sort_unstable`
//! give the single-thread reference points.

use std::time::{Duration, Instant};

use pf_algs::cole::{cole_sort_with, ColeStats};
use pf_algs::pvw::{pvw_insert_many_with, PvwStats, PvwTree};
use pf_algs::{Mode, SeqRounds};
use pf_rt::{cell, PoolRounds, Runtime};

/// Time the futures mergesort (`pf_algs::mergesort::msort`) on `threads`
/// workers — the implicit-pipelining side of the E18 comparison.
pub fn time_msort_rt(keys: &[i64], threads: usize) -> Duration {
    let rt = Runtime::shared(threads);
    let (op, of) = cell();
    let keys_v = keys.to_vec();
    let start = Instant::now();
    rt.run(move |wk| pf_algs::mergesort::msort(wk, keys_v, op, Mode::Pipelined));
    let dt = start.elapsed();
    assert_eq!(of.expect().to_sorted_vec().len(), keys.len());
    dt
}

/// Sequential sorting baseline: `sort_unstable` on a fresh copy (what a
/// sequential implementation would do).
pub fn time_sort_seq(keys: &[i64]) -> Duration {
    let mut v = keys.to_vec();
    let start = Instant::now();
    v.sort_unstable();
    let dt = start.elapsed();
    assert!(v.windows(2).all(|w| w[0] <= w[1]));
    dt
}

/// Time Cole's cascade with each stage's merges fanned out over `threads`
/// pool workers — the hand-pipelined side of the E18 comparison. Returns
/// the elapsed time and the (executor-independent) cascade statistics.
pub fn time_cole_pool(keys: &[i64], threads: usize) -> (Duration, ColeStats) {
    let mut exec = PoolRounds::new(threads);
    let start = Instant::now();
    let (sorted, stats) = cole_sort_with(keys, &mut exec);
    let dt = start.elapsed();
    assert_eq!(sorted.len(), keys.len());
    (dt, stats)
}

/// Time Cole's cascade with the stages run inline ([`SeqRounds`]) — the
/// single-thread reference for the round-barrier engine.
pub fn time_cole_seq(keys: &[i64]) -> (Duration, ColeStats) {
    let mut exec = SeqRounds::new();
    let start = Instant::now();
    let (sorted, stats) = cole_sort_with(keys, &mut exec);
    let dt = start.elapsed();
    assert_eq!(sorted.len(), keys.len());
    (dt, stats)
}

/// Time the PVW wave pipeline with each round's tasks fanned out over
/// `threads` pool workers — the hand-pipelined side of the E16 comparison.
/// Tree construction is excluded (input marshalling).
pub fn time_pvw_pool(initial: &[i64], newk: &[i64], threads: usize) -> (Duration, PvwStats) {
    let mut tree = PvwTree::from_sorted(initial);
    let mut exec = PoolRounds::new(threads);
    let start = Instant::now();
    let stats = pvw_insert_many_with(&mut tree, newk, &mut exec);
    let dt = start.elapsed();
    assert!(tree.to_sorted_vec().len() >= initial.len());
    (dt, stats)
}

/// Time the PVW wave pipeline with the rounds run inline ([`SeqRounds`]) —
/// the single-thread reference for the round-barrier engine.
pub fn time_pvw_seq(initial: &[i64], newk: &[i64]) -> (Duration, PvwStats) {
    let mut tree = PvwTree::from_sorted(initial);
    let mut exec = SeqRounds::new();
    let start = Instant::now();
    let stats = pvw_insert_many_with(&mut tree, newk, &mut exec);
    let dt = start.elapsed();
    assert!(tree.to_sorted_vec().len() >= initial.len());
    (dt, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrambled(n: usize) -> Vec<i64> {
        // Odd-stride permutation of 0..n: deterministic, full-period.
        let stride = 0x9E37i64 | 1;
        (0..n as i64).map(|i| (i * stride) % n as i64).collect()
    }

    #[test]
    fn msort_driver_sorts() {
        assert!(time_msort_rt(&scrambled(2000), 2) > Duration::ZERO);
        let _ = time_sort_seq(&scrambled(2000));
    }

    #[test]
    fn cole_pool_matches_seq_stats() {
        let keys = scrambled(1 << 9);
        let (_, s_pool) = time_cole_pool(&keys, 2);
        let (_, s_seq) = time_cole_seq(&keys);
        assert_eq!(s_pool, s_seq, "stats must be executor-independent");
        assert_eq!(s_pool.stages, 3 * 9);
    }

    #[test]
    fn pvw_pool_matches_seq_stats() {
        let initial: Vec<i64> = (0..2000).map(|i| 2 * i).collect();
        let newk: Vec<i64> = (0..128).map(|i| 2 * i + 1).collect();
        let (_, s_pool) = time_pvw_pool(&initial, &newk, 2);
        let (_, s_seq) = time_pvw_seq(&initial, &newk);
        assert_eq!(s_pool, s_seq, "stats must be executor-independent");
        let _ = crate::drivers::time_insert_rt(&initial, &newk, 2);
    }
}
