//! The **round-barrier** execution surface for the hand-pipelined
//! baselines (Cole's cascading mergesort, the PVW synchronous wave
//! pipeline).
//!
//! Those algorithms are *synchronous*: time advances in global rounds, and
//! every task of round `r` reads only state produced in rounds `< r`. That
//! discipline is exactly what futures make unnecessary — but to compare
//! wall-clocks fairly, the baselines must run on the same worker pool as
//! the futures programs. [`RoundExec`] captures the one primitive they
//! need: *execute a batch of independent jobs and wait for all of them*
//! (the barrier). Two engines implement it:
//!
//! * [`SeqRounds`] (this crate) — runs jobs inline in submission order;
//!   the virtual-time instantiation. Stage/round counts and counted work
//!   are bit-identical to the historical single-threaded simulators, which
//!   the `pinned_baselines` regression test pins.
//! * `pf_rt::rounds::PoolRounds` — dispatches each job to the persistent
//!   work-stealing pool and uses run-to-quiescence as the barrier; the
//!   wall-clock instantiation for the E16/E18 head-to-heads.
//!
//! Jobs are **pure**: they own their inputs (cloned out of the shared
//! state during planning) and return a result; the caller applies all
//! updates sequentially after the barrier. This compute/apply split is the
//! standard synchronous-PRAM convention — all reads see the previous
//! round — and is what makes the parallel instantiation race-free without
//! any locking in the algorithm itself.

/// A boxed round job: owns its inputs, returns its result.
pub type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// A round that failed in a containable way: a job panicked, the round's
/// session was cancelled or timed out, or the engine's pool stalled.
/// Engine-agnostic (this crate names no engine types): the `message`
/// carries the engine's own rendering of the fault.
#[derive(Debug, Clone)]
pub struct RoundError {
    /// Human-readable description of what failed.
    pub message: String,
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "round failed: {}", self.message)
    }
}

impl std::error::Error for RoundError {}

/// An executor of synchronous rounds: run all `jobs` (in any order, on any
/// number of workers) and return their results **in submission order**
/// after all of them finished — the round barrier.
pub trait RoundExec {
    /// Execute one round. Implementations must not begin returning until
    /// every job has completed.
    fn round<T: Send + 'static>(&mut self, jobs: Vec<Job<T>>) -> Vec<T>;

    /// Fault-contained [`round`](RoundExec::round): engines whose rounds
    /// can fail recoverably (a panicking job on a pool that contains
    /// failure, a per-round deadline) override this to return the fault
    /// as a value with the engine left reusable. The default — correct
    /// for engines with no failure containment, like [`SeqRounds`] —
    /// simply delegates and never returns `Err`.
    fn try_round<T: Send + 'static>(&mut self, jobs: Vec<Job<T>>) -> Result<Vec<T>, RoundError> {
        Ok(self.round(jobs))
    }

    /// Number of [`round`](RoundExec::round) calls so far (some may have
    /// been empty); for reporting only.
    fn rounds_executed(&self) -> u64;
}

/// The sequential round engine: jobs run inline, in submission order —
/// the virtual-time baseline the model numbers come from.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeqRounds {
    executed: u64,
}

impl SeqRounds {
    /// A fresh sequential round engine.
    pub fn new() -> Self {
        SeqRounds::default()
    }
}

impl RoundExec for SeqRounds {
    fn round<T: Send + 'static>(&mut self, jobs: Vec<Job<T>>) -> Vec<T> {
        self.executed += 1;
        jobs.into_iter().map(|j| j()).collect()
    }

    fn rounds_executed(&self) -> u64 {
        self.executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_rounds_preserve_order() {
        let mut ex = SeqRounds::new();
        let jobs: Vec<Job<usize>> = (0..10usize)
            .map(|i| Box::new(move || i * i) as Job<_>)
            .collect();
        let out = ex.round(jobs);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(ex.rounds_executed(), 1);
    }

    #[test]
    fn empty_round_counts() {
        let mut ex = SeqRounds::new();
        let out: Vec<u8> = ex.round(Vec::new());
        assert!(out.is_empty());
        assert_eq!(ex.rounds_executed(), 1);
    }
}
