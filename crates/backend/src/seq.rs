//! The sequential oracle engine: every primitive is the cheapest thing that
//! preserves the semantics.
//!
//! [`Seq`] executes a futures program on one thread in *creation order* —
//! [`PipeBackend::fork`] runs the body inline to completion, exactly like
//! the simulator's eager evaluation but with no clocks, no counters, and no
//! trace. A cell is therefore always written by the time it is touched (for
//! the class of programs in the paper, which only touch previously created
//! cells); touching an unwritten cell panics, because it means the program
//! is outside that class.
//!
//! The oracle is what the other two engines are checked against: same
//! values, same tree shapes, no pipelining anywhere.

use std::sync::{Arc, OnceLock};

use crate::{PipeBackend, Val};

/// A future cell of the sequential engine: a write-once slot. Serves as
/// both the read and the write pointer ([`Seq`] enforces single assignment
/// dynamically; the other engines enforce it by consuming a distinct write
/// pointer).
pub struct SeqFut<T>(Arc<OnceLock<T>>);

impl<T> Clone for SeqFut<T> {
    fn clone(&self) -> Self {
        SeqFut(Arc::clone(&self.0))
    }
}

impl<T: Clone> SeqFut<T> {
    /// Clone the value out, if written.
    pub fn peek(&self) -> Option<T> {
        self.0.get().cloned()
    }

    /// [`SeqFut::peek`], panicking on an unwritten cell.
    pub fn expect(&self) -> T {
        self.peek().expect("future cell not written")
    }
}

/// The sequential oracle engine. A unit type: it carries no state at all.
#[derive(Clone, Copy, Default)]
pub struct Seq;

impl Seq {
    /// Run a program on the sequential engine.
    pub fn run<R>(f: impl FnOnce(&Seq) -> R) -> R {
        f(&Seq)
    }

    /// Run a program on a dedicated thread with a large stack.
    ///
    /// Inline eager evaluation nests one native frame per fork on the
    /// critical path, and list pipelines (Figure 1, quicksort) nest Θ(n)
    /// deep — same reason `pf_core::run_with_big_stack` exists.
    pub fn run_with_stack<R: Send>(stack: usize, f: impl FnOnce(&Seq) -> R + Send) -> R {
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .stack_size(stack)
                .name("pf-seq".into())
                .spawn_scoped(scope, || f(&Seq))
                .expect("failed to spawn sequential-engine thread")
                .join()
                .expect("sequential-engine thread panicked")
        })
    }
}

impl PipeBackend for Seq {
    type Fut<T: 'static> = SeqFut<T>;
    type Wr<T: 'static> = SeqFut<T>;

    fn cell<T: Val>(&self) -> (SeqFut<T>, SeqFut<T>) {
        let c = SeqFut(Arc::new(OnceLock::new()));
        (c.clone(), c)
    }

    fn fulfill<T: Val>(&self, w: SeqFut<T>, value: T) {
        if w.0.set(value).is_err() {
            panic!("future cell written twice");
        }
    }

    fn touch<T: Val>(&self, f: &SeqFut<T>, k: impl FnOnce(&Self, T) + Send + 'static) {
        let v =
            f.0.get()
                .expect(
                    "future cell touched before it was written: the program is \
                 not evaluable in eager (creation) order",
                )
                .clone();
        k(self, v);
    }

    fn fork(&self, body: impl FnOnce(&Self) + Send + 'static) {
        body(self);
    }

    fn peek<T: Val>(f: &SeqFut<T>) -> Option<T> {
        f.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip() {
        Seq::run(|bk| {
            let (w, r) = bk.cell::<u64>();
            bk.fulfill(w, 41);
            let (ow, or) = bk.cell::<u64>();
            bk.touch(&r, move |bk, v| bk.fulfill(ow, v + 1));
            assert_eq!(or.expect(), 42);
        });
    }

    #[test]
    fn fork_runs_inline_in_creation_order() {
        Seq::run(|bk| {
            let (w, r) = bk.cell::<u32>();
            bk.fork(move |bk| bk.fulfill(w, 7));
            // The fork body already ran: creation-order evaluation.
            assert_eq!(r.peek(), Some(7));
        });
    }

    #[test]
    fn fork2_runs_both_in_order() {
        Seq::run(|bk| {
            let (wa, ra) = bk.cell::<u32>();
            let (wb, rb) = bk.cell::<u32>();
            bk.fork2(move |bk| bk.fulfill(wa, 1), move |bk| bk.fulfill(wb, 2));
            assert_eq!((ra.expect(), rb.expect()), (1, 2));
        });
    }

    #[test]
    fn ready_and_peek() {
        Seq::run(|bk| {
            let f = bk.ready("hi".to_string());
            assert_eq!(Seq::peek(&f), Some("hi".to_string()));
        });
    }

    #[test]
    fn cost_hooks_are_noops_and_strict_is_inline() {
        Seq::run(|bk| {
            bk.tick(1_000_000);
            bk.flat(1_000_000);
            let (w, r) = bk.cell::<u8>();
            bk.strict(|bk| bk.fulfill(w, 3));
            assert_eq!(r.expect(), 3);
        });
    }

    #[test]
    #[should_panic(expected = "touched before it was written")]
    fn touch_before_write_panics() {
        Seq::run(|bk| {
            let (_w, r) = bk.cell::<u32>();
            bk.touch(&r, |_, _| {});
        });
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_panics() {
        Seq::run(|bk| {
            let (w, r) = bk.cell::<u32>();
            bk.fulfill(w, 1);
            bk.fulfill(r, 2); // read pointer doubles as a write handle here
        });
    }

    #[test]
    fn big_stack_runner_returns_value() {
        let v = Seq::run_with_stack(16 << 20, |bk| {
            let (w, r) = bk.cell::<u64>();
            bk.fulfill(w, 9);
            r.expect()
        });
        assert_eq!(v, 9);
    }
}
