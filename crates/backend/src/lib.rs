//! # pf-backend — one algorithm, three engines
//!
//! The paper's algorithms are written against five primitives: **fork** a
//! thread, **create** a future cell, **touch** a cell (the data edge),
//! **fulfill** a cell (the write), and local computation (the unit actions
//! the cost model charges). Everything else — virtual clocks, work-stealing
//! deques, suspended continuations — is the business of a particular
//! *engine*, not of the algorithm text. This crate captures exactly that
//! surface as the [`PipeBackend`] trait, so that each §3 algorithm is
//! written **once** (in `pf-algs`, continuation-passing style) and compiled
//! against three engines:
//!
//! * the **virtual-time simulator** (`pf_core::Ctx`): touch runs the
//!   continuation inline and stamps the data edge on the toucher's clock —
//!   exact work/depth accounting;
//! * the **real runtime** (`pf_rt::Worker`): touch of an unwritten cell
//!   suspends the continuation *inside the cell* and the write reactivates
//!   it — actual multicore execution;
//! * the **sequential oracle** ([`Seq`], this crate): every primitive is the
//!   cheapest thing that preserves the semantics — fork runs the body
//!   inline, touch reads and continues, the cost hooks vanish. It is the
//!   correctness/work baseline the other two are measured against.
//!
//! ## Why the continuation-passing shape
//!
//! A real runtime cannot "return" from a touch of an unwritten cell — the
//! paper's §4 design writes the rest of the computation into the cell and
//! moves on. So the portable surface takes the rest of the computation as an
//! explicit continuation: [`PipeBackend::touch`] accepts
//! `FnOnce(&Self, T)`. On the simulator (and the oracle) the cell is always
//! written by the time it is touched — eager evaluation runs futures at
//! their creation point — so the continuation simply runs inline and the
//! CPS program charges exactly the costs of its direct-style ancestor.
//!
//! ## Bounds
//!
//! Cell payloads are [`Val`] (cloneable, sendable, `'static`): the model's
//! values are immutable, so an aliasing clone is observationally a deep
//! copy, and the real engine moves them across OS threads. The GATs
//! [`PipeBackend::Fut`]/[`PipeBackend::Wr`] carry **no** `Send` item bounds
//! of their own — a bounded GAT would send the trait solver into a cycle on
//! recursive types like `Tree<B, K>` (whose nodes hold `B::Fut<Tree<B, K>>`
//! children). Instead, generic algorithms state the handful of
//! `B::Fut<…>: Val` / `B::Wr<…>: Send` facts they need as ordinary `where`
//! clauses, which every engine discharges structurally at instantiation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rounds;
mod seq;

pub use rounds::{Job, RoundError, RoundExec, SeqRounds};
pub use seq::{Seq, SeqFut};

/// A value that can live in a future cell: cloneable (touch hands out a
/// clone), sendable (the real engine crosses OS threads), `'static`.
pub trait Val: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Val for T {}

/// An ordered key, as stored in the §3 tree structures.
pub trait Key: Clone + Ord + Send + Sync + 'static {}
impl<T: Clone + Ord + Send + Sync + 'static> Key for T {}

/// Pipelined (futures do their thing) vs strict (every call's results only
/// become visible when the whole call has finished) execution of one and
/// the same algorithm text.
///
/// Strictness is a *cost-model* notion: on the simulator it re-stamps every
/// cell written inside the call to the call's completion time, producing the
/// paper's non-pipelined comparison point. The real runtime and the
/// sequential oracle have no clocks to re-stamp, so there the two modes
/// coincide (see [`PipeBackend::strict`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Futures pipeline: consumers run as soon as their data edge allows.
    Pipelined,
    /// Non-pipelined baseline: calls behave like ordinary strict calls.
    Strict,
}

impl Mode {
    /// Is this the pipelined mode?
    pub fn is_pipelined(self) -> bool {
        matches!(self, Mode::Pipelined)
    }
}

/// An execution engine for futures programs: the paper's five primitives.
///
/// Implementations: `pf_core::Ctx` (virtual-time cost model),
/// `pf_rt::Worker` (work-stealing multicore runtime), [`Seq`] (sequential
/// oracle). Algorithms generic over `B: PipeBackend` are written in
/// continuation-passing style — each touch takes the rest of the function
/// as a closure — and monomorphize to exactly the hand-written code on each
/// engine: on `Worker` the cost hooks ([`tick`](PipeBackend::tick),
/// [`flat`](PipeBackend::flat)) compile to nothing and
/// [`touch`](PipeBackend::touch) lowers to the single-allocation in-cell
/// suspension.
pub trait PipeBackend: Sized + 'static {
    /// The read pointer of a future cell holding a `T`.
    type Fut<T: 'static>: Clone + 'static;
    /// The write pointer; consumed by [`fulfill`](PipeBackend::fulfill), so
    /// each cell is written at most once by construction.
    type Wr<T: 'static>: 'static;

    /// Create an empty future cell. Creation is charged to the enclosing
    /// fork (constant per §4), so the call itself is free on every engine.
    fn cell<T: Val>(&self) -> (Self::Wr<T>, Self::Fut<T>)
    where
        Self::Fut<T>: Val,
        Self::Wr<T>: Send;

    /// Create a cell that is already written with `value`, **charging the
    /// normal write cost**. Used when an algorithm produces a value *now*
    /// but must hand it to a consumer expecting a future (e.g. the ready
    /// halves of a freshly split 2-6 tree node). For free-of-charge input
    /// construction use [`input`](PipeBackend::input) instead.
    fn ready<T: Val>(&self, value: T) -> Self::Fut<T>
    where
        Self::Fut<T>: Val,
        Self::Wr<T>: Send,
    {
        let (w, f) = self.cell();
        self.fulfill(w, value);
        f
    }

    /// Create a pre-written cell **free of charge** — input construction.
    /// Building the inputs an algorithm is measured *on* is the client's
    /// marshalling, not part of the measured computation, so the simulator
    /// overrides this with its zero-cost preload; engines without clocks
    /// just use [`ready`](PipeBackend::ready) (free there anyway).
    fn input<T: Val>(&self, value: T) -> Self::Fut<T>
    where
        Self::Fut<T>: Val,
        Self::Wr<T>: Send,
    {
        self.ready(value)
    }

    /// Write `value` into the cell — the paper's write action. If a
    /// continuation is suspended in the cell (real engine), reactivate it.
    fn fulfill<T: Val>(&self, w: Self::Wr<T>, value: T)
    where
        Self::Fut<T>: Val,
        Self::Wr<T>: Send;

    /// Touch the cell — the data edge — and run `k` with the value.
    ///
    /// On the simulator and the oracle the cell is already written (eager
    /// evaluation) and `k` runs inline, after the simulator advances the
    /// toucher's clock to `max(clock, write_time) + touch_cost`. On the
    /// real engine an unwritten cell stores `k` (pre-bound to the cell, one
    /// allocation) and the writer reactivates it; a written cell runs `k`
    /// inline or as a task, per the scheduler's discretion.
    fn touch<T: Val>(&self, f: &Self::Fut<T>, k: impl FnOnce(&Self, T) + Send + 'static)
    where
        Self::Fut<T>: Val;

    /// Fork a thread running `body` — the fork edge. The caller is charged
    /// the fork cost and continues immediately.
    fn fork(&self, body: impl FnOnce(&Self) + Send + 'static);

    /// Fork two threads. Defaults to two [`fork`](PipeBackend::fork)
    /// actions (which is exactly what the cost model charges); the real
    /// engine overrides it with a batched double-spawn.
    fn fork2(
        &self,
        f: impl FnOnce(&Self) + Send + 'static,
        g: impl FnOnce(&Self) + Send + 'static,
    ) {
        self.fork(f);
        self.fork(g);
    }

    /// Execute `n` plain unit actions (pattern matches, comparisons, node
    /// allocation). A cost hook: the simulator advances clock and work; on
    /// the other engines it compiles to nothing.
    fn tick(&self, _n: u64) {}

    /// The §3.4 flat array primitive of breadth `n`: work `n + 1`, depth 2.
    /// A cost hook like [`tick`](PipeBackend::tick).
    fn flat(&self, _n: u64) {}

    /// Run `body` as a strict (non-pipelined) call. The simulator re-stamps
    /// every cell written inside to the completion time of the whole
    /// sub-computation; the real engine and the oracle have no clocks, so
    /// `body` simply runs inline and the two [`Mode`]s coincide there.
    fn strict(&self, body: impl FnOnce(&Self)) {
        body(self)
    }

    /// Read a cell without a continuation, if written: free-of-charge
    /// inspection of finished structures *after* a run. Not a touch — no
    /// cost, no data edge, no linearity accounting.
    fn peek<T: Val>(f: &Self::Fut<T>) -> Option<T>
    where
        Self::Fut<T>: Val;
}
