//! Lists with **future tails**: the Figure 1 producer/consumer pipeline
//! and Halstead's Figure 2 quicksort, written once against the
//! [`PipeBackend`] surface.
//!
//! The producer/consumer pair is the paper's opening example of implicit
//! pipelining: `consume(produce(n))` runs in O(n) total time because the
//! consumer chases the producer cell by cell, rather than waiting for the
//! whole list.
//!
//! Quicksort is the *negative* example: the algorithm pipelines (partial
//! partition output feeds the recursive calls), yet its expected depth
//! stays Θ(n) — pipelining buys only a constant factor here, which the
//! simulator's depth tests verify against this very text.

use std::sync::Arc;

use crate::{fork_call, Key, Mode, PipeBackend, Val};

/// Shorthand for the future of a list tail on engine `B`.
pub type ListFut<B, K> = <B as PipeBackend>::Fut<List<B, K>>;
/// Shorthand for the write pointer of a list cell on engine `B`.
pub type ListWr<B, K> = <B as PipeBackend>::Wr<List<B, K>>;

/// A list whose tail is a future cell of engine `B`.
pub enum List<B: PipeBackend, K: 'static> {
    /// The empty list.
    Nil,
    /// A cons cell: head value, future tail.
    Cons(Arc<(K, ListFut<B, K>)>),
}

impl<B: PipeBackend, K> Clone for List<B, K> {
    fn clone(&self) -> Self {
        match self {
            List::Nil => List::Nil,
            List::Cons(rc) => List::Cons(Arc::clone(rc)),
        }
    }
}

impl<B: PipeBackend, K> List<B, K> {
    /// The empty list.
    pub fn nil() -> Self {
        List::Nil
    }

    /// Cons constructor.
    pub fn cons(head: K, tail: ListFut<B, K>) -> Self {
        List::Cons(Arc::new((head, tail)))
    }

    /// View as a cons cell: `(head, future tail)`.
    pub fn as_cons(&self) -> Option<(&K, &ListFut<B, K>)> {
        match self {
            List::Nil => None,
            List::Cons(rc) => Some((&rc.0, &rc.1)),
        }
    }
}

impl<B: PipeBackend, K: Key> List<B, K>
where
    List<B, K>: Val,
    ListFut<B, K>: Val,
{
    /// Build from a slice with **free** pre-written tails
    /// ([`PipeBackend::input`] — input construction).
    pub fn from_slice(bk: &B, keys: &[K]) -> List<B, K>
    where
        ListWr<B, K>: Send,
    {
        let mut cur = List::Nil;
        for k in keys.iter().rev() {
            let f = bk.input(cur);
            cur = List::cons(k.clone(), f);
        }
        cur
    }

    /// Read a finished cell and collect it (post-run inspection).
    ///
    /// # Panics
    /// If the cell (or any tail) is still unwritten.
    pub fn expect_vec(f: &ListFut<B, K>) -> Vec<K> {
        B::peek(f)
            .expect("list cell not written: the run has not quiesced")
            .collect_vec()
    }

    /// Post-run inspection: collect the elements into a `Vec`.
    ///
    /// # Panics
    /// If any tail cell is still unwritten.
    pub fn collect_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        while let List::Cons(rc) = cur {
            out.push(rc.0.clone());
            cur = B::peek(&rc.1).expect("list cell not written: the run has not quiesced");
        }
        out
    }
}

/// Figure 1's `produce(n)`: build the list `n, n−1, …, 1`, one future per
/// tail, writing each cons as soon as its head is known.
pub fn produce<B: PipeBackend>(bk: &B, n: u64, out: ListWr<B, u64>)
where
    List<B, u64>: Val,
    ListFut<B, u64>: Val,
    ListWr<B, u64>: Send,
{
    bk.tick(1);
    if n == 0 {
        bk.fulfill(out, List::Nil);
    } else {
        let (tp, tf) = bk.cell();
        bk.fork(move |bk| produce(bk, n - 1, tp));
        bk.fulfill(out, List::cons(n, tf));
    }
}

/// Figure 1's `consume`: fold the list with `+`, chasing the producer
/// tail by tail. The sum is written to `out` when the list ends.
pub fn consume<B: PipeBackend>(bk: &B, l: List<B, u64>, acc: u64, out: B::Wr<u64>)
where
    List<B, u64>: Val,
    ListFut<B, u64>: Val,
    B::Fut<u64>: Val,
    B::Wr<u64>: Send,
{
    bk.tick(1);
    match l {
        List::Nil => bk.fulfill(out, acc),
        List::Cons(rc) => {
            let h = rc.0;
            let t = rc.1.clone();
            bk.touch(&t, move |bk, tail| consume(bk, tail, acc + h, out));
        }
    }
}

/// `partition(pivot, l)`: stream `l` into elements `< pivot` (`lout`) and
/// elements `>= pivot` (`gout`). Each output element is written as soon as
/// it is classified — the pipelined producer for the recursive sorts.
pub fn partition<B: PipeBackend, K: Key>(
    bk: &B,
    pivot: K,
    l: List<B, K>,
    lout: ListWr<B, K>,
    gout: ListWr<B, K>,
) where
    List<B, K>: Val,
    ListFut<B, K>: Val,
    ListWr<B, K>: Send,
{
    bk.tick(1);
    match l {
        List::Nil => {
            bk.fulfill(lout, List::Nil);
            bk.fulfill(gout, List::Nil);
        }
        List::Cons(rc) => {
            let h = rc.0.clone();
            let t = rc.1.clone();
            bk.touch(&t, move |bk, tail| {
                if h < pivot {
                    let (np, nf) = bk.cell();
                    bk.fulfill(lout, List::cons(h, nf));
                    partition(bk, pivot, tail, np, gout);
                } else {
                    let (np, nf) = bk.cell();
                    bk.fulfill(gout, List::cons(h, nf));
                    partition(bk, pivot, tail, lout, np);
                }
            });
        }
    }
}

/// `qs(l, rest)`: sort `l` and append `rest` (Figure 2, with the standard
/// accumulator formulation). The `< pivot` side is consumed by the
/// continuing recursion; the `>= pivot` side is sorted by a forked future
/// whose result becomes the tail of `pivot :: …`.
pub fn qs<B: PipeBackend, K: Key>(
    bk: &B,
    l: List<B, K>,
    rest: List<B, K>,
    out: ListWr<B, K>,
    mode: Mode,
) where
    List<B, K>: Val,
    ListFut<B, K>: Val,
    ListWr<B, K>: Send,
{
    bk.tick(1);
    match l {
        List::Nil => bk.fulfill(out, rest),
        List::Cons(rc) => {
            let h = rc.0.clone();
            let t = rc.1.clone();
            bk.touch(&t, move |bk, tail| {
                // let (less, greater) = ?partition(h, tail)
                let (lp, lf) = bk.cell();
                let (gp, gf) = bk.cell();
                let pivot = h.clone();
                fork_call(bk, mode, move |bk| partition(bk, pivot, tail, lp, gp));
                // qs(less) ++ (h :: ?qs(greater, rest))
                let (gout_p, gout_f) = bk.cell();
                bk.fork(move |bk| {
                    bk.touch(&gf, move |bk, g| qs(bk, g, rest, gout_p, mode));
                });
                let mid = List::cons(h, gout_f);
                bk.touch(&lf, move |bk, lv| qs(bk, lv, mid, out, mode));
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seq;

    #[test]
    fn pipeline_sums_on_the_oracle() {
        for n in [0u64, 1, 10, 500] {
            let sum = Seq::run(|bk| {
                let (lp, lf) = bk.cell();
                bk.fork(move |bk| produce(bk, n, lp));
                let (sp, sf) = bk.cell();
                bk.touch(&lf, move |bk, l| consume(bk, l, 0, sp));
                sf.expect()
            });
            assert_eq!(sum, n * (n + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn quicksort_on_the_oracle() {
        // A fixed scramble: no RNG needed for the oracle check.
        let keys: Vec<i64> = (0..200).map(|i| (i * 83) % 200).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let sorted = Seq::run(|bk| {
            let l = List::from_slice(bk, &keys);
            let (op, of) = bk.cell();
            qs(bk, l, List::nil(), op, Mode::Pipelined);
            List::<Seq, i64>::expect_vec(&of)
        });
        assert_eq!(sorted, expect);
    }

    #[test]
    fn quicksort_duplicates_on_the_oracle() {
        let keys = vec![3i64, 1, 3, 2, 1, 3, 0];
        let sorted = Seq::run(|bk| {
            let l = List::from_slice(bk, &keys);
            let (op, of) = bk.cell();
            qs(bk, l, List::nil(), op, Mode::Pipelined);
            List::<Seq, i64>::expect_vec(&of)
        });
        assert_eq!(sorted, vec![0, 1, 1, 2, 3, 3, 3]);
    }
}
