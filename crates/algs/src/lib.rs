//! # pf-algs — the §3 algorithms, written once, generic over an engine
//!
//! Every pipelined algorithm of *Pipelining with Futures* lives here
//! exactly once, in continuation-passing style, generic over a
//! [`PipeBackend`] engine:
//!
//! * [`merge`] — BST merge + split (§3.1, Figure 3, Theorem 3.1);
//! * [`rebalance`] — the three-phase §3.1 rebalance and the
//!   merge-then-rebalance composite;
//! * [`treap`] — treap union / difference / intersection / join
//!   (§3.2–3.3, Figures 4 and 7);
//! * [`two_six`] — the 2-6 tree multi-insert (§3.4, Theorem 3.13);
//! * [`list`] — the Figure 1 producer/consumer pipeline and Halstead's
//!   Figure 2 quicksort;
//! * [`mergesort`] — the §5 conjectured pipelined tree mergesort;
//! * [`plain`] — the sequential treap oracle (pure code, no engine).
//!
//! The **hand-pipelined baselines** live here too, but on a different
//! engine surface: [`cole`] (cascading mergesort) and [`pvw`] (the
//! synchronous 2-3-tree wave pipeline) advance in explicit rounds, so they
//! are generic over [`RoundExec`] — the round-barrier engine — rather than
//! [`PipeBackend`]. The same text runs on `SeqRounds` (the virtual-time
//! simulator E16/E18 count rounds on) and `pf_rt::rounds::PoolRounds` (the
//! worker pool they are wall-clocked on).
//!
//! The same text compiles against the virtual-time simulator
//! (`pf_core::Ctx`, exact work/depth accounting), the real work-stealing
//! runtime (`pf_rt::Worker`), and the sequential oracle
//! ([`Seq`]). Monomorphization specializes each call site:
//! on the runtime the cost hooks vanish and a touch lowers to the
//! single-allocation in-cell suspension; on the simulator the continuations
//! run inline and the CPS text charges exactly the costs of its
//! direct-style ancestor (the simulator crate asserts this equivalence in
//! its own backend tests).
//!
//! ## Cost-charge discipline
//!
//! The simulator's cost assertions (exact work counts, depth separations,
//! linearity) run against *this* text, so the placement of every
//! [`tick`](PipeBackend::tick) / [`flat`](PipeBackend::flat) /
//! [`touch`](PipeBackend::touch) / [`fulfill`](PipeBackend::fulfill) is
//! part of the algorithm's meaning — do not reorder them casually.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cole;
pub mod list;
pub mod merge;
pub mod mergesort;
pub mod plain;
pub mod pvw;
pub mod rebalance;
pub mod treap;
pub mod tree;
pub mod two_six;

pub use pf_backend::{Job, Key, Mode, PipeBackend, RoundExec, Seq, SeqFut, SeqRounds, Val};

/// Fork `body` under `mode`: pipelined is a plain fork; strict wraps the
/// fork in [`PipeBackend::strict`], so (on the simulator) none of the
/// call's writes become visible before the whole call completes — the
/// paper's non-pipelined comparison point, one `match` for every `?f(...)`
/// call site.
pub fn fork_call<B: PipeBackend>(bk: &B, mode: Mode, body: impl FnOnce(&B) + Send + 'static) {
    match mode {
        Mode::Pipelined => bk.fork(body),
        Mode::Strict => bk.strict(move |bk| bk.fork(body)),
    }
}
