//! §3.4 — **2-6 trees**: the top-down variant of Paul–Vishkin–Wagener's
//! pipelined 2-3 trees (Theorem 3.13), written once against the
//! [`PipeBackend`] surface.
//!
//! A 2-6 tree stores one to five keys per node (hence two to six children);
//! every key appears exactly once, either as an internal splitter or in a
//! leaf, and all leaves sit at the same level. Inserting `m` sorted keys
//! proceeds in `lg m` waves of *well-separated* key arrays (the levels of
//! the conceptual balanced binary tree over the keys: median, quartiles,
//! octiles, …). Each wave descends top-down, splitting any child that has
//! grown to three or more keys before recursing into it — which keeps the
//! node being inserted into a 2-3 node and bounds every node at five
//! keys / six children.
//!
//! The pipelining (γ-value argument): a wave's insert writes the new root
//! after a *constant* amount of work, so wave `i + 1` can enter the root
//! while wave `i` is still several levels down — O(lg n + lg m) depth
//! overall versus O(lg n · lg m) for strictly sequential waves.
//!
//! The interesting CPS transcription problem: pass 1 of the node rebuild
//! touches *several* children (those that receive keys) before the new
//! node can be published. That becomes a chain of continuations threading
//! an accumulator (`Builder`) through the touches — one hop per child
//! with keys, constant per level, exactly the γ-value costing of
//! Theorem 3.13. Key arrays are manipulated with the paper's `array_split`
//! primitive (O(1) depth, O(len) work — [`PipeBackend::flat`]).

use std::sync::Arc;

use crate::{fork_call, Key, Mode, PipeBackend, Val};

/// Shorthand for the future of a 2-6 subtree on engine `B`.
pub type TsFut<B, K> = <B as PipeBackend>::Fut<TsTree<B, K>>;
/// Shorthand for the write pointer of a 2-6 subtree cell on engine `B`.
pub type TsWr<B, K> = <B as PipeBackend>::Wr<TsTree<B, K>>;

/// A 2-6 tree with future children on engine `B`.
pub enum TsTree<B: PipeBackend, K: 'static> {
    /// A leaf holding 1–5 keys (0 keys only for the empty tree).
    Leaf(Arc<Vec<K>>),
    /// An internal node: 1–5 splitter keys, `keys + 1` children.
    Node(Arc<TsNode<B, K>>),
}

/// An internal node of a [`TsTree`].
pub struct TsNode<B: PipeBackend, K: 'static> {
    /// Splitter keys, sorted; these are real keys of the set.
    pub keys: Vec<K>,
    /// Children (`keys.len() + 1` of them), as futures.
    pub children: Vec<TsFut<B, K>>,
}

impl<B: PipeBackend, K> Clone for TsTree<B, K> {
    fn clone(&self) -> Self {
        match self {
            TsTree::Leaf(ks) => TsTree::Leaf(Arc::clone(ks)),
            TsTree::Node(n) => TsTree::Node(Arc::clone(n)),
        }
    }
}

impl<B: PipeBackend, K: Key> TsTree<B, K> {
    /// The empty tree.
    pub fn empty() -> Self {
        TsTree::Leaf(Arc::new(Vec::new()))
    }

    fn key_count(&self) -> usize {
        match self {
            TsTree::Leaf(ks) => ks.len(),
            TsTree::Node(n) => n.keys.len(),
        }
    }
}

impl<B: PipeBackend, K: Key> TsTree<B, K>
where
    TsTree<B, K>: Val,
    TsFut<B, K>: Val,
{
    /// Read a finished cell (post-run inspection).
    ///
    /// # Panics
    /// If the cell is still unwritten.
    pub fn expect(f: &TsFut<B, K>) -> TsTree<B, K> {
        B::peek(f).expect("2-6 tree cell not written: the run has not quiesced")
    }

    /// Post-run inspection: all keys in sorted order (leaf keys and
    /// internal splitters interleaved in symmetric order).
    pub fn to_sorted_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.inorder_into(&mut out);
        out
    }

    fn inorder_into(&self, out: &mut Vec<K>) {
        match self {
            TsTree::Leaf(ks) => out.extend(ks.iter().cloned()),
            TsTree::Node(n) => {
                for i in 0..n.children.len() {
                    Self::expect(&n.children[i]).inorder_into(out);
                    if i < n.keys.len() {
                        out.push(n.keys[i].clone());
                    }
                }
            }
        }
    }

    /// Post-run inspection: number of keys stored.
    pub fn size(&self) -> usize {
        match self {
            TsTree::Leaf(ks) => ks.len(),
            TsTree::Node(n) => {
                n.keys.len()
                    + n.children
                        .iter()
                        .map(|c| Self::expect(c).size())
                        .sum::<usize>()
            }
        }
    }

    /// Post-run inspection: number of levels (a lone leaf is height 0).
    pub fn height(&self) -> usize {
        match self {
            TsTree::Leaf(_) => 0,
            TsTree::Node(n) => 1 + Self::expect(&n.children[0]).height(),
        }
    }

    /// Post-run inspection: check every 2-6 tree invariant. Returns a
    /// description of the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        let keys = self.to_sorted_vec();
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("keys not strictly increasing in symmetric order".into());
        }
        fn rec<B: PipeBackend, K: Key>(t: &TsTree<B, K>, is_root: bool) -> Result<usize, String>
        where
            TsTree<B, K>: Val,
            TsFut<B, K>: Val,
        {
            match t {
                TsTree::Leaf(ks) => {
                    if ks.is_empty() && !is_root {
                        return Err("empty non-root leaf".into());
                    }
                    if ks.len() > 5 {
                        return Err(format!("leaf with {} keys", ks.len()));
                    }
                    Ok(0)
                }
                TsTree::Node(n) => {
                    if n.keys.is_empty() || n.keys.len() > 5 {
                        return Err(format!("internal node with {} keys", n.keys.len()));
                    }
                    if n.children.len() != n.keys.len() + 1 {
                        return Err(format!(
                            "node with {} keys but {} children",
                            n.keys.len(),
                            n.children.len()
                        ));
                    }
                    let mut depth = None;
                    for c in &n.children {
                        let d = rec(&TsTree::expect(c), false)?;
                        match depth {
                            None => depth = Some(d),
                            Some(prev) if prev != d => {
                                return Err("leaves at different levels".into())
                            }
                            _ => {}
                        }
                    }
                    Ok(depth.expect("at least two children") + 1)
                }
            }
        }
        rec(self, true).map(|_| ())
    }

    /// Build a valid 2-6 tree from sorted distinct keys as **free** input
    /// cells ([`PipeBackend::input`]). Leaves get one or two keys, internal
    /// nodes two or three children — a well-filled tree with insertion
    /// slack.
    pub fn from_sorted(bk: &B, keys: &[K]) -> TsTree<B, K>
    where
        TsWr<B, K>: Send,
    {
        if keys.is_empty() {
            return TsTree::empty();
        }
        // Height: smallest h with n <= 3^(h+1) - 1 (capacity with <= 2
        // keys per leaf and <= 2 keys per internal node).
        let mut h = 0usize;
        let mut cap = 2usize; // 3^(h+1) - 1 for h = 0
        while keys.len() > cap {
            h += 1;
            cap = cap * 3 + 2;
        }
        Self::build_h(bk, keys, h)
    }

    fn build_h(bk: &B, keys: &[K], h: usize) -> TsTree<B, K>
    where
        TsWr<B, K>: Send,
    {
        if h == 0 {
            debug_assert!((1..=2).contains(&keys.len()));
            return TsTree::Leaf(Arc::new(keys.to_vec()));
        }
        // min/max keys a subtree of height h-1 can hold:
        let min_keys = (1usize << h) - 1; // 2^h - 1
        let max_keys = 3usize.pow(h as u32) - 1; // 3^h - 1
        let n = keys.len();
        // Prefer 2 children, fall back to 3.
        let c = if n > 2 * min_keys && n <= 2 * max_keys + 1 {
            2
        } else {
            debug_assert!(
                n >= 3 * min_keys + 2 && n <= 3 * max_keys + 2,
                "no feasible fanout for n={n}, h={h}"
            );
            3
        };
        let mut sizes = vec![min_keys; c];
        let mut rem = n - (c - 1) - c * min_keys;
        for s in sizes.iter_mut() {
            let add = rem.min(max_keys - min_keys);
            *s += add;
            rem -= add;
        }
        debug_assert_eq!(rem, 0);
        let mut node_keys = Vec::with_capacity(c - 1);
        let mut children = Vec::with_capacity(c);
        let mut at = 0usize;
        for (i, s) in sizes.iter().enumerate() {
            let sub = Self::build_h(bk, &keys[at..at + s], h - 1);
            children.push(bk.input(sub));
            at += s;
            if i < c - 1 {
                node_keys.push(keys[at].clone());
                at += 1;
            }
        }
        TsTree::Node(Arc::new(TsNode {
            keys: node_keys,
            children,
        }))
    }
}

/// The paper's `array_split` primitive: partition a sorted key array by a
/// splitter in O(1) depth, O(len) work ([`PipeBackend::flat`]). Keys equal
/// to the splitter are dropped (the splitter is already in the tree — set
/// semantics).
pub fn array_split<B: PipeBackend, K: Key>(bk: &B, keys: &[K], s: &K) -> (Vec<K>, Vec<K>) {
    bk.flat(keys.len() as u64);
    let less = keys.iter().filter(|k| *k < s).cloned().collect();
    let greater = keys.iter().filter(|k| *k > s).cloned().collect();
    (less, greater)
}

/// Partition sorted `keys` into `splitters.len() + 1` buckets with repeated
/// `array_split`s (one per splitter — a 2-6 node has at most five).
fn partition_keys<B: PipeBackend, K: Key>(bk: &B, keys: Vec<K>, splitters: &[K]) -> Vec<Vec<K>> {
    let mut parts = Vec::with_capacity(splitters.len() + 1);
    let mut rest = keys;
    for s in splitters {
        let (l, g) = array_split(bk, &rest, s);
        parts.push(l);
        rest = g;
    }
    parts.push(rest);
    parts
}

/// Sorted merge of two sorted key vectors, dropping duplicates.
fn sorted_merge_dedup<K: Key>(a: &[K], b: &[K]) -> Vec<K> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            let k = a[i].clone();
            i += 1;
            k
        } else {
            let k = b[j].clone();
            j += 1;
            k
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    out
}

/// Does this node need a split before we recurse into it? (It must be a
/// 2-3 node — at most two keys — when a wave enters it.)
fn needs_split<B: PipeBackend, K: Key>(t: &TsTree<B, K>) -> bool {
    t.key_count() >= 3
}

/// Split a node with ≥ 3 keys around its middle key: `(left, middle,
/// right)`; both halves are 2-3 nodes.
fn split_node<B: PipeBackend, K: Key>(t: &TsTree<B, K>) -> (TsTree<B, K>, K, TsTree<B, K>) {
    match t {
        TsTree::Leaf(ks) => {
            let mid = ks.len() / 2;
            (
                TsTree::Leaf(Arc::new(ks[..mid].to_vec())),
                ks[mid].clone(),
                TsTree::Leaf(Arc::new(ks[mid + 1..].to_vec())),
            )
        }
        TsTree::Node(n) => {
            let mid = n.keys.len() / 2;
            (
                TsTree::Node(Arc::new(TsNode {
                    keys: n.keys[..mid].to_vec(),
                    children: n.children[..=mid].to_vec(),
                })),
                n.keys[mid].clone(),
                TsTree::Node(Arc::new(TsNode {
                    keys: n.keys[mid + 1..].to_vec(),
                    children: n.children[mid + 1..].to_vec(),
                })),
            )
        }
    }
}

/// Deferred recursive inserts: `(keys, subtree, output cell)` triples,
/// created in pass 1 and forked in pass 2 — after the new node has been
/// published, so the node is available in constant depth.
type Pending<B, K> = Vec<(Vec<K>, TsTree<B, K>, TsWr<B, K>)>;

fn queue_insert<B: PipeBackend, K: Key>(
    bk: &B,
    part: Vec<K>,
    subtree: TsTree<B, K>,
    pending: &mut Pending<B, K>,
) -> TsFut<B, K>
where
    TsTree<B, K>: Val,
    TsFut<B, K>: Val,
    TsWr<B, K>: Send,
{
    if part.is_empty() {
        bk.ready(subtree)
    } else {
        let (p, f) = bk.cell();
        pending.push((part, subtree, p));
        f
    }
}

/// Accumulator threaded through the CPS chain that rebuilds one node:
/// pass 1 touches the children that receive keys (one continuation hop
/// each) and decides the new node's structure; once all buckets are
/// placed, the node is published and the recursive inserts fork.
struct Builder<B: PipeBackend, K: 'static> {
    node: Arc<TsNode<B, K>>,
    parts: Vec<Vec<K>>, // one bucket per original child
    i: usize,
    new_keys: Vec<K>,
    new_children: Vec<TsFut<B, K>>,
    pending: Pending<B, K>,
    out: TsWr<B, K>,
}

fn build_step<B: PipeBackend, K: Key>(bk: &B, mut b: Builder<B, K>)
where
    TsTree<B, K>: Val,
    TsFut<B, K>: Val,
    TsWr<B, K>: Send,
{
    while b.i < b.node.children.len() {
        let i = b.i;
        let part = std::mem::take(&mut b.parts[i]);
        if part.is_empty() {
            // Untouched child: reuse the future as-is.
            b.new_children.push(b.node.children[i].clone());
            if i < b.node.keys.len() {
                b.new_keys.push(b.node.keys[i].clone());
            }
            b.i += 1;
            continue;
        }
        // Touch the child, then continue the chain in the continuation.
        let child = b.node.children[i].clone();
        bk.touch(&child, move |bk, cv| {
            bk.tick(1); // split test on the touched child
            if needs_split(&cv) {
                let (l, sep, r) = split_node(&cv);
                bk.tick(1); // the split itself
                let (pl, pr) = array_split(bk, &part, &sep);
                let lf = queue_insert(bk, pl, l, &mut b.pending);
                b.new_children.push(lf);
                b.new_keys.push(sep);
                let rf = queue_insert(bk, pr, r, &mut b.pending);
                b.new_children.push(rf);
            } else {
                let f = queue_insert(bk, part, cv, &mut b.pending);
                b.new_children.push(f);
            }
            if i < b.node.keys.len() {
                b.new_keys.push(b.node.keys[i].clone());
            }
            b.i += 1;
            build_step(bk, b);
        });
        return;
    }
    // All children processed: publish the node, then fork the recursions.
    debug_assert!(b.new_keys.len() <= 5 && b.new_children.len() == b.new_keys.len() + 1);
    bk.tick(1); // allocate the node
    bk.fulfill(
        b.out,
        TsTree::Node(Arc::new(TsNode {
            keys: b.new_keys,
            children: b.new_children,
        })),
    );
    for (part, subtree, p) in b.pending {
        bk.fork(move |bk| insert_val(bk, part, subtree, p));
    }
}

/// Insert a well-separated key array into the node value `t` (which the
/// caller has already touched and, if necessary, split down to a 2-3
/// node). Writes the new node to `out` in constant depth; children are
/// futures filled by forked recursive inserts.
pub fn insert_val<B: PipeBackend, K: Key>(bk: &B, keys: Vec<K>, t: TsTree<B, K>, out: TsWr<B, K>)
where
    TsTree<B, K>: Val,
    TsFut<B, K>: Val,
    TsWr<B, K>: Send,
{
    bk.tick(1);
    if keys.is_empty() {
        bk.fulfill(out, t);
        return;
    }
    match t {
        TsTree::Leaf(existing) => {
            bk.flat((keys.len() + existing.len()) as u64);
            let merged = sorted_merge_dedup(&existing, &keys);
            assert!(
                merged.len() <= 5,
                "leaf overflow ({} keys): key array not well-separated",
                merged.len()
            );
            bk.fulfill(out, TsTree::Leaf(Arc::new(merged)));
        }
        TsTree::Node(n) => {
            debug_assert!(n.keys.len() <= 2, "must insert into a 2-3 node");
            let parts = partition_keys(bk, keys, &n.keys);
            build_step(
                bk,
                Builder {
                    node: n,
                    parts,
                    i: 0,
                    new_keys: Vec::with_capacity(5),
                    new_children: Vec::with_capacity(6),
                    pending: Vec::new(),
                    out,
                },
            );
        }
    }
}

/// Insert one well-separated wave into the tree rooted at `t`, splitting
/// the root first if needed (the only place the tree grows in height).
pub fn insert_wave<B: PipeBackend, K: Key>(bk: &B, keys: Vec<K>, t: TsFut<B, K>, out: TsWr<B, K>)
where
    TsTree<B, K>: Val,
    TsFut<B, K>: Val,
    TsWr<B, K>: Send,
{
    bk.touch(&t, move |bk, tv| {
        bk.tick(1);
        if keys.is_empty() {
            bk.fulfill(out, tv);
            return;
        }
        let tv = if needs_split(&tv) {
            let (l, sep, r) = split_node(&tv);
            bk.tick(1);
            let lf = bk.ready(l);
            let rf = bk.ready(r);
            TsTree::Node(Arc::new(TsNode {
                keys: vec![sep],
                children: vec![lf, rf],
            }))
        } else {
            tv
        };
        insert_val(bk, keys, tv, out);
    });
}

/// Compute the well-separated wave arrays for a sorted key slice: the
/// levels of the conceptual balanced binary tree (median; quartiles; …).
/// Each wave is sorted, and consecutive keys within a wave are separated
/// by a key from an earlier wave.
pub fn level_arrays<K: Key>(keys: &[K]) -> Vec<Vec<K>> {
    fn rec<K: Key>(keys: &[K], lo: usize, hi: usize, d: usize, out: &mut Vec<Vec<K>>) {
        if lo >= hi {
            return;
        }
        if out.len() == d {
            out.push(Vec::new());
        }
        let mid = lo + (hi - lo) / 2;
        out[d].push(keys[mid].clone());
        rec(keys, lo, mid, d + 1, out);
        rec(keys, mid + 1, hi, d + 1, out);
    }
    let mut out = Vec::new();
    rec(keys, 0, keys.len(), 0, &mut out);
    out
}

/// Insert `m` sorted distinct keys into the 2-6 tree behind `t`, one wave
/// per conceptual level, pipelined (or strictly, wave-after-wave, in
/// [`Mode::Strict`]). Returns the future of the final tree.
pub fn insert_many<B: PipeBackend, K: Key>(
    bk: &B,
    keys: &[K],
    t: TsFut<B, K>,
    mode: Mode,
) -> TsFut<B, K>
where
    TsTree<B, K>: Val,
    TsFut<B, K>: Val,
    TsWr<B, K>: Send,
{
    insert_many_with_waves(bk, keys, t, mode)
        .pop()
        .expect("at least the initial tree")
}

/// Like [`insert_many`], but returns the root future of **every** wave
/// (the last element is the final tree). The successive root write times
/// are the γ-values of Theorem 3.13: the proof shows
/// `γ(i+1) ≤ γ(i) + 3·kb`, i.e. bounded increments — experiment E07
/// checks exactly that on the returned futures.
pub fn insert_many_with_waves<B: PipeBackend, K: Key>(
    bk: &B,
    keys: &[K],
    t: TsFut<B, K>,
    mode: Mode,
) -> Vec<TsFut<B, K>>
where
    TsTree<B, K>: Val,
    TsFut<B, K>: Val,
    TsWr<B, K>: Send,
{
    let mut waves_out = vec![t.clone()];
    let mut cur = t;
    for wave in level_arrays(keys) {
        bk.flat(wave.len() as u64); // forming the next well-separated array
        let (p, f) = bk.cell();
        let prev = cur;
        fork_call(bk, mode, move |bk| insert_wave(bk, wave, prev, p));
        waves_out.push(f.clone());
        cur = f;
    }
    waves_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seq;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    fn run_insert(initial: &[i64], newk: &[i64]) -> TsTree<Seq, i64> {
        Seq::run(|bk| {
            let ft = bk.input(TsTree::from_sorted(bk, initial));
            let f = insert_many(bk, newk, ft, Mode::Pipelined);
            TsTree::expect(&f)
        })
    }

    #[test]
    fn builder_valid_on_the_oracle() {
        for n in [0usize, 1, 2, 5, 7, 26, 27, 300] {
            let t = Seq::run(|bk| TsTree::<Seq, i64>::from_sorted(bk, &evens(n)));
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(t.to_sorted_vec(), evens(n));
        }
    }

    #[test]
    fn insert_on_the_oracle() {
        for (n, m) in [(0usize, 50usize), (10, 3), (200, 64), (333, 100)] {
            let initial = evens(n);
            let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
            let t = run_insert(&initial, &newk);
            t.validate().unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
            let mut expect = initial.clone();
            expect.extend(&newk);
            expect.sort_unstable();
            assert_eq!(t.to_sorted_vec(), expect, "n={n} m={m}");
        }
    }

    #[test]
    fn reinsert_is_noop_on_the_oracle() {
        let initial = evens(100);
        let t = run_insert(&initial, &evens(50));
        t.validate().unwrap();
        assert_eq!(t.to_sorted_vec(), initial);
    }
}
