//! §3.1 — merging two binary search trees (Theorem 3.1), written once in
//! continuation-passing style against the [`PipeBackend`] surface.
//!
//! The code is the paper's Figure 3 with explicit promise passing: where
//! the ML version writes `let (L2, R2) = ?split(v, B)`, this version
//! creates the two result cells and hands their write pointers into the
//! forked `split` — the same multi-cell future. Passing the *write pointer*
//! down the recursion (instead of returning a read pointer) is exactly how
//! the model avoids chains of future cells, which the paper forbids ("a
//! read pointer cannot be written into a future cell", §2).
//!
//! With pipelining the merge of balanced trees of sizes n and m runs in
//! Θ(lg n + lg m) depth; with a strict split ([`Mode::Strict`]) the natural
//! Θ(lg n · lg m) reappears. On the real runtime every `touch` below lowers
//! to the in-cell suspension and every cost hook to nothing — the
//! monomorphized code is the hand-CPS runtime merge.

use crate::tree::{Tree, TreeFut, TreeWr};
use crate::{fork_call, Key, Mode, PipeBackend, Val};

/// `split(s, t)`: partition `t` into keys `< s` (written to `lout`) and
/// keys `>= s` (written to `rout`).
///
/// The function walks one root-to-leaf path of `t`; each step peels one
/// node off into whichever output tree it belongs to, writing that output's
/// root **immediately** with a future for the still-unknown part — the
/// source of the pipeline. `t` is the already-touched root value; the
/// recursion touches each child on the way down.
pub fn split<B: PipeBackend, K: Key>(
    bk: &B,
    s: K,
    t: Tree<B, K>,
    lout: TreeWr<B, K>,
    rout: TreeWr<B, K>,
) where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    TreeWr<B, K>: Send,
{
    bk.tick(1); // pattern match + comparison dispatch
    match t {
        Tree::Leaf => {
            bk.fulfill(lout, Tree::Leaf);
            bk.fulfill(rout, Tree::Leaf);
        }
        Tree::Node(n) => {
            if n.key >= s {
                // Node belongs to the >= side; its left part is still
                // unknown, so it becomes a fresh future filled by the
                // recursion on the left child.
                let (rp1, rf1) = bk.cell();
                bk.fulfill(rout, Tree::node(n.key.clone(), rf1, n.right.clone()));
                bk.touch(&n.left, move |bk, lt| split(bk, s, lt, lout, rp1));
            } else {
                let (lp1, lf1) = bk.cell();
                bk.fulfill(lout, Tree::node(n.key.clone(), n.left.clone(), lf1));
                bk.touch(&n.right, move |bk, rt| split(bk, s, rt, lp1, rout));
            }
        }
    }
}

/// `merge(a, b)`: merge two BSTs with disjoint key sets into one BST,
/// writing the result to `out` (Figure 3). The root of `a` becomes the
/// root of the result; `b` is split by that root's key and the halves are
/// merged into the subtrees by parallel recursive calls.
pub fn merge<B: PipeBackend, K: Key>(
    bk: &B,
    a: TreeFut<B, K>,
    b: TreeFut<B, K>,
    out: TreeWr<B, K>,
    mode: Mode,
) where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    TreeWr<B, K>: Send,
{
    bk.touch(&a, move |bk, av| {
        bk.tick(1); // pattern dispatch on the first argument
        match av {
            Tree::Leaf => {
                // merge(Leaf, B) = B: writing is strict on the value, so
                // the write waits for (touches) B's root and stores the
                // value — never a pointer to the cell.
                bk.touch(&b, move |bk, bv| bk.fulfill(out, bv));
            }
            Tree::Node(n) => {
                bk.touch(&b, move |bk, bv| {
                    bk.tick(1);
                    if bv.is_leaf() {
                        bk.fulfill(out, Tree::Node(n));
                        return;
                    }
                    // let (L2, R2) = ?split(v, B)
                    let (lp2, lf2) = bk.cell();
                    let (rp2, rf2) = bk.cell();
                    let key = n.key.clone();
                    fork_call(bk, mode, move |bk| split(bk, key, bv, lp2, rp2));
                    // Node(v, ?merge(L, L2), ?merge(R, R2)) — the result
                    // root is available in constant time; its children are
                    // futures.
                    let (mlp, mlf) = bk.cell();
                    let (mrp, mrf) = bk.cell();
                    bk.tick(1); // allocate the node
                    bk.fulfill(out, Tree::node(n.key.clone(), mlf, mrf));
                    let l = n.left.clone();
                    let r = n.right.clone();
                    bk.fork2(
                        move |bk| merge(bk, l, lf2, mlp, mode),
                        move |bk| merge(bk, r, rf2, mrp, mode),
                    );
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seq;

    fn evens(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }
    fn odds(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i + 1).collect()
    }

    #[test]
    fn merge_on_the_oracle() {
        for (na, nb) in [(0, 0), (1, 0), (0, 1), (5, 3), (16, 16), (100, 31)] {
            let (a, b) = (evens(na), odds(nb));
            let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
            expect.sort_unstable();
            let got = Seq::run(|bk| {
                let fa = bk.input(Tree::from_sorted(bk, &a));
                let fb = bk.input(Tree::from_sorted(bk, &b));
                let (op, of) = bk.cell();
                merge(bk, fa, fb, op, Mode::Pipelined);
                Tree::<Seq, i64>::expect(&of)
            });
            assert!(got.is_search_tree());
            assert_eq!(got.to_sorted_vec(), expect, "na={na} nb={nb}");
        }
    }

    #[test]
    fn split_on_the_oracle() {
        let (l, r) = Seq::run(|bk| {
            let t = Tree::from_sorted(bk, &evens(100));
            let (lp, lf) = bk.cell();
            let (rp, rf) = bk.cell();
            split(bk, 41i64, t, lp, rp);
            (Tree::<Seq, i64>::expect(&lf), Tree::<Seq, i64>::expect(&rf))
        });
        let (lv, rv) = (l.to_sorted_vec(), r.to_sorted_vec());
        assert!(lv.iter().all(|&k| k < 41));
        assert!(rv.iter().all(|&k| k >= 41));
        assert_eq!(lv.len() + rv.len(), 100);
    }
}
