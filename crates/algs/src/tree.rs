//! Binary search trees with **futures as child pointers** — the data
//! representation that makes implicit pipelining possible (§3.1).
//!
//! A consumer holding a [`Tree`] node can read its key and hand each child
//! future to a further consumer *before the producer has materialized the
//! child*: "if an operation examines the head of a linked list to get a
//! pointer to the second element, the operation is strict on the head but
//! not the second or any other element. We make significant use of this
//! property" (§2).
//!
//! The tree is generic over the engine `B`: the children are
//! `B::Fut<Tree<B, K>>` cells, so the same node type is a simulator tree, a
//! runtime tree, or an oracle tree depending on the instantiation.

use std::sync::Arc;

use crate::{Key, PipeBackend, Val};

/// Shorthand for the future of a subtree on engine `B`.
pub type TreeFut<B, K> = <B as PipeBackend>::Fut<Tree<B, K>>;
/// Shorthand for the write pointer of a subtree cell on engine `B`.
pub type TreeWr<B, K> = <B as PipeBackend>::Wr<Tree<B, K>>;

/// A binary search tree whose children are future cells of engine `B`.
pub enum Tree<B: PipeBackend, K: 'static> {
    /// The empty tree.
    Leaf,
    /// An interior node (shared, immutable).
    Node(Arc<Node<B, K>>),
}

/// An interior node of a [`Tree`].
pub struct Node<B: PipeBackend, K: 'static> {
    /// The key stored at this node.
    pub key: K,
    /// Future of the left subtree (keys `< key`).
    pub left: TreeFut<B, K>,
    /// Future of the right subtree (keys `> key`).
    pub right: TreeFut<B, K>,
}

impl<B: PipeBackend, K> Clone for Tree<B, K> {
    fn clone(&self) -> Self {
        match self {
            Tree::Leaf => Tree::Leaf,
            Tree::Node(n) => Tree::Node(Arc::clone(n)),
        }
    }
}

impl<B: PipeBackend, K> Tree<B, K> {
    /// Construct an interior node.
    pub fn node(key: K, left: TreeFut<B, K>, right: TreeFut<B, K>) -> Self {
        Tree::Node(Arc::new(Node { key, left, right }))
    }

    /// Is this the empty tree?
    pub fn is_leaf(&self) -> bool {
        matches!(self, Tree::Leaf)
    }
}

impl<B: PipeBackend, K: Key> Tree<B, K>
where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
{
    /// Read a finished child cell (post-run inspection).
    ///
    /// # Panics
    /// If the cell is still unwritten.
    pub fn expect(f: &TreeFut<B, K>) -> Tree<B, K> {
        B::peek(f).expect("tree cell not written: the run has not quiesced")
    }

    /// Build a balanced tree from a sorted slice using **free** pre-written
    /// cells ([`PipeBackend::input`]) — input construction must not pollute
    /// the measured cost of the algorithm under test.
    pub fn from_sorted(bk: &B, sorted: &[K]) -> Tree<B, K>
    where
        TreeWr<B, K>: Send,
    {
        if sorted.is_empty() {
            return Tree::Leaf;
        }
        let mid = sorted.len() / 2;
        let left = Self::from_sorted(bk, &sorted[..mid]);
        let right = Self::from_sorted(bk, &sorted[mid + 1..]);
        let lf = bk.input(left);
        let rf = bk.input(right);
        Tree::node(sorted[mid].clone(), lf, rf)
    }

    /// Post-run inspection: collect the keys in symmetric order. Iterative,
    /// so even very tall trees stay clear of the native stack.
    ///
    /// # Panics
    /// If any child cell is still unwritten.
    pub fn to_sorted_vec(&self) -> Vec<K> {
        enum Frame<B: PipeBackend, K: 'static> {
            Tree(Tree<B, K>),
            Key(K),
        }
        let mut out = Vec::new();
        let mut stack = vec![Frame::Tree(self.clone())];
        while let Some(f) = stack.pop() {
            match f {
                Frame::Key(k) => out.push(k),
                Frame::Tree(Tree::Leaf) => {}
                Frame::Tree(Tree::Node(n)) => {
                    stack.push(Frame::Tree(Self::expect(&n.right)));
                    stack.push(Frame::Key(n.key.clone()));
                    stack.push(Frame::Tree(Self::expect(&n.left)));
                }
            }
        }
        out
    }

    /// Post-run inspection: number of keys.
    pub fn size(&self) -> usize {
        match self {
            Tree::Leaf => 0,
            Tree::Node(n) => 1 + Self::expect(&n.left).size() + Self::expect(&n.right).size(),
        }
    }

    /// Post-run inspection: height (empty tree has height 0, a single node
    /// height 1) — the paper's `h(T)` up to the off-by-one convention.
    pub fn height(&self) -> usize {
        match self {
            Tree::Leaf => 0,
            Tree::Node(n) => {
                1 + Self::expect(&n.left)
                    .height()
                    .max(Self::expect(&n.right).height())
            }
        }
    }

    /// Post-run inspection: is this a valid BST with strictly increasing
    /// keys in symmetric order?
    pub fn is_search_tree(&self) -> bool {
        let keys = self.to_sorted_vec();
        keys.windows(2).all(|w| w[0] < w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seq;

    fn keys(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| 2 * i).collect()
    }

    #[test]
    fn from_sorted_shape_on_oracle() {
        let t = Seq::run(|bk| Tree::from_sorted(bk, &keys(127)));
        assert_eq!(t.size(), 127);
        assert_eq!(t.height(), 7, "127 nodes must pack into height 7");
        assert!(t.is_search_tree());
        assert_eq!(t.to_sorted_vec(), keys(127));
    }

    #[test]
    fn empty_and_single() {
        let (e, s) = Seq::run(|bk| {
            (
                Tree::<Seq, i64>::from_sorted(bk, &[]),
                Tree::from_sorted(bk, &[5i64]),
            )
        });
        assert!(e.is_leaf());
        assert_eq!(e.height(), 0);
        assert_eq!(s.size(), 1);
        assert_eq!(s.height(), 1);
    }
}
