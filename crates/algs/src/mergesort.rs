//! §5 (conclusions) — the pipelined tree mergesort the paper conjectures
//! about: "We conjecture that a simple mergesort based on the merge in
//! Section 3.1 has expected depth (averaged over all possible input
//! orderings) close to O(lg n), perhaps O(lg n lg lg n). This algorithm
//! has three levels of pipelining."
//!
//! [`msort`] recursively sorts the two halves of the input (as futures)
//! and merges the resulting trees with the pipelined
//! [`merge`] — so merges at different levels of the recursion tree
//! overlap, exactly like Cole's mergesort but managed implicitly.
//! Experiment E13 measures the depth growth empirically on the simulator
//! and, since the text is generic over [`PipeBackend`], the wall clock on
//! the real runtime — the futures half of the E18 head-to-head against
//! Cole's hand-built cascade.

use pf_backend::PipeBackend;

use crate::merge::merge;
use crate::rebalance::{RankedFut, RankedTree, RankedWr, SizedTree};
use crate::tree::{Tree, TreeFut, TreeWr};
use crate::{Key, Mode, Val};

/// Sort `keys` (distinct, in any order) into a BST by recursive halving
/// and pipelined merging.
pub fn msort<B: PipeBackend, K: Key>(bk: &B, keys: Vec<K>, out: TreeWr<B, K>, mode: Mode)
where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    TreeWr<B, K>: Send,
{
    bk.tick(1);
    match keys.len() {
        0 => bk.fulfill(out, Tree::Leaf),
        1 => {
            let lf = bk.ready(Tree::Leaf);
            let rf = bk.ready(Tree::Leaf);
            let k = keys.into_iter().next().expect("len checked");
            bk.fulfill(out, Tree::node(k, lf, rf));
        }
        n => {
            let mut a = keys;
            let b = a.split_off(n / 2);
            let (pa, fa) = bk.cell();
            bk.fork(move |bk| msort(bk, a, pa, mode));
            let (pb, fb) = bk.cell();
            bk.fork(move |bk| msort(bk, b, pb, mode));
            merge(bk, fa, fb, out, mode);
        }
    }
}

/// Mergesort variant that **rebalances** the merged tree at every level of
/// the recursion (using the §3.1 pipelined rebalancer). Merge outputs can
/// reach height lg a + lg b, and those heights feed the next merge's
/// depth; rebalancing between levels keeps every merge input at the
/// optimal height — an ablation for the E13 conjecture measurement.
pub fn msort_balanced<B: PipeBackend, K: Key>(bk: &B, keys: Vec<K>, out: TreeWr<B, K>, mode: Mode)
where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    TreeWr<B, K>: Send,
    RankedTree<B, K>: Val,
    RankedFut<B, K>: Val,
    RankedWr<B, K>: Send,
    B::Fut<SizedTree<K>>: Val,
    B::Wr<SizedTree<K>>: Send,
    B::Fut<K>: Val,
    B::Wr<K>: Send,
{
    bk.tick(1);
    match keys.len() {
        0 => bk.fulfill(out, Tree::Leaf),
        1 => {
            let lf = bk.ready(Tree::Leaf);
            let rf = bk.ready(Tree::Leaf);
            let k = keys.into_iter().next().expect("len checked");
            bk.fulfill(out, Tree::node(k, lf, rf));
        }
        n => {
            let mut a = keys;
            let b = a.split_off(n / 2);
            let (pa, fa) = bk.cell();
            bk.fork(move |bk| msort_balanced(bk, a, pa, mode));
            let (pb, fb) = bk.cell();
            bk.fork(move |bk| msort_balanced(bk, b, pb, mode));
            let (mp, mf) = bk.cell();
            merge(bk, fa, fb, mp, mode);
            crate::rebalance::rebalance(bk, mf, out, mode);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_backend::Seq;

    #[test]
    fn seq_oracle_sorts() {
        for n in [0usize, 1, 2, 5, 64, 200] {
            // Deterministic scramble: odd-stride permutation of 0..n.
            let keys: Vec<i64> = (0..n as i64).map(|i| (i * 37) % n.max(1) as i64).collect();
            let mut keys: Vec<i64> = {
                let mut seen = std::collections::BTreeSet::new();
                keys.into_iter().filter(|k| seen.insert(*k)).collect()
            };
            keys.reverse();
            let t = Seq::run(|bk| {
                let (p, f) = bk.cell();
                msort(bk, keys.clone(), p, Mode::Pipelined);
                Tree::<Seq, i64>::expect(&f)
            });
            assert!(t.is_search_tree());
            assert_eq!(t.to_sorted_vec().len(), keys.len(), "n={n}");
        }
    }

    #[test]
    fn seq_oracle_balanced_height() {
        let keys: Vec<i64> = (0..200).rev().collect();
        let t = Seq::run(|bk| {
            let (p, f) = bk.cell();
            msort_balanced(bk, keys.clone(), p, Mode::Pipelined);
            Tree::<Seq, i64>::expect(&f)
        });
        assert!(t.is_search_tree());
        assert_eq!(t.to_sorted_vec(), (0..200).collect::<Vec<_>>());
        assert!(t.height() <= 8, "height {}", t.height());
    }
}
