//! The **hand-pipelined** baseline: a synchronous, round-based, PVW-style
//! execution of the §3.4 bulk insert, with the pipeline managed
//! explicitly — the thing the paper argues futures make unnecessary.
//!
//! Paul–Vishkin–Wagener insert m keys into a 2-3 tree in O(lg n + lg m)
//! *synchronous rounds* by letting the insertion waves chase each other
//! through the tree, each wave a fixed number of levels behind its
//! predecessor. This module reproduces that discipline for the paper's
//! top-down 2-6 variant:
//!
//! * the tree is a mutable arena (indices, no futures);
//! * wave *i* (the i-th well-separated key array) enters the root at round
//!   `2·i`; every round, each active wave advances **one level**;
//! * therefore wave *i + 1* works on level ℓ exactly when wave *i* works
//!   on level ℓ + 2 — the "task i is working on level j of the tree, task
//!   i + 1 can work on level j − 1" schedule of the paper's introduction,
//!   with the extra level of slack needed because a wave mutates its
//!   children (splits) as it descends;
//! * a debug-build check *asserts* non-interference every round (no two
//!   waves within two levels of each other) — the bookkeeping burden that
//!   the futures version discharges onto the runtime.
//!
//! A round executes through a [`RoundExec`]: the planning pass clones each
//! task's node (and any children it will split) out of the arena, the jobs
//! compute the node's replacement, fresh nodes, and next-level tasks as
//! pure data, and the sequential apply phase commits them in task order —
//! so the arena layout, the counted work, and the round count are
//! bit-identical between [`SeqRounds`] (the
//! historical simulator, pinned by `pinned_baselines`) and
//! `pf_rt::rounds::PoolRounds` (the worker pool, timed by E16). That the
//! split is *sound* — in-round tasks read and write disjoint nodes — is
//! exactly the two-level separation invariant the debug check enforces.
//!
//! The measured round count is the hand-pipelined "time":
//! `rounds ≈ 2·lg m + lg n + O(1)`, compared in experiment E16 against
//! the futures version's DAG depth. The point of the reproduction is not
//! that either number is smaller — both are Θ(lg n + lg m) — but that
//! this file needs an explicit schedule, an arena, and an interference
//! proof, while `two_six.rs` is the obvious recursive code.

use pf_backend::{Job, RoundExec, SeqRounds};

use crate::two_six::level_arrays;
use crate::Key;

/// Arena node of the mutable 2-6 tree.
#[derive(Debug, Clone)]
enum PvwNode<K> {
    Leaf(Vec<K>),
    Internal { keys: Vec<K>, children: Vec<usize> },
}

/// A mutable 2-6 tree in an index arena (the synchronous-PRAM-style
/// shared memory).
#[derive(Debug, Clone)]
pub struct PvwTree<K> {
    nodes: Vec<PvwNode<K>>,
    root: usize,
}

/// One wave's single descent task: a node and the keys destined for its
/// subtree.
struct Task<K> {
    node: usize,
    keys: Vec<K>,
}

/// A child pointer in a planned update: either an existing arena node or
/// the j-th node freshly allocated by this plan (resolved at apply time).
#[derive(Clone, Copy)]
enum ChildRef {
    Old(usize),
    New(usize),
}

/// The pure result of advancing one task one level: everything
/// [`apply_plan`] needs to commit the step, with no arena access.
struct TaskPlan<K> {
    /// Which wave slot the task belonged to (for regrouping `next`).
    slot: usize,
    /// The arena node the task stepped through.
    node: usize,
    /// Its replacement (children as [`ChildRef`]s), or `None` to leave the
    /// node untouched (empty key set).
    replace: Option<(Vec<K>, Vec<ChildRef>, bool)>,
    /// Nodes to allocate, in order (split halves: left then right).
    allocs: Vec<PvwNode<K>>,
    /// Next-level tasks: target child and its keys.
    next: Vec<(ChildRef, Vec<K>)>,
    /// Key-moves plus node visits charged by this step.
    work: u64,
}

/// Statistics from a synchronous hand-pipelined run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvwStats {
    /// Synchronous rounds executed (the hand-pipelined parallel time).
    pub rounds: u64,
    /// Total key-moves plus node visits (sequential work, for reference).
    pub work: u64,
    /// Number of waves (lg m + 1).
    pub waves: usize,
    /// Maximum number of waves simultaneously active in any round.
    pub max_concurrent_waves: usize,
}

impl<K: Key> PvwTree<K> {
    /// Build from sorted keys (same shape discipline as
    /// `two_six::preload_from_sorted`: ≤ 2 keys per leaf, 2–3 children per
    /// internal node).
    pub fn from_sorted(keys: &[K]) -> Self {
        let mut t = PvwTree {
            nodes: Vec::new(),
            root: 0,
        };
        if keys.is_empty() {
            t.root = t.alloc(PvwNode::Leaf(Vec::new()));
            return t;
        }
        let mut h = 0usize;
        let mut cap = 2usize;
        while keys.len() > cap {
            h += 1;
            cap = cap * 3 + 2;
        }
        t.root = t.build(keys, h);
        t
    }

    fn alloc(&mut self, n: PvwNode<K>) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    fn build(&mut self, keys: &[K], h: usize) -> usize {
        if h == 0 {
            debug_assert!((1..=2).contains(&keys.len()));
            return self.alloc(PvwNode::Leaf(keys.to_vec()));
        }
        let min_keys = (1usize << h) - 1;
        let max_keys = 3usize.pow(h as u32) - 1;
        let n = keys.len();
        let c = if n > 2 * min_keys && n <= 2 * max_keys + 1 {
            2
        } else {
            3
        };
        let mut sizes = vec![min_keys; c];
        let mut rem = n - (c - 1) - c * min_keys;
        for s in sizes.iter_mut() {
            let add = rem.min(max_keys - min_keys);
            *s += add;
            rem -= add;
        }
        let mut node_keys = Vec::with_capacity(c - 1);
        let mut children = Vec::with_capacity(c);
        let mut at = 0usize;
        for (i, s) in sizes.iter().enumerate() {
            let sub = self.build(&keys[at..at + s], h - 1);
            children.push(sub);
            at += s;
            if i < c - 1 {
                node_keys.push(keys[at].clone());
                at += 1;
            }
        }
        self.alloc(PvwNode::Internal {
            keys: node_keys,
            children,
        })
    }

    /// All keys in symmetric order.
    pub fn to_sorted_vec(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.inorder(self.root, &mut out);
        out
    }

    fn inorder(&self, at: usize, out: &mut Vec<K>) {
        match &self.nodes[at] {
            PvwNode::Leaf(ks) => out.extend(ks.iter().cloned()),
            PvwNode::Internal { keys, children } => {
                for i in 0..children.len() {
                    self.inorder(children[i], out);
                    if i < keys.len() {
                        out.push(keys[i].clone());
                    }
                }
            }
        }
    }

    /// Check all 2-6 invariants (arity, order, uniform leaf depth).
    pub fn validate(&self) -> Result<(), String> {
        let keys = self.to_sorted_vec();
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("keys not strictly increasing".into());
        }
        self.check(self.root, true).map(|_| ())
    }

    fn check(&self, at: usize, is_root: bool) -> Result<usize, String> {
        match &self.nodes[at] {
            PvwNode::Leaf(ks) => {
                if ks.is_empty() && !is_root {
                    return Err("empty non-root leaf".into());
                }
                if ks.len() > 5 {
                    return Err(format!("leaf with {} keys", ks.len()));
                }
                Ok(0)
            }
            PvwNode::Internal { keys, children } => {
                if keys.is_empty() || keys.len() > 5 {
                    return Err(format!("internal node with {} keys", keys.len()));
                }
                if children.len() != keys.len() + 1 {
                    return Err("child count mismatch".into());
                }
                let mut d = None;
                for &c in children {
                    let dc = self.check(c, false)?;
                    match d {
                        None => d = Some(dc),
                        Some(prev) if prev != dc => return Err("ragged leaves".into()),
                        _ => {}
                    }
                }
                Ok(d.expect("children") + 1)
            }
        }
    }

    fn key_count(&self, at: usize) -> usize {
        match &self.nodes[at] {
            PvwNode::Leaf(ks) => ks.len(),
            PvwNode::Internal { keys, .. } => keys.len(),
        }
    }

    /// Split node `at` (≥ 3 keys) around its middle key; returns
    /// `(left_idx, middle_key, right_idx)`. Used only for the sequential
    /// root split — in-round splits go through [`plan_split`].
    fn split_node(&mut self, at: usize) -> (usize, K, usize) {
        let (l, sep, r) = plan_split(&self.nodes[at]);
        let li = self.alloc(l);
        let ri = self.alloc(r);
        (li, sep, ri)
    }

    /// Split the root if needed before a wave enters (the only place the
    /// tree grows). Runs sequentially between rounds, so it mutates the
    /// arena directly.
    fn maybe_split_root(&mut self, work: &mut u64) {
        if self.key_count(self.root) >= 3 {
            let (l, sep, r) = self.split_node(self.root);
            *work += 1;
            self.root = self.alloc(PvwNode::Internal {
                keys: vec![sep],
                children: vec![l, r],
            });
        }
    }

    /// Commit one planned step: allocate the plan's fresh nodes (in plan
    /// order — apply runs in task order, so the arena layout is identical
    /// to the sequential execution), replace the stepped node, and resolve
    /// the next-level tasks.
    fn apply_plan(&mut self, plan: TaskPlan<K>, work: &mut u64) -> (usize, Vec<Task<K>>) {
        let base = self.nodes.len();
        let resolve = |r: ChildRef| match r {
            ChildRef::Old(i) => i,
            ChildRef::New(j) => base + j,
        };
        self.nodes.extend(plan.allocs);
        *work += plan.work;
        if let Some((keys, children, is_leaf)) = plan.replace {
            self.nodes[plan.node] = if is_leaf {
                PvwNode::Leaf(keys)
            } else {
                PvwNode::Internal {
                    keys,
                    children: children.into_iter().map(resolve).collect(),
                }
            };
        }
        let next = plan
            .next
            .into_iter()
            .map(|(r, keys)| Task {
                node: resolve(r),
                keys,
            })
            .collect();
        (plan.slot, next)
    }
}

/// Split a node snapshot (≥ 3 keys) around its middle key, as pure data:
/// `(left, middle_key, right)`.
fn plan_split<K: Key>(node: &PvwNode<K>) -> (PvwNode<K>, K, PvwNode<K>) {
    match node {
        PvwNode::Leaf(ks) => {
            let mid = ks.len() / 2;
            (
                PvwNode::Leaf(ks[..mid].to_vec()),
                ks[mid].clone(),
                PvwNode::Leaf(ks[mid + 1..].to_vec()),
            )
        }
        PvwNode::Internal { keys, children } => {
            let mid = keys.len() / 2;
            (
                PvwNode::Internal {
                    keys: keys[..mid].to_vec(),
                    children: children[..=mid].to_vec(),
                },
                keys[mid].clone(),
                PvwNode::Internal {
                    keys: keys[mid + 1..].to_vec(),
                    children: children[mid + 1..].to_vec(),
                },
            )
        }
    }
}

/// Advance one task one level, as a pure function of the task's node
/// snapshot and the snapshots of the children it may split. Mirrors the
/// historical `step_task` mutation line by line, including the work
/// charges; [`PvwTree::apply_plan`] commits the result.
fn plan_task<K: Key>(
    slot: usize,
    node: usize,
    keys: Vec<K>,
    snapshot: PvwNode<K>,
    children_snap: Vec<Option<PvwNode<K>>>,
) -> TaskPlan<K> {
    let mut plan = TaskPlan {
        slot,
        node,
        replace: None,
        allocs: Vec::new(),
        next: Vec::new(),
        work: keys.len() as u64 + 1,
    };
    if keys.is_empty() {
        return plan;
    }
    match snapshot {
        PvwNode::Leaf(existing) => {
            let mut merged = existing;
            for k in keys {
                if let Err(pos) = merged.binary_search(&k) {
                    merged.insert(pos, k);
                }
            }
            assert!(merged.len() <= 5, "leaf overflow: separation violated");
            plan.replace = Some((merged, Vec::new(), true));
        }
        PvwNode::Internal {
            keys: nkeys,
            children,
        } => {
            debug_assert!(nkeys.len() <= 2, "wave entered a non-2-3 node");
            // Partition the wave keys by the node's splitters.
            let mut parts: Vec<Vec<K>> = Vec::with_capacity(nkeys.len() + 1);
            let mut rest = keys;
            for s in &nkeys {
                let (l, g): (Vec<K>, Vec<K>) =
                    rest.into_iter().filter(|k| k != s).partition(|k| k < s);
                parts.push(l);
                rest = g;
            }
            parts.push(rest);
            let mut new_keys: Vec<K> = Vec::with_capacity(5);
            let mut new_children: Vec<ChildRef> = Vec::with_capacity(6);
            for (i, part) in parts.into_iter().enumerate() {
                match &children_snap[i] {
                    Some(child) if !part.is_empty() => {
                        // Child will overflow: split its snapshot. The two
                        // halves are this plan's next allocations — left
                        // then right, matching the sequential order.
                        let (l, sep, r) = plan_split(child);
                        plan.work += 1;
                        let li = ChildRef::New(plan.allocs.len());
                        plan.allocs.push(l);
                        let ri = ChildRef::New(plan.allocs.len());
                        plan.allocs.push(r);
                        let (pl, pr): (Vec<K>, Vec<K>) = part
                            .into_iter()
                            .filter(|k| *k != sep)
                            .partition(|k| *k < sep);
                        if !pl.is_empty() {
                            plan.next.push((li, pl));
                        }
                        new_children.push(li);
                        new_keys.push(sep);
                        if !pr.is_empty() {
                            plan.next.push((ri, pr));
                        }
                        new_children.push(ri);
                    }
                    _ => {
                        if !part.is_empty() {
                            plan.next.push((ChildRef::Old(children[i]), part));
                        }
                        new_children.push(ChildRef::Old(children[i]));
                    }
                }
                if i < nkeys.len() {
                    new_keys.push(nkeys[i].clone());
                }
            }
            debug_assert!(new_keys.len() <= 5);
            plan.replace = Some((new_keys, new_children, false));
        }
    }
    plan
}

/// Insert `m` sorted distinct keys with the explicit synchronous pipeline
/// on the sequential round engine — the virtual-time instantiation whose
/// round counts E16 reports.
pub fn pvw_insert_many<K: Key>(tree: &mut PvwTree<K>, keys: &[K]) -> PvwStats {
    pvw_insert_many_with(tree, keys, &mut SeqRounds::new())
}

/// Insert `m` sorted distinct keys with the **explicit synchronous
/// pipeline**: wave `i` enters at round `2·i`, every wave advances one
/// level per round, and each round's tasks execute as one [`RoundExec`]
/// round. Returns the per-run statistics; the tree is updated in place.
/// Stats and final tree are independent of the executor (see module docs).
pub fn pvw_insert_many_with<K: Key, R: RoundExec>(
    tree: &mut PvwTree<K>,
    keys: &[K],
    exec: &mut R,
) -> PvwStats {
    let waves: Vec<Vec<K>> = level_arrays(keys);
    let n_waves = waves.len();
    // Active waves: (wave index, current tasks, entry round).
    let mut active: Vec<(usize, Vec<Task<K>>, u64)> = Vec::new();
    let mut next_wave = 0usize;
    let mut round: u64 = 0;
    let mut work: u64 = 0;
    let mut max_conc = 0usize;

    loop {
        // Admit the next wave every second round.
        if next_wave < n_waves && round == 2 * next_wave as u64 {
            tree.maybe_split_root(&mut work);
            active.push((
                next_wave,
                vec![Task {
                    node: tree.root,
                    keys: waves[next_wave].clone(),
                }],
                round,
            ));
            next_wave += 1;
        }
        if active.is_empty() && next_wave >= n_waves {
            break;
        }
        max_conc = max_conc.max(active.len());

        // Interference proof (debug builds): wave i is at level
        // round − entry_i; admitted two rounds apart, consecutive active
        // waves are exactly two levels apart — a wave only mutates its own
        // level and (via splits) the level below, which the predecessor
        // left at least two rounds ago. This is also the soundness
        // argument for running a round's tasks in parallel: their read and
        // write sets are disjoint.
        if cfg!(debug_assertions) {
            for pair in active.windows(2) {
                let lead = round - pair[0].2;
                let trail = round - pair[1].2;
                assert!(
                    lead >= trail + 2,
                    "pipeline interference: waves at distance {}",
                    lead - trail
                );
            }
        }

        // One synchronous round: every active wave advances one level.
        // Plan (clone each task's inputs out of the arena), execute the
        // pure jobs through the round engine, apply in task order.
        let mut jobs: Vec<Job<TaskPlan<K>>> = Vec::new();
        for (slot, (_, tasks, _)) in active.iter_mut().enumerate() {
            for t in tasks.drain(..) {
                let Task { node, keys } = t;
                let snapshot = tree.nodes[node].clone();
                let children_snap: Vec<Option<PvwNode<K>>> = match &snapshot {
                    PvwNode::Leaf(_) => Vec::new(),
                    PvwNode::Internal { children, .. } => children
                        .iter()
                        .map(|&c| (tree.key_count(c) >= 3).then(|| tree.nodes[c].clone()))
                        .collect(),
                };
                jobs.push(Box::new(move || {
                    plan_task(slot, node, keys, snapshot, children_snap)
                }));
            }
        }
        for plan in exec.round(jobs) {
            let (slot, next) = tree.apply_plan(plan, &mut work);
            active[slot].1.extend(next);
        }
        active.retain(|(_, tasks, _)| !tasks.is_empty());
        round += 1;
    }

    PvwStats {
        rounds: round,
        work,
        waves: n_waves,
        max_concurrent_waves: max_conc,
    }
}
