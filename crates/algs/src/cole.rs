//! Cole's pipelined (cascading) mergesort — the paper's second flagship
//! example of hand pipelining: "the approach was later used by Cole in
//! the first O(lg n) time sorting algorithm on the PRAM not based on the
//! AKS sorting network" (§1). The conclusions leave open whether futures
//! can express it; experiment E18 puts the two side by side.
//!
//! This is a synchronous **cascade** over a complete binary merge tree,
//! executed one stage per [`RoundExec`] round:
//!
//! * a node becomes *complete* three stages after both children are
//!   complete (leaves are complete at stage 0);
//! * every stage, each child sends its parent a **sample** of its current
//!   array: every 4th element while incomplete, then every 4th / 2nd /
//!   1st element in the three stages after completion;
//! * the parent's array for the next stage is the merge of the two
//!   samples — so partial merge results flow up the tree while the lower
//!   merges are still in progress, and the root completes at stage
//!   3·lg n.
//!
//! Each stage's per-node merges are independent (they read only the
//! previous stage's arrays), so a stage is one round of pure jobs: the
//! planning pass samples the children out of the shared arena, the jobs
//! merge, and the sequential apply writes the results back in node order.
//! On [`SeqRounds`] this is bit-identical to the
//! historical single-threaded simulator (pinned by the `pinned_baselines`
//! test); on `pf_rt::rounds::PoolRounds` the same text runs each stage's
//! merges across the worker pool — the hand-pipelined wall-clock baseline
//! for E18.
//!
//! **Substitution note** (cf. DESIGN.md): Cole's contribution includes
//! maintaining cross-ranks so each stage's merge runs in O(1) PRAM time;
//! this executable performs each stage's merges directly (charging their
//! element operations as work) and counts *stages* as the parallel time,
//! which is exactly the quantity the O(lg n) claim is about. The rank
//! machinery affects the per-stage constant only. Cole's proof bounds the
//! total work at O(n lg n); we measure it.

use pf_backend::{Job, RoundExec, SeqRounds};

use crate::Key;

/// Statistics from one cascade run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColeStats {
    /// Synchronous stages until the root completed (the parallel time;
    /// Cole: 3·lg n).
    pub stages: u64,
    /// Total element operations across all stage merges (Cole: O(n lg n)).
    pub work: u64,
    /// Maximum total array length alive in any single stage (space).
    pub max_stage_footprint: usize,
}

struct Node<K> {
    /// Stage at which this node completed (valid once `complete`).
    complete_at: Option<u64>,
    /// Current array (the node's `up` array in Cole's terminology).
    up: Vec<K>,
    /// Children indices (empty for leaves).
    children: Vec<usize>,
}

/// Every `k`-th element, starting so the sample is of the suffix-regular
/// kind Cole uses (positions k-1, 2k-1, ...).
fn sample<K: Clone>(a: &[K], k: usize) -> Vec<K> {
    a.iter().skip(k - 1).step_by(k).cloned().collect()
}

fn merge_count<K: Ord + Clone>(a: &[K], b: &[K], work: &mut u64) -> Vec<K> {
    *work += (a.len() + b.len()) as u64;
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out
}

/// Sort `keys` with the cascading merge on the sequential round engine —
/// the virtual-time instantiation whose stage counts E18 reports.
pub fn cole_sort<K: Key>(keys: &[K]) -> (Vec<K>, ColeStats) {
    cole_sort_with(keys, &mut SeqRounds::new())
}

/// Sort `keys` with the cascading merge, one synchronous stage per
/// [`RoundExec`] round; returns the sorted vector and the cascade
/// statistics. Stats are independent of the executor: the jobs read only
/// the previous stage's arrays and the apply phase runs in node order.
pub fn cole_sort_with<K: Key, R: RoundExec>(keys: &[K], exec: &mut R) -> (Vec<K>, ColeStats) {
    if keys.is_empty() {
        return (
            Vec::new(),
            ColeStats {
                stages: 0,
                work: 0,
                max_stage_footprint: 0,
            },
        );
    }
    // Build a complete binary tree over the (padded) leaves; padding uses
    // index-paired sentinels handled by sorting Option-free: we pad by
    // distributing leaves of size 1 and allowing missing siblings.
    let n = keys.len();
    let mut nodes: Vec<Node<K>> = Vec::new();
    // Level 0: leaves, complete at stage 0.
    let mut level: Vec<usize> = (0..n)
        .map(|i| {
            nodes.push(Node {
                complete_at: Some(0),
                up: vec![keys[i].clone()],
                children: Vec::new(),
            });
            nodes.len() - 1
        })
        .collect();
    // Build parents pairwise; odd node promoted.
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
            } else {
                nodes.push(Node {
                    complete_at: None,
                    up: Vec::new(),
                    children: vec![pair[0], pair[1]],
                });
                next.push(nodes.len() - 1);
            }
        }
        level = next;
    }
    let root = level[0];

    let mut stats = ColeStats {
        stages: 0,
        work: 0,
        max_stage_footprint: 0,
    };
    let mut stage: u64 = 0;
    while nodes[root].complete_at.is_none() {
        stage += 1;
        // Plan: sample every incomplete internal node's children from the
        // PREVIOUS stage's state — the synchronous discipline — so each
        // merge is a pure job over owned inputs.
        let mut who: Vec<(usize, bool)> = Vec::new();
        let mut jobs: Vec<Job<(Vec<K>, u64)>> = Vec::new();
        for v in 0..nodes.len() {
            if nodes[v].children.is_empty() || nodes[v].complete_at.is_some() {
                continue;
            }
            let mut sends: Vec<Vec<K>> = nodes[v]
                .children
                .iter()
                .map(|&c| {
                    let child = &nodes[c];
                    match child.complete_at {
                        None => sample(&child.up, 4),
                        Some(s) => {
                            // Stages after completion: s+1 -> 4, s+2 -> 2,
                            // s+3 and beyond -> 1 (full array).
                            match stage.saturating_sub(s) {
                                0 | 1 => sample(&child.up, 4),
                                2 => sample(&child.up, 2),
                                _ => child.up.clone(),
                            }
                        }
                    }
                })
                .collect();
            // v completes once both children are complete and it has
            // received their full arrays (3 stages after the later child).
            let full = nodes[v]
                .children
                .iter()
                .all(|&c| matches!(nodes[c].complete_at, Some(s) if stage >= s + 3));
            who.push((v, full));
            let b = sends.pop().expect("two children");
            let a = sends.pop().expect("two children");
            jobs.push(Box::new(move || {
                let mut w = 0u64;
                let merged = merge_count(&a, &b, &mut w);
                (merged, w)
            }));
        }
        // One synchronous stage across the round engine, then apply the
        // results in node order.
        let results = exec.round(jobs);
        for ((v, full), (merged, w)) in who.into_iter().zip(results) {
            stats.work += w;
            nodes[v].up = merged;
            if full {
                nodes[v].complete_at = Some(stage);
                // Cole's space discipline: once a node holds the full
                // merge of its subtree, the children's arrays are dead.
                let kids = nodes[v].children.clone();
                for c in kids {
                    nodes[c].up = Vec::new();
                }
            }
        }
        let footprint: usize = nodes.iter().map(|nd| nd.up.len()).sum();
        stats.max_stage_footprint = stats.max_stage_footprint.max(footprint);
        assert!(
            stage <= 8 * (64 - (n as u64).leading_zeros() as u64 + 1),
            "cascade failed to converge by stage {stage}"
        );
    }
    stats.stages = stage;
    (nodes[root].up.clone(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        // splitmix-keyed shuffle; self-contained so the crate stays free of
        // the rand dev-dependency.
        let mut v: Vec<i64> = (0..n as i64).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            v.swap(i, (z % (i as u64 + 1)) as usize);
        }
        v
    }

    #[test]
    fn sorts_correctly() {
        for n in [0usize, 1, 2, 3, 5, 8, 13, 64, 100, 1000] {
            let keys = shuffled(n, n as u64 + 7);
            let (sorted, _) = cole_sort(&keys);
            assert_eq!(sorted, (0..n as i64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn stages_are_three_log_n() {
        for lg in [4u32, 6, 8] {
            let n = 1usize << lg;
            let (_, s) = cole_sort(&shuffled(n, 3));
            assert_eq!(
                s.stages,
                3 * lg as u64,
                "power-of-two input must complete at exactly 3·lg n stages"
            );
        }
    }

    #[test]
    fn executor_does_not_change_stats() {
        // The whole point of the compute/apply split: SeqRounds and any
        // other RoundExec observe the same per-round snapshots, so the
        // counted statistics cannot depend on the executor.
        struct Reversed(u64);
        impl RoundExec for Reversed {
            fn round<T: Send + 'static>(&mut self, jobs: Vec<Job<T>>) -> Vec<T> {
                self.0 += 1;
                let mut out: Vec<T> = jobs.into_iter().rev().map(|j| j()).collect();
                out.reverse();
                out
            }
            fn rounds_executed(&self) -> u64 {
                self.0
            }
        }
        let keys = shuffled(256, 9);
        let (v1, s1) = cole_sort(&keys);
        let (v2, s2) = cole_sort_with(&keys, &mut Reversed(0));
        assert_eq!(v1, v2);
        assert_eq!(s1, s2);
    }
}
