//! Sequential reference implementations: a classic treap (Seidel–Aragon)
//! and small helpers. These serve three purposes:
//!
//! 1. **correctness oracles** for the pipelined algorithms;
//! 2. **input construction** — the parallel treap operations are run on
//!    treaps whose shape is fully determined by the (key, priority) pairs,
//!    so building the same pairs here and in each engine yields
//!    structurally identical inputs across backends;
//! 3. **work baselines** — the paper's work bounds are relative to the
//!    sequential algorithm ("determining the work is often simple since it
//!    is the time a computation would take sequentially", §2).
//!
//! This module is pure code with no engine in sight — it is what the three
//! [`PipeBackend`](crate::PipeBackend) engines are all checked against.

use crate::Key;

/// A (key, priority) pair. The treap shape is a deterministic function of
/// the multiset of pairs, which is what makes cross-backend structural
/// comparisons possible.
pub type Entry<K> = (K, u64);

/// A sequential treap node.
#[derive(Debug, Clone)]
pub struct PlainTreap<K> {
    /// The key at the root.
    pub key: K,
    /// The heap priority at the root (max-heap).
    pub prio: u64,
    /// Left subtree.
    pub left: Option<Box<PlainTreap<K>>>,
    /// Right subtree.
    pub right: Option<Box<PlainTreap<K>>>,
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used to derive treap
/// priorities from integer keys when an explicit priority is not supplied.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Tie-safe priority comparison: compares priorities, breaking ties by key
/// so the treap shape is a total function of the entries. Shared with the
/// pipelined [`crate::treap`], which must agree on shapes exactly.
pub fn wins<K: Ord>(k1: &K, p1: u64, k2: &K, p2: u64) -> bool {
    (p1, k1) > (p2, k2)
}

impl<K: Key> PlainTreap<K> {
    fn leaf(key: K, prio: u64) -> Box<Self> {
        Box::new(PlainTreap {
            key,
            prio,
            left: None,
            right: None,
        })
    }

    /// Build a treap by repeated insertion. Entries may be in any order;
    /// duplicate keys keep the first occurrence.
    pub fn from_entries(entries: &[Entry<K>]) -> Option<Box<Self>> {
        let mut t = None;
        for (k, p) in entries {
            t = Self::insert(t, k.clone(), *p);
        }
        t
    }

    /// Insert `(key, prio)`; duplicate keys leave the treap unchanged.
    pub fn insert(t: Option<Box<Self>>, key: K, prio: u64) -> Option<Box<Self>> {
        match t {
            None => Some(Self::leaf(key, prio)),
            Some(mut n) => {
                if key == n.key {
                    return Some(n);
                }
                if key < n.key {
                    n.left = Self::insert(n.left.take(), key, prio);
                    if n.left
                        .as_ref()
                        .is_some_and(|l| wins(&l.key, l.prio, &n.key, n.prio))
                    {
                        return Some(Self::rotate_right(n));
                    }
                } else {
                    n.right = Self::insert(n.right.take(), key, prio);
                    if n.right
                        .as_ref()
                        .is_some_and(|r| wins(&r.key, r.prio, &n.key, n.prio))
                    {
                        return Some(Self::rotate_left(n));
                    }
                }
                Some(n)
            }
        }
    }

    fn rotate_right(mut n: Box<Self>) -> Box<Self> {
        let mut l = n.left.take().expect("rotate_right without left child");
        n.left = l.right.take();
        l.right = Some(n);
        l
    }

    fn rotate_left(mut n: Box<Self>) -> Box<Self> {
        let mut r = n.right.take().expect("rotate_left without right child");
        n.right = r.left.take();
        r.left = Some(n);
        r
    }

    /// Does the treap contain `key`?
    pub fn contains(t: &Option<Box<Self>>, key: &K) -> bool {
        let mut cur = t;
        while let Some(n) = cur {
            if *key == n.key {
                return true;
            }
            cur = if *key < n.key { &n.left } else { &n.right };
        }
        false
    }

    /// `split(s, t)`: keys `< s` on the left, keys `> s` on the right, plus
    /// whether `s` itself was present (it is excluded from both sides) —
    /// the sequential `splitm` of Figure 4.
    #[allow(clippy::type_complexity)]
    pub fn split(t: Option<Box<Self>>, s: &K) -> (Option<Box<Self>>, Option<Box<Self>>, bool) {
        match t {
            None => (None, None, false),
            Some(mut n) => {
                if *s == n.key {
                    (n.left.take(), n.right.take(), true)
                } else if *s < n.key {
                    let (l, m, found) = Self::split(n.left.take(), s);
                    n.left = m;
                    (l, Some(n), found)
                } else {
                    let (m, r, found) = Self::split(n.right.take(), s);
                    n.right = m;
                    (Some(n), r, found)
                }
            }
        }
    }

    /// `join(l, r)` where every key of `l` is smaller than every key of `r`
    /// (Figure 7).
    pub fn join(l: Option<Box<Self>>, r: Option<Box<Self>>) -> Option<Box<Self>> {
        match (l, r) {
            (None, r) => r,
            (l, None) => l,
            (Some(mut a), Some(mut b)) => {
                if wins(&a.key, a.prio, &b.key, b.prio) {
                    a.right = Self::join(a.right.take(), Some(b));
                    Some(a)
                } else {
                    b.left = Self::join(Some(a), b.left.take());
                    Some(b)
                }
            }
        }
    }

    /// Set union; on duplicate keys the entry of the higher-priority root
    /// wins (both carry the same key, so the result key set is the union).
    pub fn union(a: Option<Box<Self>>, b: Option<Box<Self>>) -> Option<Box<Self>> {
        match (a, b) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => {
                let (mut w, l) = if wins(&a.key, a.prio, &b.key, b.prio) {
                    (a, b)
                } else {
                    (b, a)
                };
                let (ll, lr, _found) = Self::split(Some(l), &w.key);
                w.left = Self::union(w.left.take(), ll);
                w.right = Self::union(w.right.take(), lr);
                Some(w)
            }
        }
    }

    /// Set difference: `a` with every key of `b` removed.
    pub fn diff(a: Option<Box<Self>>, b: Option<Box<Self>>) -> Option<Box<Self>> {
        match (a, b) {
            (None, _) => None,
            (a, None) => a,
            (Some(mut a), Some(b)) => {
                let (bl, br, found) = Self::split(Some(b), &a.key);
                let l = Self::diff(a.left.take(), bl);
                let r = Self::diff(a.right.take(), br);
                if found {
                    Self::join(l, r)
                } else {
                    a.left = l;
                    a.right = r;
                    Some(a)
                }
            }
        }
    }

    /// Remove `key` if present.
    pub fn delete(t: Option<Box<Self>>, key: &K) -> Option<Box<Self>> {
        let (l, r, _) = Self::split(t, key);
        Self::join(l, r)
    }

    /// Keys in symmetric (sorted) order.
    pub fn to_sorted_vec(t: &Option<Box<Self>>) -> Vec<K> {
        let mut v = Vec::new();
        fn rec<K: Key>(t: &Option<Box<PlainTreap<K>>>, v: &mut Vec<K>) {
            if let Some(n) = t {
                rec(&n.left, v);
                v.push(n.key.clone());
                rec(&n.right, v);
            }
        }
        rec(t, &mut v);
        v
    }

    /// Number of keys.
    pub fn size(t: &Option<Box<Self>>) -> usize {
        match t {
            None => 0,
            Some(n) => 1 + Self::size(&n.left) + Self::size(&n.right),
        }
    }

    /// Height (empty = 0).
    pub fn height(t: &Option<Box<Self>>) -> usize {
        match t {
            None => 0,
            Some(n) => 1 + Self::height(&n.left).max(Self::height(&n.right)),
        }
    }

    /// Check the BST order *and* the max-heap priority order.
    pub fn check_invariants(t: &Option<Box<Self>>) -> bool {
        fn rec<K: Key>(t: &Option<Box<PlainTreap<K>>>) -> bool {
            match t {
                None => true,
                Some(n) => {
                    let lo = n.left.as_ref().is_none_or(|l| {
                        l.key < n.key && !wins(&l.key, l.prio, &n.key, n.prio) && rec(&n.left)
                    });
                    let hi = n.right.as_ref().is_none_or(|r| {
                        r.key > n.key && !wins(&r.key, r.prio, &n.key, n.prio) && rec(&n.right)
                    });
                    lo && hi
                }
            }
        }
        rec(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(keys: &[i64]) -> Vec<Entry<i64>> {
        keys.iter().map(|&k| (k, splitmix64(k as u64))).collect()
    }

    #[test]
    fn insert_and_order() {
        let t = PlainTreap::from_entries(&entries(&[5, 1, 9, 3, 7, 2, 8]));
        assert_eq!(PlainTreap::to_sorted_vec(&t), vec![1, 2, 3, 5, 7, 8, 9]);
        assert!(PlainTreap::check_invariants(&t));
        assert_eq!(PlainTreap::size(&t), 7);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let t = PlainTreap::from_entries(&entries(&[4, 4, 4]));
        assert_eq!(PlainTreap::size(&t), 1);
    }

    #[test]
    fn contains_works() {
        let t = PlainTreap::from_entries(&entries(&[10, 20, 30]));
        assert!(PlainTreap::contains(&t, &20));
        assert!(!PlainTreap::contains(&t, &25));
        assert!(!PlainTreap::contains(&None::<Box<PlainTreap<i64>>>, &1));
    }

    #[test]
    fn split_partitions_and_finds() {
        let t = PlainTreap::from_entries(&entries(&(0..50).collect::<Vec<_>>()));
        let (l, r, found) = PlainTreap::split(t, &25);
        assert!(found);
        assert_eq!(PlainTreap::to_sorted_vec(&l), (0..25).collect::<Vec<_>>());
        assert_eq!(PlainTreap::to_sorted_vec(&r), (26..50).collect::<Vec<_>>());
        assert!(PlainTreap::check_invariants(&l));
        assert!(PlainTreap::check_invariants(&r));
    }

    #[test]
    fn split_on_absent_key() {
        let t = PlainTreap::from_entries(&entries(&[0, 2, 4, 6]));
        let (l, r, found) = PlainTreap::split(t, &3);
        assert!(!found);
        assert_eq!(PlainTreap::to_sorted_vec(&l), vec![0, 2]);
        assert_eq!(PlainTreap::to_sorted_vec(&r), vec![4, 6]);
    }

    #[test]
    fn join_inverse_of_split() {
        let t = PlainTreap::from_entries(&entries(&(0..100).map(|i| i * 3).collect::<Vec<_>>()));
        let before = PlainTreap::to_sorted_vec(&t);
        let (l, r, found) = PlainTreap::split(t, &50); // 50 not a multiple of 3
        assert!(!found);
        let j = PlainTreap::join(l, r);
        assert_eq!(PlainTreap::to_sorted_vec(&j), before);
        assert!(PlainTreap::check_invariants(&j));
    }

    #[test]
    fn union_is_set_union() {
        let a = PlainTreap::from_entries(&entries(&[1, 3, 5, 7]));
        let b = PlainTreap::from_entries(&entries(&[2, 3, 6, 7, 8]));
        let u = PlainTreap::union(a, b);
        assert_eq!(PlainTreap::to_sorted_vec(&u), vec![1, 2, 3, 5, 6, 7, 8]);
        assert!(PlainTreap::check_invariants(&u));
    }

    #[test]
    fn diff_is_set_difference() {
        let a = PlainTreap::from_entries(&entries(&(0..20).collect::<Vec<_>>()));
        let b = PlainTreap::from_entries(&entries(
            &(0..20).filter(|k| k % 3 == 0).collect::<Vec<_>>(),
        ));
        let d = PlainTreap::diff(a, b);
        assert_eq!(
            PlainTreap::to_sorted_vec(&d),
            (0..20).filter(|k| k % 3 != 0).collect::<Vec<_>>()
        );
        assert!(PlainTreap::check_invariants(&d));
    }

    #[test]
    fn delete_removes() {
        let mut t = PlainTreap::from_entries(&entries(&[1, 2, 3]));
        t = PlainTreap::delete(t, &2);
        assert_eq!(PlainTreap::to_sorted_vec(&t), vec![1, 3]);
        t = PlainTreap::delete(t, &99); // absent: no-op
        assert_eq!(PlainTreap::size(&t), 2);
    }

    #[test]
    fn expected_height_is_logarithmic() {
        let n = 1 << 12;
        let t = PlainTreap::from_entries(&entries(&(0..n).collect::<Vec<_>>()));
        let h = PlainTreap::height(&t);
        // E[h] ≈ 3 lg n for treaps; 12 * 6 is a generous in-practice cap.
        assert!(h < 6 * 12, "height {h} too large for n = {n}");
        assert!(h >= 12);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // No tiny cycle in low bits for consecutive inputs.
        let vals: Vec<u64> = (0..64).map(splitmix64).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }
}
