//! §3.2–3.3 — pipelined treap **union** and **difference** (Figures 4
//! and 7; Theorems 3.5, 3.7, 3.11; Corollaries 3.6, 3.12), written once in
//! continuation-passing style against the [`PipeBackend`] surface.
//!
//! Treaps (Seidel–Aragon randomized search trees) keep keys in symmetric
//! order and independently random priorities in max-heap order, giving
//! expected Θ(lg n) height. The paper shows that the *obvious sequential
//! code* for union and difference, annotated with futures, pipelines to
//! expected O(lg n + lg m) depth — and that the pipeline here is
//! **dynamic**: how soon `splitm` delivers each side of a split depends on
//! the data, which is what makes these algorithms essentially impossible to
//! pipeline by hand on a synchronous PRAM.
//!
//! The priority comparison breaks ties by key, so the result shape is a
//! total function of the (key, priority) entries; the sequential treap in
//! [`crate::plain`] uses the same rule, which the cross-backend tests rely
//! on.
//!
//! Beyond the paper's two headline operations the module rounds out the
//! set-algebra API: [`intersect`] (the dual of [`diff`], from the
//! companion set-operations paper the text cites), bulk
//! [`insert_keys`] / [`delete_keys`], and the single-key dictionary
//! operations [`contains`] / [`insert_one`] / [`delete_one`] expressed as
//! singleton unions/differences — exactly how §3.2–3.3 say the bulk
//! primitives are meant to be used.

use std::sync::Arc;

use crate::plain::{wins, Entry, PlainTreap};
use crate::{fork_call, Key, Mode, PipeBackend, Val};

/// Shorthand for the future of a subtreap on engine `B`.
pub type TreapFut<B, K> = <B as PipeBackend>::Fut<Treap<B, K>>;
/// Shorthand for the write pointer of a subtreap cell on engine `B`.
pub type TreapWr<B, K> = <B as PipeBackend>::Wr<Treap<B, K>>;

/// A treap whose children are future cells of engine `B`.
pub enum Treap<B: PipeBackend, K: 'static> {
    /// The empty treap.
    Leaf,
    /// An interior node (shared, immutable).
    Node(Arc<TreapNode<B, K>>),
}

/// An interior node of a [`Treap`].
pub struct TreapNode<B: PipeBackend, K: 'static> {
    /// Key (symmetric order).
    pub key: K,
    /// Priority (max-heap order, ties broken by key).
    pub prio: u64,
    /// Future of the left subtreap.
    pub left: TreapFut<B, K>,
    /// Future of the right subtreap.
    pub right: TreapFut<B, K>,
}

impl<B: PipeBackend, K> Clone for Treap<B, K> {
    fn clone(&self) -> Self {
        match self {
            Treap::Leaf => Treap::Leaf,
            Treap::Node(n) => Treap::Node(Arc::clone(n)),
        }
    }
}

impl<B: PipeBackend, K> Treap<B, K> {
    /// Construct an interior node.
    pub fn node(key: K, prio: u64, left: TreapFut<B, K>, right: TreapFut<B, K>) -> Self {
        Treap::Node(Arc::new(TreapNode {
            key,
            prio,
            left,
            right,
        }))
    }

    /// Is this the empty treap?
    pub fn is_leaf(&self) -> bool {
        matches!(self, Treap::Leaf)
    }
}

impl<B: PipeBackend, K: Key> Treap<B, K>
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
{
    /// Read a finished cell (post-run inspection).
    ///
    /// # Panics
    /// If the cell is still unwritten.
    pub fn expect(f: &TreapFut<B, K>) -> Treap<B, K> {
        B::peek(f).expect("treap cell not written: the run has not quiesced")
    }

    /// Convert a sequential treap into an engine treap using free
    /// pre-written cells (input construction, zero cost).
    pub fn from_plain(bk: &B, t: &Option<Box<PlainTreap<K>>>) -> Treap<B, K>
    where
        TreapWr<B, K>: Send,
    {
        match t {
            None => Treap::Leaf,
            Some(n) => {
                let l = Self::from_plain(bk, &n.left);
                let r = Self::from_plain(bk, &n.right);
                let lf = bk.input(l);
                let rf = bk.input(r);
                Treap::node(n.key.clone(), n.prio, lf, rf)
            }
        }
    }

    /// Build directly from entries (builds a [`PlainTreap`] first, so the
    /// shape is the oracle's shape by construction).
    pub fn from_entries(bk: &B, entries: &[Entry<K>]) -> Treap<B, K>
    where
        TreapWr<B, K>: Send,
    {
        let plain = PlainTreap::from_entries(entries);
        Self::from_plain(bk, &plain)
    }

    /// Post-run inspection: sorted key vector.
    pub fn to_sorted_vec(&self) -> Vec<K> {
        let mut v = Vec::new();
        self.inorder_into(&mut v);
        v
    }

    fn inorder_into(&self, out: &mut Vec<K>) {
        if let Treap::Node(n) = self {
            Self::expect(&n.left).inorder_into(out);
            out.push(n.key.clone());
            Self::expect(&n.right).inorder_into(out);
        }
    }

    /// Post-run inspection: number of keys.
    pub fn size(&self) -> usize {
        match self {
            Treap::Leaf => 0,
            Treap::Node(n) => 1 + Self::expect(&n.left).size() + Self::expect(&n.right).size(),
        }
    }

    /// Post-run inspection: height (empty = 0).
    pub fn height(&self) -> usize {
        match self {
            Treap::Leaf => 0,
            Treap::Node(n) => {
                1 + Self::expect(&n.left)
                    .height()
                    .max(Self::expect(&n.right).height())
            }
        }
    }

    /// Post-run inspection: BST order and heap order both hold.
    pub fn check_invariants(&self) -> bool {
        fn rec<B: PipeBackend, K: Key>(t: &Treap<B, K>, max_prio: Option<(u64, K)>) -> bool
        where
            Treap<B, K>: Val,
            TreapFut<B, K>: Val,
        {
            match t {
                Treap::Leaf => true,
                Treap::Node(n) => {
                    if let Some((p, k)) = &max_prio {
                        if wins(&n.key, n.prio, k, *p) {
                            return false;
                        }
                    }
                    let here = Some((n.prio, n.key.clone()));
                    rec(&Treap::expect(&n.left), here.clone())
                        && rec(&Treap::expect(&n.right), here)
                }
            }
        }
        let heap_ok = rec(self, None);
        let keys = self.to_sorted_vec();
        let bst_ok = keys.windows(2).all(|w| w[0] < w[1]);
        heap_ok && bst_ok
    }
}

/// `splitm(s, t)` (Figure 4): partition `t` by the splitter `s` into keys
/// `< s` (`lout`) and keys `> s` (`rout`), **excluding** `s` itself;
/// `fout` reports whether `s` was present. Completes early if the splitter
/// is found — one of the data-dependent delays that make the pipeline
/// dynamic.
pub fn splitm<B: PipeBackend, K: Key>(
    bk: &B,
    s: K,
    t: Treap<B, K>,
    lout: TreapWr<B, K>,
    rout: TreapWr<B, K>,
    fout: B::Wr<bool>,
) where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    bk.tick(1); // match + compare
    match t {
        Treap::Leaf => {
            bk.fulfill(lout, Treap::Leaf);
            bk.fulfill(rout, Treap::Leaf);
            bk.fulfill(fout, false);
        }
        Treap::Node(n) => {
            if s == n.key {
                // Found: both sides are the children, written strictly
                // (a write is strict on the value, so touch first).
                bk.touch(&n.left.clone(), move |bk, lv| {
                    bk.fulfill(lout, lv);
                    bk.touch(&n.right, move |bk, rv| {
                        bk.fulfill(rout, rv);
                        bk.fulfill(fout, true);
                    });
                });
            } else if s < n.key {
                let (rp1, rf1) = bk.cell();
                bk.fulfill(
                    rout,
                    Treap::node(n.key.clone(), n.prio, rf1, n.right.clone()),
                );
                bk.touch(&n.left, move |bk, lt| splitm(bk, s, lt, lout, rp1, fout));
            } else {
                let (lp1, lf1) = bk.cell();
                bk.fulfill(
                    lout,
                    Treap::node(n.key.clone(), n.prio, n.left.clone(), lf1),
                );
                bk.touch(&n.right, move |bk, rt| splitm(bk, s, rt, lp1, rout, fout));
            }
        }
    }
}

/// `join(l, r)` (Figure 7): concatenate two treaps where every key of `l`
/// is smaller than every key of `r`. Takes already-touched root values;
/// the recursion forks so the result spine pipelines upward — the
/// ρ-value analysis of Lemma 3.10.
pub fn join<B: PipeBackend, K: Key>(bk: &B, l: Treap<B, K>, r: Treap<B, K>, out: TreapWr<B, K>)
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
{
    bk.tick(1);
    match (l, r) {
        (Treap::Leaf, r) => bk.fulfill(out, r),
        (l, Treap::Leaf) => bk.fulfill(out, l),
        (Treap::Node(a), Treap::Node(b)) => {
            if wins(&a.key, a.prio, &b.key, b.prio) {
                let (jp, jf) = bk.cell();
                bk.fulfill(out, Treap::node(a.key.clone(), a.prio, a.left.clone(), jf));
                let ar = a.right.clone();
                bk.fork(move |bk| {
                    bk.touch(&ar, move |bk, rv| join(bk, rv, Treap::Node(b), jp));
                });
            } else {
                let (jp, jf) = bk.cell();
                bk.fulfill(out, Treap::node(b.key.clone(), b.prio, jf, b.right.clone()));
                let bl = b.left.clone();
                bk.fork(move |bk| {
                    bk.touch(&bl, move |bk, lv| join(bk, Treap::Node(a), lv, jp));
                });
            }
        }
    }
}

/// `union(a, b)` (Figure 4): the keys of both treaps, duplicates removed.
/// The higher-priority root becomes the result root; the other treap is
/// split by that root's key with `splitm`, whose two output futures feed
/// the parallel recursive unions.
pub fn union<B: PipeBackend, K: Key>(
    bk: &B,
    a: TreapFut<B, K>,
    b: TreapFut<B, K>,
    out: TreapWr<B, K>,
    mode: Mode,
) where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    bk.touch(&a, move |bk, av| {
        bk.tick(1);
        if av.is_leaf() {
            bk.touch(&b, move |bk, bv| bk.fulfill(out, bv));
            return;
        }
        bk.touch(&b, move |bk, bv| {
            bk.tick(1);
            let (w, loser) = match (av, bv) {
                (av, Treap::Leaf) => {
                    bk.fulfill(out, av);
                    return;
                }
                (Treap::Node(na), Treap::Node(nb)) => {
                    if wins(&na.key, na.prio, &nb.key, nb.prio) {
                        (na, Treap::Node(nb))
                    } else {
                        (nb, Treap::Node(na))
                    }
                }
                (Treap::Leaf, _) => unreachable!("handled above"),
            };
            // let (l2, r2) = ?splitm(w.key, loser)
            let (lp, lf) = bk.cell();
            let (rp, rf) = bk.cell();
            let (fp, _ff) = bk.cell::<bool>(); // found-flag: duplicates drop silently
            let key = w.key.clone();
            fork_call(bk, mode, move |bk| splitm(bk, key, loser, lp, rp, fp));
            // Node(k, p, ?union(w.left, l2), ?union(w.right, r2))
            let (ulp, ulf) = bk.cell();
            let (urp, urf) = bk.cell();
            bk.tick(1);
            bk.fulfill(out, Treap::node(w.key.clone(), w.prio, ulf, urf));
            let wl = w.left.clone();
            let wr = w.right.clone();
            bk.fork2(
                move |bk| union(bk, wl, lf, ulp, mode),
                move |bk| union(bk, wr, rf, urp, mode),
            );
        });
    });
}

/// `diff(a, b)` (Figure 7): the keys of `a` that are not in `b`. Splits
/// `b` by `a`'s root key, recurses on both sides in parallel, and — if the
/// root key was found in `b` — deletes it by joining the two recursive
/// results. The descending phase pipelines like `union`; the ascending
/// (join) phase pipelines by the ρ-value argument of Theorem 3.11.
pub fn diff<B: PipeBackend, K: Key>(
    bk: &B,
    a: TreapFut<B, K>,
    b: TreapFut<B, K>,
    out: TreapWr<B, K>,
    mode: Mode,
) where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    bk.touch(&a, move |bk, av| {
        bk.tick(1);
        let n1 = match av {
            Treap::Leaf => {
                bk.fulfill(out, Treap::Leaf);
                return;
            }
            Treap::Node(n) => n,
        };
        bk.touch(&b, move |bk, bv| {
            bk.tick(1);
            if bv.is_leaf() {
                bk.fulfill(out, Treap::Node(n1));
                return;
            }
            // let (l2, r2, found) = ?splitm(a.key, b)
            let (lp, lf) = bk.cell();
            let (rp, rf) = bk.cell();
            let (fp, ff) = bk.cell();
            let key = n1.key.clone();
            fork_call(bk, mode, move |bk| splitm(bk, key, bv, lp, rp, fp));
            // l = ?diff(a.left, l2); r = ?diff(a.right, r2)
            let (dlp, dlf) = bk.cell();
            let (drp, drf) = bk.cell();
            let al = n1.left.clone();
            let ar = n1.right.clone();
            bk.fork2(
                move |bk| diff(bk, al, lf, dlp, mode),
                move |bk| diff(bk, ar, rf, drp, mode),
            );
            // if found then join(l, r) else Node(k, p, l, r)
            bk.touch(&ff, move |bk, found| {
                bk.tick(1);
                if found {
                    bk.touch(&dlf, move |bk, lv| {
                        bk.touch(&drf, move |bk, rv| match mode {
                            Mode::Pipelined => join(bk, lv, rv, out),
                            Mode::Strict => bk.strict(move |bk| join(bk, lv, rv, out)),
                        });
                    });
                } else {
                    bk.fulfill(out, Treap::node(n1.key.clone(), n1.prio, dlf, drf));
                }
            });
        });
    });
}

/// `intersect(a, b)`: the keys present in both treaps, with `a`'s
/// priorities. Structurally the dual of [`diff`] (same split, same
/// pipelined descent, same data-dependent join phase — only the
/// keep/delete decision is inverted), completing the set-operation family
/// of the companion paper the text cites for Theorem 3.7 (reference 11).
pub fn intersect<B: PipeBackend, K: Key>(
    bk: &B,
    a: TreapFut<B, K>,
    b: TreapFut<B, K>,
    out: TreapWr<B, K>,
    mode: Mode,
) where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    bk.touch(&a, move |bk, av| {
        bk.tick(1);
        let n1 = match av {
            Treap::Leaf => {
                bk.fulfill(out, Treap::Leaf);
                return;
            }
            Treap::Node(n) => n,
        };
        bk.touch(&b, move |bk, bv| {
            bk.tick(1);
            if bv.is_leaf() {
                bk.fulfill(out, Treap::Leaf);
                return;
            }
            let (lp, lf) = bk.cell();
            let (rp, rf) = bk.cell();
            let (fp, ff) = bk.cell();
            let key = n1.key.clone();
            fork_call(bk, mode, move |bk| splitm(bk, key, bv, lp, rp, fp));
            let (ilp, ilf) = bk.cell();
            let (irp, irf) = bk.cell();
            let al = n1.left.clone();
            let ar = n1.right.clone();
            bk.fork2(
                move |bk| intersect(bk, al, lf, ilp, mode),
                move |bk| intersect(bk, ar, rf, irp, mode),
            );
            // Inverted decision vs diff: keep the root only if it IS in b.
            bk.touch(&ff, move |bk, found| {
                bk.tick(1);
                if found {
                    bk.fulfill(out, Treap::node(n1.key.clone(), n1.prio, ilf, irf));
                } else {
                    bk.touch(&ilf, move |bk, lv| {
                        bk.touch(&irf, move |bk, rv| match mode {
                            Mode::Pipelined => join(bk, lv, rv, out),
                            Mode::Strict => bk.strict(move |bk| join(bk, lv, rv, out)),
                        });
                    });
                }
            });
        });
    });
}

/// Single-key search (§3.2: treaps "provide for search, insertion, and
/// deletion of keys"). A plain root-to-leaf walk touching each child on
/// the way down: O(h) depth and work; the verdict is written to `out`.
pub fn contains<B: PipeBackend, K: Key>(bk: &B, t: TreapFut<B, K>, key: K, out: B::Wr<bool>)
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    bk.touch(&t, move |bk, tv| contains_val(bk, key, tv, out));
}

fn contains_val<B: PipeBackend, K: Key>(bk: &B, key: K, cur: Treap<B, K>, out: B::Wr<bool>)
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    bk.tick(1);
    match cur {
        Treap::Leaf => bk.fulfill(out, false),
        Treap::Node(n) => {
            if key == n.key {
                bk.fulfill(out, true);
            } else if key < n.key {
                bk.touch(&n.left, move |bk, c| contains_val(bk, key, c, out));
            } else {
                bk.touch(&n.right, move |bk, c| contains_val(bk, key, c, out));
            }
        }
    }
}

/// Single-key insertion, expressed as a singleton union — exactly the
/// paper's reduction of dictionary operations to the bulk primitives.
pub fn insert_one<B: PipeBackend, K: Key>(
    bk: &B,
    t: TreapFut<B, K>,
    key: K,
    prio: u64,
    mode: Mode,
) -> TreapFut<B, K>
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    insert_keys(bk, t, &[(key, prio)], mode)
}

/// Single-key deletion via a singleton difference.
pub fn delete_one<B: PipeBackend, K: Key>(
    bk: &B,
    t: TreapFut<B, K>,
    key: K,
    mode: Mode,
) -> TreapFut<B, K>
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    delete_keys(bk, t, &[(key, 0)], mode)
}

/// Bulk insert (§3.2: union "can be used to insert a set of keys into a
/// treap"): build a treap of the new entries — via [`PipeBackend::input`],
/// since treap construction from a batch is the client's input
/// marshalling — and union it in. Returns the future of the updated treap.
pub fn insert_keys<B: PipeBackend, K: Key>(
    bk: &B,
    t: TreapFut<B, K>,
    batch: &[Entry<K>],
    mode: Mode,
) -> TreapFut<B, K>
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    let b = Treap::from_entries(bk, batch);
    let fb = bk.input(b);
    let (p, f) = bk.cell();
    bk.fork(move |bk| union(bk, t, fb, p, mode));
    f
}

/// Bulk delete (§3.3: difference "can be used to delete a set of keys").
/// The priorities in `batch` are irrelevant (only keys are matched).
pub fn delete_keys<B: PipeBackend, K: Key>(
    bk: &B,
    t: TreapFut<B, K>,
    batch: &[Entry<K>],
    mode: Mode,
) -> TreapFut<B, K>
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    let b = Treap::from_entries(bk, batch);
    let fb = bk.input(b);
    let (p, f) = bk.cell();
    bk.fork(move |bk| diff(bk, t, fb, p, mode));
    f
}

/// Collapse `k` treap futures into one: the **union tree** a coalescing
/// ingress queue wants. Instead of folding the batches into the root one
/// at a time (k sequential unions, each re-walking the accumulated
/// result), the batches combine pairwise in a balanced tree — ⌈lg k⌉
/// levels of unions whose operands are other *unresolved* unions, so the
/// whole tree pipelines: an upper union starts splitting as soon as the
/// lower union's root node is written. Duplicate keys across batches
/// resolve to the highest-priority entry regardless of the tree shape
/// (union keeps the [`wins`] winner), so the result is a function of the
/// combined entry set only.
///
/// Returns the input future unchanged for k = 1 and a ready `Leaf` for
/// k = 0.
pub fn union_many<B: PipeBackend, K: Key>(
    bk: &B,
    mut futs: Vec<TreapFut<B, K>>,
    mode: Mode,
) -> TreapFut<B, K>
where
    Treap<B, K>: Val,
    TreapFut<B, K>: Val,
    TreapWr<B, K>: Send,
    B::Fut<bool>: Val,
    B::Wr<bool>: Send,
{
    match futs.len() {
        0 => bk.input(Treap::Leaf),
        1 => futs.pop().expect("len checked"),
        n => {
            let right = futs.split_off(n / 2);
            let l = union_many(bk, futs, mode);
            let r = union_many(bk, right, mode);
            let (p, f) = bk.cell();
            bk.fork(move |bk| union(bk, l, r, p, mode));
            f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::splitmix64;
    use crate::Seq;

    fn entries(keys: impl IntoIterator<Item = i64>) -> Vec<Entry<i64>> {
        keys.into_iter()
            .map(|k| (k, splitmix64(k as u64 ^ 0xABCD_EF01)))
            .collect()
    }

    #[test]
    fn union_on_the_oracle_matches_plain() {
        let a = entries(0..80);
        let b = entries(40..120);
        let got = Seq::run(|bk| {
            let fa = bk.input(Treap::from_entries(bk, &a));
            let fb = bk.input(Treap::from_entries(bk, &b));
            let (op, of) = bk.cell();
            union(bk, fa, fb, op, Mode::Pipelined);
            Treap::<Seq, i64>::expect(&of)
        });
        assert!(got.check_invariants());
        let pu = PlainTreap::union(PlainTreap::from_entries(&a), PlainTreap::from_entries(&b));
        assert_eq!(got.to_sorted_vec(), PlainTreap::to_sorted_vec(&pu));
        assert_eq!(got.height(), PlainTreap::height(&pu));
    }

    #[test]
    fn diff_and_intersect_on_the_oracle() {
        let a = entries(0..100);
        let b = entries((0..100).filter(|k| k % 3 == 0));
        let (d, i) = Seq::run(|bk| {
            let fa = bk.input(Treap::from_entries(bk, &a));
            let fb = bk.input(Treap::from_entries(bk, &b));
            let (dp, df) = bk.cell();
            diff(bk, fa.clone(), fb.clone(), dp, Mode::Pipelined);
            let (ip, if_) = bk.cell();
            intersect(bk, fa, fb, ip, Mode::Pipelined);
            (
                Treap::<Seq, i64>::expect(&df),
                Treap::<Seq, i64>::expect(&if_),
            )
        });
        assert!(d.check_invariants() && i.check_invariants());
        assert_eq!(
            d.to_sorted_vec(),
            (0..100).filter(|k| k % 3 != 0).collect::<Vec<_>>()
        );
        assert_eq!(
            i.to_sorted_vec(),
            (0..100).filter(|k| k % 3 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn union_many_matches_sequential_fold() {
        // Overlapping batches, duplicate keys across batches with
        // *different* priorities: the union tree must resolve every
        // duplicate to the max-priority entry, same as the left fold.
        let batches: Vec<Vec<Entry<i64>>> = (0..5)
            .map(|b| {
                (0..40)
                    .map(|i| {
                        let k = (7 * i + b) % 60;
                        (k, splitmix64((k as u64) << 8 | b as u64))
                    })
                    .collect()
            })
            .collect();
        for take in [0usize, 1, 2, 3, 5] {
            let got = Seq::run(|bk| {
                let futs: Vec<_> = batches[..take]
                    .iter()
                    .map(|b| bk.input(Treap::from_entries(bk, b)))
                    .collect();
                let f = union_many(bk, futs, Mode::Pipelined);
                Treap::<Seq, i64>::expect(&f)
            });
            assert!(got.check_invariants(), "take={take}");
            let mut want: Option<Box<PlainTreap<i64>>> = None;
            for b in &batches[..take] {
                want = PlainTreap::union(want, PlainTreap::from_entries(b));
            }
            assert_eq!(
                got.to_sorted_vec(),
                PlainTreap::to_sorted_vec(&want),
                "take={take}"
            );
            assert_eq!(got.height(), PlainTreap::height(&want), "take={take}");
        }
    }

    #[test]
    fn dictionary_ops_on_the_oracle() {
        let (missing, present, t3) = Seq::run(|bk| {
            let ft = bk.input(Treap::from_entries(bk, &entries((0..50).map(|i| 2 * i))));
            let t1 = insert_one(bk, ft, 7, 12345, Mode::Pipelined);
            let t2 = insert_one(bk, t1, 9, 999, Mode::Pipelined);
            let t3 = delete_one(bk, t2, 48, Mode::Pipelined);
            let (mp, mf) = bk.cell();
            contains(bk, t3.clone(), 48, mp);
            let (pp, pf) = bk.cell();
            contains(bk, t3.clone(), 9, pp);
            (!mf.expect(), pf.expect(), Treap::<Seq, i64>::expect(&t3))
        });
        assert!(missing && present);
        let keys = t3.to_sorted_vec();
        assert!(keys.contains(&7) && keys.contains(&9) && !keys.contains(&48));
        assert_eq!(keys.len(), 51);
    }
}
