//! §3.1 — tree **rebalancing** (Theorem 3.2) and the merge-then-rebalance
//! composite (Corollary 3.3), written once against the [`PipeBackend`]
//! surface.
//!
//! The paper's three phases, each a pipelined pass:
//!
//! 1. [`annotate_sizes`] — an upward pass computing subtree sizes (this
//!    phase is the depth-Θ(h) bottleneck; it cannot complete before the
//!    input tree does);
//! 2. [`assign_ranks`] — a downward pass stamping each node with its
//!    symmetric-order rank, emitting nodes root-first so phase 3 can chase
//!    them immediately;
//! 3. [`rebuild`] — split the ranked tree at the median rank
//!    ([`split_rank`], a rank-indexed variant of `split`) and recurse on
//!    both halves in parallel, producing a perfectly balanced tree.
//!
//! Phases 2 and 3 overlap through future cells; the total depth is
//! O(h + lg n) with pipelining versus Θ(h · lg n) strict.

use std::sync::Arc;

use crate::tree::{Tree, TreeFut, TreeWr};
use crate::{fork_call, Key, Mode, PipeBackend, Val};

/// Shorthand for the future of a ranked subtree on engine `B`.
pub type RankedFut<B, K> = <B as PipeBackend>::Fut<RankedTree<B, K>>;
/// Shorthand for the write pointer of a ranked subtree cell on engine `B`.
pub type RankedWr<B, K> = <B as PipeBackend>::Wr<RankedTree<B, K>>;

/// Phase-1 output: a fully materialized tree annotated with subtree sizes.
///
/// The children are plain values, not futures — the size pass is an upward
/// accumulation, so a node can only exist once its children do. Being
/// engine-free, the same value flows unchanged between backends.
pub enum SizedTree<K> {
    /// The empty tree.
    Leaf,
    /// An interior node.
    Node(Arc<SizedNode<K>>),
}

/// An interior node of a [`SizedTree`].
pub struct SizedNode<K> {
    /// The key stored at this node.
    pub key: K,
    /// Total number of keys in this subtree.
    pub size: usize,
    /// Number of keys in the left subtree (cached for rank assignment).
    pub left_size: usize,
    /// Left subtree.
    pub left: SizedTree<K>,
    /// Right subtree.
    pub right: SizedTree<K>,
}

impl<K> Clone for SizedTree<K> {
    fn clone(&self) -> Self {
        match self {
            SizedTree::Leaf => SizedTree::Leaf,
            SizedTree::Node(n) => SizedTree::Node(Arc::clone(n)),
        }
    }
}

impl<K> SizedTree<K> {
    /// Number of keys in this subtree.
    pub fn size(&self) -> usize {
        match self {
            SizedTree::Leaf => 0,
            SizedTree::Node(n) => n.size,
        }
    }
}

/// Phase-2 output: nodes stamped with symmetric-order ranks, children as
/// futures so the rebuild phase can chase a node the moment it appears.
pub enum RankedTree<B: PipeBackend, K: 'static> {
    /// The empty tree.
    Leaf,
    /// An interior node.
    Node(Arc<RankedNode<B, K>>),
}

/// An interior node of a [`RankedTree`].
pub struct RankedNode<B: PipeBackend, K: 'static> {
    /// The key stored at this node.
    pub key: K,
    /// Symmetric-order rank of this key (0-based).
    pub rank: usize,
    /// Future of the left subtree.
    pub left: RankedFut<B, K>,
    /// Future of the right subtree.
    pub right: RankedFut<B, K>,
}

impl<B: PipeBackend, K> Clone for RankedTree<B, K> {
    fn clone(&self) -> Self {
        match self {
            RankedTree::Leaf => RankedTree::Leaf,
            RankedTree::Node(n) => RankedTree::Node(Arc::clone(n)),
        }
    }
}

impl<B: PipeBackend, K> RankedTree<B, K> {
    /// Construct an interior node.
    pub fn node(key: K, rank: usize, left: RankedFut<B, K>, right: RankedFut<B, K>) -> Self {
        RankedTree::Node(Arc::new(RankedNode {
            key,
            rank,
            left,
            right,
        }))
    }
}

/// Phase 1: annotate every node with its subtree size (upward pass). The
/// result for a node is written only after both children's results arrive —
/// inherently non-pipelining, which is why rebalance costs Θ(h) depth even
/// with futures.
pub fn annotate_sizes<B: PipeBackend, K: Key>(bk: &B, t: TreeFut<B, K>, out: B::Wr<SizedTree<K>>)
where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    B::Fut<SizedTree<K>>: Val,
    B::Wr<SizedTree<K>>: Send,
{
    bk.touch(&t, move |bk, tv| {
        bk.tick(1);
        match tv {
            Tree::Leaf => bk.fulfill(out, SizedTree::Leaf),
            Tree::Node(n) => {
                let (lp, lf) = bk.cell();
                let (rp, rf) = bk.cell();
                let (l, r) = (n.left.clone(), n.right.clone());
                bk.fork2(
                    move |bk| annotate_sizes(bk, l, lp),
                    move |bk| annotate_sizes(bk, r, rp),
                );
                let key = n.key.clone();
                bk.touch(&lf, move |bk, lv| {
                    bk.touch(&rf, move |bk, rv| {
                        bk.tick(1); // combine the two sizes
                        let left_size = lv.size();
                        let size = 1 + left_size + rv.size();
                        bk.fulfill(
                            out,
                            SizedTree::Node(Arc::new(SizedNode {
                                key,
                                size,
                                left_size,
                                left: lv,
                                right: rv,
                            })),
                        );
                    });
                });
            }
        }
    });
}

/// Phase 2: stamp each node with its symmetric-order rank (downward pass).
/// The node is emitted **before** the recursive calls — root-first — so the
/// rebuild phase pipelines into this one.
pub fn assign_ranks<B: PipeBackend, K: Key>(
    bk: &B,
    t: SizedTree<K>,
    offset: usize,
    out: RankedWr<B, K>,
) where
    RankedTree<B, K>: Val,
    RankedFut<B, K>: Val,
    RankedWr<B, K>: Send,
    SizedTree<K>: Val,
{
    bk.tick(1);
    match t {
        SizedTree::Leaf => bk.fulfill(out, RankedTree::Leaf),
        SizedTree::Node(n) => {
            let rank = offset + n.left_size;
            let (lp, lf) = bk.cell();
            let (rp, rf) = bk.cell();
            bk.fulfill(out, RankedTree::node(n.key.clone(), rank, lf, rf));
            let (l, r) = (n.left.clone(), n.right.clone());
            bk.fork2(
                move |bk| assign_ranks(bk, l, offset, lp),
                move |bk| assign_ranks(bk, r, rank + 1, rp),
            );
        }
    }
}

/// Rank-indexed split: partition `t` around the node of rank `r`, writing
/// the key of that node to `kout`, the ranks `< r` to `lout` and `> r` to
/// `rout`. Same one-path pipeline shape as `split` in [`crate::merge`],
/// navigating by rank instead of by key.
///
/// # Panics
/// If rank `r` does not occur in `t` (the rebuild phase only asks for ranks
/// in range, so this is a logic error).
pub fn split_rank<B: PipeBackend, K: Key>(
    bk: &B,
    r: usize,
    t: RankedTree<B, K>,
    lout: RankedWr<B, K>,
    rout: RankedWr<B, K>,
    kout: B::Wr<K>,
) where
    RankedTree<B, K>: Val,
    RankedFut<B, K>: Val,
    RankedWr<B, K>: Send,
    B::Fut<K>: Val,
    B::Wr<K>: Send,
{
    bk.tick(1);
    match t {
        RankedTree::Leaf => unreachable!("split_rank: rank {r} not present"),
        RankedTree::Node(n) => {
            if r == n.rank {
                bk.fulfill(kout, n.key.clone());
                bk.touch(&n.left.clone(), move |bk, lv| {
                    bk.fulfill(lout, lv);
                    bk.touch(&n.right, move |bk, rv| bk.fulfill(rout, rv));
                });
            } else if r < n.rank {
                let (rp1, rf1) = bk.cell();
                bk.fulfill(
                    rout,
                    RankedTree::node(n.key.clone(), n.rank, rf1, n.right.clone()),
                );
                bk.touch(&n.left, move |bk, lv| {
                    split_rank(bk, r, lv, lout, rp1, kout)
                });
            } else {
                let (lp1, lf1) = bk.cell();
                bk.fulfill(
                    lout,
                    RankedTree::node(n.key.clone(), n.rank, n.left.clone(), lf1),
                );
                bk.touch(&n.right, move |bk, rv| {
                    split_rank(bk, r, rv, lp1, rout, kout)
                });
            }
        }
    }
}

/// Phase 3: rebuild the ranked tree over the rank interval `[lo, hi)` into
/// a perfectly balanced tree. Splits at the median rank and recurses on
/// both halves in parallel; the splits chase ranked nodes as phase 2
/// produces them.
pub fn rebuild<B: PipeBackend, K: Key>(
    bk: &B,
    t: RankedFut<B, K>,
    lo: usize,
    hi: usize,
    out: TreeWr<B, K>,
    mode: Mode,
) where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    TreeWr<B, K>: Send,
    RankedTree<B, K>: Val,
    RankedFut<B, K>: Val,
    RankedWr<B, K>: Send,
    B::Fut<K>: Val,
    B::Wr<K>: Send,
{
    bk.tick(1); // interval test
    if lo >= hi {
        bk.fulfill(out, Tree::Leaf);
        return;
    }
    bk.touch(&t, move |bk, tv| {
        let mid = lo + (hi - lo) / 2;
        // let (L, R, k) = ?split_rank(mid, t)
        let (lp, lf) = bk.cell();
        let (rp, rf) = bk.cell();
        let (kp, kf) = bk.cell();
        fork_call(bk, mode, move |bk| split_rank(bk, mid, tv, lp, rp, kp));
        // Node(k, ?rebuild(L, lo, mid), ?rebuild(R, mid+1, hi))
        let (blp, blf) = bk.cell();
        let (brp, brf) = bk.cell();
        bk.fork2(
            move |bk| rebuild(bk, lf, lo, mid, blp, mode),
            move |bk| rebuild(bk, rf, mid + 1, hi, brp, mode),
        );
        bk.touch(&kf, move |bk, key| {
            bk.tick(1); // allocate the node
            bk.fulfill(out, Tree::node(key, blf, brf));
        });
    });
}

/// The full §3.1 rebalance: size pass, rank pass, rebuild — three pipelined
/// phases chained through future cells (Theorem 3.2).
pub fn rebalance<B: PipeBackend, K: Key>(bk: &B, t: TreeFut<B, K>, out: TreeWr<B, K>, mode: Mode)
where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    TreeWr<B, K>: Send,
    RankedTree<B, K>: Val,
    RankedFut<B, K>: Val,
    RankedWr<B, K>: Send,
    B::Fut<SizedTree<K>>: Val,
    B::Wr<SizedTree<K>>: Send,
    B::Fut<K>: Val,
    B::Wr<K>: Send,
{
    let (sp, sf) = bk.cell();
    bk.fork(move |bk| annotate_sizes(bk, t, sp));
    bk.touch(&sf, move |bk, sv| {
        let n = sv.size();
        let (rp, rf) = bk.cell();
        bk.fork(move |bk| assign_ranks(bk, sv, 0, rp));
        rebuild(bk, rf, 0, n, out, mode);
    });
}

/// Corollary 3.3: merge two balanced trees and rebalance the result, with
/// the rebalance pipelining into the merge through the intermediate cell.
pub fn merge_balanced<B: PipeBackend, K: Key>(
    bk: &B,
    a: TreeFut<B, K>,
    b: TreeFut<B, K>,
    out: TreeWr<B, K>,
    mode: Mode,
) where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    TreeWr<B, K>: Send,
    RankedTree<B, K>: Val,
    RankedFut<B, K>: Val,
    RankedWr<B, K>: Send,
    B::Fut<SizedTree<K>>: Val,
    B::Wr<SizedTree<K>>: Send,
    B::Fut<K>: Val,
    B::Wr<K>: Send,
{
    let (mp, mf) = bk.cell();
    bk.fork(move |bk| crate::merge::merge(bk, a, b, mp, mode));
    rebalance(bk, mf, out, mode);
}

/// Build a maximally **unbalanced** tree (right spine) from keys inserted
/// in the given order, as free input cells — the stress input for the
/// rebalance tests on every backend.
pub fn unbalanced_from<B: PipeBackend, K: Key>(bk: &B, keys: &[K]) -> Tree<B, K>
where
    Tree<B, K>: Val,
    TreeFut<B, K>: Val,
    TreeWr<B, K>: Send,
{
    enum P<K> {
        Leaf,
        Node(K, Box<P<K>>, Box<P<K>>),
    }
    fn ins<K: Ord>(t: P<K>, k: K) -> P<K> {
        match t {
            P::Leaf => P::Node(k, Box::new(P::Leaf), Box::new(P::Leaf)),
            P::Node(key, l, r) => {
                if k < key {
                    P::Node(key, Box::new(ins(*l, k)), r)
                } else {
                    P::Node(key, l, Box::new(ins(*r, k)))
                }
            }
        }
    }
    fn conv<B: PipeBackend, K: Key>(bk: &B, t: &P<K>) -> Tree<B, K>
    where
        Tree<B, K>: Val,
        TreeFut<B, K>: Val,
        TreeWr<B, K>: Send,
    {
        match t {
            P::Leaf => Tree::Leaf,
            P::Node(k, l, r) => {
                let lt = conv(bk, l);
                let rt = conv(bk, r);
                Tree::node(k.clone(), bk.input(lt), bk.input(rt))
            }
        }
    }
    let mut p = P::Leaf;
    for k in keys {
        p = ins(p, k.clone());
    }
    conv(bk, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seq;

    #[test]
    fn rebalance_spine_on_the_oracle() {
        let keys: Vec<i64> = (0..127).collect();
        let t = Seq::run(|bk| {
            let spine = unbalanced_from(bk, &keys);
            assert_eq!(spine.height(), 127, "in-order insertion gives a spine");
            let ft = bk.input(spine);
            let (op, of) = bk.cell();
            rebalance(bk, ft, op, Mode::Pipelined);
            Tree::<Seq, i64>::expect(&of)
        });
        assert!(t.is_search_tree());
        assert_eq!(t.to_sorted_vec(), keys);
        assert_eq!(t.height(), 7, "127 nodes must rebalance to height 7");
    }

    #[test]
    fn merge_balanced_on_the_oracle() {
        let a: Vec<i64> = (0..64).map(|i| 2 * i).collect();
        let b: Vec<i64> = (0..63).map(|i| 2 * i + 1).collect();
        let t = Seq::run(|bk| {
            let fa = bk.input(Tree::from_sorted(bk, &a));
            let fb = bk.input(Tree::from_sorted(bk, &b));
            let (op, of) = bk.cell();
            merge_balanced(bk, fa, fb, op, Mode::Pipelined);
            Tree::<Seq, i64>::expect(&of)
        });
        assert!(t.is_search_tree());
        assert_eq!(t.size(), 127);
        assert_eq!(t.height(), 7);
    }
}
