//! Property-based tests of the cost-model engine itself: for randomly
//! generated futures programs, the fundamental accounting invariants must
//! hold regardless of program shape.

use pf_core::{CostModel, Ctx, Sim};
use proptest::prelude::*;

/// A tiny random program: a tree of forks where each node does some local
/// work, optionally a flat primitive, writes two cells at different times
/// (the pipelining pattern), and touches its children's early cells
/// before their late cells.
fn run_program(seed: u64, fanout: usize, depth: usize, costs: CostModel) -> pf_core::CostReport {
    fn node(ctx: &Ctx, seed: u64, fanout: usize, depth: usize) -> u64 {
        ctx.tick(1 + seed % 4);
        if depth == 0 {
            return seed;
        }
        let kids: Vec<_> = (0..fanout)
            .map(|i| {
                let s = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(i as u64 + 1);
                let (early_p, early) = ctx.promise();
                let (late_p, late) = ctx.promise();
                ctx.fork_unit(move |ctx| {
                    ctx.tick(1);
                    early_p.fulfill(ctx, s % 100);
                    let v = node(ctx, s, fanout, depth - 1);
                    late_p.fulfill(ctx, v);
                });
                (early, late)
            })
            .collect();
        if seed.is_multiple_of(3) {
            ctx.flat(seed % 23 + 1);
        }
        let mut acc = 0u64;
        for (early, _late) in &kids {
            acc = acc.wrapping_add(ctx.touch(early));
        }
        for (_, late) in &kids {
            acc = acc.wrapping_add(ctx.touch(late));
        }
        acc
    }
    let (_, report) = Sim::with_costs(costs).run(|ctx| node(ctx, seed, fanout, depth));
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn depth_never_exceeds_work(seed in 0u64..10_000, fanout in 1usize..4, depth in 0usize..5) {
        let r = run_program(seed, fanout, depth, CostModel::default());
        prop_assert!(r.depth <= r.work);
    }

    #[test]
    fn program_is_linear_and_counters_consistent(seed in 0u64..10_000, fanout in 1usize..4, depth in 0usize..5) {
        let r = run_program(seed, fanout, depth, CostModel::default());
        prop_assert!(r.is_linear());
        prop_assert_eq!(r.writes, r.cells, "every promise fulfilled exactly once");
        prop_assert_eq!(r.touches, r.cells, "every cell touched exactly once");
        // 2 cells per fork in this program shape.
        prop_assert_eq!(r.cells, 2 * r.forks);
    }

    #[test]
    fn determinism(seed in 0u64..10_000, fanout in 1usize..4, depth in 0usize..5) {
        let a = run_program(seed, fanout, depth, CostModel::default());
        let b = run_program(seed, fanout, depth, CostModel::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn larger_costs_never_shrink_costs(seed in 0u64..10_000, fanout in 1usize..3, depth in 0usize..4) {
        let small = run_program(seed, fanout, depth, CostModel::default());
        let big = run_program(seed, fanout, depth, CostModel::uniform(3));
        prop_assert!(big.work >= small.work);
        prop_assert!(big.depth >= small.depth);
        // Depth scales at most linearly in the constant.
        prop_assert!(big.depth <= 3 * small.depth);
    }

    #[test]
    fn strict_wrapper_preserves_work_increases_depth(seed in 0u64..10_000, depth in 1usize..4) {
        fn body(ctx: &Ctx, seed: u64, depth: usize, strict: bool) {
            let (p1, f1) = ctx.promise();
            let (p2, f2) = ctx.promise();
            let go = move |ctx: &Ctx| {
                ctx.fork_unit(move |ctx| {
                    ctx.tick(1 + seed % 5);
                    p1.fulfill(ctx, ());
                    ctx.tick(10 * depth as u64);
                    p2.fulfill(ctx, ());
                });
            };
            if strict {
                ctx.call_strict(go);
            } else {
                go(ctx);
            }
            ctx.touch(&f1);
            ctx.tick(10 * depth as u64);
            ctx.touch(&f2);
        }
        let (_, pip) = Sim::new().run(|ctx| body(ctx, seed, depth, false));
        let (_, str_) = Sim::new().run(|ctx| body(ctx, seed, depth, true));
        prop_assert_eq!(pip.work, str_.work);
        prop_assert!(pip.depth <= str_.depth);
    }

    #[test]
    fn traced_run_matches_untraced(seed in 0u64..3_000, fanout in 1usize..3, depth in 0usize..4) {
        let plain = run_program(seed, fanout, depth, CostModel::default());
        let (_, traced, trace) = Sim::new().run_traced(|ctx| {
            // Same program, traced.
            fn node(ctx: &Ctx, seed: u64, fanout: usize, depth: usize) -> u64 {
                ctx.tick(1 + seed % 4);
                if depth == 0 {
                    return seed;
                }
                let kids: Vec<_> = (0..fanout)
                    .map(|i| {
                        let s = seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add(i as u64 + 1);
                        let (early_p, early) = ctx.promise();
                        let (late_p, late) = ctx.promise();
                        ctx.fork_unit(move |ctx| {
                            ctx.tick(1);
                            early_p.fulfill(ctx, s % 100);
                            let v = node(ctx, s, fanout, depth - 1);
                            late_p.fulfill(ctx, v);
                        });
                        (early, late)
                    })
                    .collect();
                if seed.is_multiple_of(3) {
                    ctx.flat(seed % 23 + 1);
                }
                let mut acc = 0u64;
                for (early, _) in &kids {
                    acc = acc.wrapping_add(ctx.touch(early));
                }
                for (_, late) in &kids {
                    acc = acc.wrapping_add(ctx.touch(late));
                }
                acc
            }
            node(ctx, seed, fanout, depth)
        });
        prop_assert_eq!(plain.work, traced.work, "tracing must not change costs");
        prop_assert_eq!(plain.depth, traced.depth);
        prop_assert_eq!(trace.total_actions(), traced.work);
        prop_assert_eq!(trace.n_threads() as u64, traced.forks + 1);
    }
}
