//! Future cells: write-once single-assignment cells carrying the virtual
//! time at which their write action occurred.
//!
//! A *future call* in the paper allocates one or more **future cells**, hands
//! *read pointers* ([`Fut`]) to the continuation and *write pointers*
//! ([`Promise`]) to the forked thread. The ability to return **multiple**
//! cells from a single fork — each filled at a different moment — is what
//! makes the pipelined algorithms work (e.g. `splitm` returns both halves of
//! a treap and fills each side's root as soon as it is known). This module
//! therefore exposes the cell pair directly via [`crate::Ctx::promise`]
//! rather than only the single-result sugar [`crate::Ctx::fork`].
//!
//! Cells are `Send + Sync` (for `Send` payloads): the simulation itself is
//! single-threaded, but the *values* it builds — trees whose children are
//! futures — are the same generic structures the real runtime executes on
//! OS threads, and the shared algorithm code (`pf-algs`) moves them into
//! `Send` continuations. The interior state is therefore a `Mutex` and two
//! atomics rather than `RefCell`/`Cell`; on the simulator's single thread
//! the mutex is never contended.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::CellId;

/// Sentinel timestamp for a cell that has not been written yet.
const UNWRITTEN: u64 = u64::MAX;

pub(crate) struct FutInner<T> {
    id: CellId,
    value: Mutex<Option<T>>,
    /// Virtual time of the write action, or [`UNWRITTEN`].
    time: AtomicU64,
    /// Number of touches (cost-bearing reads) — the linearity counter.
    reads: AtomicU32,
}

impl<T> FutInner<T> {
    fn value(&self) -> std::sync::MutexGuard<'_, Option<T>> {
        // The simulator is single-threaded; a poisoned lock can only mean a
        // previous panic mid-inspection, and the tests that provoke panics
        // still want readable cells afterwards.
        self.value.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Type-erased view of a cell used by strict (non-pipelined) call frames to
/// re-stamp every cell written inside the frame to the frame's completion
/// time (see [`crate::Ctx::call_strict`]).
pub(crate) trait RestampCell {
    fn bump_time(&self, t: u64);
}

impl<T> RestampCell for FutInner<T> {
    fn bump_time(&self, t: u64) {
        let cur = self.time.load(Ordering::Relaxed);
        debug_assert_ne!(cur, UNWRITTEN, "restamping an unwritten cell");
        if t > cur {
            self.time.store(t, Ordering::Relaxed);
        }
    }
}

/// A read pointer to a future cell.
///
/// Cloning a `Fut` clones the pointer, not the value; read pointers "can be
/// copied and passed around to other threads" (§2). Reading with a cost
/// (a *touch*) goes through [`crate::Ctx::touch`]; the accessors on `Fut`
/// itself are free-of-charge inspection for use *after* a simulation run
/// (validating results, walking finished trees, checking τ-values).
pub struct Fut<T> {
    pub(crate) inner: Arc<FutInner<T>>,
}

impl<T> Clone for Fut<T> {
    fn clone(&self) -> Self {
        Fut {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Fut<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_written() {
            write!(
                f,
                "Fut(cell {}, t={})",
                self.inner.id,
                self.inner.time.load(Ordering::Relaxed)
            )
        } else {
            write!(f, "Fut(cell {}, unwritten)", self.inner.id)
        }
    }
}

impl<T> Fut<T> {
    /// The unique id of the underlying cell.
    pub fn id(&self) -> CellId {
        self.inner.id
    }

    /// Has the cell been written?
    pub fn is_written(&self) -> bool {
        self.inner.time.load(Ordering::Relaxed) != UNWRITTEN
    }

    /// Virtual time of the write action — the paper's `t(v)` for the value
    /// stored in this cell.
    ///
    /// # Panics
    /// If the cell has not been written.
    pub fn time(&self) -> u64 {
        let t = self.inner.time.load(Ordering::Relaxed);
        assert_ne!(
            t, UNWRITTEN,
            "future cell {} inspected (time) before write",
            self.inner.id
        );
        t
    }

    /// Number of touches this cell has received. Linear code touches each
    /// cell at most once.
    pub fn read_count(&self) -> u32 {
        self.inner.reads.load(Ordering::Relaxed)
    }

    /// Zero-cost clone of the value for post-run inspection.
    ///
    /// # Panics
    /// If the cell has not been written.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.try_get()
            .unwrap_or_else(|| panic!("future cell {} inspected (get) before write", self.inner.id))
    }

    /// Zero-cost clone of the value, or `None` if unwritten.
    pub fn try_get(&self) -> Option<T>
    where
        T: Clone,
    {
        self.inner.value().clone()
    }

    /// Borrow the value for the duration of `f` without cloning.
    ///
    /// # Panics
    /// If the cell has not been written.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let b = self.inner.value();
        let v = b.as_ref().unwrap_or_else(|| {
            panic!(
                "future cell {} inspected (with) before write",
                self.inner.id
            )
        });
        f(v)
    }

    pub(crate) fn record_touch(&self) -> u32 {
        self.inner.reads.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn write_time(&self) -> Option<u64> {
        let t = self.inner.time.load(Ordering::Relaxed);
        (t != UNWRITTEN).then_some(t)
    }
}

/// The write pointer to a future cell: consumed by [`Promise::fulfill`],
/// enforcing the single-assignment discipline at the type level. A write
/// pointer "can also be passed around to other threads, but each can only be
/// written to once" (§2) — in Rust that is simply a move.
pub struct Promise<T> {
    pub(crate) inner: Arc<FutInner<T>>,
}

impl<T> fmt::Debug for Promise<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Promise(cell {})", self.inner.id)
    }
}

impl<T> Promise<T> {
    /// The unique id of the underlying cell.
    pub fn id(&self) -> CellId {
        self.inner.id
    }

    /// Store `value` with write-time `t`. Internal: the costed public entry
    /// point is [`Promise::fulfill`](crate::Ctx::promise) via the context.
    pub(crate) fn write(self, t: u64, value: T) -> Arc<FutInner<T>> {
        {
            let mut slot = self.inner.value();
            assert!(
                slot.is_none(),
                "future cell {} written twice",
                self.inner.id
            );
            *slot = Some(value);
        }
        debug_assert_eq!(self.inner.time.load(Ordering::Relaxed), UNWRITTEN);
        self.inner.time.store(t, Ordering::Relaxed);
        self.inner
    }
}

pub(crate) fn new_cell<T>(id: CellId) -> (Promise<T>, Fut<T>) {
    let inner = Arc::new(FutInner {
        id,
        value: Mutex::new(None),
        time: AtomicU64::new(UNWRITTEN),
        reads: AtomicU32::new(0),
    });
    (
        Promise {
            inner: Arc::clone(&inner),
        },
        Fut { inner },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_lifecycle() {
        let (p, f) = new_cell::<i32>(7);
        assert_eq!(f.id(), 7);
        assert!(!f.is_written());
        assert_eq!(f.try_get(), None);
        p.write(42, 5);
        assert!(f.is_written());
        assert_eq!(f.time(), 42);
        assert_eq!(f.get(), 5);
        f.with(|v| assert_eq!(*v, 5));
    }

    #[test]
    #[should_panic(expected = "before write")]
    fn get_before_write_panics() {
        let (_p, f) = new_cell::<i32>(0);
        let _ = f.get();
    }

    #[test]
    #[should_panic(expected = "before write")]
    fn time_before_write_panics() {
        let (_p, f) = new_cell::<i32>(0);
        let _ = f.time();
    }

    #[test]
    fn restamp_only_moves_forward() {
        let (p, f) = new_cell::<i32>(0);
        let inner = p.write(10, 1);
        inner.bump_time(5);
        assert_eq!(f.time(), 10, "restamp must never move a write earlier");
        inner.bump_time(20);
        assert_eq!(f.time(), 20);
    }

    #[test]
    fn touch_counting() {
        let (p, f) = new_cell::<i32>(0);
        p.write(1, 9);
        assert_eq!(f.read_count(), 0);
        assert_eq!(f.record_touch(), 1);
        assert_eq!(f.record_touch(), 2);
        assert_eq!(f.read_count(), 2);
    }

    #[test]
    fn clone_is_aliasing() {
        let (p, f) = new_cell::<String>(0);
        let g = f.clone();
        p.write(3, "hi".to_string());
        assert_eq!(g.get(), "hi");
        assert_eq!(f.get(), "hi");
    }

    #[test]
    fn cells_of_send_payloads_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Fut<u64>>();
        assert_send_sync::<Promise<u64>>();
        assert_send_sync::<Fut<Vec<String>>>();
    }
}
