//! Future cells: write-once single-assignment cells carrying the virtual
//! time at which their write action occurred.
//!
//! A *future call* in the paper allocates one or more **future cells**, hands
//! *read pointers* ([`Fut`]) to the continuation and *write pointers*
//! ([`Promise`]) to the forked thread. The ability to return **multiple**
//! cells from a single fork — each filled at a different moment — is what
//! makes the pipelined algorithms work (e.g. `splitm` returns both halves of
//! a treap and fills each side's root as soon as it is known). This module
//! therefore exposes the cell pair directly via [`crate::Ctx::promise`]
//! rather than only the single-result sugar [`crate::Ctx::fork`].

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::trace::CellId;

/// Sentinel timestamp for a cell that has not been written yet.
const UNWRITTEN: u64 = u64::MAX;

pub(crate) struct FutInner<T> {
    id: CellId,
    value: RefCell<Option<T>>,
    /// Virtual time of the write action, or [`UNWRITTEN`].
    time: Cell<u64>,
    /// Number of touches (cost-bearing reads) — the linearity counter.
    reads: Cell<u32>,
}

/// Type-erased view of a cell used by strict (non-pipelined) call frames to
/// re-stamp every cell written inside the frame to the frame's completion
/// time (see [`crate::Ctx::call_strict`]).
pub(crate) trait RestampCell {
    fn bump_time(&self, t: u64);
}

impl<T> RestampCell for FutInner<T> {
    fn bump_time(&self, t: u64) {
        let cur = self.time.get();
        debug_assert_ne!(cur, UNWRITTEN, "restamping an unwritten cell");
        if t > cur {
            self.time.set(t);
        }
    }
}

/// A read pointer to a future cell.
///
/// Cloning a `Fut` clones the pointer, not the value; read pointers "can be
/// copied and passed around to other threads" (§2). Reading with a cost
/// (a *touch*) goes through [`crate::Ctx::touch`]; the accessors on `Fut`
/// itself are free-of-charge inspection for use *after* a simulation run
/// (validating results, walking finished trees, checking τ-values).
pub struct Fut<T> {
    pub(crate) inner: Rc<FutInner<T>>,
}

impl<T> Clone for Fut<T> {
    fn clone(&self) -> Self {
        Fut {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Fut<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_written() {
            write!(
                f,
                "Fut(cell {}, t={})",
                self.inner.id,
                self.inner.time.get()
            )
        } else {
            write!(f, "Fut(cell {}, unwritten)", self.inner.id)
        }
    }
}

impl<T> Fut<T> {
    /// The unique id of the underlying cell.
    pub fn id(&self) -> CellId {
        self.inner.id
    }

    /// Has the cell been written?
    pub fn is_written(&self) -> bool {
        self.inner.time.get() != UNWRITTEN
    }

    /// Virtual time of the write action — the paper's `t(v)` for the value
    /// stored in this cell.
    ///
    /// # Panics
    /// If the cell has not been written.
    pub fn time(&self) -> u64 {
        let t = self.inner.time.get();
        assert_ne!(
            t, UNWRITTEN,
            "future cell {} inspected (time) before write",
            self.inner.id
        );
        t
    }

    /// Number of touches this cell has received. Linear code touches each
    /// cell at most once.
    pub fn read_count(&self) -> u32 {
        self.inner.reads.get()
    }

    /// Zero-cost clone of the value for post-run inspection.
    ///
    /// # Panics
    /// If the cell has not been written.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.try_get()
            .unwrap_or_else(|| panic!("future cell {} inspected (get) before write", self.inner.id))
    }

    /// Zero-cost clone of the value, or `None` if unwritten.
    pub fn try_get(&self) -> Option<T>
    where
        T: Clone,
    {
        self.inner.value.borrow().clone()
    }

    /// Borrow the value for the duration of `f` without cloning.
    ///
    /// # Panics
    /// If the cell has not been written.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let b = self.inner.value.borrow();
        let v = b.as_ref().unwrap_or_else(|| {
            panic!(
                "future cell {} inspected (with) before write",
                self.inner.id
            )
        });
        f(v)
    }

    pub(crate) fn record_touch(&self) -> u32 {
        let n = self.inner.reads.get() + 1;
        self.inner.reads.set(n);
        n
    }

    pub(crate) fn write_time(&self) -> Option<u64> {
        let t = self.inner.time.get();
        (t != UNWRITTEN).then_some(t)
    }
}

/// The write pointer to a future cell: consumed by [`Promise::fulfill`],
/// enforcing the single-assignment discipline at the type level. A write
/// pointer "can also be passed around to other threads, but each can only be
/// written to once" (§2) — in Rust that is simply a move.
pub struct Promise<T> {
    pub(crate) inner: Rc<FutInner<T>>,
}

impl<T> fmt::Debug for Promise<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Promise(cell {})", self.inner.id)
    }
}

impl<T> Promise<T> {
    /// The unique id of the underlying cell.
    pub fn id(&self) -> CellId {
        self.inner.id
    }

    /// Store `value` with write-time `t`. Internal: the costed public entry
    /// point is [`Promise::fulfill`](crate::Ctx::promise) via the context.
    pub(crate) fn write(self, t: u64, value: T) -> Rc<FutInner<T>> {
        {
            let mut slot = self.inner.value.borrow_mut();
            assert!(
                slot.is_none(),
                "future cell {} written twice",
                self.inner.id
            );
            *slot = Some(value);
        }
        debug_assert_eq!(self.inner.time.get(), UNWRITTEN);
        self.inner.time.set(t);
        self.inner
    }
}

pub(crate) fn new_cell<T>(id: CellId) -> (Promise<T>, Fut<T>) {
    let inner = Rc::new(FutInner {
        id,
        value: RefCell::new(None),
        time: Cell::new(UNWRITTEN),
        reads: Cell::new(0),
    });
    (
        Promise {
            inner: Rc::clone(&inner),
        },
        Fut { inner },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_lifecycle() {
        let (p, f) = new_cell::<i32>(7);
        assert_eq!(f.id(), 7);
        assert!(!f.is_written());
        assert_eq!(f.try_get(), None);
        p.write(42, 5);
        assert!(f.is_written());
        assert_eq!(f.time(), 42);
        assert_eq!(f.get(), 5);
        f.with(|v| assert_eq!(*v, 5));
    }

    #[test]
    #[should_panic(expected = "before write")]
    fn get_before_write_panics() {
        let (_p, f) = new_cell::<i32>(0);
        let _ = f.get();
    }

    #[test]
    #[should_panic(expected = "before write")]
    fn time_before_write_panics() {
        let (_p, f) = new_cell::<i32>(0);
        let _ = f.time();
    }

    #[test]
    fn restamp_only_moves_forward() {
        let (p, f) = new_cell::<i32>(0);
        let inner = p.write(10, 1);
        inner.bump_time(5);
        assert_eq!(f.time(), 10, "restamp must never move a write earlier");
        inner.bump_time(20);
        assert_eq!(f.time(), 20);
    }

    #[test]
    fn touch_counting() {
        let (p, f) = new_cell::<i32>(0);
        p.write(1, 9);
        assert_eq!(f.read_count(), 0);
        assert_eq!(f.record_touch(), 1);
        assert_eq!(f.record_touch(), 2);
        assert_eq!(f.read_count(), 2);
    }

    #[test]
    fn clone_is_aliasing() {
        let (p, f) = new_cell::<String>(0);
        let g = f.clone();
        p.write(3, "hi".to_string());
        assert_eq!(g.get(), "hi");
        assert_eq!(f.get(), "hi");
    }
}
