//! Future-tailed lists: the list type of the paper's Figure 1
//! (producer/consumer) and Figure 2 (Halstead's quicksort).
//!
//! A `FList<T>` is either `Nil` or a cons cell whose head is a plain value
//! and whose **tail is a future** — the element `n :: ?produce(n - 1)`
//! pattern. Streaming a list through a future-tailed cons chain is the
//! simplest instance of pipelining: the consumer can process element *i*
//! while the producer is still computing element *i + 1*.

use std::rc::Rc;

use crate::fut::Fut;

/// A list whose tail is a future (the paper's `n :: ?rest` lists).
pub enum FList<T> {
    /// The empty list.
    Nil,
    /// A cons cell: head value plus a future of the rest of the list.
    Cons(Rc<(T, Fut<FList<T>>)>),
}

impl<T> Clone for FList<T> {
    fn clone(&self) -> Self {
        match self {
            FList::Nil => FList::Nil,
            FList::Cons(rc) => FList::Cons(Rc::clone(rc)),
        }
    }
}

impl<T> FList<T> {
    /// The empty list.
    pub fn nil() -> Self {
        FList::Nil
    }

    /// Prepend `head` onto the future list `tail`.
    pub fn cons(head: T, tail: Fut<FList<T>>) -> Self {
        FList::Cons(Rc::new((head, tail)))
    }

    /// Is this the empty list?
    pub fn is_nil(&self) -> bool {
        matches!(self, FList::Nil)
    }

    /// Destructure a cons cell into `(head, tail-future)` references, or
    /// `None` for nil. Reading the head is free (it is a plain value);
    /// reading the *tail* requires a touch via [`crate::Ctx::touch`].
    pub fn as_cons(&self) -> Option<(&T, &Fut<FList<T>>)> {
        match self {
            FList::Nil => None,
            FList::Cons(rc) => Some((&rc.0, &rc.1)),
        }
    }

    /// Collect the list into a `Vec` by zero-cost post-run inspection.
    ///
    /// # Panics
    /// If any tail cell is still unwritten.
    pub fn collect_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                FList::Nil => return out,
                FList::Cons(rc) => {
                    out.push(rc.0.clone());
                    cur = rc.1.get();
                }
            }
        }
    }

    /// Length of the list by zero-cost post-run inspection.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = match self {
            FList::Nil => return 0,
            FList::Cons(rc) => Rc::clone(rc),
        };
        loop {
            n += 1;
            match cur.1.with(|l| l.clone()) {
                FList::Nil => return n,
                FList::Cons(rc) => cur = rc,
            }
        }
    }

    /// Is the list empty? (Companion to [`FList::len`].)
    pub fn is_empty(&self) -> bool {
        self.is_nil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Sim;

    #[test]
    fn build_and_collect() {
        let (list, _r) = Sim::new().run(|ctx| {
            // 3 :: ?(2 :: ?(1 :: ?nil))
            let t0 = ctx.fork(|_| FList::nil());
            let l1 = FList::cons(1, t0);
            let t1 = ctx.fork(move |_| l1);
            let l2 = FList::cons(2, t1);
            let t2 = ctx.fork(move |_| l2);
            FList::cons(3, t2)
        });
        assert_eq!(list.collect_vec(), vec![3, 2, 1]);
        assert_eq!(list.len(), 3);
        assert!(!list.is_empty());
    }

    #[test]
    fn nil_properties() {
        let l: FList<u32> = FList::nil();
        assert!(l.is_nil());
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.collect_vec(), Vec::<u32>::new());
        assert!(l.as_cons().is_none());
    }

    #[test]
    fn as_cons_exposes_head_and_tail() {
        let (_, _r) = Sim::new().run(|ctx| {
            let t = ctx.fork(|_| FList::<u32>::nil());
            let l = FList::cons(9, t);
            let (h, tail) = l.as_cons().unwrap();
            assert_eq!(*h, 9);
            assert!(tail.is_written());
        });
    }
}
