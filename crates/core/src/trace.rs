//! Computation-DAG traces.
//!
//! A traced simulation records, per thread, the sequence of primitive events
//! it executed. The trace is a faithful, replayable encoding of the paper's
//! computation DAG: `pf-machine` replays traces under the §4 scheduler to
//! measure greedy-schedule step counts, suspension behaviour, and thread-pool
//! space — all without re-running the algorithm.

use crate::cost::CostModel;

/// Identifier of a simulated thread (dense, starting at 0 for the root).
pub type ThreadId = u32;
/// Identifier of a future cell (dense, starting at 0).
pub type CellId = u64;

/// One primitive event in a thread's life.
///
/// Costs are *not* stored per event; the replayer charges them from the
/// [`CostModel`] embedded in the [`Trace`] so that replayed work exactly
/// matches the simulator's work counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// `k` plain unit actions (consecutive ticks are merged).
    Compute(u64),
    /// Fork a future: activates the given child thread. Charged
    /// `costs.fork` actions on the forking thread.
    Fork(ThreadId),
    /// Write a future cell; reactivates any threads suspended on it.
    /// Charged `costs.write` actions.
    Write(CellId),
    /// Touch a future cell. If the cell is unwritten at replay time the
    /// thread suspends *without consuming the action* and re-executes the
    /// touch when reactivated — this matches the DAG semantics exactly (the
    /// touch node cannot execute before its data-edge source) and makes a
    /// p = ∞ replay take precisely `depth` steps.
    Touch(CellId),
    /// A flat array primitive of breadth `n` (§3.4 `array_split` /
    /// `array_scan`): `n` independent unit actions that must all complete
    /// before the thread's next event. Expanded lazily by the replayer,
    /// mirroring the paper's stub technique.
    Flat(u64),
}

/// The event log of a single thread, in program order.
#[derive(Debug, Clone, Default)]
pub struct ThreadLog {
    /// Events in execution order. The thread terminates after the last one.
    pub events: Vec<Ev>,
}

impl ThreadLog {
    /// Total actions this thread executes under `costs`.
    pub fn actions(&self, costs: &CostModel) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Ev::Compute(k) => *k,
                Ev::Fork(_) => costs.fork,
                Ev::Write(_) => costs.write,
                Ev::Touch(_) => costs.touch,
                // n parallel units plus the unit sink action.
                Ev::Flat(n) => *n + 1,
            })
            .sum()
    }
}

/// A complete computation-DAG trace: one log per thread (thread 0 is the
/// root), plus the cost constants and the simulator's own work/depth
/// measurements for cross-validation.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-thread event logs; index = [`ThreadId`].
    pub threads: Vec<ThreadLog>,
    /// Number of future cells created during the run.
    pub n_cells: u64,
    /// Cells created pre-written by [`crate::Ctx::preload`] (input data):
    /// the replayer must treat these as written before step 0.
    pub pre_written: Vec<CellId>,
    /// The cost constants the run was charged with.
    pub costs: CostModel,
    /// Work measured by the simulator (must equal the replayed action count).
    pub work: u64,
    /// Depth measured by the simulator (a p = ∞ replay must finish in
    /// exactly this many steps).
    pub depth: u64,
}

impl Trace {
    /// Total actions across all threads; equals [`Trace::work`] by
    /// construction (asserted in tests).
    pub fn total_actions(&self) -> u64 {
        self.threads.iter().map(|t| t.actions(&self.costs)).sum()
    }

    /// Number of threads in the trace.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }
}

#[derive(Debug, Default)]
pub(crate) struct TraceBuilder {
    pub threads: Vec<ThreadLog>,
}

impl TraceBuilder {
    pub fn new_thread(&mut self) -> ThreadId {
        let id = self.threads.len() as ThreadId;
        self.threads.push(ThreadLog::default());
        id
    }

    pub fn push(&mut self, thread: ThreadId, ev: Ev) {
        let log = &mut self.threads[thread as usize].events;
        // Merge consecutive computes to keep traces compact.
        if let (Ev::Compute(k), Some(Ev::Compute(prev))) = (ev, log.last_mut()) {
            *prev += k;
        } else {
            log.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_events_merge() {
        let mut b = TraceBuilder::default();
        let t = b.new_thread();
        b.push(t, Ev::Compute(2));
        b.push(t, Ev::Compute(3));
        b.push(t, Ev::Touch(0));
        b.push(t, Ev::Compute(1));
        assert_eq!(
            b.threads[0].events,
            vec![Ev::Compute(5), Ev::Touch(0), Ev::Compute(1)]
        );
    }

    #[test]
    fn action_accounting() {
        let costs = CostModel::default();
        let log = ThreadLog {
            events: vec![
                Ev::Compute(4),
                Ev::Fork(1),
                Ev::Write(0),
                Ev::Touch(1),
                Ev::Flat(10),
            ],
        };
        assert_eq!(log.actions(&costs), 4 + 1 + 1 + 1 + 11);
        let costs3 = CostModel::uniform(3);
        assert_eq!(log.actions(&costs3), 4 + 3 + 3 + 3 + 11);
    }

    #[test]
    fn thread_ids_are_dense() {
        let mut b = TraceBuilder::default();
        assert_eq!(b.new_thread(), 0);
        assert_eq!(b.new_thread(), 1);
        assert_eq!(b.new_thread(), 2);
    }
}
