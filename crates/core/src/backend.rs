//! [`PipeBackend`] implementation for the simulator: the five portable
//! primitives mapped onto the virtual-clock engine.
//!
//! The mapping is exact, not approximate — a generic CPS algorithm charges
//! the same work and depth as its direct-style ancestor:
//!
//! * `cell` → [`Ctx::promise`] (free; creation is charged to the fork);
//! * `ready` → [`Ctx::filled`] (charges the write cost);
//! * `input` → [`Ctx::preload`] (free: input construction must not pollute
//!   the measured cost of the algorithm under test);
//! * `fulfill` → [`Promise::fulfill`] (charges the write, stamps the clock);
//! * `touch` → [`Ctx::touch`] then the continuation runs **inline** on the
//!   toucher's own context. In CPS the touch is always in tail position, so
//!   running `k` inline on a clock already advanced to
//!   `max(clock, write_time) + touch_cost` is precisely the direct-style
//!   data edge;
//! * `fork` → [`Ctx::fork_unit`] (the child runs eagerly, inline, on a
//!   child clock — `fork2` keeps the default two-fork expansion because two
//!   fork actions is exactly what the simulator's tree code has always
//!   charged);
//! * `tick` / `flat` → the inherent cost hooks; `strict` →
//!   [`Ctx::call_strict`]; `peek` → [`Fut::try_get`] (free post-run
//!   inspection).

use pf_backend::{PipeBackend, Val};

use crate::ctx::Ctx;
use crate::fut::{Fut, Promise};

impl PipeBackend for Ctx {
    type Fut<T: 'static> = Fut<T>;
    type Wr<T: 'static> = Promise<T>;

    fn cell<T: Val>(&self) -> (Promise<T>, Fut<T>) {
        self.promise()
    }

    fn ready<T: Val>(&self, value: T) -> Fut<T> {
        self.filled(value)
    }

    fn input<T: Val>(&self, value: T) -> Fut<T> {
        self.preload(value)
    }

    fn fulfill<T: Val>(&self, w: Promise<T>, value: T) {
        w.fulfill(self, value);
    }

    fn touch<T: Val>(&self, f: &Fut<T>, k: impl FnOnce(&Self, T) + Send + 'static) {
        let v = Ctx::touch(self, f);
        k(self, v);
    }

    fn fork(&self, body: impl FnOnce(&Self) + Send + 'static) {
        self.fork_unit(body);
    }

    fn tick(&self, n: u64) {
        Ctx::tick(self, n);
    }

    fn flat(&self, n: u64) {
        Ctx::flat(self, n);
    }

    fn strict(&self, body: impl FnOnce(&Self)) {
        self.call_strict(body);
    }

    fn peek<T: Val>(f: &Fut<T>) -> Option<T> {
        f.try_get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Sim;

    /// The same trait-level program as `pf_backend::seq` runs, here charged
    /// against the clock: the generic surface must reproduce the exact cost
    /// algebra of the inherent API.
    #[test]
    fn trait_touch_matches_inherent_costs() {
        let (_, generic) = Sim::new().run(|ctx| {
            let (w, f) = PipeBackend::cell::<u32>(ctx);
            PipeBackend::fork(ctx, move |c| {
                PipeBackend::tick(c, 3);
                PipeBackend::fulfill(c, w, 7);
            });
            PipeBackend::touch(ctx, &f, |c, v| {
                assert_eq!(v, 7);
                assert_eq!(c.now(), 6); // max(1, 5) + 1, as in the inherent test
            });
        });
        let (_, inherent) = Sim::new().run(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(3);
                7u32
            });
            ctx.touch(&f);
        });
        assert_eq!(generic, inherent, "CPS and direct style must cost the same");
    }

    #[test]
    fn trait_ready_charges_a_write() {
        let (_, r) = Sim::new().run(|ctx| {
            let f = PipeBackend::ready(ctx, 1u8);
            assert_eq!(f.time(), 1);
        });
        assert_eq!(r.writes, 1);
        assert_eq!(r.work, 1);
    }

    #[test]
    fn trait_strict_restamps() {
        let (_, _r) = Sim::new().run(|ctx| {
            let (w, f) = PipeBackend::cell::<()>(ctx);
            PipeBackend::strict(ctx, |ctx| {
                PipeBackend::fork(ctx, move |c| {
                    PipeBackend::tick(c, 9);
                    PipeBackend::fulfill(c, w, ());
                });
            });
            assert_eq!(f.time(), ctx.now(), "strict defers visibility to call end");
        });
    }

    #[test]
    fn trait_input_is_free() {
        let (_, r) = Sim::new().run(|ctx| {
            let f = PipeBackend::input(ctx, 5u64);
            assert_eq!(f.time(), 0);
        });
        assert_eq!(r.work, 0, "input construction must be free");
        assert_eq!(r.writes, 0);
    }

    #[test]
    fn trait_peek_is_free() {
        let (_, r) = Sim::new().run(|ctx| {
            let f = ctx.preload(5u64);
            assert_eq!(<Ctx as PipeBackend>::peek(&f), Some(5));
        });
        assert_eq!(r.work, 0);
    }
}
