//! Cost constants and the work/depth report produced by a simulation run.

/// Unit-action costs charged by the simulator for the primitive operations of
/// the model.
///
/// The paper's theorems are asymptotic, so the defaults charge one unit
/// action for each primitive; the constants are exposed so that sensitivity
/// experiments (EXPERIMENTS.md, E15) can vary them. Every cost must be at
/// least 1 — a zero-cost fork or touch would let the DAG contain edges
/// between actions at equal depth, which the model forbids (each node is a
/// *unit-time* action).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost charged to the forking thread for creating a future
    /// (allocating its cells and closure — constant per the paper's §4).
    pub fork: u64,
    /// Cost of touching (reading) a future cell: the data edge.
    pub touch: u64,
    /// Cost of writing a future cell.
    pub write: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fork: 1,
            touch: 1,
            write: 1,
        }
    }
}

impl CostModel {
    /// A cost model with every primitive charged `k` units. Useful for
    /// checking that measured depths scale linearly in the constants
    /// (the theorems' `ks`, `km`, `kb` are all "some constant").
    pub fn uniform(k: u64) -> Self {
        assert!(k >= 1, "unit actions must cost at least 1");
        CostModel {
            fork: k,
            touch: k,
            write: k,
        }
    }

    /// Validates the invariants documented on the type.
    pub(crate) fn validate(&self) {
        assert!(
            self.fork >= 1 && self.touch >= 1 && self.write >= 1,
            "all primitive costs must be >= 1, got {self:?}"
        );
    }
}

/// The measured cost of one simulated computation: the size and longest path
/// of its computation DAG, plus bookkeeping counters used by the tests and
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Total number of unit actions executed (nodes in the DAG).
    pub work: u64,
    /// Longest path in the DAG: the largest virtual clock reached.
    pub depth: u64,
    /// Number of futures forked.
    pub forks: u64,
    /// Number of touch (future read) operations.
    pub touches: u64,
    /// Number of future-cell writes.
    pub writes: u64,
    /// Number of future cells created.
    pub cells: u64,
    /// Number of flat array primitives executed ([`crate::Ctx::flat`]).
    pub flats: u64,
    /// The largest number of touches observed on any single future cell.
    /// Linear code (§4) has `max_reads_per_cell <= 1`.
    pub max_reads_per_cell: u32,
}

impl CostReport {
    /// Parallelism of the computation, `work / depth` — the asymptotic
    /// speedup available to a greedy scheduler.
    pub fn parallelism(&self) -> f64 {
        if self.depth == 0 {
            0.0
        } else {
            self.work as f64 / self.depth as f64
        }
    }

    /// Brent's bound on the number of greedy-schedule steps on `p`
    /// processors: `work / p + depth` (rounded up).
    pub fn brent_steps(&self, p: u64) -> u64 {
        assert!(p >= 1);
        self.work.div_ceil(p) + self.depth
    }

    /// Whether the computation satisfied the §4 linearity restriction:
    /// every future cell read (touched) at most once.
    pub fn is_linear(&self) -> bool {
        self.max_reads_per_cell <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_unit() {
        let c = CostModel::default();
        assert_eq!((c.fork, c.touch, c.write), (1, 1, 1));
        c.validate();
    }

    #[test]
    fn uniform_scales_all() {
        let c = CostModel::uniform(3);
        assert_eq!((c.fork, c.touch, c.write), (3, 3, 3));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn uniform_zero_rejected() {
        CostModel::uniform(0);
    }

    #[test]
    fn parallelism_and_brent() {
        let r = CostReport {
            work: 1000,
            depth: 10,
            ..CostReport::default()
        };
        assert!((r.parallelism() - 100.0).abs() < 1e-9);
        assert_eq!(r.brent_steps(1), 1010);
        assert_eq!(r.brent_steps(10), 110);
        assert_eq!(r.brent_steps(3), 344); // ceil(1000/3) + 10
    }

    #[test]
    fn zero_depth_parallelism_is_zero() {
        let r = CostReport::default();
        assert_eq!(r.parallelism(), 0.0);
    }
}
