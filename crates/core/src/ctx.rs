//! The simulation engine: virtual-clock execution of futures programs.
//!
//! See the crate-level docs for the model. In brief: programs run eagerly on
//! one OS thread, but every thread of the *simulated* computation carries a
//! virtual clock, every future cell records the clock at which it was
//! written, and touches advance the clock across data edges. The maximum
//! clock reached is the DAG depth; the sum of charged actions is the work.
//!
//! All [`Ctx`] methods take `&self`: a context is a per-simulated-thread
//! clock (interior-mutable) over shared simulation state, which is what lets
//! `Ctx` implement the engine-agnostic `pf_backend::PipeBackend` trait —
//! continuations receive a fresh `&Ctx` exactly like the real runtime hands
//! out `&Worker`.

use std::cell::{Cell as StdCell, RefCell};
use std::cmp::max;
use std::rc::Rc;
use std::sync::Arc;

use crate::cost::{CostModel, CostReport};
use crate::fut::{new_cell, Fut, Promise, RestampCell};
use crate::trace::{Ev, ThreadId, Trace, TraceBuilder};

/// Default stack size for [`run_with_big_stack`]: the eager evaluator nests
/// one native frame per simulated fork on the critical path, and list
/// pipelines (Figure 1, quicksort) nest Θ(n) deep.
pub const DEFAULT_SIM_STACK: usize = 1 << 30; // 1 GiB of (lazily committed) stack

/// Run `f` on a dedicated thread with a large stack.
///
/// The simulator evaluates fork bodies by direct recursion, so programs with
/// long sequential fork chains (the producer/consumer pipeline, quicksort)
/// need more than the default 8 MiB stack for large inputs.
pub fn run_with_big_stack<T: Send>(stack: usize, f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(stack)
            .name("pf-sim".into())
            .spawn_scoped(scope, f)
            .expect("failed to spawn simulation thread")
            .join()
            .expect("simulation thread panicked")
    })
}

#[derive(Default)]
struct StrictFrame {
    /// Cells written inside the frame; re-stamped to the frame's end time.
    cells: Vec<Arc<dyn RestampCell>>,
    /// Latest end time of any simulated thread that terminated inside the
    /// frame — the completion time of the whole strict sub-computation.
    max_end: u64,
}

pub(crate) struct SimState {
    costs: CostModel,
    work: StdCell<u64>,
    max_time: StdCell<u64>,
    forks: StdCell<u64>,
    touches: StdCell<u64>,
    writes: StdCell<u64>,
    flats: StdCell<u64>,
    next_cell: StdCell<u64>,
    max_reads: StdCell<u32>,
    frames: RefCell<Vec<StrictFrame>>,
    trace: RefCell<Option<TraceBuilder>>,
    pre_written: RefCell<Vec<u64>>,
    /// When profiling: profile[t] = number of unit actions executed at
    /// virtual time t+1 (the DAG's width at each depth).
    profile: RefCell<Option<Vec<u64>>>,
}

impl SimState {
    fn new(costs: CostModel) -> Self {
        costs.validate();
        SimState {
            costs,
            work: StdCell::new(0),
            max_time: StdCell::new(0),
            forks: StdCell::new(0),
            touches: StdCell::new(0),
            writes: StdCell::new(0),
            flats: StdCell::new(0),
            next_cell: StdCell::new(0),
            max_reads: StdCell::new(0),
            frames: RefCell::new(Vec::new()),
            trace: RefCell::new(None),
            pre_written: RefCell::new(Vec::new()),
            profile: RefCell::new(None),
        }
    }

    /// Record `k` unit actions at virtual times `from + 1 ..= from + k`.
    fn record_profile(&self, from: u64, k: u64) {
        if let Some(prof) = self.profile.borrow_mut().as_mut() {
            let end = (from + k) as usize;
            if prof.len() < end {
                prof.resize(end, 0);
            }
            for slot in prof[from as usize..end].iter_mut() {
                *slot += 1;
            }
        }
    }

    fn observe_time(&self, t: u64) {
        if t > self.max_time.get() {
            self.max_time.set(t);
        }
    }

    fn push_trace(&self, thread: ThreadId, ev: Ev) {
        if let Some(tb) = self.trace.borrow_mut().as_mut() {
            tb.push(thread, ev);
        }
    }

    fn report(&self) -> CostReport {
        CostReport {
            work: self.work.get(),
            depth: self.max_time.get(),
            forks: self.forks.get(),
            touches: self.touches.get(),
            writes: self.writes.get(),
            cells: self.next_cell.get(),
            flats: self.flats.get(),
            max_reads_per_cell: self.max_reads.get(),
        }
    }
}

/// A simulation instance. Construct, optionally configure, then consume with
/// [`Sim::run`] or [`Sim::run_traced`].
pub struct Sim {
    st: Rc<SimState>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// A simulator with the default unit cost model.
    pub fn new() -> Self {
        Sim {
            st: Rc::new(SimState::new(CostModel::default())),
        }
    }

    /// A simulator with explicit cost constants.
    pub fn with_costs(costs: CostModel) -> Self {
        Sim {
            st: Rc::new(SimState::new(costs)),
        }
    }

    fn root_ctx(&self) -> Ctx {
        Ctx {
            time: StdCell::new(0),
            thread: 0,
            st: Rc::clone(&self.st),
        }
    }

    /// Run a program and return its result and measured cost.
    pub fn run<T>(self, f: impl FnOnce(&Ctx) -> T) -> (T, CostReport) {
        let ctx = self.root_ctx();
        let r = f(&ctx);
        (r, self.st.report())
    }

    /// Run a program while recording the **parallelism profile**: the
    /// number of unit actions at each depth of the DAG (`profile[t]` =
    /// actions executable at time t+1 with unlimited processors). The
    /// profile integrates to the work, its length is the depth, and its
    /// running maximum bounds the useful processor count at each moment.
    pub fn run_profiled<T>(self, f: impl FnOnce(&Ctx) -> T) -> (T, CostReport, Vec<u64>) {
        *self.st.profile.borrow_mut() = Some(Vec::new());
        let ctx = self.root_ctx();
        let r = f(&ctx);
        let report = self.st.report();
        let profile = self
            .st
            .profile
            .borrow_mut()
            .take()
            .expect("profile vanished");
        (r, report, profile)
    }

    /// Run a program while capturing its computation-DAG trace for machine
    /// replay (see `pf-machine`).
    ///
    /// # Panics
    /// If the program uses [`Ctx::call_strict`]: a strict call re-stamps
    /// cells after the fact, which has no faithful encoding in the replayable
    /// event stream. Trace the pipelined variant instead — that is the one
    /// Lemma 4.1 is about.
    pub fn run_traced<T>(self, f: impl FnOnce(&Ctx) -> T) -> (T, CostReport, Trace) {
        {
            let mut tb = TraceBuilder::default();
            let root = tb.new_thread();
            debug_assert_eq!(root, 0);
            *self.st.trace.borrow_mut() = Some(tb);
        }
        let ctx = self.root_ctx();
        let r = f(&ctx);
        let report = self.st.report();
        let tb = self
            .st
            .trace
            .borrow_mut()
            .take()
            .expect("trace builder vanished");
        let trace = Trace {
            threads: tb.threads,
            n_cells: self.st.next_cell.get(),
            pre_written: self.st.pre_written.borrow().clone(),
            costs: self.st.costs,
            work: report.work,
            depth: report.depth,
        };
        (r, report, trace)
    }
}

/// The per-thread execution context: a virtual clock plus a handle on the
/// shared simulation state. One `Ctx` exists per simulated thread; forking
/// creates a child `Ctx` whose clock starts at the fork action's completion
/// time. The clock is interior-mutable so that every method takes `&self`
/// (the shape the `PipeBackend` trait requires).
pub struct Ctx {
    time: StdCell<u64>,
    thread: ThreadId,
    st: Rc<SimState>,
}

impl Ctx {
    /// The thread's current virtual time (its clock).
    pub fn now(&self) -> u64 {
        self.time.get()
    }

    /// The id of the simulated thread this context belongs to.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The cost constants in effect.
    pub fn costs(&self) -> CostModel {
        self.st.costs
    }

    fn advance(&self, k: u64) {
        self.st.work.set(self.st.work.get() + k);
        self.st.record_profile(self.time.get(), k);
        self.time.set(self.time.get() + k);
        self.st.observe_time(self.time.get());
    }

    /// Execute `k` plain unit actions (local computation: pattern matches,
    /// comparisons, allocation of a tree node, ...). `tick(0)` is a no-op.
    pub fn tick(&self, k: u64) {
        if k == 0 {
            return;
        }
        self.advance(k);
        self.st.push_trace(self.thread, Ev::Compute(k));
    }

    /// Create an unfilled future cell: the write pointer and the read
    /// pointer. Creation is charged to the enclosing fork (constant per §4),
    /// so the call itself is free.
    pub fn promise<T>(&self) -> (Promise<T>, Fut<T>) {
        let id = self.st.next_cell.get();
        self.st.next_cell.set(id + 1);
        new_cell(id)
    }

    /// Create a future cell that is *already written* with `value`, stamped
    /// at the current time, **free of charge**. This exists solely for
    /// constructing input data (the trees an algorithm is invoked on) so
    /// that input construction does not pollute the measured work and depth.
    /// In traces the cell is recorded as pre-written. Never use it inside a
    /// measured algorithm — use [`Ctx::filled`] there instead.
    pub fn preload<T>(&self, value: T) -> Fut<T> {
        let (p, f) = self.promise();
        self.st.pre_written.borrow_mut().push(p.id());
        p.write(self.time.get(), value);
        f
    }

    /// Create a cell and immediately fulfill it at the current time,
    /// charging the normal write cost. Use when an algorithm produces a
    /// value *now* but must hand it to a consumer expecting a future (e.g.
    /// the ready halves of a freshly split 2-6 tree node).
    pub fn filled<T: 'static>(&self, value: T) -> Fut<T> {
        let (p, f) = self.promise();
        p.fulfill(self, value);
        f
    }

    /// Fork a future thread that runs `body`. The parent is charged the fork
    /// cost and continues immediately; the child's clock starts at the fork
    /// action's completion time (the fork edge). `body` typically fulfills
    /// one or more [`Promise`]s created by the parent.
    pub fn fork_unit(&self, body: impl FnOnce(&Ctx)) {
        self.advance(self.st.costs.fork);
        self.st.forks.set(self.st.forks.get() + 1);
        let child_thread = {
            let mut tr = self.st.trace.borrow_mut();
            match tr.as_mut() {
                Some(tb) => {
                    let child = tb.new_thread();
                    tb.push(self.thread, Ev::Fork(child));
                    child
                }
                None => 0,
            }
        };
        let child = Ctx {
            time: StdCell::new(self.time.get()),
            thread: child_thread,
            st: Rc::clone(&self.st),
        };
        body(&child);
        // The child thread terminates here (eager evaluation). Record its
        // end time in the innermost strict frame, if any, so that
        // `call_strict` can wait for the entire sub-computation.
        if let Some(frame) = self.st.frames.borrow_mut().last_mut() {
            frame.max_end = max(frame.max_end, child.time.get());
        }
    }

    /// Single-result sugar over [`Ctx::fork_unit`]: fork a thread computing
    /// `body` and return the future for its result, written when the body
    /// completes.
    pub fn fork<T: 'static>(&self, body: impl FnOnce(&Ctx) -> T) -> Fut<T> {
        let (p, f) = self.promise();
        self.fork_unit(move |ctx| {
            let v = body(ctx);
            p.fulfill(ctx, v);
        });
        f
    }

    /// Two-result fork (the paper's footnote 1: "the ability to return
    /// multiple values and have separate future cells created for a single
    /// fork is actually quite important"): the body receives both write
    /// pointers and may fulfill them at different times — the essence of
    /// `split` returning each half as soon as its root is known.
    pub fn fork2<A: 'static, B: 'static>(
        &self,
        body: impl FnOnce(&Ctx, Promise<A>, Promise<B>),
    ) -> (Fut<A>, Fut<B>) {
        let (pa, fa) = self.promise();
        let (pb, fb) = self.promise();
        self.fork_unit(move |ctx| body(ctx, pa, pb));
        (fa, fb)
    }

    /// Three-result fork; see [`Ctx::fork2`]. Matches the arity of
    /// `splitm`, which returns both halves plus the found flag.
    #[allow(clippy::type_complexity)]
    pub fn fork3<A: 'static, B: 'static, C: 'static>(
        &self,
        body: impl FnOnce(&Ctx, Promise<A>, Promise<B>, Promise<C>),
    ) -> (Fut<A>, Fut<B>, Fut<C>) {
        let (pa, fa) = self.promise();
        let (pb, fb) = self.promise();
        let (pc, fc) = self.promise();
        self.fork_unit(move |ctx| body(ctx, pa, pb, pc));
        (fa, fb, fc)
    }

    /// Touch a future: the data edge. Advances this thread's clock to
    /// `max(clock, write_time) + touch_cost` and returns a clone of the
    /// value (values in the model are immutable, so an aliasing clone is
    /// observationally a deep copy).
    ///
    /// # Panics
    /// If the cell has not been written yet. Eager evaluation runs futures
    /// at their creation point, so this means the program touched a cell
    /// created *after* the toucher — outside the class of programs in the
    /// paper (all of which only touch previously created cells).
    pub fn touch<T: Clone>(&self, fut: &Fut<T>) -> T {
        let w = fut.write_time().unwrap_or_else(|| {
            panic!(
                "future cell {} touched before it was written: the program is \
                 not evaluable in eager (creation) order",
                fut.id()
            )
        });
        self.time.set(max(self.time.get(), w));
        self.advance(self.st.costs.touch);
        self.st.touches.set(self.st.touches.get() + 1);
        let reads = fut.record_touch();
        if reads > self.st.max_reads.get() {
            self.st.max_reads.set(reads);
        }
        self.st.push_trace(self.thread, Ev::Touch(fut.id()));
        fut.get()
    }

    /// A flat array primitive of breadth `n` (§3.4): `n` independent unit
    /// actions followed by a unit sink (collect) action — the paper's DAG
    /// of depth 2 and breadth `n`. Used for `array_split` / `array_scan`
    /// in the 2-6 tree algorithm. Work `n + 1`, depth 2.
    pub fn flat(&self, n: u64) {
        let n = max(n, 1);
        self.st.work.set(self.st.work.get() + n + 1);
        let now = self.time.get();
        if let Some(prof) = self.st.profile.borrow_mut().as_mut() {
            let end = (now + 2) as usize;
            if prof.len() < end {
                prof.resize(end, 0);
            }
            prof[now as usize] += n; // the n parallel units
            prof[now as usize + 1] += 1; // the sink
        }
        self.time.set(now + 2);
        self.st.observe_time(self.time.get());
        self.st.flats.set(self.st.flats.get() + 1);
        self.st.push_trace(self.thread, Ev::Flat(n));
    }

    /// Run `body` as a **strict** (non-pipelined) call: the same computation
    /// executes, but every future cell written inside it only becomes
    /// visible at the completion time of the entire sub-computation, and the
    /// caller's clock waits for that completion.
    ///
    /// This is the paper's non-pipelined comparison point: e.g. a `merge`
    /// whose `split` output is only consumed after the split has fully
    /// finished, giving the Θ(lg n · lg m) depth that pipelining improves to
    /// Θ(lg n + lg m).
    ///
    /// # Panics
    /// If the simulation is being traced (see [`Sim::run_traced`]).
    pub fn call_strict<T>(&self, body: impl FnOnce(&Ctx) -> T) -> T {
        assert!(
            self.st.trace.borrow().is_none(),
            "call_strict cannot be used under tracing; trace the pipelined variant"
        );
        self.st.frames.borrow_mut().push(StrictFrame::default());
        let r = body(self);
        let frame = self
            .st
            .frames
            .borrow_mut()
            .pop()
            .expect("strict frame stack underflow");
        let end = max(self.time.get(), frame.max_end);
        for cell in &frame.cells {
            cell.bump_time(end);
        }
        self.time.set(end);
        self.st.observe_time(end);
        if let Some(parent) = self.st.frames.borrow_mut().last_mut() {
            parent.max_end = max(parent.max_end, end);
            parent.cells.extend(frame.cells);
        }
        r
    }
}

impl<T: 'static> Promise<T> {
    /// Write the value into the cell, stamping it with the writing thread's
    /// clock after charging the write cost. Consumes the promise: a future
    /// cell is written exactly once.
    pub fn fulfill(self, ctx: &Ctx, value: T) {
        ctx.advance(ctx.st.costs.write);
        ctx.st.writes.set(ctx.st.writes.get() + 1);
        ctx.st.push_trace(ctx.thread, Ev::Write(self.id()));
        let inner = self.write(ctx.time.get(), value);
        if let Some(frame) = ctx.st.frames.borrow_mut().last_mut() {
            frame.cells.push(inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ticks() {
        let (_, r) = Sim::new().run(|ctx| ctx.tick(5));
        assert_eq!(r.work, 5);
        assert_eq!(r.depth, 5);
    }

    #[test]
    fn fork_and_touch_clock_algebra() {
        let (v, r) = Sim::new().run(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(3);
                7
            });
            // fork action ends at t=1; child runs 1->4; write completes at 5.
            assert_eq!(f.time(), 5);
            assert_eq!(ctx.now(), 1);
            let v = ctx.touch(&f);
            assert_eq!(ctx.now(), 6); // max(1, 5) + 1
            v
        });
        assert_eq!(v, 7);
        assert_eq!(r.work, 1 + 3 + 1 + 1); // fork + ticks + write + touch
        assert_eq!(r.depth, 6);
        assert_eq!(r.forks, 1);
        assert_eq!(r.touches, 1);
        assert_eq!(r.writes, 1);
        assert_eq!(r.cells, 1);
    }

    #[test]
    fn parallel_forks_overlap() {
        let (_, r) = Sim::new().run(|ctx| {
            let f1 = ctx.fork(|c| c.tick(10));
            let f2 = ctx.fork(|c| c.tick(10));
            ctx.touch(&f1);
            ctx.touch(&f2);
        });
        // f1: fork ends 1, child 1..=11, write at 12.
        // f2: fork ends 2, child 2..=12, write at 13.
        // touches: max(2,12)+1 = 13; max(13,13)+1 = 14.
        assert_eq!(r.depth, 14);
        assert_eq!(r.work, 2 + 20 + 2 + 2);
        assert!(r.depth < r.work, "the two forks must overlap in time");
    }

    #[test]
    fn multi_cell_fork_pipelines() {
        let (_, r) = Sim::new().run(|ctx| {
            let (p1, f1) = ctx.promise();
            let (p2, f2) = ctx.promise();
            ctx.fork_unit(move |c| {
                c.tick(1);
                p1.fulfill(c, 1u32);
                c.tick(10);
                p2.fulfill(c, 2u32);
            });
            // f1 available long before f2: the essence of pipelining.
            assert_eq!(f1.time(), 3); // fork 1, tick 2, write 3
            assert_eq!(f2.time(), 14);
            let a = ctx.touch(&f1);
            assert_eq!(ctx.now(), 4);
            let b = ctx.touch(&f2);
            assert_eq!(ctx.now(), 15);
            assert_eq!((a, b), (1, 2));
        });
        assert_eq!(r.depth, 15);
    }

    #[test]
    fn fork2_cells_fill_independently() {
        let (_, r) = Sim::new().run(|ctx| {
            let (fa, fb) = ctx.fork2(|c, pa, pb| {
                c.tick(1);
                pa.fulfill(c, 'a');
                c.tick(30);
                pb.fulfill(c, 'b');
            });
            assert!(fb.time() > fa.time() + 25);
            assert_eq!(ctx.touch(&fa), 'a');
            let early = ctx.now();
            assert_eq!(ctx.touch(&fb), 'b');
            assert!(ctx.now() > early + 25);
        });
        assert!(r.is_linear());
        assert_eq!(r.cells, 2);
    }

    #[test]
    fn fork3_matches_splitm_arity() {
        let (_, r) = Sim::new().run(|ctx| {
            let (fa, fb, fc) = ctx.fork3(|c, pa, pb, pc| {
                pa.fulfill(c, 1u8);
                pb.fulfill(c, 2u8);
                pc.fulfill(c, true);
            });
            assert_eq!(ctx.touch(&fa) + ctx.touch(&fb), 3);
            assert!(ctx.touch(&fc));
        });
        assert_eq!(r.cells, 3);
        assert_eq!(r.forks, 1);
    }

    #[test]
    fn strict_call_defers_all_writes() {
        let (_, r) = Sim::new().run(|ctx| {
            let (p1, f1) = ctx.promise();
            let (p2, f2) = ctx.promise();
            ctx.call_strict(|ctx| {
                ctx.fork_unit(move |c| {
                    c.tick(1);
                    p1.fulfill(c, 1u32);
                    c.tick(10);
                    p2.fulfill(c, 2u32);
                });
            });
            // Without pipelining both cells appear at the sub-computation's
            // end (t=14) and the caller has waited for it.
            assert_eq!(ctx.now(), 14);
            assert_eq!(f1.time(), 14);
            assert_eq!(f2.time(), 14);
            ctx.touch(&f1);
            assert_eq!(ctx.now(), 15);
            let _ = f2;
        });
        assert_eq!(r.depth, 15);
    }

    #[test]
    fn strict_vs_pipelined_depth() {
        fn pipeline(ctx: &Ctx, strict: bool) {
            let (p1, f1) = ctx.promise();
            let (p2, f2) = ctx.promise();
            let body = move |c: &Ctx| {
                c.tick(1);
                p1.fulfill(c, ());
                c.tick(50);
                p2.fulfill(c, ());
            };
            if strict {
                ctx.call_strict(move |ctx| ctx.fork_unit(body));
            } else {
                ctx.fork_unit(body);
            }
            // Consumer does 50 units of work after seeing f1.
            ctx.touch(&f1);
            ctx.tick(50);
            ctx.touch(&f2);
        }
        let (_, pipelined) = Sim::new().run(|ctx| pipeline(ctx, false));
        let (_, strict) = Sim::new().run(|ctx| pipeline(ctx, true));
        assert_eq!(pipelined.work, strict.work, "same computation, same work");
        assert!(
            pipelined.depth + 40 < strict.depth,
            "pipelining must overlap producer and consumer: {} vs {}",
            pipelined.depth,
            strict.depth
        );
    }

    #[test]
    fn nested_strict_frames() {
        let (_, _r) = Sim::new().run(|ctx| {
            let (p_out, f_out) = ctx.promise();
            ctx.call_strict(|ctx| {
                let (p_in, f_in) = ctx.promise();
                ctx.call_strict(|ctx| {
                    ctx.fork_unit(move |c| {
                        c.tick(5);
                        p_in.fulfill(c, ());
                    });
                });
                let inner_time = f_in.time();
                ctx.fork_unit(move |c| {
                    c.tick(2);
                    p_out.fulfill(c, ());
                });
                assert!(inner_time >= 6);
            });
            // Outer strict frame re-stamps the outer cell to the outer end.
            let outer_end = ctx.now();
            assert_eq!(f_out.time(), outer_end);
        });
    }

    #[test]
    fn flat_primitive_costs() {
        let (_, r) = Sim::new().run(|ctx| {
            ctx.flat(100);
        });
        assert_eq!(r.work, 101); // 100 units + sink
        assert_eq!(r.depth, 2);
        assert_eq!(r.flats, 1);
    }

    #[test]
    fn flat_zero_breadth_still_unit() {
        let (_, r) = Sim::new().run(|ctx| ctx.flat(0));
        assert_eq!(r.work, 2);
        assert_eq!(r.depth, 2);
    }

    #[test]
    #[should_panic(expected = "touched before it was written")]
    fn touch_before_write_panics() {
        Sim::new().run(|ctx| {
            let (_p, f) = ctx.promise::<u32>();
            ctx.touch(&f);
        });
    }

    #[test]
    fn preload_is_free_and_recorded() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let f = ctx.preload(41u32);
            assert_eq!(f.time(), 0);
            ctx.touch(&f) + 1
        });
        assert_eq!(r.work, 1); // just the touch
        assert_eq!(r.depth, 1);
        assert_eq!(trace.pre_written, vec![0]);
    }

    #[test]
    fn filled_is_costed() {
        let (_, r) = Sim::new().run(|ctx| {
            let f = ctx.filled(7u32);
            assert_eq!(f.time(), 1); // write cost
            ctx.touch(&f)
        });
        assert_eq!(r.work, 2);
        assert_eq!(r.writes, 1);
    }

    #[test]
    fn linearity_counting() {
        let (_, r) = Sim::new().run(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(1);
                3u32
            });
            ctx.touch(&f);
            ctx.touch(&f); // second read: non-linear
        });
        assert_eq!(r.max_reads_per_cell, 2);
        assert!(!r.is_linear());

        let (_, r) = Sim::new().run(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(1);
                3u32
            });
            ctx.touch(&f);
        });
        assert_eq!(r.max_reads_per_cell, 1);
        assert!(r.is_linear());
    }

    #[test]
    fn scaled_costs_scale_depth() {
        let run = |k| {
            let (_, r) = Sim::with_costs(CostModel::uniform(k)).run(|ctx| {
                let f = ctx.fork(|c| {
                    c.tick(1);
                    1u8
                });
                ctx.touch(&f);
            });
            r
        };
        let r1 = run(1);
        let r3 = run(3);
        // k=1: fork ends 1, child ticks to 2, write at 3, touch at 4.
        assert_eq!(r1.depth, 4);
        // k=3: fork ends 3, child ticks to 4, write at 7, touch at 10.
        assert_eq!(r3.depth, 10);
        assert!(r3.work > r1.work);
    }

    #[test]
    fn profile_integrates_to_work_and_spans_depth() {
        let (_, r, prof) = Sim::new().run_profiled(|ctx| {
            let fs: Vec<_> = (0..4).map(|_| ctx.fork(|c| c.tick(10))).collect();
            for f in &fs {
                ctx.touch(f);
            }
            ctx.flat(20);
        });
        assert_eq!(prof.iter().sum::<u64>(), r.work);
        assert_eq!(prof.len() as u64, r.depth);
        // Peak parallelism: the four forked threads overlap.
        assert!(*prof.iter().max().unwrap() >= 4);
        // The flat spike of 20 parallel units is visible.
        assert!(prof.iter().any(|&w| w >= 20));
    }

    #[test]
    fn profile_of_serial_program_is_flat_ones() {
        let (_, r, prof) = Sim::new().run_profiled(|ctx| ctx.tick(25));
        assert_eq!(prof, vec![1u64; 25]);
        assert_eq!(r.depth, 25);
    }

    #[test]
    fn trace_records_events_and_work_matches() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(2);
                5u32
            });
            ctx.tick(1);
            ctx.touch(&f);
            ctx.flat(10);
        });
        assert_eq!(trace.n_threads(), 2);
        assert_eq!(trace.total_actions(), r.work);
        assert_eq!(trace.work, r.work);
        assert_eq!(trace.depth, r.depth);
        // Root thread: Fork, Compute(1), Touch, Flat(10).
        assert_eq!(
            trace.threads[0].events,
            vec![Ev::Fork(1), Ev::Compute(1), Ev::Touch(0), Ev::Flat(10)]
        );
        // Child thread: Compute(2), Write.
        assert_eq!(trace.threads[1].events, vec![Ev::Compute(2), Ev::Write(0)]);
    }

    #[test]
    #[should_panic(expected = "call_strict cannot be used under tracing")]
    fn strict_under_trace_panics() {
        Sim::new().run_traced(|ctx| {
            ctx.call_strict(|ctx| ctx.tick(1));
        });
    }
}
