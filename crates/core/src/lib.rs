//! # pf-core — the language-based cost model of *Pipelining with Futures*
//!
//! This crate implements the computational model of Blelloch & Reid-Miller,
//! *Pipelining with Futures* (SPAA '97 / Theory of Computing Systems 32,
//! 1999): a purely functional language extended with **futures**, whose cost
//! semantics is a dynamically unfolding DAG of unit-time actions connected by
//! *thread*, *fork*, and *data* edges. The cost of a computation is its
//! **work** (number of DAG nodes) and **depth** (longest path).
//!
//! ## How the model is realised
//!
//! The PSL-style DAG of a deterministic program does not depend on the
//! schedule, so we can evaluate a program *eagerly* (depth-first, on one OS
//! thread) while tracking, for every value, the **virtual time** at which its
//! write action occurs. The rules are exactly the paper's:
//!
//! * every unit action advances the current thread's clock by one and adds
//!   one to the global work counter ([`Ctx::tick`]);
//! * a **fork** ([`Ctx::fork`], [`Ctx::fork_unit`]) starts a child thread at
//!   `parent_clock + fork_cost` (the fork edge) and lets the parent continue
//!   immediately;
//! * **touching** a future ([`Ctx::touch`]) sets the clock to
//!   `max(clock, write_time) + touch_cost` (the data edge);
//! * a **write** ([`Promise::fulfill`]) stamps the cell with the writing
//!   thread's clock;
//! * the flat array primitives of §3.4 ([`Ctx::flat`]) contribute `O(1)`
//!   depth and `O(n)` work, mirroring the paper's `array_split` DAG of
//!   depth 2 and breadth *n*.
//!
//! The observed depth is the maximum clock value reached by any action, and
//! the per-value timestamps are exactly the `t(v)` used in the paper's
//! τ-value / ρ-value / γ-value analyses — so those lemmas can be checked
//! empirically on concrete runs.
//!
//! ## Eager evaluation order
//!
//! Evaluating fork bodies at their creation point is safe for every program
//! in the paper because a future only touches cells created *before* it.
//! Programs outside this class (a future touching a cell that is written
//! later in program order) panic with a "touched before write" error rather
//! than silently producing wrong costs.
//!
//! ## Strict (non-pipelined) calls
//!
//! [`Ctx::call_strict`] runs a body and then re-stamps every cell the body
//! (or any thread it forked) wrote to the completion time of the whole
//! sub-computation. This is precisely the non-pipelined variant the paper
//! compares against — e.g. a `merge` whose `split` must complete before the
//! recursive calls observe any of its output — and lets a single
//! implementation of each algorithm produce both pipelined and
//! non-pipelined cost measurements.
//!
//! ## Linearity
//!
//! §4 of the paper restricts programs to *linear* code — every future cell
//! read at most once — to obtain an EREW implementation with a single
//! suspended closure per cell. The simulator counts reads per cell;
//! [`CostReport::max_reads_per_cell`] and [`CostReport::is_linear`] verify
//! the restriction for the algorithm implementations.
//!
//! ## Quick example
//!
//! The producer/consumer pipeline of the paper's Figure 1:
//!
//! ```
//! use pf_core::{Sim, Ctx, Fut, FList};
//!
//! fn produce(ctx: &Ctx, n: u64) -> FList<u64> {
//!     ctx.tick(1);
//!     if n == 0 {
//!         FList::nil()
//!     } else {
//!         let tail = ctx.fork(move |ctx| produce(ctx, n - 1));
//!         FList::cons(n, tail)
//!     }
//! }
//!
//! fn consume(ctx: &Ctx, l: &FList<u64>, acc: u64) -> u64 {
//!     ctx.tick(1);
//!     match l.as_cons() {
//!         None => acc,
//!         Some((h, t)) => {
//!             let tail = ctx.touch(t).clone();
//!             consume(ctx, &tail, acc + h)
//!         }
//!     }
//! }
//!
//! let sim = Sim::new();
//! let (sum, report) = sim.run(|ctx| {
//!     let l = produce(ctx, 100);
//!     consume(ctx, &l, 0)
//! });
//! assert_eq!(sum, 100 * 101 / 2);
//! // pipelining: the consumer trails the producer by O(1), so the depth is
//! // proportional to n rather than 2n.
//! assert!(report.depth < 3 * 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cost;
mod ctx;
mod fut;
mod list;
mod trace;

pub use cost::{CostModel, CostReport};
pub use ctx::{run_with_big_stack, Ctx, Sim, DEFAULT_SIM_STACK};
pub use fut::{Fut, Promise};
pub use list::FList;
pub use trace::{CellId, Ev, ThreadId, ThreadLog, Trace};

// The engine-agnostic surface `Ctx` implements (see `backend`): re-exported
// so simulator-side code can name the trait without a separate dependency.
pub use pf_backend::{Mode, PipeBackend};
