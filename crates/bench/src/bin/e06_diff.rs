//! E06 — Corollary 3.12 / Lemma 3.10: treap difference expected depth, ρ-values.
fn main() {
    pf_bench::exp_model::e06_diff(&[8, 9, 10, 11, 12, 13], &[1, 2, 3, 4, 5]).print();
}
