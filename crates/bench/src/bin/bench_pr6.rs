//! PR 6 evidence harness: sustained service throughput with cross-batch
//! pipelining on vs off.
//!
//! The service under test is `pf-service` (sharded, coalescing set
//! service). The A/B variable is [`ApplyMode`]:
//!
//! * **Pipelined** — windows of up to 8 waves chained through unresolved
//!   future cells in one fault-contained session (batch N+1 splits
//!   against batch N's still-being-written root).
//! * **Barriered** — one session per wave; every wave waits for its
//!   predecessor's full quiescence (the barrier the paper's futures
//!   remove).
//!
//! The driver is open-loop: the main thread feeds a seeded million-key
//! mixed insert/delete trace into the service's per-shard ingress queues
//! while one apply thread per shard drains them ([`SetService::drive`]),
//! and a snapshot-reader thread hammers `contains` against the committed
//! roots for the whole run — the mixed read/write load a real front end
//! would apply. Reported per (threads, mode):
//!
//! * `..._kops`   — sustained update throughput, committed keys per
//!   wall-clock second of the drive (thousands/s);
//! * `..._p50_ms` / `..._p99_ms` — per-wave commit latency percentiles,
//!   from the same [`pf_rt::RunStats::elapsed`] the service itself
//!   reports (a pipelined wave's latency is its window's session time —
//!   the cost of riding a longer session is part of what p99 shows);
//! * `svc_reads_t{t}_kops` — concurrent snapshot reads per second
//!   sustained during the pipelined run (reads never block on writes).
//!
//! Usage: `bench_pr6` — writes `results/BENCH_PR6.json` and prints the
//! metrics. `bench_pr6 ci` (or `--ci`) shrinks sizes for the CI smoke.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pf_service::{ApplyMode, CoalescePolicy, Request, ServiceConfig, SetService, ShardMap};
use rand::prelude::*;
use rand::rngs::SmallRng;

const THREADS: [usize; 3] = [1, 4, 8];
const SHARDS: usize = 4;
const WINDOW: usize = 8;

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// A seeded open-loop trace: 70% inserts / 30% deletes, three quarters
/// small requests (coalescer merge fodder — the high-rate front-end
/// shape whose per-wave session overhead the window amortizes), one
/// quarter pre-batched updates (union tree fodder), keys uniform over
/// the keyspace.
fn trace(requests: usize, keyspace: i64, seed: u64) -> Vec<Request<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..requests)
        .map(|i| {
            let m = if rng.gen_bool(0.75) {
                rng.gen_range(1..32)
            } else {
                rng.gen_range(64..256)
            };
            let entries: Vec<(i64, u64)> = (0..m)
                .map(|_| (rng.gen_range(0..keyspace), rng.gen()))
                .collect();
            let req = if rng.gen_bool(0.3) {
                Request::delete(entries)
            } else {
                Request::insert(entries)
            };
            req.tagged(i as u64)
        })
        .collect()
}

struct RunOut {
    kops: f64,
    p50_ms: f64,
    p99_ms: f64,
    read_kops: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// One measured drive of the full trace: returns sustained update
/// throughput, wave-latency percentiles, and the concurrent snapshot
/// read rate.
fn run_one(reqs: &[Request<i64>], threads: usize, mode: ApplyMode, keyspace: i64) -> RunOut {
    let cfg = ServiceConfig {
        threads,
        window: WINDOW,
        mode,
        deadline: Some(Duration::from_secs(60)),
        policy: CoalescePolicy::default(),
        ..ServiceConfig::default()
    };
    let svc = SetService::new(ShardMap::uniform(SHARDS, 0, keyspace), cfg);
    let stop = AtomicBool::new(false);
    let (report, elapsed, reads) = std::thread::scope(|s| {
        let reader = s.spawn(|| {
            let mut rng = SmallRng::seed_from_u64(99);
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = rng.gen_range(0..keyspace);
                std::hint::black_box(svc.contains(&k));
                n += 1;
            }
            n
        });
        let start = Instant::now();
        let report = svc.drive(reqs.iter().cloned());
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        (report, elapsed, reader.join().expect("reader thread"))
    });
    assert_eq!(report.degraded, 0, "healthy load must not degrade");
    assert_eq!(report.served, report.outcomes.len() as u64);

    let mut lats: Vec<f64> = report
        .outcomes
        .iter()
        .map(|o| o.latency.as_secs_f64() * 1e3)
        .collect();
    lats.sort_by(f64::total_cmp);
    let secs = elapsed.as_secs_f64();
    RunOut {
        kops: report.keys_applied as f64 / secs / 1e3,
        p50_ms: percentile(&lats, 0.50),
        p99_ms: percentile(&lats, 0.99),
        read_kops: reads as f64 / secs / 1e3,
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let ci = matches!(arg.as_deref(), Some("ci") | Some("--ci"));
    let (requests, keyspace, reps) = if ci {
        (96usize, 1i64 << 14, 1usize)
    } else {
        (6144usize, 1_000_000i64, 3usize)
    };

    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let reqs = trace(requests, keyspace, 4242);
    let total_keys: usize = reqs.iter().map(|r| r.entries.len()).sum();
    println!(
        "open-loop trace: {requests} requests, {total_keys} keys over [0, {keyspace}), \
         {SHARDS} shards, window {WINDOW}\n"
    );

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, v: f64| {
        println!("{name:<40} {v:>12.3}");
        entries.push((name, v));
    };

    for t in THREADS {
        for (mode, label) in [
            (ApplyMode::Pipelined, "pipelined"),
            (ApplyMode::Barriered, "barriered"),
        ] {
            // Best-of-reps by sustained throughput (warm pool after rep 1).
            let mut best: Option<RunOut> = None;
            for _ in 0..reps {
                let out = run_one(&reqs, t, mode, keyspace);
                if best.as_ref().is_none_or(|b| out.kops > b.kops) {
                    best = Some(out);
                }
            }
            let out = best.expect("at least one rep");
            push(format!("svc_{label}_t{t}_kops"), out.kops);
            push(format!("svc_{label}_t{t}_p50_ms"), out.p50_ms);
            push(format!("svc_{label}_t{t}_p99_ms"), out.p99_ms);
            if mode == ApplyMode::Pipelined {
                push(format!("svc_reads_t{t}_kops"), out.read_kops);
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"label\": \"pr6_service_pipelined_vs_barriered\",\n");
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str(&format!(
        "  \"note\": \"pf-service open-loop drive: {requests} mixed insert/delete requests \
         ({total_keys} keys) over [0, {keyspace}), {SHARDS} shards, window {WINDOW}, plus a \
         concurrent snapshot-reader thread; kops = committed keys per wall-clock second \
         (best of {reps}), latency percentiles from RunStats.elapsed per wave\",\n",
    ));
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_PR6.json", &json).expect("write json");
    println!("\nwrote results/BENCH_PR6.json");
}
