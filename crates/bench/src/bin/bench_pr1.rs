//! PR 1 evidence harness: scheduler-overhead microbenchmarks measured
//! identically before and after the persistent-pool / allocation-diet
//! rework, so the committed `BENCH_PR1.json` compares like with like.
//!
//! Usage: `bench_pr1 [label]` — writes `results/bench_pr1_<label>.json`
//! (default label `current`) and prints the table. The committed
//! `results/BENCH_PR1.json` merges a `before` run (seed scheduler design:
//! per-run thread spawn/join, condvar 1 ms idle poll, boxed tasks) and an
//! `after` run (persistent pool, spin→yield→park idle, inline small
//! tasks) taken on the same machine.

use std::time::{Duration, Instant};

use pf_rt::{cell, Runtime, Worker};
use pf_rt_algs::drivers::{best_of, time_merge_rt, time_union_rt};
use pf_trees::workloads::union_entries;

const THREADS: [usize; 3] = [1, 4, 8];

fn time(mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// Mean µs per `run` call on one long-lived runtime (the repeated-run
/// session cost: the headline number for the persistent pool).
fn repeated_run_us(threads: usize, reps: u32) -> f64 {
    let rt = Runtime::new(threads);
    // Warm-up: first run pays one-time costs on either implementation.
    rt.run(|_| {});
    let dt = time(|| {
        for _ in 0..reps {
            rt.run(|_| {});
        }
    });
    dt.as_secs_f64() * 1e6 / reps as f64
}

/// Mean µs per run when a fresh `Runtime` is constructed per call (the
/// seed's usage pattern in drivers/benches).
fn fresh_runtime_run_us(threads: usize, reps: u32) -> f64 {
    let dt = time(|| {
        for _ in 0..reps {
            Runtime::new(threads).run(|_| {});
        }
    });
    dt.as_secs_f64() * 1e6 / reps as f64
}

fn spawn_tree(wk: &Worker, depth: usize) {
    if depth > 0 {
        wk.spawn(move |wk| spawn_tree(wk, depth - 1));
        wk.spawn(move |wk| spawn_tree(wk, depth - 1));
    }
}

/// Spawn throughput in million tasks/second: a binary fan-out tree of
/// 2^(d+1)-1 empty tasks (the tree algorithms' two-child spawn shape).
fn spawn_throughput_mops(threads: usize, depth: usize) -> f64 {
    let rt = Runtime::new(threads);
    rt.run(|_| {});
    let tasks = (1u64 << (depth + 1)) - 1;
    let dt = best_of(5, || time(|| rt.run(move |wk| spawn_tree(wk, depth))));
    tasks as f64 / dt.as_secs_f64() / 1e6
}

/// Single-producer spawn burst (the `spawn_10k_empty_tasks` shape).
fn spawn_burst_mops(threads: usize, n: usize) -> f64 {
    let rt = Runtime::new(threads);
    rt.run(|_| {});
    let dt = best_of(5, || {
        time(|| {
            rt.run(move |wk| {
                for _ in 0..n {
                    wk.spawn(|_| {});
                }
            })
        })
    });
    n as f64 / dt.as_secs_f64() / 1e6
}

/// µs per 10k fulfilled-then-touched cells on one worker.
fn cell_write_then_touch_us(n: usize) -> f64 {
    let rt = Runtime::new(1);
    rt.run(|_| {});
    let dt = best_of(5, || {
        time(|| {
            rt.run(move |wk| {
                for i in 0..n {
                    let (w, r) = cell::<usize>();
                    w.fulfill(wk, i);
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                }
            })
        })
    });
    dt.as_secs_f64() * 1e6
}

/// µs per 10k touched-then-fulfilled cells (the suspension/WAITING path).
fn cell_touch_then_write_us(n: usize) -> f64 {
    let rt = Runtime::new(1);
    rt.run(|_| {});
    let dt = best_of(5, || {
        time(|| {
            rt.run(move |wk| {
                for i in 0..n {
                    let (w, r) = cell::<usize>();
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                    w.fulfill(wk, i);
                }
            })
        })
    });
    dt.as_secs_f64() * 1e6
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "current".into());
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, v: f64| {
        println!("{name:<40} {v:>12.3}");
        entries.push((name, v));
    };

    for t in THREADS {
        push(
            format!("repeated_run_noop_t{t}_us"),
            repeated_run_us(t, 400),
        );
    }
    for t in THREADS {
        push(
            format!("fresh_runtime_run_t{t}_us"),
            fresh_runtime_run_us(t, 100),
        );
    }
    for t in THREADS {
        push(
            format!("spawn_tree_throughput_t{t}_mops"),
            spawn_throughput_mops(t, 17),
        );
    }
    push("spawn_burst_t1_mops".into(), spawn_burst_mops(1, 100_000));
    push(
        "lockfree_write_then_touch_10k_us".into(),
        cell_write_then_touch_us(10_000),
    );
    push(
        "lockfree_touch_then_write_10k_us".into(),
        cell_touch_then_write_us(10_000),
    );

    let (ea, eb) = union_entries(50_000, 50_000, 5);
    for t in THREADS {
        let dt = best_of(3, || time_union_rt(&ea, &eb, t));
        push(format!("time_union_rt_50k_t{t}_ms"), dt.as_secs_f64() * 1e3);
    }
    let a: Vec<i64> = (0..50_000).map(|i| 2 * i).collect();
    let b: Vec<i64> = (0..50_000).map(|i| 2 * i + 1).collect();
    for t in THREADS {
        let dt = best_of(3, || time_merge_rt(&a, &b, t));
        push(format!("time_merge_rt_50k_t{t}_ms"), dt.as_secs_f64() * 1e3);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("results dir");
    let path = format!("results/bench_pr1_{label}.json");
    std::fs::write(&path, &json).expect("write json");
    println!("\nwrote {path}");
}
