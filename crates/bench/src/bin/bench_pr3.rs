//! PR 3 evidence harness: the generic (`pf_algs` over `PipeBackend`)
//! algorithms vs the hand-written CPS versions they replaced.
//!
//! Host wall-clock drifts far more than 5% between runs on shared
//! machines, so comparing a fresh run against the committed pre-refactor
//! JSON would measure the host, not the refactor. Instead this binary
//! resurrects the pre-refactor hand-CPS union and merge verbatim (from
//! the last commit before the refactor) in a private module and races
//! the two implementations **interleaved in one process**, reporting the
//! generic/hand ratio per thread count. Parity means ratios within ±5%.
//!
//! Usage: `bench_pr3` — writes `results/BENCH_PR3.json` and prints the
//! table.

use std::time::{Duration, Instant};

use pf_rt::{cell, ready, Runtime};
use pf_rt_algs::drivers::{best_of, time_merge_rt, time_union_rt};
use pf_trees::workloads::union_entries;

/// The pre-refactor hand-CPS implementations, copied verbatim from the
/// commit that preceded the `PipeBackend` refactor so the baseline stays
/// measurable. Not public API — exists only for this A/B harness.
mod hand {
    use std::sync::Arc;

    use pf_rt::{cell, ready, FutRead, FutWrite, Worker};
    use pf_trees::seq::{Entry, PlainTreap};

    pub enum RTree<K> {
        Leaf,
        Node(Arc<RNode<K>>),
    }

    pub struct RNode<K> {
        pub key: K,
        pub left: FutRead<RTree<K>>,
        pub right: FutRead<RTree<K>>,
    }

    impl<K> Clone for RTree<K> {
        fn clone(&self) -> Self {
            match self {
                RTree::Leaf => RTree::Leaf,
                RTree::Node(n) => RTree::Node(Arc::clone(n)),
            }
        }
    }

    pub trait RKey: Clone + Ord + Send + Sync + 'static {}
    impl<K: Clone + Ord + Send + Sync + 'static> RKey for K {}

    impl<K: RKey> RTree<K> {
        pub fn node(key: K, left: FutRead<RTree<K>>, right: FutRead<RTree<K>>) -> Self {
            RTree::Node(Arc::new(RNode { key, left, right }))
        }

        pub fn is_leaf(&self) -> bool {
            matches!(self, RTree::Leaf)
        }

        pub fn from_sorted(sorted: &[K]) -> RTree<K> {
            if sorted.is_empty() {
                return RTree::Leaf;
            }
            let mid = sorted.len() / 2;
            let left = Self::from_sorted(&sorted[..mid]);
            let right = Self::from_sorted(&sorted[mid + 1..]);
            RTree::node(sorted[mid].clone(), ready(left), ready(right))
        }

        pub fn size(&self) -> usize {
            let mut n = 0;
            let mut stack = vec![self.clone()];
            while let Some(t) = stack.pop() {
                if let RTree::Node(node) = t {
                    n += 1;
                    stack.push(node.left.expect());
                    stack.push(node.right.expect());
                }
            }
            n
        }
    }

    pub fn split<K: RKey>(
        wk: &Worker,
        s: K,
        t: RTree<K>,
        lout: FutWrite<RTree<K>>,
        rout: FutWrite<RTree<K>>,
    ) {
        match t {
            RTree::Leaf => {
                lout.fulfill(wk, RTree::Leaf);
                rout.fulfill(wk, RTree::Leaf);
            }
            RTree::Node(n) => {
                if n.key >= s {
                    let (rp1, rf1) = cell();
                    rout.fulfill(wk, RTree::node(n.key.clone(), rf1, n.right.clone()));
                    n.left.touch(wk, move |lv, wk| split(wk, s, lv, lout, rp1));
                } else {
                    let (lp1, lf1) = cell();
                    lout.fulfill(wk, RTree::node(n.key.clone(), n.left.clone(), lf1));
                    n.right.touch(wk, move |rv, wk| split(wk, s, rv, lp1, rout));
                }
            }
        }
    }

    pub fn merge<K: RKey>(
        wk: &Worker,
        a: FutRead<RTree<K>>,
        b: FutRead<RTree<K>>,
        out: FutWrite<RTree<K>>,
    ) {
        a.touch(wk, move |av, wk| {
            match av {
                RTree::Leaf => b.touch(wk, move |bv, wk| out.fulfill(wk, bv)),
                RTree::Node(n) => b.touch(wk, move |bv, wk| {
                    if bv.is_leaf() {
                        out.fulfill(wk, RTree::Node(n));
                        return;
                    }
                    // let (L2, R2) = ?split(v, B)
                    let (lp2, lf2) = cell();
                    let (rp2, rf2) = cell();
                    let key = n.key.clone();
                    wk.spawn(move |wk| split(wk, key, bv, lp2, rp2));
                    // Node(v, ?merge(L, L2), ?merge(R, R2))
                    let (mlp, mlf) = cell();
                    let (mrp, mrf) = cell();
                    out.fulfill(wk, RTree::node(n.key.clone(), mlf, mrf));
                    let l = n.left.clone();
                    let r = n.right.clone();
                    wk.spawn2(
                        move |wk| merge(wk, l, lf2, mlp),
                        move |wk| merge(wk, r, rf2, mrp),
                    );
                }),
            }
        });
    }

    pub enum RTreap<K> {
        Leaf,
        Node(Arc<RTreapNode<K>>),
    }

    pub struct RTreapNode<K> {
        pub key: K,
        pub prio: u64,
        pub left: FutRead<RTreap<K>>,
        pub right: FutRead<RTreap<K>>,
    }

    impl<K> Clone for RTreap<K> {
        fn clone(&self) -> Self {
            match self {
                RTreap::Leaf => RTreap::Leaf,
                RTreap::Node(n) => RTreap::Node(Arc::clone(n)),
            }
        }
    }

    fn wins<K: Ord>(k1: &K, p1: u64, k2: &K, p2: u64) -> bool {
        (p1, k1) > (p2, k2)
    }

    impl<K: RKey> RTreap<K> {
        pub fn node(
            key: K,
            prio: u64,
            left: FutRead<RTreap<K>>,
            right: FutRead<RTreap<K>>,
        ) -> Self {
            RTreap::Node(Arc::new(RTreapNode {
                key,
                prio,
                left,
                right,
            }))
        }

        pub fn from_plain(t: &Option<Box<PlainTreap<K>>>) -> RTreap<K> {
            match t {
                None => RTreap::Leaf,
                Some(n) => RTreap::node(
                    n.key.clone(),
                    n.prio,
                    ready(Self::from_plain(&n.left)),
                    ready(Self::from_plain(&n.right)),
                ),
            }
        }

        pub fn from_entries(entries: &[Entry<K>]) -> RTreap<K> {
            Self::from_plain(&PlainTreap::from_entries(entries))
        }

        pub fn size(&self) -> usize {
            let mut n = 0;
            let mut stack = vec![self.clone()];
            while let Some(t) = stack.pop() {
                if let RTreap::Node(node) = t {
                    n += 1;
                    stack.push(node.left.expect());
                    stack.push(node.right.expect());
                }
            }
            n
        }
    }

    pub fn splitm<K: RKey>(
        wk: &Worker,
        s: K,
        t: RTreap<K>,
        lout: FutWrite<RTreap<K>>,
        rout: FutWrite<RTreap<K>>,
        fout: FutWrite<bool>,
    ) {
        match t {
            RTreap::Leaf => {
                lout.fulfill(wk, RTreap::Leaf);
                rout.fulfill(wk, RTreap::Leaf);
                fout.fulfill(wk, false);
            }
            RTreap::Node(n) => {
                if s == n.key {
                    let left = n.left.clone();
                    let right = n.right.clone();
                    left.touch(wk, move |lv, wk| {
                        lout.fulfill(wk, lv);
                        right.touch(wk, move |rv, wk| {
                            rout.fulfill(wk, rv);
                            fout.fulfill(wk, true);
                        });
                    });
                } else if s < n.key {
                    let (rp1, rf1) = cell();
                    rout.fulfill(
                        wk,
                        RTreap::node(n.key.clone(), n.prio, rf1, n.right.clone()),
                    );
                    n.left
                        .touch(wk, move |lv, wk| splitm(wk, s, lv, lout, rp1, fout));
                } else {
                    let (lp1, lf1) = cell();
                    lout.fulfill(wk, RTreap::node(n.key.clone(), n.prio, n.left.clone(), lf1));
                    n.right
                        .touch(wk, move |rv, wk| splitm(wk, s, rv, lp1, rout, fout));
                }
            }
        }
    }

    pub fn union<K: RKey>(
        wk: &Worker,
        a: FutRead<RTreap<K>>,
        b: FutRead<RTreap<K>>,
        out: FutWrite<RTreap<K>>,
    ) {
        a.touch(wk, move |av, wk| {
            b.touch(wk, move |bv, wk| {
                let (w, loser) = match (av, bv) {
                    (RTreap::Leaf, bv) => {
                        out.fulfill(wk, bv);
                        return;
                    }
                    (av, RTreap::Leaf) => {
                        out.fulfill(wk, av);
                        return;
                    }
                    (RTreap::Node(na), RTreap::Node(nb)) => {
                        if wins(&na.key, na.prio, &nb.key, nb.prio) {
                            (na, RTreap::Node(nb))
                        } else {
                            (nb, RTreap::Node(na))
                        }
                    }
                };
                let (lp, lf) = cell();
                let (rp, rf) = cell();
                let (fp, _ff) = cell::<bool>();
                let key = w.key.clone();
                wk.spawn(move |wk| splitm(wk, key, loser, lp, rp, fp));
                let (ulp, ulf) = cell();
                let (urp, urf) = cell();
                out.fulfill(wk, RTreap::node(w.key.clone(), w.prio, ulf, urf));
                let wl = w.left.clone();
                let wr = w.right.clone();
                wk.spawn2(
                    move |wk| union(wk, wl, lf, ulp),
                    move |wk| union(wk, wr, rf, urp),
                );
            });
        });
    }
}

/// Hand-CPS twin of `drivers::time_union_rt` (same shared pool, same
/// clock placement, input construction excluded).
fn time_union_hand(
    a: &[pf_trees::seq::Entry<i64>],
    b: &[pf_trees::seq::Entry<i64>],
    threads: usize,
) -> Duration {
    let ta = hand::RTreap::from_entries(a);
    let tb = hand::RTreap::from_entries(b);
    let rt = Runtime::shared(threads);
    let (op, of) = cell();
    let (fa, fb) = (ready(ta), ready(tb));
    let start = Instant::now();
    rt.run(move |wk| hand::union(wk, fa, fb, op));
    let dt = start.elapsed();
    assert!(of.expect().size() >= a.len().max(b.len()));
    dt
}

/// Hand-CPS twin of `drivers::time_merge_rt`.
fn time_merge_hand(a: &[i64], b: &[i64], threads: usize) -> Duration {
    let ta = hand::RTree::from_sorted(a);
    let tb = hand::RTree::from_sorted(b);
    let rt = Runtime::shared(threads);
    let (op, of) = cell();
    let (fa, fb) = (ready(ta), ready(tb));
    let start = Instant::now();
    rt.run(move |wk| hand::merge(wk, fa, fb, op));
    let dt = start.elapsed();
    assert_eq!(of.expect().size(), a.len() + b.len());
    dt
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

const THREADS: [usize; 3] = [1, 4, 8];
const ROUNDS: usize = 17;

fn main() {
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let (ea, eb) = union_entries(50_000, 50_000, 5);
    let a: Vec<i64> = (0..50_000).map(|i| 2 * i).collect();
    let b: Vec<i64> = (0..50_000).map(|i| 2 * i + 1).collect();

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, v: f64| {
        println!("{name:<44} {v:>12.3}");
        entries.push((name, v));
    };

    // Paired A/B: each round measures hand and generic back-to-back
    // (alternating order to cancel order effects) and contributes one
    // generic/hand ratio; the reported ratio is the median over rounds.
    // Host drift on the scale of seconds cancels inside each pair.
    let paired = |name: &str,
                  mut hand: Box<dyn FnMut() -> Duration + '_>,
                  mut generic: Box<dyn FnMut() -> Duration + '_>| {
        let mut hand_best = Duration::MAX;
        let mut gen_best = Duration::MAX;
        let mut ratios = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            let (dh, dg) = if round % 2 == 0 {
                let dh = best_of(3, &mut hand);
                let dg = best_of(3, &mut generic);
                (dh, dg)
            } else {
                let dg = best_of(3, &mut generic);
                let dh = best_of(3, &mut hand);
                (dh, dg)
            };
            hand_best = hand_best.min(dh);
            gen_best = gen_best.min(dg);
            ratios.push(dg.as_secs_f64() / dh.as_secs_f64());
        }
        ratios.sort_by(|x, y| x.partial_cmp(y).unwrap());
        (
            name.to_string(),
            hand_best,
            gen_best,
            ratios[ratios.len() / 2],
        )
    };

    let mut rows = Vec::new();
    let (ea, eb, a, b) = (&ea, &eb, &a, &b);
    for t in THREADS {
        rows.push(paired(
            &format!("union_50k_t{t}"),
            Box::new(move || time_union_hand(ea, eb, t)),
            Box::new(move || time_union_rt(ea, eb, t)),
        ));
    }
    for t in THREADS {
        rows.push(paired(
            &format!("merge_50k_t{t}"),
            Box::new(move || time_merge_hand(a, b, t)),
            Box::new(move || time_merge_rt(a, b, t)),
        ));
    }
    for (name, hand_best, gen_best, median_ratio) in rows {
        push(format!("{name}_hand_ms"), hand_best.as_secs_f64() * 1e3);
        push(format!("{name}_generic_ms"), gen_best.as_secs_f64() * 1e3);
        push(format!("{name}_median_ratio"), median_ratio);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"label\": \"pr3_generic_vs_hand_cps\",\n");
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str(
        "  \"note\": \"interleaved in-process A/B: hand-CPS baseline resurrected from the pre-refactor commit; ratio = generic/hand, parity is 0.95..1.05\",\n",
    );
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_PR3.json", &json).expect("write json");
    println!("\nwrote results/BENCH_PR3.json");
}
