//! E19 — parallelism profiles (DAG width by depth) of the pipelined algorithms.
fn main() {
    pf_core::run_with_big_stack(pf_core::DEFAULT_SIM_STACK, || {
        pf_bench::exp_model::e19_profiles(13).print();
    });
}
