//! PR 7 evidence harness: scheduler hot-path cost with the tracing layer
//! compiled **out** (the default build — must match PR 6-era numbers)
//! versus compiled **in** (`--features trace`).
//!
//! The variant is detected from the build itself (`cfg!(feature =
//! "trace")`), so the same binary name produces either half:
//!
//! ```text
//! cargo run --release -p pf-bench --bin bench_pr7                    # untraced half
//! cargo run --release -p pf-bench --features trace --bin bench_pr7   # traced half
//! ```
//!
//! Each half writes `results/bench_pr7_{untraced|traced}.json`; when both
//! exist the run merges them into `results/BENCH_PR7.json` with a
//! `traced/untraced` overhead ratio per metric. The metrics are the PR 1
//! scheduler microbenchmarks (repeated no-op runs, spawn fan-out
//! throughput, spawn burst, both cell orderings) plus the 50k treap
//! union — the paths that gained trace hooks.
//!
//! Usage: `bench_pr7 [ci]` — `ci` shrinks reps/sizes for the CI smoke.

use std::time::{Duration, Instant};

use pf_rt::{cell, Runtime, Worker};
use pf_rt_algs::drivers::{best_of, time_union_rt};
use pf_trees::workloads::union_entries;

const THREADS: [usize; 3] = [1, 4, 8];

fn time(mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

fn repeated_run_us(threads: usize, reps: u32) -> f64 {
    let rt = Runtime::new(threads);
    rt.run(|_| {});
    let dt = time(|| {
        for _ in 0..reps {
            rt.run(|_| {});
        }
    });
    dt.as_secs_f64() * 1e6 / reps as f64
}

fn spawn_tree(wk: &Worker, depth: usize) {
    if depth > 0 {
        wk.spawn(move |wk| spawn_tree(wk, depth - 1));
        wk.spawn(move |wk| spawn_tree(wk, depth - 1));
    }
}

fn spawn_throughput_mops(threads: usize, depth: usize, reps: usize) -> f64 {
    let rt = Runtime::new(threads);
    rt.run(|_| {});
    let tasks = (1u64 << (depth + 1)) - 1;
    let dt = best_of(reps, || time(|| rt.run(move |wk| spawn_tree(wk, depth))));
    tasks as f64 / dt.as_secs_f64() / 1e6
}

fn spawn_burst_mops(threads: usize, n: usize, reps: usize) -> f64 {
    let rt = Runtime::new(threads);
    rt.run(|_| {});
    let dt = best_of(reps, || {
        time(|| {
            rt.run(move |wk| {
                for _ in 0..n {
                    wk.spawn(|_| {});
                }
            })
        })
    });
    n as f64 / dt.as_secs_f64() / 1e6
}

fn cell_write_then_touch_us(n: usize, reps: usize) -> f64 {
    let rt = Runtime::new(1);
    rt.run(|_| {});
    let dt = best_of(reps, || {
        time(|| {
            rt.run(move |wk| {
                for i in 0..n {
                    let (w, r) = cell::<usize>();
                    w.fulfill(wk, i);
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                }
            })
        })
    });
    dt.as_secs_f64() * 1e6
}

fn cell_touch_then_write_us(n: usize, reps: usize) -> f64 {
    let rt = Runtime::new(1);
    rt.run(|_| {});
    let dt = best_of(reps, || {
        time(|| {
            rt.run(move |wk| {
                for i in 0..n {
                    let (w, r) = cell::<usize>();
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                    w.fulfill(wk, i);
                }
            })
        })
    });
    dt.as_secs_f64() * 1e6
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// Read the `"metrics"` section back out of one half's JSON (our own
/// fixed `"key": value,` line format — no general JSON parser needed).
fn read_metrics(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    let mut in_metrics = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"metrics\"") {
            in_metrics = true;
            continue;
        }
        if !in_metrics {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        let (k, v) = line.split_once(':')?;
        let k = k.trim().trim_matches('"').to_string();
        let v: f64 = v.trim().trim_end_matches(',').parse().ok()?;
        out.push((k, v));
    }
    Some(out)
}

/// Merge both halves into the frozen `BENCH_PR7.json`: every shared
/// metric with its untraced value, traced value, and the ratio. For the
/// `_us` metrics a ratio > 1 is overhead; for the `_mops` throughputs a
/// ratio < 1 is.
fn merge(ncpu: usize, note: &str) -> bool {
    let (Some(off), Some(on)) = (
        read_metrics("results/bench_pr7_untraced.json"),
        read_metrics("results/bench_pr7_traced.json"),
    ) else {
        return false;
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"label\": \"pr7_trace_overhead\",\n");
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str(&format!("  \"note\": \"{note}\",\n"));
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v_off)) in off.iter().enumerate() {
        let v_on = on
            .iter()
            .find(|(k2, _)| k2 == k)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        let ratio = if *v_off != 0.0 {
            v_on / v_off
        } else {
            f64::NAN
        };
        let comma = if i + 1 == off.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{k}\": {{ \"untraced\": {v_off:.3}, \"traced\": {v_on:.3}, \
             \"ratio\": {ratio:.3} }}{comma}\n"
        ));
        println!("{k:<40} off {v_off:>10.3}  on {v_on:>10.3}  ratio {ratio:>6.3}");
    }
    json.push_str("  }\n}\n");
    std::fs::write("results/BENCH_PR7.json", &json).expect("write merged json");
    true
}

fn main() {
    let variant = if cfg!(feature = "trace") {
        "traced"
    } else {
        "untraced"
    };
    let arg = std::env::args().nth(1);
    let ci = matches!(arg.as_deref(), Some("ci") | Some("--ci"));
    let (run_reps, bo, depth, burst, ncells, union_n): (u32, usize, usize, usize, usize, usize) =
        if ci {
            (50, 2, 12, 10_000, 2_000, 4_000)
        } else {
            (400, 5, 17, 100_000, 10_000, 50_000)
        };

    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    println!(
        "bench_pr7 variant: {variant} (trace feature {})\n",
        on_off()
    );

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, v: f64| {
        println!("{name:<40} {v:>12.3}");
        entries.push((name, v));
    };

    for t in THREADS {
        push(
            format!("repeated_run_noop_t{t}_us"),
            repeated_run_us(t, run_reps),
        );
    }
    for t in THREADS {
        push(
            format!("spawn_tree_throughput_t{t}_mops"),
            spawn_throughput_mops(t, depth, bo),
        );
    }
    push("spawn_burst_t1_mops".into(), spawn_burst_mops(1, burst, bo));
    push(
        "lockfree_write_then_touch_10k_us".into(),
        cell_write_then_touch_us(ncells, bo),
    );
    push(
        "lockfree_touch_then_write_10k_us".into(),
        cell_touch_then_write_us(ncells, bo),
    );
    let (ea, eb) = union_entries(union_n, union_n, 5);
    for t in THREADS {
        let dt = best_of(3, || time_union_rt(&ea, &eb, t));
        push(format!("time_union_rt_50k_t{t}_ms"), dt.as_secs_f64() * 1e3);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"pr7_{variant}\",\n"));
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("results dir");
    let path = format!("results/bench_pr7_{variant}.json");
    std::fs::write(&path, &json).expect("write json");
    println!("\nwrote {path}");

    let note = "PR1 scheduler microbenchmarks + 50k treap union, identical driver built \
                with and without --features trace; ratio = traced/untraced (for _us \
                metrics >1 is overhead, for _mops throughputs <1 is)";
    if merge(ncpu, note) {
        println!("wrote results/BENCH_PR7.json (merged both variants)");
    } else {
        println!("run the other variant to produce results/BENCH_PR7.json");
    }
}

fn on_off() -> &'static str {
    if cfg!(feature = "trace") {
        "on"
    } else {
        "off"
    }
}
