//! E12 — real-runtime wall-clock (see the single-CPU note in the output).
fn main() {
    for t in pf_bench::exp_rt::e12_runtime(15, &[1, 2, 4], 3) {
        t.print();
    }
    println!(
        "note: this host has {} CPU(s); multicore speedup is shown by the E09/E10 replay instead",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    assert!(pf_bench::exp_rt::rt_matches_model(12));
    println!("cross-check: runtime result == cost-model result  [ok]");
}
