//! E08 — Figure 2: Halstead's quicksort — pipelining is no asymptotic win.
fn main() {
    pf_core::run_with_big_stack(pf_core::DEFAULT_SIM_STACK, || {
        pf_bench::exp_model::e08_quicksort(&[500, 1_000, 2_000, 4_000], &[1, 2, 3, 4, 5]).print();
    });
}
