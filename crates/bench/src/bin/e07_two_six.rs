//! E07 — Theorem 3.13: 2-6 tree multi-insert depth/work and γ-values.
fn main() {
    for t in pf_bench::exp_model::e07_two_six(&[10, 11, 12, 13, 14], 8) {
        t.print();
    }
}
