//! E13 — conclusions conjecture: pipelined mergesort depth growth on the
//! cost model, plus the wall-clock companion on the real runtime.
//!
//! `e13_mergesort ci` runs the small-n smoke configuration used by CI.
fn main() {
    let ci = std::env::args().nth(1).as_deref() == Some("ci");
    if ci {
        pf_bench::exp_model::e13_mergesort(&[8, 9], &[1]).print();
        pf_bench::exp_rt::e13_msort_wallclock(&[9], &[1, 4, 8], 1).print();
    } else {
        pf_bench::exp_model::e13_mergesort(&[8, 9, 10, 11, 12, 13], &[1, 2, 3]).print();
        pf_bench::exp_rt::e13_msort_wallclock(&[12, 14, 16], &[1, 4, 8], 3).print();
    }
}
