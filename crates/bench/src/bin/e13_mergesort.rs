//! E13 — conclusions conjecture: pipelined mergesort depth growth.
fn main() {
    pf_bench::exp_model::e13_mergesort(&[8, 9, 10, 11, 12, 13], &[1, 2, 3]).print();
}
