//! PR 4 evidence harness: the futures algorithms vs the hand-pipelined
//! baselines (Cole's cascade, the PVW wave schedule), both executing on
//! the *same* persistent worker pool — futures via the §4 scheduler,
//! the baselines via the round-barrier engine (`PoolRounds`, one
//! synchronous wave per run-to-quiescence barrier).
//!
//! Alongside each wall-clock pair the harness records the model-side
//! quantities the experiments compare (futures DAG depth, Cole stages,
//! PVW rounds), which are executor-independent and pinned by test.
//!
//! Usage: `bench_pr4` — writes `results/BENCH_PR4.json` and prints the
//! metrics. `bench_pr4 ci` shrinks the sizes for the CI smoke run.

use pf_rt_algs::baselines::{
    time_cole_pool, time_cole_seq, time_msort_rt, time_pvw_pool, time_pvw_seq, time_sort_seq,
};
use pf_rt_algs::drivers::{best_of, time_insert_rt, time_insert_seq};
use pf_trees::mergesort::run_msort;
use pf_trees::workloads::{shuffled_keys, sorted_keys};
use pf_trees::Mode;

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

const THREADS: [usize; 3] = [1, 4, 8];

fn main() {
    let ci = std::env::args().nth(1).as_deref() == Some("ci");
    let (lg_sort, lg_n, lg_m, reps) = if ci { (10, 12, 6, 1) } else { (14, 16, 10, 5) };

    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let keys = shuffled_keys(1usize << lg_sort, 77);
    let initial = sorted_keys(1usize << lg_n, 2);
    let newk: Vec<i64> = (0..(1i64 << lg_m)).map(|i| 2 * i + 1).collect();

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, v: f64| {
        println!("{name:<40} {v:>12.3}");
        entries.push((name, v));
    };

    // Sorting pair: futures msort vs Cole's cascade, same keys, same pool.
    for t in THREADS {
        let d = best_of(reps, || time_msort_rt(&keys, t));
        push(format!("msort_futures_t{t}_ms"), d.as_secs_f64() * 1e3);
        let d = best_of(reps, || time_cole_pool(&keys, t).0);
        push(format!("cole_rounds_t{t}_ms"), d.as_secs_f64() * 1e3);
    }
    push(
        "cole_rounds_seq_ms".into(),
        best_of(reps, || time_cole_seq(&keys).0).as_secs_f64() * 1e3,
    );
    push(
        "sort_unstable_seq_ms".into(),
        best_of(reps, || time_sort_seq(&keys)).as_secs_f64() * 1e3,
    );

    // Insert pair: futures 2-6 bulk insert vs the PVW wave schedule.
    for t in THREADS {
        let d = best_of(reps, || time_insert_rt(&initial, &newk, t));
        push(format!("insert_futures_t{t}_ms"), d.as_secs_f64() * 1e3);
        let d = best_of(reps, || time_pvw_pool(&initial, &newk, t).0);
        push(format!("pvw_rounds_t{t}_ms"), d.as_secs_f64() * 1e3);
    }
    push(
        "pvw_rounds_seq_ms".into(),
        best_of(reps, || time_pvw_seq(&initial, &newk).0).as_secs_f64() * 1e3,
    );
    push(
        "insert_btreeset_seq_ms".into(),
        best_of(reps, || time_insert_seq(&initial, &newk)).as_secs_f64() * 1e3,
    );

    // Model-side quantities for the same workloads (executor-independent).
    let (_, c) = run_msort(&keys, Mode::Pipelined);
    push("msort_model_depth".into(), c.depth as f64);
    let (_, cs) = time_cole_seq(&keys);
    push("cole_model_stages".into(), cs.stages as f64);
    let (_, ps) = time_pvw_seq(&initial, &newk);
    push("pvw_model_rounds".into(), ps.rounds as f64);
    push("pvw_model_waves".into(), ps.waves as f64);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"label\": \"pr4_futures_vs_hand_pipelined\",\n");
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str(&format!(
        "  \"note\": \"sort pair at n=2^{lg_sort} (futures msort vs Cole cascade), insert pair at n=2^{lg_n}, m=2^{lg_m} (futures 2-6 insert vs PVW waves); both sides share one warm pool per width; _model_ metrics are virtual-time, pinned by pinned_baselines\",\n",
    ));
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_PR4.json", &json).expect("write json");
    println!("\nwrote results/BENCH_PR4.json");
}
