//! E09 — Lemma 4.1: greedy §4 scheduler within Brent's bound.
fn main() {
    pf_bench::exp_machine::e09_scheduler(
        11,
        &[1, 2, 4, 8, 16, 64, 256, 1024, pf_machine::INFINITE_P],
    )
    .print();
}
