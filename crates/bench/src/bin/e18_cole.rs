//! E18 — Cole's cascading mergesort (hand pipeline) vs futures mergesort:
//! stages-vs-depth on the cost model, wall-clock on the real runtime
//! (both engines on the same warm pool).
//!
//! `e18_cole ci` runs the small-n smoke configuration used by CI.
fn main() {
    let ci = std::env::args().nth(1).as_deref() == Some("ci");
    if ci {
        pf_bench::exp_model::e18_cole(&[8, 9], &[1]).print();
        pf_bench::exp_rt::e18_cole_wallclock(9, &[1, 4, 8], 1).print();
    } else {
        pf_bench::exp_model::e18_cole(&[8, 9, 10, 11, 12, 13], &[1, 2, 3]).print();
        pf_bench::exp_rt::e18_cole_wallclock(14, &[1, 4, 8], 3).print();
    }
}
