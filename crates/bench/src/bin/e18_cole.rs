//! E18 — Cole's cascading mergesort (hand pipeline) vs futures mergesort.
fn main() {
    pf_bench::exp_model::e18_cole(&[8, 9, 10, 11, 12, 13], &[1, 2, 3]).print();
}
