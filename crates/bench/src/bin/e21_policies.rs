//! E21 — per-policy scheduler curves (the pluggable-policies PR;
//! DESIGN.md "Scheduler policies").
//!
//! Extends the E12 scaling sweep across the full
//! [`pf_rt::SchedPolicy::matrix`]: all 24 combinations of steal
//! granularity × victim selection × resume placement × spawn order,
//! each measured at t = 1/4/8 on the treap-union and 2-6 bulk-insert
//! DAGs. Steal and suspend counts come from the exact
//! [`pf_rt::TraceStats`] counters (never sampled, never dropped); the
//! deviations column is the `steals + suspends` proxy for schedule
//! deviations.
//!
//! Requires the runtime's tracing layer:
//!
//! ```text
//! cargo run --release -p pf-bench --features trace --bin e21_policies
//! ```
//!
//! Without `--features trace` the binary prints that rebuild hint and
//! exits successfully (so blanket experiment sweeps don't fail).
//!
//! Usage: `e21_policies [ci]` — `ci` shrinks sizes for the CI smoke.

fn main() {
    #[cfg(not(feature = "trace"))]
    eprintln!(
        "e21_policies needs the runtime's tracing layer compiled in; rebuild with\n  \
         cargo run --release -p pf-bench --features trace --bin e21_policies"
    );
    #[cfg(feature = "trace")]
    run();
}

#[cfg(feature = "trace")]
fn run() {
    let arg = std::env::args().nth(1);
    let ci = matches!(arg.as_deref(), Some("ci") | Some("--ci"));
    let (lg_n, threads, reps): (u32, Vec<usize>, usize) = if ci {
        (9, vec![1, 2], 1)
    } else {
        (14, vec![1, 4, 8], 3)
    };

    for t in pf_bench::exp_rt::e21_policy_sweep(lg_n, &threads, reps) {
        t.print();
    }
    println!(
        "note: this host has {} CPU(s); cross-policy *count* differences are the \
         signal here, wall-clock separations need real cores",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}
