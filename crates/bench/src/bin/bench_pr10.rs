//! PR 10 evidence harness: what a poisoned shard costs its healthy
//! siblings, with and without the per-shard circuit breaker.
//!
//! The scenario: an open-loop drive of mixed insert/delete traffic over
//! shards 1..3 while **every** request routed to shard 0 carries a
//! wedge pill — a task that spins until its session is cancelled. The
//! progress-heartbeat stall detector (this PR) declares each wedged
//! session `Stalled` after `stall_budget` instead of letting it ride to
//! the 60 s deadline; the question this harness answers is what happens
//! *next*, A/B:
//!
//! * **breaker off** — shard 0 re-runs a doomed session (plus retries)
//!   per pill wave, each one parking a spinning task on the shared
//!   worker pool for a full stall budget: the healthy shards' sessions
//!   fight the wedge for workers the entire run;
//! * **breaker on** — the first degraded window trips shard 0's breaker
//!   (threshold 1, cooldown longer than the run), every later pill wave
//!   is shed in O(1) with no session at all, and the pool belongs to
//!   the healthy shards again.
//!
//! Metrics (all from one [`pf_service::DrainReport`] per run):
//!
//! * `svc_healthy_*_kops` — committed keys on the *healthy* shards
//!   (1..3) per wall-clock second of the drive, for the all-healthy
//!   baseline and both A/B arms. The PR's acceptance pin: breaker-on
//!   stays within 10% of baseline, breaker-off does not.
//! * `svc_detect_p50_ms` / `svc_detect_p99_ms` — time-to-detection of a
//!   wedged wave (the deciding session's elapsed time, dominated by the
//!   stall budget), over every degraded pill wave of the breaker-off
//!   run.
//! * `svc_shed_waves` — pill waves the open breaker dropped without a
//!   session (breaker-on run).
//!
//! Usage: `bench_pr10` — writes `results/BENCH_PR10.json` and prints
//! the metrics. `bench_pr10 ci` (or `--ci`) shrinks sizes for the CI
//! smoke and skips the throughput-ratio assertions (a loaded runner's
//! noise floor is not evidence either way).

use std::time::Duration;

use pf_service::{BreakerConfig, Fault, Request, RetryPolicy, ServiceConfig, SetService, ShardMap};
use rand::prelude::*;
use rand::rngs::SmallRng;

const SHARDS: usize = 4;
const WINDOW: usize = 8;
const THREADS: usize = 4;
const STALL_BUDGET: Duration = Duration::from_millis(120);

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// Healthy open-loop traffic confined to shards 1..3: keys drawn from
/// `[span, 4·span)` of a uniform 4-shard map, so shard 0 sees none of
/// it and the healthy-shard key sets are identical across all runs.
fn healthy_trace(requests: usize, span: i64, seed: u64) -> Vec<Request<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..requests)
        .map(|i| {
            let m = if rng.gen_bool(0.75) {
                rng.gen_range(1..32)
            } else {
                rng.gen_range(64..256)
            };
            let entries: Vec<(i64, u64)> = (0..m)
                .map(|_| (rng.gen_range(span..SHARDS as i64 * span), rng.gen()))
                .collect();
            let req = if rng.gen_bool(0.3) {
                Request::delete(entries)
            } else {
                Request::insert(entries)
            };
            req.tagged(i as u64)
        })
        .collect()
}

/// Interleave `pills` wedge-pilled inserts aimed at shard 0's key range
/// evenly through the healthy trace (tagged from 1 << 32 up).
fn with_pills(mut reqs: Vec<Request<i64>>, pills: usize, span: i64) -> Vec<Request<i64>> {
    if pills == 0 {
        return reqs;
    }
    let stride = (reqs.len() / pills).max(1);
    let mut rng = SmallRng::seed_from_u64(0x5011_50F5);
    for p in 0..pills {
        let keys: Vec<(i64, u64)> = (0..8)
            .map(|_| (rng.gen_range(0..span), rng.gen()))
            .collect();
        let at = (p * stride + stride / 2).min(reqs.len());
        reqs.insert(
            at,
            Request::insert(keys)
                .faulty(Fault::Wedge)
                .tagged((1u64 << 32) + p as u64),
        );
    }
    reqs
}

struct RunOut {
    healthy_kops: f64,
    detect_ms: Vec<f64>,
    shed: u64,
    degraded: u64,
    retries: u64,
    wall_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_one(reqs: &[Request<i64>], breaker: BreakerConfig, span: i64, pace: Duration) -> RunOut {
    let cfg = ServiceConfig {
        threads: THREADS,
        window: WINDOW,
        // The deadline is a backstop; detection is the heartbeat's job.
        deadline: Some(Duration::from_secs(60)),
        stall_budget: Some(STALL_BUDGET),
        retry: RetryPolicy {
            attempts: 1,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(8),
            seed: 0xB0FF,
        },
        breaker,
        ..ServiceConfig::default()
    };
    let svc = SetService::new(ShardMap::uniform(SHARDS, 0, SHARDS as i64 * span), cfg);
    // Open-loop arrival pacing: without it the whole trace lands in the
    // first drain and every pill coalesces into one window — paced, the
    // pills arrive across many windows, which is both the realistic
    // shape and the one the breaker exists for.
    let report = svc.drive(reqs.iter().map(|r| {
        std::thread::sleep(pace);
        r.clone()
    }));

    // Healthy-shard throughput: committed keys outside shard 0, over
    // the drive's wall clock.
    let healthy_keys: u64 = report
        .outcomes
        .iter()
        .filter(|o| o.served && o.shard != 0)
        .map(|o| o.keys as u64)
        .sum();
    // Every healthy wave must have committed in every run.
    assert_eq!(
        report
            .outcomes
            .iter()
            .filter(|o| o.shard != 0 && !o.served)
            .count(),
        0,
        "healthy-shard waves must never degrade"
    );
    let mut detect_ms: Vec<f64> = report
        .outcomes
        .iter()
        .filter(|o| !o.served && !o.shed)
        .map(|o| o.latency.as_secs_f64() * 1e3)
        .collect();
    detect_ms.sort_by(f64::total_cmp);
    RunOut {
        healthy_kops: healthy_keys as f64 / report.wall.as_secs_f64() / 1e3,
        detect_ms,
        shed: report.shed,
        degraded: report.degraded,
        retries: report.retries,
        wall_s: report.wall.as_secs_f64(),
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let ci = matches!(arg.as_deref(), Some("ci") | Some("--ci"));
    let (requests, pills, span, reps, pace) = if ci {
        (
            96usize,
            4usize,
            1i64 << 12,
            1usize,
            Duration::from_millis(2),
        )
    } else {
        (
            4096usize,
            48usize,
            250_000i64,
            2usize,
            Duration::from_millis(1),
        )
    };

    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let healthy = healthy_trace(requests, span, 4242);
    let total_keys: usize = healthy.iter().map(|r| r.entries.len()).sum();
    let pilled = with_pills(healthy.clone(), pills, span);
    println!(
        "poisoned-shard A/B: {requests} healthy requests ({total_keys} keys) on shards 1..{}, \
         {pills} wedge pills on shard 0, stall budget {STALL_BUDGET:?}, window {WINDOW}, \
         {THREADS} pool threads\n",
        SHARDS - 1
    );

    let breaker_off = BreakerConfig {
        threshold: 0, // disabled
        ..BreakerConfig::default()
    };
    let breaker_on = BreakerConfig {
        threshold: 1,
        open_for: Duration::from_secs(3600), // longer than any run: stays open
        probes: 1,
    };

    // Best-of-reps by healthy-shard throughput, worst-of-reps nothing:
    // the contention claim is about the *achievable* healthy rate.
    let best = |reqs: &[Request<i64>], b: BreakerConfig| -> RunOut {
        let mut best: Option<RunOut> = None;
        for _ in 0..reps {
            let out = run_one(reqs, b, span, pace);
            if best
                .as_ref()
                .is_none_or(|x| out.healthy_kops > x.healthy_kops)
            {
                best = Some(out);
            }
        }
        best.expect("at least one rep")
    };

    let base = best(&healthy, breaker_off);
    let off = best(&pilled, breaker_off);
    let on = best(&pilled, breaker_on);

    assert_eq!(base.degraded + base.shed, 0, "baseline must be clean");
    assert!(off.degraded > 0, "breaker-off run must detect its pills");
    assert!(on.shed > 0, "breaker-on run must shed pill waves");

    let ratio_on = on.healthy_kops / base.healthy_kops;
    let ratio_off = off.healthy_kops / base.healthy_kops;
    let p50 = percentile(&off.detect_ms, 0.50);
    let p99 = percentile(&off.detect_ms, 0.99);

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, v: f64| {
        println!("{name:<40} {v:>12.3}");
        entries.push((name.to_string(), v));
    };
    push("svc_healthy_baseline_kops", base.healthy_kops);
    push("svc_healthy_breaker_off_kops", off.healthy_kops);
    push("svc_healthy_breaker_on_kops", on.healthy_kops);
    push("svc_breaker_off_vs_baseline", ratio_off);
    push("svc_breaker_on_vs_baseline", ratio_on);
    push("svc_detect_p50_ms", p50);
    push("svc_detect_p99_ms", p99);
    push("svc_breaker_off_degraded_waves", off.degraded as f64);
    push("svc_breaker_off_retry_sessions", off.retries as f64);
    push("svc_breaker_on_shed_waves", on.shed as f64);
    push("svc_baseline_wall_s", base.wall_s);
    push("svc_breaker_off_wall_s", off.wall_s);
    push("svc_breaker_on_wall_s", on.wall_s);

    if !ci {
        // The PR's acceptance pin, enforced at measurement time so the
        // committed JSON can only ever contain a passing run.
        assert!(
            ratio_on >= 0.90,
            "breaker-on healthy throughput {ratio_on:.3} of baseline (pin: >= 0.90)"
        );
        assert!(
            ratio_off < 0.90,
            "breaker-off healthy throughput {ratio_off:.3} of baseline — the poisoned shard \
             cost nothing, so the A/B shows no effect"
        );
        assert!(
            p99 < 1_000.0,
            "stall detection p99 {p99:.0} ms — far past any sane multiple of the budget"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"label\": \"pr10_breaker_poisoned_shard\",\n");
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str(&format!(
        "  \"note\": \"open-loop drive with shard 0 poisoned by {pills} wedge-pilled waves \
         (tasks spinning until cancelled), {requests} healthy requests ({total_keys} keys) on \
         shards 1..3; the heartbeat stall detector (budget {}ms) degrades each wedged session, \
         then A/B: breaker off retries every pill (spinning wedges share the {THREADS}-thread \
         pool with healthy sessions) vs breaker on (threshold 1, cooldown > run) shedding after \
         the first trip; kops = committed healthy-shard keys / drive wall clock, best of \
         {reps}; pin: breaker_on_vs_baseline >= 0.90, breaker_off below\",\n",
        STALL_BUDGET.as_millis()
    ));
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_PR10.json", &json).expect("write json");
    println!("\nwrote results/BENCH_PR10.json");
}
