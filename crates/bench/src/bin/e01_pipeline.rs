//! E01 — Figure 1 producer/consumer pipeline.
fn main() {
    pf_core::run_with_big_stack(pf_core::DEFAULT_SIM_STACK, || {
        pf_bench::exp_model::e01_pipeline(&[1_000, 2_000, 4_000, 8_000, 16_000, 32_000]).print();
    });
}
