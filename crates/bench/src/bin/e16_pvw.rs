//! E16 — implicit (futures) vs explicit (PVW-style synchronous)
//! pipelining: depth-vs-rounds on the cost model, wall-clock on the real
//! runtime (both engines on the same warm pool).
//!
//! `e16_pvw ci` runs the small-n smoke configuration used by CI.
fn main() {
    let ci = std::env::args().nth(1).as_deref() == Some("ci");
    if ci {
        pf_bench::exp_machine::e16_pvw(&[10, 11], 5).print();
        pf_bench::exp_rt::e16_pvw_wallclock(10, 5, &[1, 4, 8], 1).print();
    } else {
        pf_bench::exp_machine::e16_pvw(&[10, 11, 12, 13, 14, 15], 8).print();
        pf_bench::exp_rt::e16_pvw_wallclock(16, 10, &[1, 4, 8], 3).print();
    }
}
