//! E16 — implicit (futures) vs explicit (PVW-style synchronous) pipelining.
fn main() {
    pf_bench::exp_machine::e16_pvw(&[10, 11, 12, 13, 14, 15], 8).print();
}
