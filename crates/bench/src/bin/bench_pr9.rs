//! PR 9 evidence harness: the PR-6 open-loop service A/B re-measured on
//! the session-table runtime, where the per-shard apply sessions
//! genuinely co-execute on one worker pool.
//!
//! Through PR 8 the pool ran one session at a time: `drive()`'s apply
//! threads could overlap coalescing and treap construction, but session
//! *execution* serialized on a pool-wide session lock, so shard
//! parallelism stopped at the session boundary. The session table gives
//! every `try_run_session` caller its own slot; this harness re-runs the
//! identical workload and reports the same metrics so the two result
//! files compare directly:
//!
//! * `..._kops` — sustained update throughput, committed keys per
//!   wall-clock second of the drive (thousands/s), now from
//!   [`DrainReport::keys_per_sec_wall`] — the wall-window variant added
//!   for concurrent sessions (summed per-session busy time would double
//!   count overlapping sessions);
//! * `..._p50_ms` / `..._p99_ms` — per-wave commit latency percentiles
//!   from [`pf_rt::RunStats::elapsed`], unchanged;
//! * `svc_reads_t{t}_kops` — concurrent snapshot reads per second
//!   sustained during the pipelined run, unchanged.
//!
//! Usage: `bench_pr9` — writes `results/BENCH_PR9.json` and prints the
//! metrics. `bench_pr9 ci` (or `--ci`) shrinks sizes for the CI smoke.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use pf_service::{ApplyMode, CoalescePolicy, Request, ServiceConfig, SetService, ShardMap};
use rand::prelude::*;
use rand::rngs::SmallRng;

const THREADS: [usize; 3] = [1, 4, 8];
const SHARDS: usize = 4;
const WINDOW: usize = 8;

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// The PR-6 trace, verbatim (same seed, same mix), so the two result
/// files measure the same load.
fn trace(requests: usize, keyspace: i64, seed: u64) -> Vec<Request<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..requests)
        .map(|i| {
            let m = if rng.gen_bool(0.75) {
                rng.gen_range(1..32)
            } else {
                rng.gen_range(64..256)
            };
            let entries: Vec<(i64, u64)> = (0..m)
                .map(|_| (rng.gen_range(0..keyspace), rng.gen()))
                .collect();
            let req = if rng.gen_bool(0.3) {
                Request::delete(entries)
            } else {
                Request::insert(entries)
            };
            req.tagged(i as u64)
        })
        .collect()
}

struct RunOut {
    kops: f64,
    p50_ms: f64,
    p99_ms: f64,
    read_kops: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// One measured drive of the full trace.
fn run_one(reqs: &[Request<i64>], threads: usize, mode: ApplyMode, keyspace: i64) -> RunOut {
    let cfg = ServiceConfig {
        threads,
        window: WINDOW,
        mode,
        deadline: Some(Duration::from_secs(60)),
        policy: CoalescePolicy::default(),
        ..ServiceConfig::default()
    };
    let svc = SetService::new(ShardMap::uniform(SHARDS, 0, keyspace), cfg);
    let stop = AtomicBool::new(false);
    let (report, reads) = std::thread::scope(|s| {
        let reader = s.spawn(|| {
            let mut rng = SmallRng::seed_from_u64(99);
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = rng.gen_range(0..keyspace);
                std::hint::black_box(svc.contains(&k));
                n += 1;
            }
            n
        });
        let report = svc.drive(reqs.iter().cloned());
        stop.store(true, Ordering::Relaxed);
        (report, reader.join().expect("reader thread"))
    });
    assert_eq!(report.degraded, 0, "healthy load must not degrade");
    assert_eq!(report.served, report.outcomes.len() as u64);

    let mut lats: Vec<f64> = report
        .outcomes
        .iter()
        .map(|o| o.latency.as_secs_f64() * 1e3)
        .collect();
    lats.sort_by(f64::total_cmp);
    RunOut {
        kops: report.keys_per_sec_wall() / 1e3,
        p50_ms: percentile(&lats, 0.50),
        p99_ms: percentile(&lats, 0.99),
        read_kops: reads as f64 / report.wall.as_secs_f64() / 1e3,
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let ci = matches!(arg.as_deref(), Some("ci") | Some("--ci"));
    let (requests, keyspace, reps) = if ci {
        (96usize, 1i64 << 14, 1usize)
    } else {
        (6144usize, 1_000_000i64, 3usize)
    };

    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let reqs = trace(requests, keyspace, 4242);
    let total_keys: usize = reqs.iter().map(|r| r.entries.len()).sum();
    println!(
        "open-loop trace: {requests} requests, {total_keys} keys over [0, {keyspace}), \
         {SHARDS} shards, window {WINDOW}, concurrent shard sessions\n"
    );

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, v: f64| {
        println!("{name:<40} {v:>12.3}");
        entries.push((name, v));
    };

    for t in THREADS {
        for (mode, label) in [
            (ApplyMode::Pipelined, "pipelined"),
            (ApplyMode::Barriered, "barriered"),
        ] {
            // Best-of-reps by sustained throughput (warm pool after rep 1).
            let mut best: Option<RunOut> = None;
            for _ in 0..reps {
                let out = run_one(&reqs, t, mode, keyspace);
                if best.as_ref().is_none_or(|b| out.kops > b.kops) {
                    best = Some(out);
                }
            }
            let out = best.expect("at least one rep");
            push(format!("svc_{label}_t{t}_kops"), out.kops);
            push(format!("svc_{label}_t{t}_p50_ms"), out.p50_ms);
            push(format!("svc_{label}_t{t}_p99_ms"), out.p99_ms);
            if mode == ApplyMode::Pipelined {
                push(format!("svc_reads_t{t}_kops"), out.read_kops);
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"label\": \"pr9_service_concurrent_sessions\",\n");
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str(&format!(
        "  \"note\": \"PR-6 open-loop A/B re-measured on the session-table runtime (shard \
         sessions co-execute on one pool): {requests} mixed insert/delete requests \
         ({total_keys} keys) over [0, {keyspace}), {SHARDS} shards, window {WINDOW}, plus a \
         concurrent snapshot-reader thread; kops = DrainReport.keys_per_sec_wall (best of \
         {reps}), latency percentiles from RunStats.elapsed per wave; compare with \
         BENCH_PR6.json (session execution serialized)\",\n",
    ));
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_PR9.json", &json).expect("write json");
    println!("\nwrote results/BENCH_PR9.json");
}
