//! E11 — §4 linearity: every cell touched at most once.
fn main() {
    pf_bench::exp_linear::e11_linearity(10).print();
}
