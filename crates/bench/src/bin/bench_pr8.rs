//! PR 8 evidence harness: the pluggable-policy dispatch must not cost
//! the default hot path anything.
//!
//! Two sections:
//!
//! 1. **Default-policy A/B** — the exact PR 7 metric set (repeated no-op
//!    runs, spawn fan-out throughput, spawn burst, both cell orderings,
//!    50k treap union) re-measured on the policy-dispatching scheduler
//!    under [`SchedPolicy::default`]. Workload sizes are identical to
//!    `bench_pr7`, so each metric is compared against the frozen
//!    `results/bench_pr7_untraced.json` baseline captured before the
//!    dispatch existed; `ratio` ≈ 1.0 is the no-regression claim.
//!
//! 2. **Per-policy wall-clock** — the 50k union at t=4 under every point
//!    of [`SchedPolicy::matrix`], each reported against the default
//!    policy's value (per-policy *curves* with exact steal/suspend
//!    counts are E21's job; this section only shows no policy is
//!    pathologically slow).
//!
//! Writes `results/bench_pr8.json` (raw) and `results/BENCH_PR8.json`
//! (with baselines and ratios).
//!
//! Usage: `bench_pr8 [ci]` — `ci` shrinks reps/sizes for the CI smoke
//! (baseline ratios are only meaningful when both runs used the same
//! mode on the same machine).

use std::time::{Duration, Instant};

use pf_rt::{cell, Runtime, SchedPolicy, Worker};
use pf_rt_algs::drivers::{best_of, time_union_rt};
use pf_trees::workloads::union_entries;

const THREADS: [usize; 3] = [1, 4, 8];

fn time(mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

fn repeated_run_us(threads: usize, reps: u32) -> f64 {
    let rt = Runtime::new(threads);
    rt.run(|_| {});
    let dt = time(|| {
        for _ in 0..reps {
            rt.run(|_| {});
        }
    });
    dt.as_secs_f64() * 1e6 / reps as f64
}

fn spawn_tree(wk: &Worker, depth: usize) {
    if depth > 0 {
        wk.spawn(move |wk| spawn_tree(wk, depth - 1));
        wk.spawn(move |wk| spawn_tree(wk, depth - 1));
    }
}

fn spawn_throughput_mops(threads: usize, depth: usize, reps: usize) -> f64 {
    let rt = Runtime::new(threads);
    rt.run(|_| {});
    let tasks = (1u64 << (depth + 1)) - 1;
    let dt = best_of(reps, || time(|| rt.run(move |wk| spawn_tree(wk, depth))));
    tasks as f64 / dt.as_secs_f64() / 1e6
}

fn spawn_burst_mops(threads: usize, n: usize, reps: usize) -> f64 {
    let rt = Runtime::new(threads);
    rt.run(|_| {});
    let dt = best_of(reps, || {
        time(|| {
            rt.run(move |wk| {
                for _ in 0..n {
                    wk.spawn(|_| {});
                }
            })
        })
    });
    n as f64 / dt.as_secs_f64() / 1e6
}

fn cell_write_then_touch_us(n: usize, reps: usize) -> f64 {
    let rt = Runtime::new(1);
    rt.run(|_| {});
    let dt = best_of(reps, || {
        time(|| {
            rt.run(move |wk| {
                for i in 0..n {
                    let (w, r) = cell::<usize>();
                    w.fulfill(wk, i);
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                }
            })
        })
    });
    dt.as_secs_f64() * 1e6
}

fn cell_touch_then_write_us(n: usize, reps: usize) -> f64 {
    let rt = Runtime::new(1);
    rt.run(|_| {});
    let dt = best_of(reps, || {
        time(|| {
            rt.run(move |wk| {
                for i in 0..n {
                    let (w, r) = cell::<usize>();
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                    w.fulfill(wk, i);
                }
            })
        })
    });
    dt.as_secs_f64() * 1e6
}

/// The 50k union on a pool built with an explicit policy (section 2).
fn union_policy_ms(
    ea: &[pf_trees::seq::Entry<i64>],
    eb: &[pf_trees::seq::Entry<i64>],
    threads: usize,
    policy: SchedPolicy,
    reps: usize,
) -> f64 {
    use pf_rt_algs::rtreap::{union, RTreap, RtTreap};
    let rt = Runtime::with_policy(threads, policy);
    rt.run(|_| {});
    let dt = best_of(reps, || {
        let ta = RTreap::from_entries_ready(ea);
        let tb = RTreap::from_entries_ready(eb);
        let (op, of) = cell();
        let (fa, fb) = (pf_rt::ready(ta), pf_rt::ready(tb));
        let t0 = Instant::now();
        rt.run(move |wk| union(wk, fa, fb, op));
        let d = t0.elapsed();
        assert!(of.expect().to_sorted_vec().len() >= ea.len().max(eb.len()));
        d
    });
    dt.as_secs_f64() * 1e3
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// Read the `"metrics"` section back out of a flat-format results file
/// (the fixed `"key": value,` line format both PR 7 halves and our raw
/// file use — no general JSON parser needed).
fn read_metrics(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    let mut in_metrics = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"metrics\"") {
            in_metrics = true;
            continue;
        }
        if !in_metrics {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        let (k, v) = line.split_once(':')?;
        let k = k.trim().trim_matches('"').to_string();
        let v: f64 = v.trim().trim_end_matches(',').parse().ok()?;
        out.push((k, v));
    }
    Some(out)
}

fn main() {
    let arg = std::env::args().nth(1);
    let ci = matches!(arg.as_deref(), Some("ci") | Some("--ci"));
    let (run_reps, bo, depth, burst, ncells, union_n): (u32, usize, usize, usize, usize, usize) =
        if ci {
            (50, 2, 12, 10_000, 2_000, 4_000)
        } else {
            (400, 5, 17, 100_000, 10_000, 50_000)
        };

    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    println!(
        "bench_pr8: policy-dispatch hot path, default = {}\n",
        SchedPolicy::default().label()
    );

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, v: f64| {
        println!("{name:<52} {v:>12.3}");
        entries.push((name, v));
    };

    // Section 1: the PR 7 metric set under the default policy.
    for t in THREADS {
        push(
            format!("repeated_run_noop_t{t}_us"),
            repeated_run_us(t, run_reps),
        );
    }
    for t in THREADS {
        push(
            format!("spawn_tree_throughput_t{t}_mops"),
            spawn_throughput_mops(t, depth, bo),
        );
    }
    push("spawn_burst_t1_mops".into(), spawn_burst_mops(1, burst, bo));
    push(
        "lockfree_write_then_touch_10k_us".into(),
        cell_write_then_touch_us(ncells, bo),
    );
    push(
        "lockfree_touch_then_write_10k_us".into(),
        cell_touch_then_write_us(ncells, bo),
    );
    let (ea, eb) = union_entries(union_n, union_n, 5);
    for t in THREADS {
        let dt = best_of(3, || time_union_rt(&ea, &eb, t));
        push(format!("time_union_rt_50k_t{t}_ms"), dt.as_secs_f64() * 1e3);
    }

    // Section 2: every policy on the t=4 union.
    println!();
    for policy in SchedPolicy::matrix() {
        push(
            format!("policy_union_t4__{}_ms", policy.label()),
            union_policy_ms(&ea, &eb, 4, policy, 3),
        );
    }

    // Raw file (flat metrics, same format as the PR 7 halves).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"label\": \"pr8_default_policy\",\n");
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{k}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/bench_pr8.json", &json).expect("write raw json");
    println!("\nwrote results/bench_pr8.json");

    // Merged file: each PR 7-shared metric against the frozen pre-dispatch
    // baseline; each policy metric against this run's default policy.
    let baseline = read_metrics("results/bench_pr7_untraced.json");
    if baseline.is_none() {
        println!(
            "results/bench_pr7_untraced.json missing: BENCH_PR8.json will carry \
             NaN baselines (run bench_pr7 first for the A/B)"
        );
    }
    let baseline = baseline.unwrap_or_default();
    let default_union_t4 = entries
        .iter()
        .find(|(k, _)| *k == format!("policy_union_t4__{}_ms", SchedPolicy::default().label()))
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"label\": \"pr8_policy_dispatch\",\n");
    json.push_str(&format!(
        "  \"machine\": {{ \"cpus\": {ncpu}, \"model\": \"{}\", \"os\": \"{} {}\" }},\n",
        cpu_model(),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    json.push_str(
        "  \"note\": \"pr8 = policy-dispatching scheduler under the default policy; \
         baseline = frozen pre-dispatch bench_pr7_untraced.json for shared metrics, \
         this run's default-policy union for policy_* metrics; ratio = pr8/baseline \
         (for _us/_ms metrics >1 is regression, for _mops throughputs <1 is)\",\n",
    );
    json.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let base = if k.starts_with("policy_union_t4__") {
            default_union_t4
        } else {
            baseline
                .iter()
                .find(|(k2, _)| k2 == k)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        let ratio = if base != 0.0 { v / base } else { f64::NAN };
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{k}\": {{ \"pr8\": {v:.3}, \"baseline\": {base:.3}, \
             \"ratio\": {ratio:.3} }}{comma}\n"
        ));
        println!("{k:<52} pr8 {v:>10.3}  base {base:>10.3}  ratio {ratio:>6.3}");
    }
    json.push_str("  }\n}\n");
    std::fs::write("results/BENCH_PR8.json", &json).expect("write merged json");
    println!("wrote results/BENCH_PR8.json");
}
