//! E15 — ablations: cost-constant sensitivity; lock-free vs mutex cells;
//! suspension-accounting policy in the machine simulator.
fn main() {
    pf_bench::exp_rt::e15_cost_constants(12, &[1, 2, 3, 4]).print();
    pf_bench::exp_rt::e15_cells(20, 20_000).print();
    pf_bench::exp_machine::e15_suspension(10, &[4, 64, pf_machine::INFINITE_P]).print();
}
