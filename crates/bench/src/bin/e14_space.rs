//! E14 — §4 space: stack vs queue scheduling discipline.
fn main() {
    pf_bench::exp_machine::e14_space(11, &[4, 64]).print();
}
