//! E04 — Corollary 3.6 / Lemma 3.4: treap union expected depth, τ-values.
fn main() {
    pf_bench::exp_model::e04_union_depth(&[8, 9, 10, 11, 12, 13], &[1, 2, 3, 4, 5]).print();
}
