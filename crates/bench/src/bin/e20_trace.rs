//! E20 — measured scheduler behavior vs pf-machine predictions (the
//! tracing experiment of the observability PR; DESIGN.md §5b).
//!
//! Runs treap union and 2-6 bulk insert *traced* on the real pool and
//! prints each session's steal/suspension counts next to the model's
//! predicted values over the same DAGs (E09 greedy replay for
//! suspensions, E17 work-stealing replay for steals). Also writes one
//! sample Perfetto export — `results/e20_union_t4.trace.json` — open it
//! at <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! Requires the runtime's tracing layer:
//!
//! ```text
//! cargo run --release -p pf-bench --features trace --bin e20_trace
//! ```
//!
//! Without `--features trace` the binary prints that rebuild hint and
//! exits successfully (so blanket experiment sweeps don't fail).
//!
//! Usage: `e20_trace [ci]` — `ci` shrinks sizes for the CI smoke.

fn main() {
    #[cfg(not(feature = "trace"))]
    eprintln!(
        "e20_trace needs the runtime's tracing layer compiled in; rebuild with\n  \
         cargo run --release -p pf-bench --features trace --bin e20_trace"
    );
    #[cfg(feature = "trace")]
    run();
}

#[cfg(feature = "trace")]
fn run() {
    use pf_bench::exp_rt::e20_trace_vs_model;

    let arg = std::env::args().nth(1);
    let ci = matches!(arg.as_deref(), Some("ci") | Some("--ci"));
    let (lg_n, threads, reps): (u32, Vec<usize>, usize) = if ci {
        (9, vec![1, 2], 1)
    } else {
        (14, vec![1, 4, 8], 3)
    };

    for t in e20_trace_vs_model(lg_n, &threads, reps) {
        t.print();
    }

    // Sample timeline export: one traced union session at the widest
    // measured width, straight out of `Runtime::take_last_trace`.
    let sample_t = *threads.last().unwrap();
    let n = 1usize << lg_n;
    let (ea, eb) = pf_trees::workloads::union_entries(n, n, 11);
    let ta =
        <pf_rt_algs::rtreap::RTreap<i64> as pf_rt_algs::rtreap::RtTreap<i64>>::from_entries_ready(
            &ea,
        );
    let tb =
        <pf_rt_algs::rtreap::RTreap<i64> as pf_rt_algs::rtreap::RtTreap<i64>>::from_entries_ready(
            &eb,
        );
    let rt = pf_rt::Runtime::shared(sample_t);
    let (op, of) = pf_rt::cell();
    let (fa, fb) = (pf_rt::ready(ta), pf_rt::ready(tb));
    rt.run(move |wk| pf_rt_algs::rtreap::union(wk, fa, fb, op));
    let _ = of;
    let trace = rt
        .take_last_trace()
        .expect("traced session leaves a timeline");
    let (events, dropped) = (trace.events(), trace.dropped());
    std::fs::create_dir_all("results").expect("results dir");
    let path = format!("results/e20_union_t{sample_t}.trace.json");
    std::fs::write(&path, trace.to_chrome_trace()).expect("write trace");
    println!(
        "wrote {path} ({events} events, {dropped} dropped to ring wraparound) — \
         open at https://ui.perfetto.dev"
    );
}
