//! E17 — asynchronous work-stealing execution of the algorithm traces.
fn main() {
    pf_bench::exp_machine::e17_steal(11, &[1, 2, 4, 8, 16, 64]).print();
}
