//! E03 — §3.1 rebalance.
fn main() {
    pf_bench::exp_model::e03_rebalance(&[9, 10, 11, 12, 13, 14]).print();
}
