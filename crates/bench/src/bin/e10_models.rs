//! E10 — machine-model comparison (EREW scan / EREW / async / BSP / CRCW) vs PVW.
fn main() {
    pf_bench::exp_machine::e10_models(16, 10, &[1, 4, 16, 64, 256, 1024, 4096]).print();
}
