//! E05 — Theorem 3.7: treap union expected work.
fn main() {
    pf_bench::exp_model::e05_union_work(16, &[1, 2, 3]).print();
}
