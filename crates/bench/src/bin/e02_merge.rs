//! E02 — Theorem 3.1: BST merge depth and work.
fn main() {
    for t in pf_bench::exp_model::e02_merge(&[8, 9, 10, 11, 12, 13, 14], 16) {
        t.print();
    }
}
