//! Machine-model experiments: E09 (Lemma 4.1 greedy bound), E10 (machine
//! model comparison incl. PVW), E14 (stack vs queue space).

use pf_core::{Sim, Trace};
use pf_machine::{predicted_time, pvw_time, replay, Discipline, Machine, INFINITE_P};
use pf_trees::merge::merge;
use pf_trees::treap::{diff, union, SimTreap, Treap};
use pf_trees::tree::{SimTree, Tree};
use pf_trees::two_six::{insert_many, SimTsTree, TsTree};
use pf_trees::workloads::{diff_entries, interleaved_pair, sorted_keys, union_entries};
use pf_trees::Mode;

use crate::{f2, u, Table};

/// Capture pipelined traces for the four §3 algorithms at the given size.
pub fn capture_traces(lg_n: u32) -> Vec<(&'static str, Trace)> {
    let n = 1usize << lg_n;
    let mut out = Vec::new();

    let (a, b) = interleaved_pair(n, n);
    let (_, _, tr) = Sim::new().run_traced(|ctx| {
        let ta = Tree::preload_balanced(ctx, &a);
        let tb = Tree::preload_balanced(ctx, &b);
        let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
        let (op, of) = ctx.promise();
        merge(ctx, fa, fb, op, Mode::Pipelined);
        of
    });
    out.push(("merge", tr));

    let (ea, eb) = union_entries(n, n, 11);
    let (_, _, tr) = Sim::new().run_traced(|ctx| {
        let ta = Treap::preload_entries(ctx, &ea);
        let tb = Treap::preload_entries(ctx, &eb);
        let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
        let (op, of) = ctx.promise();
        union(ctx, fa, fb, op, Mode::Pipelined);
        of
    });
    out.push(("union", tr));

    let (da, db) = diff_entries(n, n / 2, 13);
    let (_, _, tr) = Sim::new().run_traced(|ctx| {
        let ta = Treap::preload_entries(ctx, &da);
        let tb = Treap::preload_entries(ctx, &db);
        let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
        let (op, of) = ctx.promise();
        diff(ctx, fa, fb, op, Mode::Pipelined);
        of
    });
    out.push(("diff", tr));

    let initial = sorted_keys(n, 2);
    let m = (n / 16).max(4);
    let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
    let (_, _, tr) = Sim::new().run_traced(|ctx| {
        let t0 = TsTree::preload_from_sorted(ctx, &initial);
        let ft = ctx.preload(t0);
        insert_many(ctx, &newk, ft, Mode::Pipelined)
    });
    out.push(("2-6 insert", tr));

    out
}

/// E09 — Lemma 4.1: greedy-schedule steps ≤ w/p + d for every algorithm
/// and p; p = ∞ takes exactly `depth` steps.
pub fn e09_scheduler(lg_n: u32, ps: &[usize]) -> Table {
    let mut t = Table::new(
        "E09 Lemma 4.1: §4 scheduler steps vs Brent bound w/p + d (stack discipline)",
        &[
            "algorithm",
            "p",
            "steps",
            "w/p + d",
            "steps/bound",
            "suspensions",
        ],
    );
    for (name, tr) in capture_traces(lg_n) {
        for &p in ps {
            let s = replay(&tr, p, Discipline::Stack);
            assert!(s.within_brent(tr.work, tr.depth, p), "{name} p={p}");
            let bound = if p == INFINITE_P {
                tr.depth
            } else {
                tr.work.div_ceil(p as u64) + tr.depth
            };
            let pstr = if p == INFINITE_P {
                "inf".to_string()
            } else {
                p.to_string()
            };
            t.row(vec![
                name.to_string(),
                pstr,
                u(s.steps),
                u(bound),
                f2(s.steps as f64 / bound as f64),
                u(s.suspensions),
            ]);
        }
        // Exactness at p = ∞.
        let sinf = replay(&tr, INFINITE_P, Discipline::Stack);
        assert_eq!(sinf.steps, tr.depth, "{name}: p=∞ must equal depth");
        assert_eq!(sinf.work_executed, tr.work, "{name}: replayed work");
    }
    t
}

/// E10 — machine-model comparison for the 2-6 tree insert (the paper's §1
/// discussion): predicted times on each model vs the hand-pipelined PVW
/// algorithm.
pub fn e10_models(lg_n: u32, lg_m: u32, ps: &[usize]) -> Table {
    let n = 1usize << lg_n;
    let m = 1usize << lg_m;
    let initial = sorted_keys(n, 2);
    let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
    let (_, c) = pf_trees::two_six::run_insert_many(&initial, &newk, Mode::Pipelined);
    let mut t = Table::new(
        format!(
            "E10 model comparison, 2-6 insert m={m} into n={n} (w={}, d={}): futures runtime vs PVW",
            c.work, c.depth
        ),
        &["p", "EREW+scan", "EREW", "asyncEREW", "BSP(g=2,l=16)", "CRCW+f&a", "PVW(EREW)"],
    );
    for &p in ps {
        t.row(vec![
            u(p as u64),
            f2(predicted_time(Machine::ErewScan, c.work, c.depth, p)),
            f2(predicted_time(Machine::Erew, c.work, c.depth, p)),
            f2(predicted_time(Machine::AsyncErew, c.work, c.depth, p)),
            f2(predicted_time(
                Machine::Bsp { g: 2.0, l: 16.0 },
                c.work,
                c.depth,
                p,
            )),
            f2(predicted_time(Machine::CrcwFetchAdd, c.work, c.depth, p)),
            f2(pvw_time(n, m, p)),
        ]);
    }
    t
}

/// E14 — §4 space remark: the stack discipline keeps the thread pool far
/// smaller than a FIFO queue.
pub fn e14_space(lg_n: u32, ps: &[usize]) -> Table {
    let mut t = Table::new(
        "E14 §4 space: max pool size, stack (LIFO) vs queue (FIFO) discipline",
        &[
            "algorithm",
            "p",
            "max pool (stack)",
            "max pool (queue)",
            "queue/stack",
        ],
    );
    for (name, tr) in capture_traces(lg_n) {
        for &p in ps {
            let st = replay(&tr, p, Discipline::Stack);
            let qu = replay(&tr, p, Discipline::Queue);
            t.row(vec![
                name.to_string(),
                u(p as u64),
                u(st.max_pool as u64),
                u(qu.max_pool as u64),
                f2(qu.max_pool as f64 / st.max_pool.max(1) as f64),
            ]);
        }
    }
    t
}

/// E15c — suspension-accounting ablation: free suspension (pure greedy
/// schedule of the DAG, the library default) vs the paper's charged
/// accounting (the touch action performs the suspension). Same work,
/// step counts within ±suspensions of each other, both within Brent.
pub fn e15_suspension(lg_n: u32, ps: &[usize]) -> Table {
    use pf_machine::{replay_with, Suspension};
    let mut t = Table::new(
        "E15c suspension accounting: free (DAG-greedy) vs charged (§4 bookkeeping)",
        &[
            "algorithm",
            "p",
            "steps(free)",
            "steps(charged)",
            "suspensions",
            "work equal",
        ],
    );
    for (name, tr) in capture_traces(lg_n) {
        for &p in ps {
            let free = replay_with(&tr, p, Discipline::Stack, Suspension::Free);
            let ch = replay_with(&tr, p, Discipline::Stack, Suspension::Charged);
            t.row(vec![
                name.to_string(),
                if p == INFINITE_P {
                    "inf".into()
                } else {
                    p.to_string()
                },
                u(free.steps),
                u(ch.steps),
                u(ch.suspensions),
                if free.work_executed == ch.work_executed {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    t
}

/// E16 — futures (implicit pipeline) vs the PVW-style explicit
/// synchronous pipeline, on the same 2-6 bulk-insert workloads. Both are
/// Θ(lg n + lg m); the futures "time" is the DAG depth (what the §4
/// runtime realizes within Brent's bound), the hand pipeline's "time" is
/// its synchronous round count.
pub fn e16_pvw(lgs_n: &[u32], lg_m: u32) -> Table {
    use pf_trees::pvw::{pvw_insert_many, PvwTree};
    let m = 1usize << lg_m;
    let mut t = Table::new(
        "E16 implicit (futures) vs explicit (PVW-style) pipelining, 2-6 bulk insert",
        &[
            "n",
            "m",
            "futures depth",
            "hand rounds",
            "depth/rounds",
            "hand max waves",
        ],
    );
    for &l in lgs_n {
        let n = 1usize << l;
        let initial = sorted_keys(n, 2);
        let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
        let (_, c) = pf_trees::two_six::run_insert_many(&initial, &newk, Mode::Pipelined);
        let mut pt = PvwTree::from_sorted(&initial);
        let stats = pvw_insert_many(&mut pt, &newk);
        t.row(vec![
            u(n as u64),
            u(m as u64),
            u(c.depth),
            u(stats.rounds),
            f2(c.depth as f64 / stats.rounds as f64),
            u(stats.max_concurrent_waves as u64),
        ]);
    }
    t
}

/// E17 — asynchronous execution: Blumofe–Leiserson work stealing over the
/// same traces, vs the synchronous §4 greedy scheduler. The futures
/// programs need no barrier — the makespan stays within the
/// work-stealing bound shape `w/p + O(d·steal_latency)`.
pub fn e17_steal(lg_n: u32, ps: &[usize]) -> Table {
    use pf_machine::{steal_replay, StealConfig};
    let mut t = Table::new(
        "E17 asynchronous work stealing vs synchronous greedy (steal latency 3)",
        &[
            "algorithm",
            "p",
            "sync steps",
            "async makespan",
            "async/sync",
            "steals",
            "idle%",
        ],
    );
    for (name, tr) in capture_traces(lg_n) {
        for &p in ps {
            let sync = replay(&tr, p, Discipline::Stack);
            let cfg = StealConfig {
                p,
                steal_latency: 3,
                seed: 0xFEED + p as u64,
                ..StealConfig::default()
            };
            let st = steal_replay(&tr, cfg);
            assert!(
                st.within_steal_bound(tr.work, tr.depth, &cfg, 16),
                "{name} p={p}: makespan {} outside steal bound",
                st.makespan
            );
            t.row(vec![
                name.to_string(),
                u(p as u64),
                u(sync.steps),
                u(st.makespan),
                f2(st.makespan as f64 / sync.steps as f64),
                u(st.steals),
                f2(100.0 * st.idle_ticks as f64 / (st.makespan * p as u64).max(1) as f64),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_smoke() {
        let t = e17_steal(7, &[1, 4]);
        assert_eq!(t.rows.len(), 8);
        for r in &t.rows {
            let ratio: f64 = r[4].parse().unwrap();
            assert!(
                ratio >= 0.99,
                "async cannot beat the barrier-free lower bound by much: {r:?}"
            );
        }
    }

    #[test]
    fn e16_both_logarithmic() {
        let t = e16_pvw(&[8, 10, 12], 5);
        assert_eq!(t.rows.len(), 3);
        // Both columns grow by O(1) per 4x of n.
        let d: Vec<u64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let h: Vec<u64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(d[2] - d[0] < d[0], "futures depth not logarithmic: {d:?}");
        assert!(h[2] - h[0] <= 6, "hand rounds not logarithmic: {h:?}");
    }

    #[test]
    fn e09_smoke_and_bounds() {
        let t = e09_scheduler(6, &[1, 4, INFINITE_P]);
        assert_eq!(t.rows.len(), 12); // 4 algorithms x 3 p values
        for r in &t.rows {
            let ratio: f64 = r[4].parse().unwrap();
            assert!(ratio <= 1.0 + 1e-9, "Brent bound violated: {r:?}");
        }
    }

    #[test]
    fn e10_smoke() {
        let t = e10_models(8, 4, &[1, 16]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn e14_smoke() {
        let t = e14_space(6, &[4]);
        assert_eq!(t.rows.len(), 4);
    }
}
