//! # pf-bench — the experiment harness
//!
//! One function per paper experiment (see DESIGN.md §6 for the index);
//! each returns [`Table`]s that the corresponding `src/bin/eXX_*.rs`
//! binary prints. The integration tests smoke-run every experiment at
//! reduced sizes, so the harness itself is covered by `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_linear;
pub mod exp_machine;
pub mod exp_model;
pub mod exp_rt;

/// A printable result table (plain aligned text, CSV-friendly content).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption: experiment id + what it shows + the paper's claim.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row values, one `Vec<String>` per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table from string-ish headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a u64.
pub fn u(x: u64) -> String {
    x.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "depth"]);
        t.row(vec!["8".into(), "12".into()]);
        t.row(vec!["1024".into(), "120".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("1024"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
