//! Cost-model experiments: E01–E08 and E13 (see DESIGN.md §6). Every
//! function is parameterized by input sizes so the integration tests can
//! smoke-run them cheaply; the `eXX_*` binaries use the paper-scale
//! defaults.

use pf_core::Sim;
use pf_trees::analysis::{collect, lg, linear_fit, min_rho_k, min_tau_ks};
use pf_trees::merge::run_merge;
use pf_trees::mergesort::{run_msort, run_msort_balanced};
use pf_trees::pipeline::run_pipeline;
use pf_trees::quicksort::run_quicksort;
use pf_trees::rebalance::run_rebalance;
use pf_trees::treap::{run_diff, run_union, SimTreap, Treap};
use pf_trees::tree::SimTree;
use pf_trees::two_six::{insert_many_with_waves, SimTsTree, TsTree};
use pf_trees::workloads::{
    diff_entries, interleaved_pair, shuffled_keys, sorted_keys, spread_pair, union_entries,
};
use pf_trees::Mode;

use crate::{f2, u, Table};

/// E01 — Figure 1 producer/consumer: pipelined vs strict depth, both Θ(n)
/// work; pipelined depth ≈ half of strict (consumer overlaps producer).
pub fn e01_pipeline(ns: &[u64]) -> Table {
    let mut t = Table::new(
        "E01 Fig.1 producer/consumer: pipelined consumer trails producer by O(1)",
        &[
            "n",
            "work",
            "depth(pipe)",
            "depth(strict)",
            "strict/pipe",
            "depth/n",
        ],
    );
    for &n in ns {
        let (_, cp) = run_pipeline(n, Mode::Pipelined);
        let (_, cs) = run_pipeline(n, Mode::Strict);
        t.row(vec![
            u(n),
            u(cp.work),
            u(cp.depth),
            u(cs.depth),
            f2(cs.depth as f64 / cp.depth as f64),
            f2(cp.depth as f64 / n as f64),
        ]);
    }
    t
}

/// E02 — Theorem 3.1 merge: depth Θ(lg n + lg m) pipelined vs
/// Θ(lg n · lg m) strict; work O(m·lg(n/m)).
pub fn e02_merge(lgs: &[u32], work_lg_n: u32) -> Vec<Table> {
    let mut depth_t = Table::new(
        "E02a Thm 3.1 merge depth, n = m sweep: pipelined +O(1) per doubling, strict +O(lg n)",
        &[
            "n=m",
            "depth(pipe)",
            "Δ(pipe)",
            "depth(strict)",
            "Δ(strict)",
            "work",
        ],
    );
    let mut prev: Option<(u64, u64)> = None;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &l in lgs {
        let n = 1usize << l;
        let (a, b) = interleaved_pair(n, n);
        let (_, cp) = run_merge(&a, &b, Mode::Pipelined);
        let (_, cs) = run_merge(&a, &b, Mode::Strict);
        let (dp, ds) = (cp.depth, cs.depth);
        let (gp, gs) = match prev {
            Some((pp, ps)) => (
                format!("{:+}", dp as i64 - pp as i64),
                format!("{:+}", ds as i64 - ps as i64),
            ),
            None => ("-".into(), "-".into()),
        };
        prev = Some((dp, ds));
        xs.push(lg(n));
        ys.push(dp as f64);
        depth_t.row(vec![u(n as u64), u(dp), gp, u(ds), gs, u(cp.work)]);
    }
    let (slope, icept) = linear_fit(&xs, &ys);
    depth_t.title += &format!("  [pipelined fit: depth ≈ {slope:.1}·lg n + {icept:.1}]");

    let mut work_t = Table::new(
        "E02b Thm 3.1 merge work, fixed n, m sweep: work / (m·(lg(n/m)+1)) ≈ const",
        &["n", "m", "work", "m(lg(n/m)+1)", "ratio"],
    );
    let n = 1usize << work_lg_n;
    for lm in (2..=work_lg_n).step_by(2) {
        let m = 1usize << lm;
        let (a, b) = spread_pair(n, m);
        let (_, c) = run_merge(&a, &b, Mode::Pipelined);
        let bound = m as f64 * (lg(n / m) + 1.0);
        work_t.row(vec![
            u(n as u64),
            u(m as u64),
            u(c.work),
            f2(bound),
            f2(c.work as f64 / bound),
        ]);
    }
    vec![depth_t, work_t]
}

/// E03 — §3.1 rebalance: depth O(lg n), work O(n), result perfectly
/// balanced.
pub fn e03_rebalance(lgs: &[u32]) -> Table {
    let mut t = Table::new(
        "E03 §3.1 rebalance: depth O(lg n) pipelined vs O(lg² n) strict; work O(n)",
        &[
            "n",
            "h(in)",
            "h(out)",
            "depth(pipe)",
            "depth(strict)",
            "strict/pipe",
            "work/n",
        ],
    );
    for &l in lgs {
        let n = 1usize << l;
        let keys = shuffled_keys(n, 42 + l as u64);
        let (root, cp) = run_rebalance(&keys, Mode::Pipelined);
        let (_, cs) = run_rebalance(&keys, Mode::Strict);
        let out = root.get();
        // Height of the (random BST) input: rebuild it to inspect.
        let (hin, _) =
            Sim::new().run(|ctx| pf_trees::rebalance::preload_unbalanced(ctx, &keys).height());
        t.row(vec![
            u(n as u64),
            u(hin as u64),
            u(out.height() as u64),
            u(cp.depth),
            u(cs.depth),
            f2(cs.depth as f64 / cp.depth as f64),
            f2(cp.work as f64 / n as f64),
        ]);
    }
    t
}

/// E04 — Cor 3.6 treap union expected depth O(lg n + lg m), plus the
/// Lemma 3.4 τ-value check: the smallest valid `ks` stays bounded.
pub fn e04_union_depth(lgs: &[u32], seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "E04 Cor 3.6 union expected depth O(lg n + lg m); Lemma 3.4: min valid ks bounded",
        &[
            "n=m",
            "E[depth] pipe",
            "E[depth] strict",
            "strict/pipe",
            "E[h(result)]",
            "min ks",
        ],
    );
    for &l in lgs {
        let n = 1usize << l;
        let (mut dp, mut ds, mut hh, mut ks) = (0.0, 0.0, 0.0, 0.0f64);
        for &s in seeds {
            let (a, b) = union_entries(n, n, s);
            let (root, cp) = run_union(&a, &b, Mode::Pipelined);
            let (_, cs) = run_union(&a, &b, Mode::Strict);
            dp += cp.depth as f64;
            ds += cs.depth as f64;
            hh += root.get().height() as f64;
            let cells = collect(|f| {
                let mut g = |t, d, h| f(t, d, h);
                Treap::walk_cells(&root, 0, &mut g);
            });
            // Inputs are preloaded at time 0, so τ = 0 at call time; the
            // theorem's slack is O(h), folded into the fitted constant.
            ks = ks.max(min_tau_ks(&cells, cp.depth / 8).unwrap_or(f64::INFINITY));
        }
        let k = seeds.len() as f64;
        t.row(vec![
            u(n as u64),
            f2(dp / k),
            f2(ds / k),
            f2(ds / dp),
            f2(hh / k),
            f2(ks),
        ]);
    }
    t
}

/// E05 — Thm 3.7 union expected work O(m·lg(n/m)).
pub fn e05_union_work(lg_n: u32, seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "E05 Thm 3.7 union expected work O(m·lg(n/m)): ratio ≈ const across m/n",
        &["n", "m", "E[work]", "m(lg(n/m)+1)", "ratio"],
    );
    let n = 1usize << lg_n;
    for lm in (2..=lg_n).step_by(2) {
        let m = 1usize << lm;
        let mut w = 0.0;
        for &s in seeds {
            let (a, b) = union_entries(n, m, s);
            let (_, c) = run_union(&a, &b, Mode::Pipelined);
            w += c.work as f64;
        }
        w /= seeds.len() as f64;
        let bound = m as f64 * (lg(n / m) + 1.0);
        t.row(vec![
            u(n as u64),
            u(m as u64),
            f2(w),
            f2(bound),
            f2(w / bound),
        ]);
    }
    t
}

/// E06 — Cor 3.12 treap difference expected depth, with the ρ-value check
/// of Lemma 3.10 on the result.
pub fn e06_diff(lgs: &[u32], seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "E06 Cor 3.12 difference expected depth O(lg n + lg m); Lemma 3.10: min valid k bounded",
        &[
            "n",
            "m=n/2",
            "E[depth] pipe",
            "E[depth] strict",
            "strict/pipe",
            "min k(ρ)",
        ],
    );
    for &l in lgs {
        let n = 1usize << l;
        let m = n / 2;
        let (mut dp, mut ds, mut kr) = (0.0, 0.0, 0.0f64);
        for &s in seeds {
            let (a, b) = diff_entries(n, m, s);
            let (root, cp) = run_diff(&a, &b, Mode::Pipelined);
            let (_, cs) = run_diff(&a, &b, Mode::Strict);
            dp += cp.depth as f64;
            ds += cs.depth as f64;
            let cells = collect(|f| {
                let mut g = |t, d, h| f(t, d, h);
                Treap::walk_cells(&root, 0, &mut g);
            });
            // ρ anchored at the result root's write time (Thm 3.11 gives
            // ρ = call time + O(h1 + h2), which is what the root write
            // realizes); the minimal k must then stay bounded across sizes.
            let rho = root.time();
            kr = kr.max(min_rho_k(&cells, rho).unwrap_or(f64::INFINITY));
        }
        let k = seeds.len() as f64;
        t.row(vec![
            u(n as u64),
            u(m as u64),
            f2(dp / k),
            f2(ds / k),
            f2(ds / dp),
            f2(kr),
        ]);
    }
    t
}

/// E07 — Thm 3.13 2-6 tree multi-insert: depth O(lg n + lg m) pipelined
/// vs O(lg n · lg m) strict, work O(m lg n), and the γ-value increments
/// γ(i+1) − γ(i) bounded by a constant (3·kb).
pub fn e07_two_six(lgs_n: &[u32], lg_m: u32) -> Vec<Table> {
    let mut depth_t = Table::new(
        "E07a Thm 3.13 2-6 insert depth: pipelined O(lg n + lg m) vs strict O(lg n·lg m)",
        &[
            "n",
            "m",
            "depth(pipe)",
            "depth(strict)",
            "strict/pipe",
            "work/(m·lg n)",
        ],
    );
    let m = 1usize << lg_m;
    for &l in lgs_n {
        let n = 1usize << l;
        let initial = sorted_keys(n, 2);
        let new_keys: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
        let (_, cp) = pf_trees::two_six::run_insert_many(&initial, &new_keys, Mode::Pipelined);
        let (_, cs) = pf_trees::two_six::run_insert_many(&initial, &new_keys, Mode::Strict);
        depth_t.row(vec![
            u(n as u64),
            u(m as u64),
            u(cp.depth),
            u(cs.depth),
            f2(cs.depth as f64 / cp.depth as f64),
            f2(cp.work as f64 / (m as f64 * lg(n))),
        ]);
    }

    let mut gamma_t = Table::new(
        "E07b γ-value increments per wave (Thm 3.13 proof: γ(i+1) ≤ γ(i) + 3kb)",
        &["wave", "|wave|", "root t(v)", "Δγ"],
    );
    let n = 1usize << lgs_n[lgs_n.len() / 2];
    let initial = sorted_keys(n, 2);
    let new_keys: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
    let (waves, _) = Sim::new().run(|ctx| {
        let t0 = TsTree::preload_from_sorted(ctx, &initial);
        let ft = ctx.preload(t0);
        insert_many_with_waves(ctx, &new_keys, ft, Mode::Pipelined)
    });
    let sizes: Vec<usize> = {
        let mut v = vec![0];
        v.extend(
            pf_trees::two_six::level_arrays(&new_keys)
                .iter()
                .map(|w| w.len()),
        );
        v
    };
    let mut prev = 0u64;
    for (i, w) in waves.iter().enumerate() {
        let t = w.time();
        gamma_t.row(vec![
            u(i as u64),
            u(sizes[i] as u64),
            u(t),
            format!("{:+}", t as i64 - prev as i64),
        ]);
        prev = t;
    }
    vec![depth_t, gamma_t]
}

/// E08 — Figure 2 quicksort: pipelining yields only a constant factor;
/// expected depth stays Θ(n) in both modes.
pub fn e08_quicksort(ns: &[usize], seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "E08 Fig.2 quicksort: expected depth Θ(n) pipelined AND strict (no asymptotic win)",
        &[
            "n",
            "E[depth] pipe",
            "depth/n",
            "E[depth] strict",
            "strict/pipe",
            "E[work]/n·lg n",
        ],
    );
    for &n in ns {
        let (mut dp, mut ds, mut w) = (0.0, 0.0, 0.0);
        for &s in seeds {
            let keys = shuffled_keys(n, s);
            let (_, cp) = run_quicksort(&keys, Mode::Pipelined);
            let (_, cs) = run_quicksort(&keys, Mode::Strict);
            dp += cp.depth as f64;
            ds += cs.depth as f64;
            w += cp.work as f64;
        }
        let k = seeds.len() as f64;
        t.row(vec![
            u(n as u64),
            f2(dp / k),
            f2(dp / k / n as f64),
            f2(ds / k),
            f2(ds / dp),
            f2(w / k / (n as f64 * lg(n))),
        ]);
    }
    t
}

/// E13 — Conclusions conjecture: pipelined tree mergesort depth, compared
/// against lg n, lg n·lg lg n and lg² n growth.
pub fn e13_mergesort(lgs: &[u32], seeds: &[u64]) -> Table {
    let mut t = Table::new(
        "E13 §5 conjecture: pipelined mergesort depth vs lg n / lg n·lglg n / lg² n (+rebalancing variant)",
        &["n", "E[depth]", "d/lg n", "d/(lg n·lglg n)", "d/lg² n", "strict/pipe", "d(balanced)"],
    );
    for &l in lgs {
        let n = 1usize << l;
        let (mut dp, mut ds, mut db) = (0.0, 0.0, 0.0);
        for &s in seeds {
            let keys = shuffled_keys(n, s);
            let (_, cp) = run_msort(&keys, Mode::Pipelined);
            let (_, cs) = run_msort(&keys, Mode::Strict);
            let (_, cb) = run_msort_balanced(&keys, Mode::Pipelined);
            dp += cp.depth as f64;
            ds += cs.depth as f64;
            db += cb.depth as f64;
        }
        let k = seeds.len() as f64;
        let (dp, ds, db) = (dp / k, ds / k, db / k);
        let ln = lg(n);
        t.row(vec![
            u(n as u64),
            f2(dp),
            f2(dp / ln),
            f2(dp / (ln * ln.log2())),
            f2(dp / (ln * ln)),
            f2(ds / dp),
            f2(db),
        ]);
    }
    t
}

/// E18 — Cole's hand-cascaded mergesort (the paper's §1 exemplar,
/// simulated synchronously in `pf_trees::cole`) vs the futures tree
/// mergesort of the conclusions. Cole: exactly 3·lg n stages, O(n lg n)
/// work; the futures version measures Θ(lg n·lg lg n)-looking depth —
/// the gap the conclusions leave open.
pub fn e18_cole(lgs: &[u32], seeds: &[u64]) -> Table {
    use pf_trees::cole::cole_sort;
    let mut t = Table::new(
        "E18 Cole cascade (hand pipeline) vs futures mergesort",
        &[
            "n",
            "cole stages",
            "3·lg n",
            "cole work/(n·lg n)",
            "E[futures depth]",
            "depth/stages",
        ],
    );
    for &l in lgs {
        let n = 1usize << l;
        let keys = shuffled_keys(n, 77);
        let (sorted, cs) = cole_sort(&keys);
        assert_eq!(sorted.len(), n);
        let mut dp = 0.0;
        for &s in seeds {
            let (_, c) = run_msort(&shuffled_keys(n, s), Mode::Pipelined);
            dp += c.depth as f64;
        }
        dp /= seeds.len() as f64;
        let ln = lg(n);
        t.row(vec![
            u(n as u64),
            u(cs.stages),
            u(3 * l as u64),
            f2(cs.work as f64 / (n as f64 * ln)),
            f2(dp),
            f2(dp / cs.stages as f64),
        ]);
    }
    t
}

/// E19 — parallelism profiles: the DAG width at every depth, summarized.
/// Shows *where* each algorithm's parallelism lives: the pipelined tree
/// operations are wide almost everywhere, quicksort has a long thin tail
/// (why its depth stays Θ(n)), the producer/consumer pipeline is exactly
/// two wide.
pub fn e19_profiles(lg_n: u32) -> Table {
    let n = 1usize << lg_n;
    let mut t = Table::new(
        "E19 parallelism profiles: DAG width by depth (pipelined variants)",
        &[
            "algorithm",
            "depth",
            "peak width",
            "mean width",
            "%time width>=4",
            "%time width>=64",
        ],
    );
    let mut push = |name: &str, report: pf_core::CostReport, prof: Vec<u64>| {
        let d = prof.len().max(1) as f64;
        let ge4 = prof.iter().filter(|&&w| w >= 4).count() as f64 / d;
        let ge64 = prof.iter().filter(|&&w| w >= 64).count() as f64 / d;
        t.row(vec![
            name.to_string(),
            u(report.depth),
            u(prof.iter().copied().max().unwrap_or(0)),
            f2(report.work as f64 / d),
            f2(100.0 * ge4),
            f2(100.0 * ge64),
        ]);
    };

    let (a, b) = interleaved_pair(n, n);
    let (_, r, prof) = Sim::new().run_profiled(|ctx| {
        let ta = pf_trees::tree::Tree::preload_balanced(ctx, &a);
        let tb = pf_trees::tree::Tree::preload_balanced(ctx, &b);
        let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
        let (op, of) = ctx.promise();
        pf_trees::merge::merge(ctx, fa, fb, op, Mode::Pipelined);
        of
    });
    push("merge", r, prof);

    let (ea, eb) = union_entries(n, n, 41);
    let (_, r, prof) = Sim::new().run_profiled(|ctx| {
        let ta = pf_trees::treap::Treap::preload_entries(ctx, &ea);
        let tb = pf_trees::treap::Treap::preload_entries(ctx, &eb);
        let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
        let (op, of) = ctx.promise();
        pf_trees::treap::union(ctx, fa, fb, op, Mode::Pipelined);
        of
    });
    push("union", r, prof);

    let qn = n.min(2000);
    let keys = shuffled_keys(qn, 13);
    let (_, r, prof) = Sim::new().run_profiled(|ctx| {
        let l = pf_trees::quicksort::preload_list(ctx, &keys);
        let (op, of) = ctx.promise();
        pf_trees::quicksort::qs(
            ctx,
            l,
            pf_trees::quicksort::List::nil(),
            op,
            Mode::Pipelined,
        );
        of
    });
    push("quicksort", r, prof);

    let (_, r, prof) = Sim::new().run_profiled(|ctx| {
        let (lp, lf) = ctx.promise();
        pf_trees::pipeline::produce(ctx, (n as u64).min(4000), lp);
        let list = ctx.touch(&lf);
        let (sp, sf) = ctx.promise();
        pf_trees::pipeline::consume(ctx, list, 0, sp);
        ctx.touch(&sf)
    });
    push("pipeline", r, prof);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_profile_shapes() {
        let t = e19_profiles(9);
        assert_eq!(t.rows.len(), 4);
        let width_ge4 = |row: usize| -> f64 { t.rows[row][4].parse().unwrap() };
        // Tree ops are wide for most of their depth; the two-thread
        // pipeline never reaches width 4.
        assert!(
            width_ge4(0) > 30.0,
            "merge should be wide: {}",
            width_ge4(0)
        );
        assert!(width_ge4(3) < 5.0, "pipeline is ~2 wide: {}", width_ge4(3));
    }

    #[test]
    fn e18_cole_stages_exact() {
        let t = e18_cole(&[6, 8], &[1]);
        for r in &t.rows {
            assert_eq!(r[1], r[2], "cole stages must be exactly 3 lg n: {r:?}");
        }
    }

    #[test]
    fn e01_smoke() {
        let t = e01_pipeline(&[100, 200]);
        assert_eq!(t.rows.len(), 2);
        // strict/pipe ratio in a sane band
        let ratio: f64 = t.rows[1][4].parse().unwrap();
        assert!(ratio > 1.2 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn e02_smoke() {
        let ts = e02_merge(&[6, 7, 8], 10);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].rows.len(), 3);
        assert!(!ts[1].rows.is_empty());
    }

    #[test]
    fn e03_smoke() {
        let t = e03_rebalance(&[6, 7]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn e04_smoke() {
        let t = e04_union_depth(&[6, 7], &[1, 2]);
        assert_eq!(t.rows.len(), 2);
        // min ks must be finite.
        for r in &t.rows {
            let ks: f64 = r[5].parse().unwrap();
            assert!(ks.is_finite());
        }
    }

    #[test]
    fn e05_smoke() {
        let t = e05_union_work(8, &[1]);
        assert!(!t.rows.is_empty());
    }

    #[test]
    fn e06_smoke() {
        let t = e06_diff(&[6, 7], &[3]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn e07_smoke() {
        let ts = e07_two_six(&[8, 9], 5);
        assert_eq!(ts.len(), 2);
        // γ increments present for every wave (lg m + 1 rows incl. wave 0).
        assert!(ts[1].rows.len() >= 5);
    }

    #[test]
    fn e08_smoke() {
        let t = e08_quicksort(&[64, 128], &[1, 2]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn e13_smoke() {
        let t = e13_mergesort(&[7, 8], &[1]);
        assert_eq!(t.rows.len(), 2);
    }
}
