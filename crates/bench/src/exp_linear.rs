//! E11 — the §4 linearity restriction (Figure 12): every algorithm in the
//! suite touches each future cell at most once, so the single-waiter EREW
//! implementation applies; and the linearization (copying scalars like
//! keys and splitters) does not change work or depth — in this
//! implementation keys are value types, so the copies are already there
//! and the costs are by construction those of the linearized code.

use pf_trees::merge::run_merge;
use pf_trees::pipeline::run_pipeline;
use pf_trees::quicksort::run_quicksort;
use pf_trees::rebalance::run_rebalance;
use pf_trees::treap::{run_diff, run_union};
use pf_trees::two_six::run_insert_many;
use pf_trees::workloads::{
    diff_entries, interleaved_pair, shuffled_keys, sorted_keys, union_entries,
};
use pf_trees::Mode;

use crate::{f2, u, Table};

/// Run every algorithm and report the linearity statistics.
pub fn e11_linearity(lg_n: u32) -> Table {
    let n = 1usize << lg_n;
    let mut t = Table::new(
        "E11 §4 linearity: max touches per future cell (must be ≤ 1), cells, touches",
        &[
            "algorithm",
            "cells",
            "touches",
            "max reads/cell",
            "linear",
            "touches/cell",
        ],
    );
    let mut push = |name: &str, c: pf_core::CostReport| {
        t.row(vec![
            name.to_string(),
            u(c.cells),
            u(c.touches),
            u(c.max_reads_per_cell as u64),
            if c.is_linear() { "yes" } else { "NO" }.to_string(),
            f2(c.touches as f64 / c.cells.max(1) as f64),
        ]);
    };

    let (a, b) = interleaved_pair(n, n);
    push("merge", run_merge(&a, &b, Mode::Pipelined).1);
    let (ea, eb) = union_entries(n, n, 21);
    push("union", run_union(&ea, &eb, Mode::Pipelined).1);
    let (da, db) = diff_entries(n, n / 2, 22);
    push("diff", run_diff(&da, &db, Mode::Pipelined).1);
    let initial = sorted_keys(n, 2);
    let newk: Vec<i64> = (0..(n / 8).max(2) as i64).map(|i| 2 * i + 1).collect();
    push(
        "2-6 insert",
        run_insert_many(&initial, &newk, Mode::Pipelined).1,
    );
    push(
        "rebalance",
        run_rebalance(&shuffled_keys(n, 23), Mode::Pipelined).1,
    );
    push(
        "quicksort",
        run_quicksort(&shuffled_keys(n.min(2000), 24), Mode::Pipelined).1,
    );
    push("pipeline", run_pipeline(n as u64, Mode::Pipelined).1);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_are_linear() {
        let t = e11_linearity(6);
        assert_eq!(t.rows.len(), 7);
        for r in &t.rows {
            assert_eq!(r[4], "yes", "{} is not linear", r[0]);
        }
    }
}
