//! Real-runtime experiments: E12 (wall-clock behaviour of the multicore
//! runtime) and E15 (ablations: cost-constant sensitivity, lock-free vs
//! mutex future cells).
//!
//! NOTE on E12: this host exposes a single CPU, so genuine multicore
//! *speedup* cannot manifest in wall-clock numbers here; the experiment
//! therefore reports (a) the overhead of the futures runtime relative to
//! the sequential algorithm, and (b) that oversubscribing workers on one
//! core degrades gracefully. The parallel-speedup *shape* of the paper is
//! reproduced by the machine-model replay (E09/E10), which is
//! processor-count-accurate by construction.

use std::time::{Duration, Instant};

use pf_core::{CostModel, Sim};
use pf_rt::mutex_cell::mx_cell;
use pf_rt::{cell, Runtime};
use pf_rt_algs::baselines::{
    time_cole_pool, time_cole_seq, time_msort_rt, time_pvw_pool, time_pvw_seq, time_sort_seq,
};
use pf_rt_algs::drivers::{
    best_of, time_insert_rt, time_insert_seq, time_merge_rt, time_merge_seq, time_rebalance_rt,
    time_union_rt, time_union_seq,
};
use pf_rt_algs::rtree::RtTree;
use pf_trees::merge::run_merge;
use pf_trees::tree::SimTree;
use pf_trees::workloads::{interleaved_pair, shuffled_keys, sorted_keys, union_entries};
use pf_trees::Mode;

use crate::{f2, u, Table};

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// E12 — wall-clock: futures runtime vs sequential baselines, across
/// worker counts.
pub fn e12_runtime(lg_n: u32, threads: &[usize], reps: usize) -> Vec<Table> {
    let n = 1usize << lg_n;
    let (ea, eb) = union_entries(n, n, 31);
    let mut t1 = Table::new(
        format!("E12a treap union wall-clock, n = m = {n} (single-CPU host: see note)"),
        &["impl", "threads", "time (ms)", "vs seq"],
    );
    let seq = best_of(reps, || time_union_seq(&ea, &eb));
    t1.row(vec!["sequential".into(), "1".into(), ms(seq), f2(1.0)]);
    for &th in threads {
        let d = best_of(reps, || time_union_rt(&ea, &eb, th));
        t1.row(vec![
            "futures-rt".into(),
            u(th as u64),
            ms(d),
            f2(d.as_secs_f64() / seq.as_secs_f64()),
        ]);
    }

    let (a, b) = interleaved_pair(n, n);
    let mut t2 = Table::new(
        format!("E12b BST merge wall-clock, n = m = {n}"),
        &["impl", "threads", "time (ms)", "vs seq"],
    );
    let seq = best_of(reps, || time_merge_seq(&a, &b));
    t2.row(vec!["sequential".into(), "1".into(), ms(seq), f2(1.0)]);
    for &th in threads {
        let d = best_of(reps, || time_merge_rt(&a, &b, th));
        t2.row(vec![
            "futures-rt".into(),
            u(th as u64),
            ms(d),
            f2(d.as_secs_f64() / seq.as_secs_f64()),
        ]);
    }

    let mut t3 = Table::new(
        format!("E12c 2-6 bulk insert & rebalance wall-clock, n = {n}"),
        &["operation", "threads", "time (ms)"],
    );
    let initial: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
    let newk: Vec<i64> = (0..(n / 8) as i64).map(|i| 16 * i + 1).collect();
    let d = best_of(reps, || time_insert_seq(&initial, &newk));
    t3.row(vec!["2-6 insert (BTreeSet seq)".into(), "1".into(), ms(d)]);
    for &th in threads {
        let d = best_of(reps, || time_insert_rt(&initial, &newk, th));
        t3.row(vec!["2-6 insert (futures-rt)".into(), u(th as u64), ms(d)]);
    }
    for &th in threads {
        let d = best_of(reps, || time_rebalance_rt(n / 4, th));
        t3.row(vec![
            "rebalance spine (futures-rt)".into(),
            u(th as u64),
            ms(d),
        ]);
    }
    vec![t1, t2, t3]
}

/// E13w — wall-clock companion to the E13 depth table: the futures
/// mergesort on the real pool across thread counts, vs `sort_unstable`.
pub fn e13_msort_wallclock(lgs: &[u32], threads: &[usize], reps: usize) -> Table {
    let mut t = Table::new(
        "E13w futures mergesort wall-clock (real runtime) vs sequential sort",
        &["n", "threads", "futures msort (ms)", "sort_unstable (ms)"],
    );
    for &l in lgs {
        let keys = shuffled_keys(1usize << l, 3);
        let ds = best_of(reps, || time_sort_seq(&keys));
        for &th in threads {
            let df = best_of(reps, || time_msort_rt(&keys, th));
            t.row(vec![u(1u64 << l), u(th as u64), ms(df), ms(ds)]);
        }
    }
    t
}

/// E16w — wall-clock head-to-head on the *same pool*: the futures 2-6
/// bulk insert (implicit pipeline, scheduler-discovered) vs the PVW wave
/// schedule executed one synchronous round per pool barrier
/// (`PoolRounds`). The `seq` row gives the single-thread references
/// (`BTreeSet` extend and the inline `SeqRounds` execution).
pub fn e16_pvw_wallclock(lg_n: u32, lg_m: u32, threads: &[usize], reps: usize) -> Table {
    let n = 1usize << lg_n;
    let m = 1usize << lg_m;
    let initial = sorted_keys(n, 2);
    let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();
    let mut t = Table::new(
        format!("E16w wall-clock: futures 2-6 insert vs PVW hand rounds, n = {n}, m = {m}"),
        &[
            "threads",
            "futures insert (ms)",
            "pvw rounds (ms)",
            "pvw/futures",
        ],
    );
    let df = best_of(reps, || time_insert_seq(&initial, &newk));
    let dp = best_of(reps, || time_pvw_seq(&initial, &newk).0);
    t.row(vec![
        "seq".into(),
        ms(df),
        ms(dp),
        f2(dp.as_secs_f64() / df.as_secs_f64()),
    ]);
    for &th in threads {
        let df = best_of(reps, || time_insert_rt(&initial, &newk, th));
        let dp = best_of(reps, || time_pvw_pool(&initial, &newk, th).0);
        t.row(vec![
            u(th as u64),
            ms(df),
            ms(dp),
            f2(dp.as_secs_f64() / df.as_secs_f64()),
        ]);
    }
    t
}

/// E18w — wall-clock head-to-head on the *same pool*: the futures tree
/// mergesort vs Cole's cascade executed one synchronous stage per pool
/// barrier (`PoolRounds`). The `seq` row gives the single-thread
/// references (`sort_unstable` and the inline `SeqRounds` cascade).
pub fn e18_cole_wallclock(lg_n: u32, threads: &[usize], reps: usize) -> Table {
    let n = 1usize << lg_n;
    let keys = shuffled_keys(n, 77);
    let mut t = Table::new(
        format!("E18w wall-clock: futures msort vs Cole cascade (hand stages), n = {n}"),
        &[
            "threads",
            "futures msort (ms)",
            "cole stages (ms)",
            "cole/futures",
        ],
    );
    let df = best_of(reps, || time_sort_seq(&keys));
    let dc = best_of(reps, || time_cole_seq(&keys).0);
    t.row(vec![
        "seq".into(),
        ms(df),
        ms(dc),
        f2(dc.as_secs_f64() / df.as_secs_f64()),
    ]);
    for &th in threads {
        let df = best_of(reps, || time_msort_rt(&keys, th));
        let dc = best_of(reps, || time_cole_pool(&keys, th).0);
        t.row(vec![
            u(th as u64),
            ms(df),
            ms(dc),
            f2(dc.as_secs_f64() / df.as_secs_f64()),
        ]);
    }
    t
}

/// E15a — cost-constant sensitivity: the measured merge depth scales
/// linearly in the fork/touch/write constants (the theorems' `ks`, `km`).
pub fn e15_cost_constants(lg_n: u32, ks: &[u64]) -> Table {
    let n = 1usize << lg_n;
    let (a, b) = interleaved_pair(n, n);
    let mut t = Table::new(
        "E15a cost-constant sensitivity: merge depth vs uniform action cost k (linear in k)",
        &["k", "depth", "depth/k", "work"],
    );
    for &k in ks {
        let (_, c) = Sim::with_costs(CostModel::uniform(k)).run(|ctx| {
            let ta = pf_trees::tree::Tree::preload_balanced(ctx, &a);
            let tb = pf_trees::tree::Tree::preload_balanced(ctx, &b);
            let (fa, fb) = (ctx.preload(ta), ctx.preload(tb));
            let (op, of) = ctx.promise();
            pf_trees::merge::merge(ctx, fa, fb, op, Mode::Pipelined);
            of
        });
        t.row(vec![
            u(k),
            u(c.depth),
            f2(c.depth as f64 / k as f64),
            u(c.work),
        ]);
    }
    t
}

/// E15b — cell ablation: lock-free vs mutex cell, write-then-touch
/// round-trips inside the runtime.
pub fn e15_cells(rounds: usize, cells_per_round: usize) -> Table {
    let mut t = Table::new(
        "E15b future-cell ablation: lock-free (atomic) vs mutex cell, fulfill+touch round-trips",
        &["cell", "ops", "time (ms)", "ns/op"],
    );
    let ops = (rounds * cells_per_round) as u64;

    let start = Instant::now();
    for _ in 0..rounds {
        let n = cells_per_round;
        Runtime::new(1).run(move |wk| {
            for i in 0..n {
                let (w, r) = cell::<usize>();
                r.touch(wk, move |v, _| {
                    std::hint::black_box(v);
                });
                w.fulfill(wk, i);
            }
        });
    }
    let d = start.elapsed();
    t.row(vec![
        "lock-free".into(),
        u(ops),
        ms(d),
        f2(d.as_secs_f64() * 1e9 / ops as f64),
    ]);

    let start = Instant::now();
    for _ in 0..rounds {
        let n = cells_per_round;
        Runtime::new(1).run(move |wk| {
            for i in 0..n {
                let (w, r) = mx_cell::<usize>();
                r.touch(wk, move |v, _| {
                    std::hint::black_box(v);
                });
                w.fulfill(wk, i);
            }
        });
    }
    let d = start.elapsed();
    t.row(vec![
        "mutex".into(),
        u(ops),
        ms(d),
        f2(d.as_secs_f64() * 1e9 / ops as f64),
    ]);
    t
}

/// One traced treap-union session on `threads` workers (E20 workload —
/// same entries the simulator trace was captured from).
#[cfg(feature = "trace")]
fn traced_union_stats(
    ea: &[pf_trees::seq::Entry<i64>],
    eb: &[pf_trees::seq::Entry<i64>],
    threads: usize,
) -> pf_rt::RunStats {
    use pf_rt_algs::rtreap::{union, RTreap, RtTreap};
    let ta = RTreap::from_entries_ready(ea);
    let tb = RTreap::from_entries_ready(eb);
    let rt = Runtime::shared(threads);
    let (op, of) = cell();
    let (fa, fb) = (pf_rt::ready(ta), pf_rt::ready(tb));
    let stats = rt.run_stats(move |wk| union(wk, fa, fb, op));
    assert!(of.expect().to_sorted_vec().len() >= ea.len().max(eb.len()));
    stats
}

/// One traced 2-6 bulk-insert session on `threads` workers (E20).
#[cfg(feature = "trace")]
fn traced_insert_stats(initial: &[i64], newk: &[i64], threads: usize) -> pf_rt::RunStats {
    use pf_rt_algs::rtwosix::{insert_many, RTsTree, RtTsTree};
    let t = RTsTree::from_sorted_ready(initial);
    let rt = Runtime::shared(threads);
    let ft = pf_rt::ready(t);
    let (op, of) = cell();
    let keys = newk.to_vec();
    let stats = rt.run_stats(move |wk| {
        let f = insert_many(wk, &keys, ft);
        f.touch(wk, move |tv, wk| op.fulfill(wk, tv));
    });
    assert!(of.expect().to_sorted_vec().len() >= initial.len());
    stats
}

/// E20 — the first measured-vs-model scheduler comparison: run treap
/// union and 2-6 bulk insert *traced* on the real pool and print each
/// session's steal and suspension counts (from [`pf_rt::TraceStats`])
/// side-by-side with pf-machine's predictions over the same DAGs —
/// suspensions from the E09 greedy replay (`Discipline::Stack`), steals
/// from the E17 work-stealing replay (steal latency 3, the E17 seeds).
///
/// The two columns answer different questions and should not be expected
/// to coincide: the model counts events of an idealized unit-cost
/// machine with `p` always-busy processors, the measurement counts what
/// this pool on this host actually did (on a 1-CPU box, real workers
/// time-slice, so real steal counts sit far below the model's). What the
/// comparison *does* pin: t=1 has zero steals in both worlds, suspension
/// counts land in the same order of magnitude (same DAG, same touch
/// structure), and both grow with thread count.
#[cfg(feature = "trace")]
pub fn e20_trace_vs_model(lg_n: u32, threads: &[usize], reps: usize) -> Vec<Table> {
    use pf_machine::{replay, steal_replay, Discipline, StealConfig};
    use pf_trees::workloads::union_entries as e20_union_entries;

    let n = 1usize << lg_n;
    // Runtime workloads identical to the ones `capture_traces` feeds the
    // simulator (union seed 11; insert m = (n/16).max(4), odd keys).
    let (ea, eb) = e20_union_entries(n, n, 11);
    let initial = sorted_keys(n, 2);
    let m = (n / 16).max(4);
    let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();

    let mut out = Vec::new();
    for (name, tr) in crate::exp_machine::capture_traces(lg_n)
        .iter()
        .filter(|(nm, _)| matches!(*nm, "union" | "2-6 insert"))
    {
        let mut t = Table::new(
            format!(
                "E20 {name}: traced runtime (mean of {reps}) vs pf-machine predictions, n = {n}"
            ),
            &[
                "threads",
                "steals meas",
                "steals model",
                "suspends meas",
                "suspends model",
                "execs meas",
                "parks meas",
            ],
        );
        for &th in threads {
            let model = replay(tr, th, Discipline::Stack);
            let steal = steal_replay(
                tr,
                StealConfig {
                    p: th,
                    steal_latency: 3,
                    seed: 0xFEED + th as u64,
                    ..StealConfig::default()
                },
            );
            let (mut steals, mut suspends, mut execs, mut parks) = (0f64, 0f64, 0f64, 0f64);
            for _ in 0..reps {
                let stats = if *name == "union" {
                    traced_union_stats(&ea, &eb, th)
                } else {
                    traced_insert_stats(&initial, &newk, th)
                };
                let ts = stats.trace.as_ref().expect("traced build attaches stats");
                steals += ts.steals() as f64;
                suspends += ts.suspends() as f64;
                execs += ts.executed() as f64;
                parks += ts.parks() as f64;
            }
            let r = reps as f64;
            t.row(vec![
                u(th as u64),
                f2(steals / r),
                u(steal.steals),
                f2(suspends / r),
                u(model.suspensions),
                f2(execs / r),
                f2(parks / r),
            ]);
        }
        out.push(t);
    }
    out
}

/// One traced union session under an explicit scheduling policy,
/// returning (wall-clock, stats). Tree construction is outside the
/// timed region — E21 measures the scheduler, not the workload setup.
#[cfg(feature = "trace")]
fn policy_union_run(
    ea: &[pf_trees::seq::Entry<i64>],
    eb: &[pf_trees::seq::Entry<i64>],
    rt: &Runtime,
    policy: pf_rt::SchedPolicy,
) -> (Duration, pf_rt::RunStats) {
    use pf_rt::Session;
    use pf_rt_algs::rtreap::{union, RTreap, RtTreap};
    let ta = RTreap::from_entries_ready(ea);
    let tb = RTreap::from_entries_ready(eb);
    let (op, of) = cell();
    let (fa, fb) = (pf_rt::ready(ta), pf_rt::ready(tb));
    let t0 = Instant::now();
    let stats = rt
        .try_run_session(Session::new().policy(policy), move |wk| {
            union(wk, fa, fb, op)
        })
        .expect("union session completes under every policy");
    let dt = t0.elapsed();
    assert!(of.expect().to_sorted_vec().len() >= ea.len().max(eb.len()));
    (dt, stats)
}

/// One traced 2-6 bulk-insert session under an explicit policy (E21).
#[cfg(feature = "trace")]
fn policy_insert_run(
    initial: &[i64],
    newk: &[i64],
    rt: &Runtime,
    policy: pf_rt::SchedPolicy,
) -> (Duration, pf_rt::RunStats) {
    use pf_rt::Session;
    use pf_rt_algs::rtwosix::{insert_many, RTsTree, RtTsTree};
    let t = RTsTree::from_sorted_ready(initial);
    let ft = pf_rt::ready(t);
    let (op, of) = cell();
    let keys = newk.to_vec();
    let t0 = Instant::now();
    let stats = rt
        .try_run_session(Session::new().policy(policy), move |wk| {
            let f = insert_many(wk, &keys, ft);
            f.touch(wk, move |tv, wk| op.fulfill(wk, tv));
        })
        .expect("insert session completes under every policy");
    let dt = t0.elapsed();
    assert!(of.expect().to_sorted_vec().len() >= initial.len());
    (dt, stats)
}

/// E21 — the E12 scaling sweep extended to per-policy curves: every
/// point of [`pf_rt::SchedPolicy::matrix`] (2 steal × 2 victim × 3
/// resume × 2 spawn-order = 24 policies) measured at each thread count
/// on the two E20 DAGs (treap union, 2-6 bulk insert). Per point the
/// table reports best-of-`reps` wall-clock plus mean steal and suspend
/// counts straight from the exact [`pf_rt::TraceStats`] counters; the
/// deviations column is the `steals + suspends` proxy for the paper's
/// schedule deviations (each steal and each suspension is a point where
/// the parallel execution departed from the serial one).
///
/// What to look for: t=1 rows have zero steals everywhere (policy
/// cannot matter for victims that do not exist); steal-half rows move
/// the same task count in fewer episodes, so their deviations track the
/// steal-one rows while wall-clock stays flat; inline resume trades
/// suspension parks for stack depth; mailbox resume shifts resumes onto
/// the cell-owning worker without changing totals.
#[cfg(feature = "trace")]
pub fn e21_policy_sweep(lg_n: u32, threads: &[usize], reps: usize) -> Vec<Table> {
    use pf_rt::SchedPolicy;

    let n = 1usize << lg_n;
    let (ea, eb) = union_entries(n, n, 11);
    let initial = sorted_keys(n, 2);
    let m = (n / 16).max(4);
    let newk: Vec<i64> = (0..m as i64).map(|i| 2 * i + 1).collect();

    let headers = [
        "policy",
        "threads",
        "time (ms)",
        "steals",
        "suspends",
        "deviations",
    ];
    let mut tu = Table::new(
        format!("E21a treap union per-policy scaling, n = m = {n} (best of {reps})"),
        &headers,
    );
    let mut ti = Table::new(
        format!("E21b 2-6 bulk insert per-policy scaling, n = {n}, m = {m} (best of {reps})"),
        &headers,
    );
    for policy in SchedPolicy::matrix() {
        for &th in threads {
            let rt = Runtime::with_policy(th, policy);
            let mut best = Duration::MAX;
            let (mut steals, mut susp) = (0u64, 0u64);
            for _ in 0..reps {
                let (dt, stats) = policy_union_run(&ea, &eb, &rt, policy);
                best = best.min(dt);
                let ts = stats.trace.as_ref().expect("traced build");
                steals += ts.steals();
                susp += ts.suspends();
            }
            let r = reps as u64;
            tu.row(vec![
                policy.label(),
                u(th as u64),
                ms(best),
                f2(steals as f64 / r as f64),
                f2(susp as f64 / r as f64),
                f2((steals + susp) as f64 / r as f64),
            ]);

            let mut best = Duration::MAX;
            let (mut steals, mut susp) = (0u64, 0u64);
            for _ in 0..reps {
                let (dt, stats) = policy_insert_run(&initial, &newk, &rt, policy);
                best = best.min(dt);
                let ts = stats.trace.as_ref().expect("traced build");
                steals += ts.steals();
                susp += ts.suspends();
            }
            ti.row(vec![
                policy.label(),
                u(th as u64),
                ms(best),
                f2(steals as f64 / reps as f64),
                f2(susp as f64 / reps as f64),
                f2((steals + susp) as f64 / reps as f64),
            ]);
        }
    }
    vec![tu, ti]
}

/// Consistency check used by E12: the runtime and the cost model compute
/// identical results on identical inputs.
pub fn rt_matches_model(lg_n: u32) -> bool {
    let n = 1usize << lg_n;
    let (a, b) = interleaved_pair(n, n);
    let (root, _) = run_merge(&a, &b, Mode::Pipelined);
    let model_keys = root.get().to_sorted_vec();

    let ta = pf_rt_algs::rtree::RTree::from_sorted_ready(&a);
    let tb = pf_rt_algs::rtree::RTree::from_sorted_ready(&b);
    let (op, of) = cell();
    Runtime::new(2)
        .run(move |wk| pf_rt_algs::rtree::merge(wk, pf_rt::ready(ta), pf_rt::ready(tb), op));
    let rt_keys = of.expect().to_sorted_vec();
    model_keys == rt_keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_smoke() {
        let ts = e12_runtime(10, &[1, 2], 1);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].rows.len(), 3);
        assert_eq!(ts[2].rows.len(), 5);
    }

    #[test]
    fn wallclock_pairs_smoke() {
        let t = e13_msort_wallclock(&[9], &[1, 2], 1);
        assert_eq!(t.rows.len(), 2);
        let t = e16_pvw_wallclock(10, 5, &[1, 2], 1);
        assert_eq!(t.rows.len(), 3, "seq row + one row per thread count");
        let t = e18_cole_wallclock(9, &[1, 2], 1);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn e15_constants_scale_linearly() {
        let t = e15_cost_constants(8, &[1, 2, 4]);
        let d1: f64 = t.rows[0][1].parse().unwrap();
        let d4: f64 = t.rows[2][1].parse().unwrap();
        // fork/touch/write scale 4x but plain unit ops stay at 1, so the
        // overall depth grows somewhat less than 4x.
        let ratio = d4 / d1;
        assert!(
            (2.2..4.2).contains(&ratio),
            "depth should scale ~k: {ratio}"
        );
    }

    #[test]
    fn e15_cells_smoke() {
        let t = e15_cells(2, 500);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn rt_and_model_agree() {
        assert!(rt_matches_model(9));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn e20_smoke() {
        let ts = e20_trace_vs_model(8, &[1, 2], 1);
        assert_eq!(ts.len(), 2, "union and 2-6 insert");
        for t in &ts {
            assert_eq!(t.rows.len(), 2);
            // t=1: zero steals, measured and model alike.
            let measured: f64 = t.rows[0][1].parse().unwrap();
            let model: u64 = t.rows[0][2].parse().unwrap();
            assert_eq!(measured, 0.0, "single worker cannot steal: {t:?}");
            assert_eq!(model, 0, "model p=1 cannot steal: {t:?}");
            // Suspensions happen in both worlds on these workloads.
            let meas_susp: f64 = t.rows[1][3].parse().unwrap();
            let model_susp: u64 = t.rows[1][4].parse().unwrap();
            assert!(meas_susp >= 0.0);
            assert!(model_susp > 0, "pipelined DAGs suspend in the model");
        }
    }
}
