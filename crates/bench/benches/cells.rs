//! Criterion microbenchmarks for the future-cell implementations (the
//! E15b ablation, measured properly): fulfill+touch round-trips through
//! the lock-free cell vs the mutex cell, plus raw task spawn throughput.
//!
//! Every benchmark runs on a warm pool built outside `b.iter`, so the
//! numbers measure cell and scheduler hot paths, not thread creation.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_rt::mutex_cell::mx_cell;
use pf_rt::{cell, Runtime};

const N: usize = 10_000;

fn bench_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("future-cell");
    g.sample_size(20);

    let rt = Runtime::new(1);

    g.bench_function("lockfree_write_then_touch_10k", |b| {
        b.iter(|| {
            rt.run(move |wk| {
                for i in 0..N {
                    let (w, r) = cell::<usize>();
                    w.fulfill(wk, i);
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                }
            });
        })
    });

    g.bench_function("lockfree_touch_then_write_10k", |b| {
        b.iter(|| {
            rt.run(move |wk| {
                for i in 0..N {
                    let (w, r) = cell::<usize>();
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                    w.fulfill(wk, i);
                }
            });
        })
    });

    g.bench_function("mutex_write_then_touch_10k", |b| {
        b.iter(|| {
            rt.run(move |wk| {
                for i in 0..N {
                    let (w, r) = mx_cell::<usize>();
                    w.fulfill(wk, i);
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                }
            });
        })
    });

    g.bench_function("mutex_touch_then_write_10k", |b| {
        b.iter(|| {
            rt.run(move |wk| {
                for i in 0..N {
                    let (w, r) = mx_cell::<usize>();
                    r.touch(wk, |v, _| {
                        std::hint::black_box(v);
                    });
                    w.fulfill(wk, i);
                }
            });
        })
    });

    g.bench_function("spawn_10k_empty_tasks", |b| {
        b.iter(|| {
            rt.run(|wk| {
                for _ in 0..N {
                    wk.spawn(|_| {});
                }
            });
        })
    });

    g.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
