//! Criterion benchmarks for the algorithm implementations across the
//! three backends: the cost-model simulator (`pf-trees`), the real
//! runtime (`pf-rt-algs`), and the sequential references (`pf-trees::seq`
//! and plain array code). These quantify the instrumentation overhead of
//! the cost model and the task overhead of the futures runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_rt::{cell, ready, Runtime};
use pf_rt_algs::rtreap::{union as rt_union, RTreap, RtTreap};
use pf_rt_algs::rtree::{merge as rt_merge, RTree, RtTree};
use pf_trees::merge::run_merge;
use pf_trees::seq::PlainTreap;
use pf_trees::treap::run_union;
use pf_trees::two_six::run_insert_many;
use pf_trees::workloads::{interleaved_pair, sorted_keys, union_entries};
use pf_trees::Mode;

const LG: u32 = 12;

fn bench_sim(c: &mut Criterion) {
    let n = 1usize << LG;
    let mut g = c.benchmark_group("cost-model-sim");
    g.sample_size(20);

    let (a, b) = interleaved_pair(n, n);
    g.bench_function("merge_4k_pipelined", |bch| {
        bch.iter(|| run_merge(&a, &b, Mode::Pipelined))
    });
    g.bench_function("merge_4k_strict", |bch| {
        bch.iter(|| run_merge(&a, &b, Mode::Strict))
    });

    let (ea, eb) = union_entries(n, n, 7);
    g.bench_function("union_4k_pipelined", |bch| {
        bch.iter(|| run_union(&ea, &eb, Mode::Pipelined))
    });

    let initial = sorted_keys(n, 2);
    let newk: Vec<i64> = (0..(n / 8) as i64).map(|i| 2 * i + 1).collect();
    g.bench_function("two_six_insert_4k", |bch| {
        bch.iter(|| run_insert_many(&initial, &newk, Mode::Pipelined))
    });
    g.finish();
}

fn bench_rt(c: &mut Criterion) {
    let n = 1usize << LG;
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);

    let (a, b) = interleaved_pair(n, n);
    g.bench_function("merge_4k_rt1", |bch| {
        bch.iter(|| {
            let ta = ready(RTree::from_sorted_ready(&a));
            let tb = ready(RTree::from_sorted_ready(&b));
            let (op, of) = cell();
            Runtime::new(1).run(move |wk| rt_merge(wk, ta, tb, op));
            assert!(of.is_written());
        })
    });

    let (ea, eb) = union_entries(n, n, 7);
    g.bench_function("union_4k_rt1", |bch| {
        bch.iter(|| {
            let ta = ready(RTreap::from_entries_ready(&ea));
            let tb = ready(RTreap::from_entries_ready(&eb));
            let (op, of) = cell();
            Runtime::new(1).run(move |wk| rt_union(wk, ta, tb, op));
            assert!(of.is_written());
        })
    });
    g.finish();
}

fn bench_seq(c: &mut Criterion) {
    let n = 1usize << LG;
    let mut g = c.benchmark_group("sequential-baseline");
    g.sample_size(30);

    let (ea, eb) = union_entries(n, n, 7);
    g.bench_function("plain_treap_union_4k", |bch| {
        bch.iter(|| {
            let ta = PlainTreap::from_entries(&ea);
            let tb = PlainTreap::from_entries(&eb);
            std::hint::black_box(PlainTreap::union(ta, tb))
        })
    });

    let (a, b) = interleaved_pair(n, n);
    g.bench_function("vec_merge_4k", |bch| {
        bch.iter(|| {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(b[j]);
                    j += 1;
                }
            }
            std::hint::black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim, bench_rt, bench_seq);
criterion_main!(benches);
