//! Criterion benchmarks for the §4 scheduler replay: how fast the
//! cycle-level machine simulator chews through a computation-DAG trace at
//! various simulated processor counts and disciplines.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_bench::exp_machine::capture_traces;
use pf_machine::{replay, Discipline, INFINITE_P};

fn bench_replay(c: &mut Criterion) {
    let traces = capture_traces(10);
    let (_, merge_trace) = &traces[0];
    let mut g = c.benchmark_group("trace-replay");
    g.sample_size(20);

    for p in [1usize, 16, INFINITE_P] {
        let label = if p == INFINITE_P {
            "merge_1k_pinf".to_string()
        } else {
            format!("merge_1k_p{p}")
        };
        g.bench_function(&label, |b| {
            b.iter(|| replay(merge_trace, p, Discipline::Stack))
        });
    }
    g.bench_function("merge_1k_p16_queue", |b| {
        b.iter(|| replay(merge_trace, 16, Discipline::Queue))
    });
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
