//! Criterion benchmarks for the §4 scheduler replay (how fast the
//! cycle-level machine simulator chews through a computation-DAG trace)
//! and for the real runtime's session and spawn hot paths on a
//! persistent pool.

use criterion::{criterion_group, criterion_main, Criterion};
use pf_bench::exp_machine::capture_traces;
use pf_machine::{replay, Discipline, INFINITE_P};
use pf_rt::{Runtime, Worker};

fn bench_replay(c: &mut Criterion) {
    let traces = capture_traces(10);
    let (_, merge_trace) = &traces[0];
    let mut g = c.benchmark_group("trace-replay");
    g.sample_size(20);

    for p in [1usize, 16, INFINITE_P] {
        let label = if p == INFINITE_P {
            "merge_1k_pinf".to_string()
        } else {
            format!("merge_1k_p{p}")
        };
        g.bench_function(&label, |b| {
            b.iter(|| replay(merge_trace, p, Discipline::Stack))
        });
    }
    g.bench_function("merge_1k_p16_queue", |b| {
        b.iter(|| replay(merge_trace, 16, Discipline::Queue))
    });
    g.finish();
}

/// Per-session overhead of the persistent pool: repeated `run` calls on
/// one long-lived `Runtime` (the pattern every driver and server uses).
fn bench_repeated_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime-session");
    g.sample_size(20);
    for threads in [1usize, 4] {
        let rt = Runtime::new(threads);
        rt.run(|_| {}); // warm the pool
        g.bench_function(format!("repeated_run_noop_t{threads}"), |b| {
            b.iter(|| rt.run(|_| {}));
        });
    }
    g.finish();
}

fn spawn_tree(wk: &Worker, depth: usize) {
    if depth > 0 {
        wk.spawn2(
            move |wk| spawn_tree(wk, depth - 1),
            move |wk| spawn_tree(wk, depth - 1),
        );
    }
}

/// Spawn throughput on a warm pool: a binary fan-out of 2^15-1 empty
/// tasks (the tree algorithms' two-child shape, via `spawn2`).
fn bench_spawn_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime-spawn");
    g.sample_size(20);
    for threads in [1usize, 4] {
        let rt = Runtime::new(threads);
        rt.run(|_| {});
        g.bench_function(format!("spawn_tree_32k_t{threads}"), |b| {
            b.iter(|| rt.run(|wk| spawn_tree(wk, 14)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_replay,
    bench_repeated_run,
    bench_spawn_throughput
);
criterion_main!(benches);
