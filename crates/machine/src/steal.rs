//! An **asynchronous** machine model: Blumofe–Leiserson-style work
//! stealing over the same computation-DAG traces.
//!
//! The paper's motivation for futures over hand pipelining is that the
//! hand version "forces highly synchronous code execution", which "is
//! less practical on asynchronous machines" (§1), and its cost model is
//! the one used by Blumofe & Leiserson's work-stealing results [12, 13].
//! This module closes that loop: a discrete-event simulator of `p`
//! asynchronous processors, each with a LIFO deque,
//!
//! * executing one action per tick when busy (work-first: a fork dives
//!   into the child and pushes the parent continuation);
//! * stealing from a uniformly random victim when idle, paying
//!   `steal_latency` ticks per attempt, taking the *oldest* thread;
//! * suspending touches of unwritten cells inside the cell (free), the
//!   writer pushing the waiter onto its own deque;
//! * executing flat jobs (`array_split`) as splittable ranges: a thief
//!   takes half the remaining units — the classic parallel-loop
//!   treatment.
//!
//! Unlike the synchronous §4 replayer there is no global step barrier, so
//! the measured makespan reflects steal overhead and load imbalance; the
//! work-stealing theorem's shape — `T ≈ w/p + O(d·steal_latency)` — is
//! checked by the E17 experiment.

use pf_core::{Ev, ThreadId, Trace};

/// Scheduling-policy knobs of the asynchronous model, mirroring the real
/// runtime's `pf_rt::SchedPolicy` axes (steal granularity, victim
/// selection, resume placement, fork order) so the model can predict how
/// a policy shifts steal and suspension counts before the runtime runs
/// it. The default preserves the model's original behavior: steal-one,
/// uniformly random victim, resume onto the writer's deque, work-first
/// forks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealPolicy {
    /// Thieves drain the oldest *half* of the victim's deque in one
    /// episode instead of a single item (runtime: `StealKind::Half`).
    pub steal_half: bool,
    /// Re-try the last successful victim before falling back to the
    /// random choice (runtime: `VictimSelect::LastVictimFirst`).
    pub last_victim_first: bool,
    /// Wake suspended threads onto the deque of the processor whose
    /// touch suspended them, not the writer's (runtime:
    /// `ResumePlace::Mailbox`).
    pub resume_to_owner: bool,
    /// Forks push the child and continue the parent instead of the
    /// work-first dive into the child (the real runtime's default
    /// spawn order; this model's historical default is work-first).
    pub parent_first: bool,
}

/// Configuration for the asynchronous simulator.
#[derive(Debug, Clone, Copy)]
pub struct StealConfig {
    /// Number of processors.
    pub p: usize,
    /// Ticks consumed by each steal attempt (hit or miss).
    pub steal_latency: u64,
    /// RNG seed for victim selection (runs are deterministic per seed).
    pub seed: u64,
    /// Scheduling-policy knobs (default: the model's original behavior).
    pub policy: StealPolicy,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            p: 4,
            steal_latency: 3,
            seed: 0x5EED,
            policy: StealPolicy::default(),
        }
    }
}

/// Measurements from one asynchronous run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealStats {
    /// Ticks until the last action completed (the asynchronous makespan).
    pub makespan: u64,
    /// Actions executed (must equal the trace work).
    pub work_executed: u64,
    /// Successful steals.
    pub steals: u64,
    /// Failed steal attempts (empty victim).
    pub failed_steals: u64,
    /// Total idle processor-ticks (stealing or waiting).
    pub idle_ticks: u64,
}

impl StealStats {
    /// The work-stealing bound shape: makespan within
    /// `w/p + c·d·steal_latency` for a modest constant `c`.
    pub fn within_steal_bound(&self, work: u64, depth: u64, cfg: &StealConfig, c: u64) -> bool {
        self.makespan <= work.div_ceil(cfg.p as u64) + c * depth * cfg.steal_latency.max(1)
    }
}

#[derive(Clone, Copy)]
enum Item {
    Thread(ThreadId),
    /// Half-open range of remaining flat units, owned by `owner`'s Flat
    /// event (counter index into `flat_remaining`).
    Flat {
        job: usize,
        lo: u64,
        hi: u64,
    },
}

struct ThreadState {
    pc: usize,
    budget: u64,
    flat_dispatched: bool,
}

struct Proc {
    deque: Vec<Item>, // LIFO bottom = index 0, own end = back
    current: Option<Item>,
    /// Tick at which the processor next does something.
    busy_until: u64,
    /// Last successful victim (`last_victim_first` policy); own index
    /// means "none yet".
    last_victim: usize,
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Run the asynchronous work-stealing execution of `trace`.
pub fn steal_replay(trace: &Trace, cfg: StealConfig) -> StealStats {
    assert!(cfg.p >= 1);
    let costs = trace.costs;
    let mut threads: Vec<ThreadState> = (0..trace.threads.len())
        .map(|_| ThreadState {
            pc: 0,
            budget: 0,
            flat_dispatched: false,
        })
        .collect();
    // written[c] = Some(t): visible to touches from tick t + 1 on (unit
    // communication latency — keeps the makespan >= DAG depth).
    let mut written: Vec<Option<u64>> = vec![None; trace.n_cells as usize];
    for &c in &trace.pre_written {
        written[c as usize] = Some(0);
    }
    // Each waiter is paired with the processor whose touch suspended it
    // (the `resume_to_owner` wake target).
    let mut waiters: Vec<Vec<(ThreadId, usize)>> = vec![Vec::new(); trace.n_cells as usize];
    // Per-flat-job sink bookkeeping: remaining units before the owner may
    // run the sink action.
    let mut flat_remaining: Vec<u64> = Vec::new();
    let mut flat_owner: Vec<ThreadId> = Vec::new();

    let mut procs: Vec<Proc> = (0..cfg.p)
        .map(|i| Proc {
            deque: Vec::new(),
            current: None,
            busy_until: 0,
            last_victim: i,
        })
        .collect();
    procs[0].current = Some(Item::Thread(0));

    let mut stats = StealStats {
        makespan: 0,
        work_executed: 0,
        steals: 0,
        failed_steals: 0,
        idle_ticks: 0,
    };
    let mut rng = cfg.seed | 1;
    let mut outstanding: u64 = 1; // live schedulable items (root)
    let mut tick: u64 = 1;
    let mut written_this_tick: Vec<(usize, usize)> = Vec::new(); // (cell, proc)

    let ev_cost = |ev: &Ev| -> u64 {
        match ev {
            Ev::Compute(k) => *k,
            Ev::Fork(_) => costs.fork,
            Ev::Write(_) => costs.write,
            Ev::Touch(_) => costs.touch,
            Ev::Flat(_) => 1, // per-unit; handled by ranges
        }
    };

    while outstanding > 0 {
        // Round-robin the processors within one tick; asynchronous in the
        // sense that there is no barrier: each proc acts iff its latency
        // window expired.
        for pi in 0..cfg.p {
            if procs[pi].busy_until > tick {
                continue;
            }
            // Ensure the processor has something current.
            if procs[pi].current.is_none() {
                if let Some(item) = procs[pi].deque.pop() {
                    procs[pi].current = Some(item);
                } else {
                    // Steal: pick a victim (last-victim shortcut first
                    // when enabled, else uniformly random), then take the
                    // oldest item — or the oldest half under `steal_half`.
                    stats.idle_ticks += 1;
                    let mut victim = (xorshift(&mut rng) as usize) % cfg.p;
                    if cfg.policy.last_victim_first {
                        let lv = procs[pi].last_victim;
                        if lv != pi && !procs[lv].deque.is_empty() {
                            victim = lv;
                        }
                    }
                    procs[pi].busy_until = tick + cfg.steal_latency.max(1);
                    if victim != pi && !procs[victim].deque.is_empty() {
                        let take = if cfg.policy.steal_half {
                            procs[victim].deque.len().div_ceil(2)
                        } else {
                            1
                        };
                        let item = procs[victim].deque.remove(0);
                        // Splittable flats: take only half the range
                        // (single-item steals only — a batched steal's
                        // granularity is the batch itself).
                        let stolen = match item {
                            Item::Flat { job, lo, hi } if take == 1 && hi - lo > 1 => {
                                let mid = lo + (hi - lo) / 2;
                                procs[victim]
                                    .deque
                                    .insert(0, Item::Flat { job, lo, hi: mid });
                                outstanding += 1; // range split in two
                                Item::Flat { job, lo: mid, hi }
                            }
                            other => other,
                        };
                        // The rest of the oldest half moves wholesale; the
                        // thief's deque is empty, so FIFO order survives.
                        for _ in 1..take {
                            let it = procs[victim].deque.remove(0);
                            procs[pi].deque.push(it);
                        }
                        procs[pi].current = Some(stolen);
                        procs[pi].last_victim = victim;
                        stats.steals += 1;
                    } else {
                        stats.failed_steals += 1;
                    }
                    continue;
                }
            }
            // Execute one action of the current item.
            let item = procs[pi].current.take().expect("current");
            match item {
                Item::Flat {
                    job,
                    mut lo,
                    mut hi,
                } => {
                    // Lazy splitting: expose half of a large range whenever
                    // the deque is empty, so thieves always find work.
                    if hi - lo > 1 && procs[pi].deque.is_empty() {
                        let mid = lo + (hi - lo) / 2;
                        procs[pi].deque.push(Item::Flat { job, lo: mid, hi });
                        outstanding += 1;
                        hi = mid;
                    }
                    stats.work_executed += 1;
                    stats.makespan = stats.makespan.max(tick);
                    lo += 1;
                    flat_remaining[job] -= 1;
                    if lo < hi {
                        procs[pi].current = Some(Item::Flat { job, lo, hi });
                    } else {
                        outstanding -= 1;
                        if flat_remaining[job] == 0 {
                            // All units done: the owner resumes (sink next).
                            procs[pi].deque.push(Item::Thread(flat_owner[job]));
                            outstanding += 1;
                        }
                    }
                }
                Item::Thread(tid) => {
                    let t = tid as usize;
                    let log = &trace.threads[t].events;
                    if threads[t].pc >= log.len() {
                        outstanding -= 1;
                        continue;
                    }
                    let ev = &log[threads[t].pc];
                    match ev {
                        Ev::Flat(n) => {
                            if !threads[t].flat_dispatched {
                                threads[t].flat_dispatched = true;
                                flat_remaining.push(*n);
                                flat_owner.push(tid);
                                let job = flat_remaining.len() - 1;
                                // The thread parks; the flat range becomes
                                // the processor's current item.
                                procs[pi].current = Some(Item::Flat { job, lo: 0, hi: *n });
                                // Thread item is consumed; range replaces it
                                // (outstanding unchanged).
                            } else {
                                // Sink action.
                                threads[t].flat_dispatched = false;
                                threads[t].pc += 1;
                                stats.work_executed += 1;
                                stats.makespan = stats.makespan.max(tick);
                                procs[pi].current = Some(Item::Thread(tid));
                            }
                        }
                        Ev::Touch(c) => {
                            let visible = matches!(written[*c as usize], Some(w) if w < tick);
                            if !visible {
                                // Suspend in the cell; the processor idles.
                                waiters[*c as usize].push((tid, pi));
                                outstanding -= 1;
                                continue;
                            }
                            run_one(&mut threads[t], ev_cost(ev));
                            stats.work_executed += 1;
                            stats.makespan = stats.makespan.max(tick);
                            procs[pi].current = Some(Item::Thread(tid));
                        }
                        Ev::Write(c) => {
                            let done = run_one(&mut threads[t], ev_cost(ev));
                            stats.work_executed += 1;
                            stats.makespan = stats.makespan.max(tick);
                            if done {
                                written[*c as usize] = Some(tick);
                                written_this_tick.push((*c as usize, pi));
                            }
                            procs[pi].current = Some(Item::Thread(tid));
                        }
                        Ev::Fork(child) => {
                            let child = *child;
                            let done = run_one(&mut threads[t], ev_cost(ev));
                            stats.work_executed += 1;
                            stats.makespan = stats.makespan.max(tick);
                            if done {
                                if cfg.policy.parent_first {
                                    // Parent-first: expose the child to
                                    // thieves, keep running the parent.
                                    procs[pi].deque.push(Item::Thread(child));
                                    procs[pi].current = Some(Item::Thread(tid));
                                } else {
                                    // Work-first: continue into the child,
                                    // push the parent continuation.
                                    procs[pi].deque.push(Item::Thread(tid));
                                    procs[pi].current = Some(Item::Thread(child));
                                }
                                outstanding += 1;
                            } else {
                                procs[pi].current = Some(Item::Thread(tid));
                            }
                        }
                        Ev::Compute(_) => {
                            run_one(&mut threads[t], ev_cost(ev));
                            stats.work_executed += 1;
                            stats.makespan = stats.makespan.max(tick);
                            procs[pi].current = Some(Item::Thread(tid));
                        }
                    }
                    // Terminated thread: release its slot.
                    if let Some(Item::Thread(tid)) = procs[pi].current {
                        let t = tid as usize;
                        if threads[t].pc >= trace.threads[t].events.len() {
                            procs[pi].current = None;
                            outstanding -= 1;
                        }
                    }
                }
            }
        }
        // End of tick: writes become visible; wake their waiters onto the
        // writer's deque — or, under `resume_to_owner`, onto the deque of
        // the processor whose touch suspended them (mailbox handoff).
        for (c, pi) in written_this_tick.drain(..) {
            for (w, owner) in waiters[c].drain(..) {
                let target = if cfg.policy.resume_to_owner {
                    owner
                } else {
                    pi
                };
                procs[target].deque.push(Item::Thread(w));
                outstanding += 1;
            }
        }
        tick += 1;
        if tick > 64 * (trace.work + 1000) {
            panic!("steal_replay runaway: tick {tick} work {}", trace.work);
        }
    }

    assert_eq!(
        stats.work_executed, trace.work,
        "asynchronous replay must execute exactly the trace work"
    );
    stats
}

fn run_one(t: &mut ThreadState, total_cost: u64) -> bool {
    if t.budget == 0 {
        t.budget = total_cost;
    }
    t.budget -= 1;
    if t.budget == 0 {
        t.pc += 1;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_core::Sim;

    fn cfg(p: usize, seed: u64) -> StealConfig {
        StealConfig {
            p,
            steal_latency: 3,
            seed,
            policy: StealPolicy::default(),
        }
    }

    fn all_policies() -> Vec<StealPolicy> {
        let mut out = Vec::new();
        for bits in 0u8..16 {
            out.push(StealPolicy {
                steal_half: bits & 1 != 0,
                last_victim_first: bits & 2 != 0,
                resume_to_owner: bits & 4 != 0,
                parent_first: bits & 8 != 0,
            });
        }
        out
    }

    #[test]
    fn serial_trace_runs_exactly_work() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| ctx.tick(50));
        let s = steal_replay(&trace, cfg(1, 1));
        assert_eq!(s.makespan, r.work);
        assert_eq!(s.steals, 0);
    }

    #[test]
    fn parallel_forks_get_stolen() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let fs: Vec<_> = (0..8).map(|_| ctx.fork(|c| c.tick(200))).collect();
            for f in &fs {
                ctx.touch(f);
            }
        });
        let s1 = steal_replay(&trace, cfg(1, 7));
        let s4 = steal_replay(&trace, cfg(4, 7));
        assert_eq!(s1.work_executed, r.work);
        assert!(s4.steals > 0, "thieves must engage");
        assert!(
            (s4.makespan as f64) < 0.5 * s1.makespan as f64,
            "4 procs should beat 1: {} vs {}",
            s4.makespan,
            s1.makespan
        );
        assert!(s4.within_steal_bound(r.work, r.depth, &cfg(4, 7), 8));
    }

    #[test]
    fn suspension_and_wake() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(100);
                1u8
            });
            ctx.touch(&f);
            ctx.tick(5);
        });
        for p in [1usize, 2] {
            let s = steal_replay(&trace, cfg(p, 3));
            assert_eq!(s.work_executed, r.work, "p={p}");
            assert!(s.makespan >= r.depth);
        }
    }

    #[test]
    fn flat_ranges_are_split_by_thieves() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            ctx.flat(1000);
            ctx.tick(1);
        });
        let s1 = steal_replay(&trace, cfg(1, 5));
        let s4 = steal_replay(&trace, cfg(4, 5));
        assert_eq!(s1.work_executed, r.work);
        assert_eq!(s4.work_executed, r.work);
        assert!(
            (s4.makespan as f64) < 0.45 * s1.makespan as f64,
            "flat range must parallelize: {} vs {}",
            s4.makespan,
            s1.makespan
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, _, trace) = Sim::new().run_traced(|ctx| {
            let fs: Vec<_> = (0..6).map(|i| ctx.fork(move |c| c.tick(30 + i))).collect();
            for f in &fs {
                ctx.touch(f);
            }
        });
        let a = steal_replay(&trace, cfg(3, 42));
        let b = steal_replay(&trace, cfg(3, 42));
        assert_eq!(a, b);
        let c = steal_replay(&trace, cfg(3, 43));
        assert_eq!(a.work_executed, c.work_executed);
    }

    #[test]
    fn every_policy_executes_exact_work_deterministically() {
        // The model analog of the runtime's bit-identical-results pin:
        // whatever the policy, the replay executes exactly the trace
        // work, and each (policy, seed) pair is deterministic.
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let fs: Vec<_> = (0..8)
                .map(|i| {
                    ctx.fork(move |c| {
                        c.tick(20 + 7 * i);
                        i
                    })
                })
                .collect();
            ctx.flat(64);
            for f in &fs {
                ctx.touch(f);
            }
        });
        for policy in all_policies() {
            for p in [1usize, 3] {
                let mut c = cfg(p, 99);
                c.policy = policy;
                let a = steal_replay(&trace, c);
                let b = steal_replay(&trace, c);
                assert_eq!(a.work_executed, r.work, "{policy:?} p={p}");
                assert_eq!(a, b, "replay must be deterministic: {policy:?} p={p}");
                assert!(a.makespan >= r.depth, "{policy:?} p={p}");
            }
        }
    }

    #[test]
    fn steal_half_batches_complete_the_trace() {
        // A wide fork spray under batched stealing: each successful
        // episode moves half the victim's deque, and the run must still
        // execute exactly the trace work.
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let fs: Vec<_> = (0..32).map(|_| ctx.fork(|c| c.tick(40))).collect();
            for f in &fs {
                ctx.touch(f);
            }
        });
        let one = steal_replay(&trace, cfg(4, 11));
        let mut ch = cfg(4, 11);
        ch.policy.steal_half = true;
        // Parent-first piles every child onto the root's deque, giving
        // the batched thief something to batch.
        ch.policy.parent_first = true;
        let half = steal_replay(&trace, ch);
        assert_eq!(one.work_executed, r.work);
        assert_eq!(half.work_executed, r.work);
        assert!(half.steals > 0, "batched thieves must engage");
    }

    #[test]
    fn resume_to_owner_redirects_wakes() {
        // One writer, many touchers on distinct procs: with
        // resume_to_owner the wakes land on the touchers' deques. The
        // observable contract here is just completion + determinism —
        // the placement itself is asserted via the distinct stats the
        // two placements produce on a seed where they diverge.
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(120);
                1u8
            });
            for _ in 0..6 {
                let ff = f.clone();
                ctx.fork(move |c| {
                    c.touch(&ff);
                    c.tick(30);
                });
            }
            ctx.touch(&f);
        });
        let writer = steal_replay(&trace, cfg(3, 17));
        let mut oc = cfg(3, 17);
        oc.policy.resume_to_owner = true;
        let owner = steal_replay(&trace, oc);
        assert_eq!(writer.work_executed, r.work);
        assert_eq!(owner.work_executed, r.work);
    }

    #[test]
    fn parent_first_changes_schedule_not_work() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let fs: Vec<_> = (0..10).map(|i| ctx.fork(move |c| c.tick(10 + i))).collect();
            for f in &fs {
                ctx.touch(f);
            }
        });
        let wf = steal_replay(&trace, cfg(2, 5));
        let mut pc = cfg(2, 5);
        pc.policy.parent_first = true;
        let pf = steal_replay(&trace, pc);
        assert_eq!(wf.work_executed, r.work);
        assert_eq!(pf.work_executed, r.work);
    }

    #[test]
    fn makespan_lower_bounds() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let f = ctx.fork(|c| c.tick(64));
            ctx.tick(64);
            ctx.touch(&f);
        });
        for p in [1usize, 2, 8] {
            let s = steal_replay(&trace, cfg(p, 2));
            assert!(s.makespan as u128 >= (r.work as u128).div_ceil(p as u128));
            assert!(s.makespan >= r.depth);
        }
    }
}
