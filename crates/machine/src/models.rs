//! The machine cost models of §1 and §4: given a computation's work `w`,
//! depth `d`, and a processor count `p`, each model predicts the running
//! time of the §4 implementation (all scheduling and future-management
//! costs included). Experiment E10 tabulates these against the
//! hand-pipelined PVW 2-3 tree bound.

/// The machine models the paper maps its implementation onto.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Machine {
    /// EREW PRAM + unit-time plus-scan: O(w/p + d) (Lemma 4.1).
    ErewScan,
    /// Plain EREW PRAM: the scan costs Θ(lg p) ⇒ O(w/p + d·lg p).
    Erew,
    /// Asynchronous EREW PRAM (Cole–Zajicek): O(w/p + d·lg p).
    AsyncErew,
    /// BSP with gap `g` and periodicity `l`: O(g·w/p + d·(Ts(p) + l)),
    /// Ts(p) = lg p.
    Bsp {
        /// BSP gap parameter (inverse bandwidth).
        g: f64,
        /// BSP periodicity / latency parameter.
        l: f64,
    },
    /// CRCW PRAM with work-efficient fetch-and-add (the earlier result the
    /// paper improves on): O(w/p + d·Tf(p)), Tf(p) = lg p.
    CrcwFetchAdd,
}

fn lg(p: usize) -> f64 {
    (p.max(2) as f64).log2()
}

/// Predicted time (in abstract machine steps) of a computation with work
/// `w` and depth `d` on `p` processors under the given model. Constants of
/// the O(·) are taken as 1, so the values are comparable *shapes*, not
/// cycle counts.
pub fn predicted_time(machine: Machine, w: u64, d: u64, p: usize) -> f64 {
    assert!(p >= 1);
    let wp = w as f64 / p as f64;
    let d = d as f64;
    match machine {
        Machine::ErewScan => wp + d,
        Machine::Erew => wp + d * lg(p),
        Machine::AsyncErew => wp + d * lg(p),
        Machine::Bsp { g, l } => g * wp + d * (lg(p) + l),
        Machine::CrcwFetchAdd => wp + d * lg(p),
    }
}

/// The PVW hand-pipelined 2-3 tree reference: inserting m keys into a tree
/// of n keys in O(m·lg n / p + lg n) time on an EREW PRAM. The paper
/// notes its futures version pays an extra Ts(p) factor on the depth term
/// when mapped to the plain PRAM, but matches PVW on the network/
/// asynchronous models.
pub fn pvw_time(n: usize, m: usize, p: usize) -> f64 {
    assert!(n >= 2 && p >= 1);
    let lgn = (n as f64).log2();
    (m as f64) * lgn / p as f64 + lgn
}

/// Self-speedup of a model prediction: time at p = 1 over time at p.
pub fn speedup(machine: Machine, w: u64, d: u64, p: usize) -> f64 {
    predicted_time(machine, w, d, 1) / predicted_time(machine, w, d, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_model_is_brent() {
        assert_eq!(predicted_time(Machine::ErewScan, 1000, 10, 10), 110.0);
        assert_eq!(predicted_time(Machine::ErewScan, 1000, 10, 1), 1010.0);
    }

    #[test]
    fn erew_pays_log_factor_on_depth() {
        let scan = predicted_time(Machine::ErewScan, 1 << 20, 20, 256);
        let erew = predicted_time(Machine::Erew, 1 << 20, 20, 256);
        assert!(erew > scan);
        assert!((erew - scan - 20.0 * 8.0 + 20.0).abs() < 1e-9); // d(lg p - 1)
    }

    #[test]
    fn bsp_parameters_scale() {
        let cheap = predicted_time(Machine::Bsp { g: 1.0, l: 0.0 }, 1000, 10, 10);
        let costly = predicted_time(Machine::Bsp { g: 4.0, l: 100.0 }, 1000, 10, 10);
        assert!(costly > cheap);
    }

    #[test]
    fn speedup_grows_until_depth_dominates() {
        let w = 1 << 20;
        let d = 20;
        let s16 = speedup(Machine::ErewScan, w, d, 16);
        let s256 = speedup(Machine::ErewScan, w, d, 256);
        assert!(s16 > 10.0);
        assert!(s256 > s16);
        // Perfect scaling impossible once w/p ~ d.
        let s_huge = speedup(Machine::ErewScan, w, d, 1 << 19);
        assert!(s_huge < (1 << 19) as f64 / 8.0);
    }

    #[test]
    fn pvw_shape() {
        // Fixed n: time falls with p toward the lg n floor.
        let t1 = pvw_time(1 << 20, 1 << 10, 1);
        let tp = pvw_time(1 << 20, 1 << 10, 1 << 10);
        assert!(t1 > tp);
        assert!(tp >= 20.0);
    }
}
