//! The §4 greedy scheduler, as a deterministic cycle-level simulator over
//! computation-DAG traces.
//!
//! Each simulated step:
//!
//! 1. pops entries from the active pool until `p` execution slots are
//!    filled (or the pool is exhausted). A thread whose next event is a
//!    touch of a cell not yet visible suspends into the cell without
//!    consuming a slot — it is not a *ready* DAG node;
//! 2. executes one action per slot. Flat jobs (the `array_split` stubs)
//!    may consume many slots in one step, up to their remaining breadth;
//! 3. at the end of the step, cells written during the step flush their
//!    waiter lists, and all continuing / forked / reactivated threads
//!    return to the pool.
//!
//! Writes become visible to touches in the step *after* they execute —
//! the synchronous PRAM convention, and exactly the timing of the
//! simulator's virtual clocks, which is why a p = ∞ replay takes exactly
//! `depth` steps (asserted by the cross-validation tests).

use std::collections::VecDeque;

use pf_core::{Ev, ThreadId, Trace};

/// Processor count representing p = ∞ (every ready action runs each step).
pub const INFINITE_P: usize = usize::MAX;

/// How the active pool orders threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// LIFO — the paper's choice ("probably much better for space").
    Stack,
    /// FIFO — breadth-first; the comparison point for experiment E14.
    Queue,
}

/// How a touch of an unwritten cell is accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suspension {
    /// The toucher suspends free of charge and re-executes the touch when
    /// reactivated — a pure greedy schedule of the DAG (p = ∞ replay takes
    /// exactly `depth` steps). The library default.
    Free,
    /// The paper's accounting: the touch action itself performs the
    /// suspension (writes the closure into the cell and consumes its
    /// action); reactivation resumes *after* the touch. Work is identical;
    /// step counts differ from [`Suspension::Free`] by at most one step
    /// per suspension in either direction (the touch fires before its data
    /// edge, but occupies a slot to do so).
    Charged,
}

/// Measurements from one replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Number of synchronous steps (the machine time in the scan model).
    pub steps: u64,
    /// Actions executed; must equal the trace's work.
    pub work_executed: u64,
    /// Maximum size of the active pool over all steps (space).
    pub max_pool: usize,
    /// Maximum number of threads suspended in cells at any time.
    pub max_suspended: usize,
    /// Total suspensions (touches that found their cell unwritten).
    pub suspensions: u64,
    /// Total reactivations (must equal suspensions at termination).
    pub reactivations: u64,
}

impl ReplayStats {
    /// Brent's greedy-schedule bound for this replay.
    pub fn within_brent(&self, work: u64, depth: u64, p: usize) -> bool {
        if p == INFINITE_P {
            return self.steps <= depth;
        }
        self.steps <= work.div_ceil(p as u64) + depth
    }
}

/// A pool entry: a runnable thread or a partially expanded flat job.
#[derive(Debug, Clone, Copy)]
enum Entry {
    Thread(ThreadId),
    Flat(usize), // index into flat jobs
}

struct FlatJob {
    remaining: u64,
    owner: ThreadId,
}

struct ThreadState {
    /// Index of the next event.
    pc: usize,
    /// Remaining actions within the current multi-action event
    /// (Compute(k) with k > 1, or the cost of a fork/write/touch > 1).
    budget: u64,
    /// The current Flat event's breadth job has been dispatched; the next
    /// visit to the event executes its unit sink action.
    flat_dispatched: bool,
}

struct Pool {
    stack: Vec<Entry>,
    queue: VecDeque<Entry>,
    discipline: Discipline,
}

impl Pool {
    fn new(discipline: Discipline) -> Self {
        Pool {
            stack: Vec::new(),
            queue: VecDeque::new(),
            discipline,
        }
    }

    fn push(&mut self, e: Entry) {
        match self.discipline {
            Discipline::Stack => self.stack.push(e),
            Discipline::Queue => self.queue.push_back(e),
        }
    }

    fn pop(&mut self) -> Option<Entry> {
        match self.discipline {
            Discipline::Stack => self.stack.pop(),
            Discipline::Queue => self.queue.pop_front(),
        }
    }

    fn len(&self) -> usize {
        match self.discipline {
            Discipline::Stack => self.stack.len(),
            Discipline::Queue => self.queue.len(),
        }
    }
}

/// Replay `trace` on `p` processors under the given pool discipline with
/// [`Suspension::Free`] accounting.
///
/// # Panics
/// If the trace is malformed (touch of a never-written cell would make the
/// replay hang; this is detected and reported as a panic naming the cell).
pub fn replay(trace: &Trace, p: usize, discipline: Discipline) -> ReplayStats {
    replay_with(trace, p, discipline, Suspension::Free)
}

/// [`replay`] with an explicit suspension-accounting policy (the E15
/// ablation; see [`Suspension`]).
pub fn replay_with(
    trace: &Trace,
    p: usize,
    discipline: Discipline,
    suspension: Suspension,
) -> ReplayStats {
    assert!(p >= 1, "need at least one processor");
    let costs = trace.costs;
    let n_threads = trace.threads.len();
    let n_cells = trace.n_cells as usize;

    let mut threads: Vec<ThreadState> = (0..n_threads)
        .map(|_| ThreadState {
            pc: 0,
            budget: 0,
            flat_dispatched: false,
        })
        .collect();
    // written_step[c] = Some(s): visible to touches in steps > s.
    let mut written_step: Vec<Option<u64>> = vec![None; n_cells];
    for &c in &trace.pre_written {
        written_step[c as usize] = Some(0);
    }
    let mut waiters: Vec<Vec<ThreadId>> = vec![Vec::new(); n_cells];
    let mut flats: Vec<FlatJob> = Vec::new();

    let mut pool = Pool::new(discipline);
    pool.push(Entry::Thread(0));

    let mut stats = ReplayStats {
        steps: 0,
        work_executed: 0,
        max_pool: 1,
        max_suspended: 0,
        suspensions: 0,
        reactivations: 0,
    };
    let mut suspended_now: usize = 0;

    let ev_cost = |ev: &Ev| -> u64 {
        match ev {
            Ev::Compute(k) => *k,
            Ev::Fork(_) => costs.fork,
            Ev::Write(_) => costs.write,
            Ev::Touch(_) => costs.touch,
            Ev::Flat(_) => unreachable!("flat handled separately"),
        }
    };

    loop {
        if pool.len() == 0 {
            break;
        }
        let step = stats.steps + 1;
        let mut slots_left = p;
        let mut written_this_step: Vec<u64> = Vec::new();
        let mut pushback: Vec<Entry> = Vec::new();

        while slots_left > 0 {
            let Some(entry) = pool.pop() else { break };
            match entry {
                Entry::Flat(j) => {
                    let job = &mut flats[j];
                    let take = (job.remaining).min(slots_left as u64);
                    job.remaining -= take;
                    slots_left -= take as usize;
                    stats.work_executed += take;
                    if job.remaining > 0 {
                        pushback.push(Entry::Flat(j));
                    } else {
                        // Units done: the owner returns to execute the
                        // flat's sink action next step.
                        pushback.push(Entry::Thread(job.owner));
                    }
                }
                Entry::Thread(tid) => {
                    let t = tid as usize;
                    let log = &trace.threads[t].events;
                    if threads[t].pc >= log.len() {
                        // Thread already terminated: drop silently.
                        continue;
                    }
                    let ev = &log[threads[t].pc];
                    match ev {
                        Ev::Flat(n) => {
                            if !threads[t].flat_dispatched {
                                // Expand lazily into a flat job (a free
                                // bookkeeping move — the stub technique);
                                // the n units consume slots starting now,
                                // and the owner waits for the job.
                                threads[t].flat_dispatched = true;
                                flats.push(FlatJob {
                                    remaining: *n,
                                    owner: tid,
                                });
                                let j = flats.len() - 1;
                                let job = &mut flats[j];
                                let take = job.remaining.min(slots_left as u64);
                                job.remaining -= take;
                                slots_left -= take as usize;
                                stats.work_executed += take;
                                if job.remaining > 0 {
                                    pushback.push(Entry::Flat(j));
                                } else {
                                    pushback.push(Entry::Thread(tid));
                                }
                            } else {
                                // The sink (collect) action of the flat DAG.
                                threads[t].flat_dispatched = false;
                                threads[t].pc += 1;
                                stats.work_executed += 1;
                                slots_left -= 1;
                                pushback.push(Entry::Thread(tid));
                            }
                        }
                        Ev::Touch(c) => {
                            let visible = matches!(written_step[*c as usize], Some(s) if s < step);
                            if !visible {
                                match suspension {
                                    Suspension::Free => {
                                        // Not a ready DAG node: suspend free
                                        // of charge; the slot is reused.
                                        waiters[*c as usize].push(tid);
                                        stats.suspensions += 1;
                                        suspended_now += 1;
                                        stats.max_suspended =
                                            stats.max_suspended.max(suspended_now);
                                        continue;
                                    }
                                    Suspension::Charged => {
                                        // The touch action performs the
                                        // suspension: consume its cost; on
                                        // the final unit the thread parks in
                                        // the cell with pc already advanced.
                                        let done = run_action(&mut threads[t], ev_cost(ev));
                                        stats.work_executed += 1;
                                        slots_left -= 1;
                                        if done {
                                            waiters[*c as usize].push(tid);
                                            stats.suspensions += 1;
                                            suspended_now += 1;
                                            stats.max_suspended =
                                                stats.max_suspended.max(suspended_now);
                                        } else {
                                            pushback.push(Entry::Thread(tid));
                                        }
                                        continue;
                                    }
                                }
                            }
                            run_action(&mut threads[t], ev_cost(ev));
                            stats.work_executed += 1;
                            slots_left -= 1;
                            pushback.push(Entry::Thread(tid));
                        }
                        Ev::Write(c) => {
                            let done = run_action(&mut threads[t], ev_cost(ev));
                            stats.work_executed += 1;
                            slots_left -= 1;
                            if done {
                                assert!(
                                    written_step[*c as usize].is_none(),
                                    "cell {c} written twice in trace"
                                );
                                written_step[*c as usize] = Some(step);
                                written_this_step.push(*c);
                            }
                            pushback.push(Entry::Thread(tid));
                        }
                        Ev::Fork(child) => {
                            let child = *child;
                            let done = run_action(&mut threads[t], ev_cost(ev));
                            stats.work_executed += 1;
                            slots_left -= 1;
                            pushback.push(Entry::Thread(tid));
                            if done {
                                pushback.push(Entry::Thread(child));
                            }
                        }
                        Ev::Compute(_) => {
                            run_action(&mut threads[t], ev_cost(ev));
                            stats.work_executed += 1;
                            slots_left -= 1;
                            pushback.push(Entry::Thread(tid));
                        }
                    }
                }
            }
        }

        // End of step: writes become visible, waiters flush, everything
        // returns to the pool.
        for c in written_this_step {
            for w in waiters[c as usize].drain(..) {
                stats.reactivations += 1;
                suspended_now -= 1;
                pushback.push(Entry::Thread(w));
            }
        }
        for e in pushback {
            // Terminated threads do not return.
            if let Entry::Thread(tid) = e {
                if threads[tid as usize].pc >= trace.threads[tid as usize].events.len() {
                    continue;
                }
            }
            pool.push(e);
        }
        stats.steps = step;
        stats.max_pool = stats.max_pool.max(pool.len());
        if pool.len() == 0 && suspended_now > 0 {
            panic!(
                "replay deadlock: {suspended_now} thread(s) suspended on cells \
                 that will never be written (malformed trace)"
            );
        }
    }

    assert_eq!(
        stats.suspensions, stats.reactivations,
        "every suspension must be matched by a reactivation"
    );
    stats
}

/// Run one unit of the current event; returns true when the event's cost
/// is fully paid and the pc advances (the event's *effect* happens on its
/// final unit).
fn run_action(t: &mut ThreadState, total_cost: u64) -> bool {
    if t.budget == 0 {
        t.budget = total_cost;
    }
    t.budget -= 1;
    if t.budget == 0 {
        t.pc += 1;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_core::Sim;

    #[test]
    fn straight_line_trace() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| ctx.tick(10));
        let s = replay(&trace, 1, Discipline::Stack);
        assert_eq!(s.steps, 10);
        assert_eq!(s.work_executed, r.work);
        let s = replay(&trace, 4, Discipline::Stack);
        assert_eq!(s.steps, 10, "a single thread cannot go faster");
    }

    #[test]
    fn fork_join_pipeline_exact_depth_at_infinite_p() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(3);
                7u32
            });
            ctx.touch(&f);
        });
        let s = replay(&trace, INFINITE_P, Discipline::Stack);
        assert_eq!(
            s.steps, r.depth,
            "p = ∞ replay must take exactly depth steps"
        );
        assert_eq!(s.work_executed, r.work);
        assert_eq!(s.suspensions, 1, "the touch must suspend once");
    }

    #[test]
    fn parallel_forks_speed_up() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let fs: Vec<_> = (0..8)
                .map(|_| {
                    ctx.fork(|c| {
                        c.tick(64);
                    })
                })
                .collect();
            for f in &fs {
                ctx.touch(f);
            }
        });
        let s1 = replay(&trace, 1, Discipline::Stack);
        let s8 = replay(&trace, 8, Discipline::Stack);
        assert_eq!(s1.work_executed, r.work);
        assert!(s1.steps >= r.work, "p=1 must serialize");
        assert!(
            s8.steps < s1.steps / 4,
            "8 processors should give real speedup: {} vs {}",
            s8.steps,
            s1.steps
        );
        assert!(s8.within_brent(r.work, r.depth, 8));
    }

    #[test]
    fn flat_jobs_spread_over_steps() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            ctx.flat(100);
            ctx.tick(1);
        });
        // p = ∞: flat takes one step + dispatch timing; total = depth.
        let sinf = replay(&trace, INFINITE_P, Discipline::Stack);
        assert_eq!(sinf.steps, r.depth);
        // p = 10: the 100 units need 10 full steps.
        let s10 = replay(&trace, 10, Discipline::Stack);
        assert!(s10.steps >= 10);
        assert!(s10.within_brent(r.work, r.depth, 10));
        assert_eq!(s10.work_executed, r.work);
    }

    #[test]
    fn multi_cost_events() {
        let (_, r, trace) = Sim::with_costs(pf_core::CostModel::uniform(3)).run_traced(|ctx| {
            let f = ctx.fork(|c| {
                c.tick(2);
                1u8
            });
            ctx.touch(&f);
        });
        let s = replay(&trace, INFINITE_P, Discipline::Stack);
        assert_eq!(s.steps, r.depth);
        assert_eq!(s.work_executed, r.work);
    }

    #[test]
    fn preloaded_cells_visible_at_start() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let f = ctx.preload(1u8);
            ctx.touch(&f);
        });
        let s = replay(&trace, 1, Discipline::Stack);
        assert_eq!(s.suspensions, 0, "pre-written cells never suspend");
        assert_eq!(s.steps, r.depth);
    }

    #[test]
    fn queue_discipline_same_steps_bound() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let fs: Vec<_> = (0..16)
                .map(|i| {
                    ctx.fork(move |c| {
                        c.tick(10 + i);
                    })
                })
                .collect();
            for f in &fs {
                ctx.touch(f);
            }
        });
        for p in [1usize, 2, 4, INFINITE_P] {
            let st = replay(&trace, p, Discipline::Stack);
            let qu = replay(&trace, p, Discipline::Queue);
            assert!(st.within_brent(r.work, r.depth, p));
            assert!(qu.within_brent(r.work, r.depth, p));
            assert_eq!(st.work_executed, qu.work_executed);
        }
    }

    #[test]
    fn charged_suspension_same_work_similar_steps() {
        let (_, r, trace) = Sim::new().run_traced(|ctx| {
            let fs: Vec<_> = (0..6)
                .map(|i| {
                    ctx.fork(move |c| {
                        c.tick(20 + i);
                    })
                })
                .collect();
            for f in &fs {
                ctx.touch(f);
            }
        });
        for p in [1usize, 3, INFINITE_P] {
            let free = replay_with(&trace, p, Discipline::Stack, Suspension::Free);
            let charged = replay_with(&trace, p, Discipline::Stack, Suspension::Charged);
            assert_eq!(free.work_executed, charged.work_executed, "same work");
            // The two accountings differ by at most one step per
            // suspension in either direction: a charged touch fires early
            // (fewer steps) but occupies a slot while blocked (more steps).
            assert!(charged.steps <= free.steps + charged.suspensions);
            assert!(free.steps <= charged.steps + charged.suspensions);
            if p != INFINITE_P {
                assert!(charged.within_brent(r.work, r.depth, p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn never_written_cell_detected() {
        // Hand-build a malformed trace: a touch of a cell nobody writes.
        let (_, _r, mut trace) = Sim::new().run_traced(|ctx| {
            let f = ctx.preload(1u8);
            ctx.touch(&f);
        });
        trace.pre_written.clear(); // now cell 0 is never written
        replay(&trace, 1, Discipline::Stack);
    }
}
