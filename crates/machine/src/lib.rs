//! # pf-machine — implementation analysis of *Pipelining with Futures* (§4)
//!
//! The paper's Lemma 4.1: any linearized futures computation with work `w`
//! and depth `d` can be executed on a p-processor EREW scan-model PRAM in
//! O(w/p + d) time by a greedy scheduler that
//!
//! * keeps the active threads in a shared **stack** `S`,
//! * on every step pops `min(|S|, p)` threads, runs **one action** of each,
//!   and pushes the resulting active threads back with a prefix-sums
//!   (scan) step,
//! * suspends a thread that touches an unwritten future cell *inside the
//!   cell itself* (linearity ⇒ at most one waiter), and reactivates it when
//!   the write arrives,
//! * expands the flat `array_split` / `array_scan` primitives lazily
//!   through stubs.
//!
//! [`mod@replay`] implements that scheduler as a cycle-level simulator over the
//! computation-DAG traces captured by [`pf_core::Sim::run_traced`],
//! measuring exact step counts, suspension behaviour, and thread-pool
//! space; [`models`] maps (work, depth, steps) onto the machine models the
//! paper discusses (EREW scan model, plain and asynchronous EREW PRAM,
//! BSP, CRCW with fetch-and-add).
//!
//! One deliberate idealization, documented here because it affects exact
//! numbers: a thread whose next action is a touch of an unwritten cell is
//! suspended **free of charge** (the slot is reused), so the simulator is a
//! *greedy schedule of the DAG* in the strict sense — a p = ∞ replay
//! finishes in exactly `depth` steps, and Brent's bound
//! `steps ≤ ceil(w/p) + d` holds verbatim. The paper instead charges the
//! suspension bookkeeping O(1) actions, which shifts constants only.

//! ```
//! use pf_core::Sim;
//! use pf_machine::{replay, Discipline, INFINITE_P};
//!
//! // Capture a trace of a small futures program...
//! let (_, report, trace) = Sim::new().run_traced(|ctx| {
//!     let futs: Vec<_> = (0..4).map(|_| ctx.fork(|c| c.tick(32))).collect();
//!     for f in &futs {
//!         ctx.touch(f);
//!     }
//! });
//! // ...and execute it under the §4 scheduler.
//! let two = replay(&trace, 2, Discipline::Stack);
//! assert!(two.within_brent(report.work, report.depth, 2));   // Lemma 4.1
//! let inf = replay(&trace, INFINITE_P, Discipline::Stack);
//! assert_eq!(inf.steps, report.depth);                       // exact at p = ∞
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod models;
pub mod replay;
pub mod steal;

pub use models::{predicted_time, pvw_time, Machine};
pub use replay::{replay, replay_with, Discipline, ReplayStats, Suspension, INFINITE_P};
pub use steal::{steal_replay, StealConfig, StealPolicy, StealStats};
