//! Request coalescing: turn a drained run of ingress requests into the
//! smallest equivalent sequence of apply **waves**.
//!
//! Three rewrites, all order-preserving on the per-shard request stream:
//!
//! 1. **Elision** — a request with no entries is dropped (it is a no-op
//!    on the key set, so it never costs a session).
//! 2. **Insert-run merging** — consecutive *small* requests of the same
//!    kind merge into one multi-key wave group, sorted and deduplicated
//!    (keep-first, matching `PlainTreap::from_entries`' duplicate
//!    no-ops). This is the 2-6 tree's "m keys in one wave" plan applied
//!    at the ingress boundary: one root walk for the whole run instead
//!    of one per request.
//! 3. **Union-tree collapsing** — consecutive *large* batches of the
//!    same kind against the same root stay separate groups of one wave;
//!    the apply step combines them with a balanced
//!    [`pf_rt_algs::rtreap::union_many`] tree (⌈lg k⌉ pairwise unions,
//!    each pipelining into the next) and touches the shard root once.
//!
//! A wave is closed by: a kind change (insert → delete or back), the
//! per-wave key budget ([`CoalescePolicy::max_wave_keys`]), or a faulty
//! request — which is isolated into its *own* single-request wave so an
//! injected fault degrades exactly one request in every apply mode.
//!
//! Coalescing is a pure function (`Vec<Request> → Vec<Wave>`) so it can
//! be unit-tested without a runtime; the unit tests here were extracted
//! from the `set_server` example, which previously exercised dedup only
//! implicitly through its replay.

use crate::request::{Entry, Fault, OpKind, Request};

/// Tuning knobs for [`coalesce`].
#[derive(Clone, Copy, Debug)]
pub struct CoalescePolicy {
    /// Close a wave before it exceeds this many keys (a latency bound:
    /// one wave is one unit of commit).
    pub max_wave_keys: usize,
    /// Requests with fewer entries than this merge into the wave's
    /// shared group (rewrite 2); larger ones become their own union-tree
    /// group (rewrite 3), since re-sorting a big batch into the shared
    /// group costs more than a pairwise union resolves.
    pub merge_below: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy {
            max_wave_keys: 8192,
            merge_below: 64,
        }
    }
}

/// One apply unit: a kind, one or more entry groups (each sorted,
/// deduplicated), and the tags of the requests folded into it.
#[derive(Clone, Debug)]
pub struct Wave<K> {
    /// Insert or delete (a wave never mixes kinds).
    pub kind: OpKind,
    /// Entry groups. Group 0 holds the merged small-request run (if
    /// any); each large batch keeps its own group. The apply step
    /// union-trees the groups into one treap before touching the root.
    pub groups: Vec<Vec<Entry<K>>>,
    /// Injected misbehavior (isolated: a faulty wave holds exactly the
    /// faulty request).
    pub fault: Fault,
    /// Tags of every request coalesced into this wave.
    pub tags: Vec<u64>,
}

impl<K> Wave<K> {
    /// Total keys across the wave's groups.
    pub fn keys(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

/// Sort by key (stable) and drop duplicate keys keep-first — the same
/// duplicate semantics as `PlainTreap::from_entries`, where a duplicate
/// insert is a no-op.
fn sanitize<K: Ord + Clone>(mut entries: Vec<Entry<K>>) -> Vec<Entry<K>> {
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries.dedup_by(|a, b| a.0 == b.0);
    entries
}

struct Builder<K> {
    kind: OpKind,
    merged: Vec<Entry<K>>,
    groups: Vec<Vec<Entry<K>>>,
    tags: Vec<u64>,
    keys: usize,
}

impl<K: Ord + Clone> Builder<K> {
    fn new(kind: OpKind) -> Self {
        Builder {
            kind,
            merged: Vec::new(),
            groups: Vec::new(),
            tags: Vec::new(),
            keys: 0,
        }
    }

    fn finish(self) -> Option<Wave<K>> {
        let mut groups = Vec::with_capacity(self.groups.len() + 1);
        if !self.merged.is_empty() {
            groups.push(sanitize(self.merged));
        }
        groups.extend(self.groups);
        if groups.is_empty() {
            return None;
        }
        Some(Wave {
            kind: self.kind,
            groups,
            fault: Fault::None,
            tags: self.tags,
        })
    }
}

/// Coalesce one shard's drained request run into apply waves (module
/// docs for the rewrite rules). Request order is preserved across wave
/// boundaries; within a wave, reordering is sound because same-kind set
/// operations commute and duplicate keys resolve identically (keep-first
/// within the merged group, max-priority across union-tree groups —
/// associativity-independent either way).
pub fn coalesce<K: Ord + Clone>(
    requests: Vec<Request<K>>,
    policy: &CoalescePolicy,
) -> Vec<Wave<K>> {
    let mut waves: Vec<Wave<K>> = Vec::new();
    let mut open: Option<Builder<K>> = None;
    let close = |open: &mut Option<Builder<K>>, waves: &mut Vec<Wave<K>>| {
        if let Some(b) = open.take() {
            waves.extend(b.finish());
        }
    };
    for req in requests {
        if req.entries.is_empty() {
            continue; // rewrite 1: elision
        }
        if req.fault != Fault::None {
            // Isolate the faulty request into its own wave.
            close(&mut open, &mut waves);
            waves.push(Wave {
                kind: req.kind,
                groups: vec![sanitize(req.entries)],
                fault: req.fault,
                tags: vec![req.tag],
            });
            continue;
        }
        let mismatched = open.as_ref().is_some_and(|b| {
            b.kind != req.kind || b.keys + req.entries.len() > policy.max_wave_keys
        });
        if mismatched {
            close(&mut open, &mut waves);
        }
        let b = open.get_or_insert_with(|| Builder::new(req.kind));
        b.keys += req.entries.len();
        b.tags.push(req.tag);
        if req.entries.len() < policy.merge_below {
            b.merged.extend(req.entries); // rewrite 2: run merging
        } else {
            b.groups.push(sanitize(req.entries)); // rewrite 3: union tree
        }
    }
    close(&mut open, &mut waves);
    waves
}
