//! The service's wire-level request type.
//!
//! A request is a batch of keyed updates of one kind (insert or delete),
//! optionally tagged with a caller-chosen id so per-request outcomes can
//! be traced through coalescing (a wave remembers the tags of every
//! request folded into it). Reads are *not* requests: they are answered
//! immediately from the shard's committed snapshot
//! ([`crate::SetService::contains`]) and never enter the ingress queue.

pub use pf_trees::seq::Entry;

/// Injected misbehavior carried by a request — **test and chaos-replay
/// instrumentation**, not a production surface. The coalescer isolates a
/// faulty request into its own wave so the blast radius of the injected
/// fault is exactly that request, in both apply modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Healthy request.
    None,
    /// The wave's session panics mid-flight (a poison-pill payload).
    Panic,
    /// The wave's session wedges until cancelled: trips the deadline.
    Wedge,
}

/// What a request does to the key set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Insert the request's entries (a set union).
    Insert,
    /// Delete the request's keys (a set difference; priorities ignored).
    Delete,
}

/// One batch of updates against the service.
#[derive(Clone, Debug)]
pub struct Request<K> {
    /// Insert or delete.
    pub kind: OpKind,
    /// The `(key, priority)` entries. May be unsorted and may contain
    /// duplicate keys — the coalescer sorts and dedups (keep-first).
    pub entries: Vec<Entry<K>>,
    /// Injected misbehavior (test instrumentation); [`Fault::None`] in
    /// production traffic.
    pub fault: Fault,
    /// Caller-chosen id threaded through to [`crate::WaveOutcome::tags`].
    pub tag: u64,
}

impl<K> Request<K> {
    /// An insert batch.
    pub fn insert(entries: Vec<Entry<K>>) -> Self {
        Request {
            kind: OpKind::Insert,
            entries,
            fault: Fault::None,
            tag: 0,
        }
    }

    /// A delete batch (priorities in `entries` are ignored).
    pub fn delete(entries: Vec<Entry<K>>) -> Self {
        Request {
            kind: OpKind::Delete,
            entries,
            fault: Fault::None,
            tag: 0,
        }
    }

    /// Attach a caller id for outcome tracing.
    pub fn tagged(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Arm injected misbehavior on this request (test instrumentation).
    pub fn faulty(mut self, fault: Fault) -> Self {
        self.fault = fault;
        self
    }
}
