//! # pf-service — a sharded, coalescing ordered-set service core
//!
//! This crate turns the repo's engines into a *service*: the thing a
//! front end (or a benchmark driver) hands requests to and gets a
//! continuously updated, snapshot-readable key set back from. It is the
//! paper's composition story — independent operations whose futures
//! compose into one pipeline — promoted from an example replay
//! (`examples/set_server.rs` before PR 6) to a reusable concurrent core.
//!
//! The request path is a four-stage pipeline:
//!
//! ```text
//!   ingress ──► coalesce ──► shard sessions ──► pipelined apply
//!   (queue      (dedup,       (try_run_session   (batch N+1 splits
//!    per         wave          per window,        against batch N's
//!    shard)      merging,      fault-contained)   unresolved root)
//!                union tree)
//! ```
//!
//! * **Ingress + coalescing** ([`coalesce()`]): requests land in a
//!   per-shard queue; a run of consecutive small inserts collapses into
//!   one multi-insert *wave* (the 2-6 tree's m-keys-in-one-wave plan,
//!   realized here on treaps because the shard root must also support
//!   deletes), and consecutive pre-batched updates against the same
//!   shard root collapse into one **union tree**
//!   ([`pf_rt_algs::rtreap::union_many`]) instead of k sequential root
//!   unions.
//! * **Key-range sharding** ([`shard::ShardMap`]): S independent shards,
//!   each with its own persistent treap root, apply their waves in
//!   fault-contained sessions ([`pf_rt::Runtime::try_run_session`]) on
//!   one shared worker pool. Shard sessions genuinely co-execute (each
//!   gets its own slot in the pool's session table), so shard
//!   concurrency covers session execution itself as well as everything
//!   around it — batch treap construction, coalescing, commit
//!   bookkeeping — and a failed shard degrades alone, its abort
//!   confined to its own slot.
//! * **Snapshot reads** ([`SetService::contains`]): readers walk the
//!   shard's last *committed* root — quiescence guarantees every cell in
//!   it is written — so reads never block on writes and cost O(lg n)
//!   with zero synchronization beyond one root clone.
//! * **Cross-batch pipelining** ([`ApplyMode::Pipelined`]): inside one
//!   session a *window* of waves is chained through unresolved future
//!   cells — wave N+1's `union` touches wave N's still-being-written
//!   output root, so its splits start the moment N's root node exists
//!   instead of waiting for N's whole tree at a barrier. The barriered
//!   fallback ([`ApplyMode::Barriered`]: one wave per session) is kept
//!   for A/B measurement; `bench_pr6` freezes the comparison as
//!   `results/BENCH_PR6.json`.
//!
//! Failure is a per-wave outcome, not a process event: a wave that
//! panics, wedges past the deadline, or stalls degrades — the shard keeps
//! its previous committed root (an `Arc` clone) and keeps serving. A
//! failed *pipelined window* is replayed wave-by-wave in barriered mode,
//! so only the genuinely faulty wave is dropped and the final state is
//! identical to what barriered application would have produced (pinned
//! by the `equivalence` test). Degradation then self-heals in two
//! layers: each degraded wave is retried in fresh sessions with jittered
//! exponential backoff ([`RetryPolicy`]), and a shard whose windows keep
//! degrading trips a per-shard [`CircuitBreaker`] that sheds its load in
//! O(1) until a half-open probe window proves the shard recovered —
//! so a poisoned shard cannot monopolize the shared pool that healthy
//! shards' sessions run on (`bench_pr10` measures exactly this).
//!
//! ```
//! use pf_service::{Request, ServiceConfig, SetService, ShardMap};
//!
//! let svc = SetService::new(ShardMap::uniform(4, 0, 1_000_000), ServiceConfig::default());
//! svc.submit(Request::insert(vec![(17, 0xfeed), (93_417, 0xbeef)]));
//! let report = svc.pump(); // apply everything queued, on this thread
//! assert_eq!(report.degraded, 0);
//! assert!(svc.contains(&17) && !svc.contains(&18));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod coalesce;
pub mod request;
pub mod service;
pub mod shard;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use coalesce::{coalesce, CoalescePolicy, Wave};
pub use request::{Entry, Fault, OpKind, Request};
pub use service::{ApplyMode, DrainReport, ServiceConfig, SetService, WaveOutcome};
pub use shard::ShardMap;
