//! Self-healing policy for shard apply paths: bounded-backoff retry of
//! degraded waves, and a per-shard circuit breaker that sheds load from
//! a shard whose windows keep degrading.
//!
//! Both pieces are deliberately *mechanism-free*: [`RetryPolicy`] only
//! computes delays (the service owns the fresh-session retry loop) and
//! [`CircuitBreaker`] is a pure state machine over a caller-supplied
//! virtual clock (`Duration` since some epoch the caller picks). That
//! keeps every transition deterministic and exhaustively checkable — the
//! `model_breaker` test drives the machine through every reachable state
//! without a real clock — while the service feeds it
//! `started.elapsed()`.
//!
//! The breaker exists for the failure shape retries cannot fix: a shard
//! whose *every* window degrades (a poisoned key range, a wedged
//! dependency) would otherwise burn its full deadline-plus-retries
//! budget per window, starving the shared pool that healthy shards'
//! sessions also run on. Opening the breaker sheds those windows in O(1)
//! — the waves degrade immediately with a "circuit open" outcome — and
//! a half-open probe window periodically tests whether the shard
//! recovered.

use std::time::Duration;

/// Retry policy for degraded waves: how many fresh-session attempts a
/// wave gets past its first, and the jittered exponential backoff
/// between them.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (0 disables retry). Each
    /// retry runs the wave alone, in a fresh session, against the
    /// shard's current committed root.
    pub attempts: u32,
    /// Base delay before the first retry; attempt `n` waits up to
    /// `base << n`, capped at [`RetryPolicy::cap`].
    pub base: Duration,
    /// Upper bound of any single backoff delay.
    pub cap: Duration,
    /// Seed of the per-shard jitter streams (deterministic per shard, so
    /// a replayed run backs off identically).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The jitter stream for shard `shard` (pass `&mut` to
    /// [`RetryPolicy::delay`]).
    pub fn stream(&self, shard: usize) -> u64 {
        let mut s = self.seed ^ (shard as u64).wrapping_mul(0xA24BAED4963EE407);
        let _ = splitmix(&mut s);
        s
    }

    /// Backoff before retry number `attempt` (0-based): uniformly
    /// jittered in `[half, full]` of `min(base << attempt, cap)`. Full
    /// jitter keeps concurrent shards' retries from synchronizing; the
    /// half floor keeps every delay a real backoff.
    pub fn delay(&self, attempt: u32, stream: &mut u64) -> Duration {
        let full = self
            .base
            .checked_mul(1u32 << attempt.min(16))
            .map_or(self.cap, |d| d.min(self.cap));
        let half = full / 2;
        let span = full.saturating_sub(half).as_nanos() as u64;
        let jitter = if span == 0 {
            0
        } else {
            splitmix(stream) % (span + 1)
        };
        half + Duration::from_nanos(jitter)
    }
}

/// Circuit-breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive degraded windows that trip the breaker open.
    /// **0 disables the breaker** (the default): every window is
    /// admitted, nothing is shed.
    pub threshold: u32,
    /// How long an open breaker sheds before allowing a half-open probe
    /// window.
    pub open_for: Duration,
    /// Consecutive healthy probe windows required to close again from
    /// half-open (minimum 1).
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 0,
            open_for: Duration::from_millis(250),
            probes: 1,
        }
    }
}

/// Breaker state (exposed for tests and telemetry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every window admitted; counts consecutive degradations.
    Closed {
        /// Consecutive degraded windows seen so far.
        consecutive: u32,
    },
    /// Tripped: windows are shed until the virtual clock reaches `until`.
    Open {
        /// Virtual-clock instant at which a probe becomes admissible.
        until: Duration,
    },
    /// Probing: one window at a time is admitted; counts consecutive
    /// healthy probes.
    HalfOpen {
        /// Consecutive healthy probe windows seen so far.
        healthy: u32,
    },
}

/// Per-shard circuit breaker: Closed → (threshold consecutive degraded
/// windows) → Open → (after `open_for` on the virtual clock) → HalfOpen
/// probe → Closed on `probes` consecutive healthy windows, or straight
/// back to Open on a degraded one.
///
/// The clock is whatever monotone `Duration` the caller supplies to
/// [`CircuitBreaker::admit`] / [`CircuitBreaker::on_window`] — the
/// service uses time since service construction; the model tests use a
/// hand-stepped counter.
#[derive(Clone, Copy, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed { consecutive: 0 },
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate a window at virtual time `now`. `false` means shed: the
    /// window must not run (and [`CircuitBreaker::on_window`] must not
    /// be called for it — a shed window carries no health signal). An
    /// open breaker whose `open_for` has elapsed flips to half-open and
    /// admits the probe in the same call.
    pub fn admit(&mut self, now: Duration) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen { .. } => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen { healthy: 0 };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record the fate of an admitted window (`degraded` = at least one
    /// wave degraded after retries) at virtual time `now`.
    pub fn on_window(&mut self, degraded: bool, now: Duration) {
        if self.cfg.threshold == 0 {
            return; // disabled: stay closed forever
        }
        self.state = match (self.state, degraded) {
            (BreakerState::Closed { consecutive }, true) => {
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.threshold {
                    BreakerState::Open {
                        until: now + self.cfg.open_for,
                    }
                } else {
                    BreakerState::Closed { consecutive }
                }
            }
            (BreakerState::Closed { .. }, false) => BreakerState::Closed { consecutive: 0 },
            // A degraded probe re-opens for a full window.
            (BreakerState::HalfOpen { .. }, true) => BreakerState::Open {
                until: now + self.cfg.open_for,
            },
            (BreakerState::HalfOpen { healthy }, false) => {
                let healthy = healthy + 1;
                if healthy >= self.cfg.probes.max(1) {
                    BreakerState::Closed { consecutive: 0 }
                } else {
                    BreakerState::HalfOpen { healthy }
                }
            }
            // `admit` gates windows, so an open breaker never observes
            // one; tolerate the call anyway (state is self-consistent).
            (open @ BreakerState::Open { .. }, _) => open,
        };
    }
}
