//! The service core: per-shard ingress queues feeding coalesced waves
//! into fault-contained apply sessions, with cross-batch pipelining
//! inside each session window.
//!
//! See the crate docs for the architecture. The one invariant everything
//! here leans on: a shard's *committed* root only ever comes out of a
//! session that reached quiescence, so every future cell reachable from
//! it is written — snapshot readers walk it lock-free (after one root
//! clone) and the next session's unions may touch its cells at will
//! (touching a written cell is always legal; linearity only restricts
//! touches of unwritten ones).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pf_rt::{cell, ready, FutRead, RunStats, Runtime, SchedPolicy, Session, SessionError, Worker};
use pf_rt_algs::rtreap::{diff, union, union_many, RTreap, RtTreap};
use pf_rt_algs::RKey;

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use crate::coalesce::{coalesce, CoalescePolicy, Wave};
use crate::request::{Fault, OpKind, Request};
use crate::shard::ShardMap;

/// How a window of waves is applied to a shard root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyMode {
    /// One session per **window** of up to [`ServiceConfig::window`]
    /// waves, chained through unresolved future cells: wave N+1's union
    /// touches wave N's still-being-written output root, so its splits
    /// begin as soon as N's root node exists — the paper's composition
    /// story as a throughput feature. A failed window is replayed
    /// wave-by-wave in barriered mode, so only the faulty wave degrades.
    Pipelined,
    /// One session per wave: every wave waits for its predecessor's full
    /// quiescence (the barrier the paper's futures exist to remove).
    /// Kept as the A/B baseline `bench_pr6` measures against.
    Barriered,
}

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads of the shared apply pool
    /// ([`Runtime::shared`]`(threads)`).
    pub threads: usize,
    /// Max waves chained into one pipelined session (ignored in
    /// [`ApplyMode::Barriered`]).
    pub window: usize,
    /// Apply mode (pipelined by default; barriered for A/B runs).
    pub mode: ApplyMode,
    /// Per-session deadline: a wave (or window) that exceeds it aborts
    /// and degrades instead of wedging the shard.
    pub deadline: Option<Duration>,
    /// Coalescer tuning.
    pub policy: CoalescePolicy,
    /// Scheduling policy the apply sessions run under (threaded to
    /// [`Session::policy`] for every window and replay session).
    pub sched: SchedPolicy,
    /// Per-session progress-stall budget (threaded to
    /// [`Session::stall_budget`]): a wave whose session stops making
    /// *any* scheduler progress for this long aborts as `Stalled` — much
    /// faster than waiting out `deadline` for a mid-task wedge, and
    /// immune to busy sibling sessions on the shared pool.
    pub stall_budget: Option<Duration>,
    /// Retry policy for degraded waves: each gets up to
    /// `retry.attempts` fresh-session replays with jittered exponential
    /// backoff before its degradation is final.
    pub retry: RetryPolicy,
    /// Per-shard circuit breaker: after `breaker.threshold` consecutive
    /// degraded windows a shard sheds its windows (degrading them in
    /// O(1), without running sessions) until a half-open probe window
    /// succeeds. Disabled by default (`threshold: 0`).
    pub breaker: BreakerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 4,
            window: 8,
            mode: ApplyMode::Pipelined,
            deadline: Some(Duration::from_secs(10)),
            policy: CoalescePolicy::default(),
            sched: SchedPolicy::default(),
            stall_budget: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// The fate of one coalesced wave.
#[derive(Clone, Debug)]
pub struct WaveOutcome {
    /// Shard the wave applied to.
    pub shard: usize,
    /// Insert or delete.
    pub kind: OpKind,
    /// Tags of the requests coalesced into the wave (see
    /// [`Request::tagged`]); a wave serves or degrades atomically, so
    /// these tags share one fate.
    pub tags: Vec<u64>,
    /// Total keys in the wave.
    pub keys: usize,
    /// Did the wave commit? `false` means the shard kept its previous
    /// root for this wave (degraded).
    pub served: bool,
    /// The session error that degraded the wave, rendered.
    pub error: Option<String>,
    /// Apply latency: the elapsed time of the session that decided this
    /// wave's fate (shared by every wave of a pipelined window; from
    /// [`RunStats::elapsed`], the same source the benchmark reports).
    pub latency: Duration,
    /// Served by the wave-by-wave replay of a failed pipelined window
    /// rather than by its original window session.
    pub replayed: bool,
    /// Sessions that decided this wave's fate: 1 for a first-try wave,
    /// more when retries ran, 0 for a shed wave (no session ran).
    pub attempts: u32,
    /// Dropped by an open circuit breaker before any session ran —
    /// `served` is `false` and `latency` is zero; the shard was shedding
    /// load after too many consecutive degraded windows.
    pub shed: bool,
    /// The full event timeline of the failed session that degraded this
    /// wave (`trace` feature only), taken from
    /// [`Runtime::take_last_trace`] at degrade time — a degraded wave
    /// ships with its own diagnosis. `None` for served waves (and for
    /// degraded waves when another session raced the pool's last-trace
    /// slot on a shared runtime).
    #[cfg(feature = "trace")]
    pub trace: Option<Arc<pf_rt::SessionTrace>>,
}

/// Aggregated result of draining pending requests.
#[derive(Clone, Debug, Default)]
pub struct DrainReport {
    /// Per-wave outcomes, in commit order per shard.
    pub outcomes: Vec<WaveOutcome>,
    /// Session statistics accumulated over every *successful* session,
    /// including elapsed busy time — so
    /// `stats.ops_per_sec(keys_applied)` is the service's in-session
    /// throughput from the same [`RunStats`] source the benchmark uses.
    pub stats: RunStats,
    /// Sessions run, including failed ones and replays.
    pub sessions: u64,
    /// Wall-clock span of the drain that produced this report (stamped
    /// by [`SetService::pump`] and [`SetService::drive`]). Distinct from
    /// `stats.elapsed`, which *sums* per-session busy time: concurrent
    /// shard sessions overlap on the shared pool, so the sum exceeds the
    /// wall clock — `wall` is the denominator an end-to-end throughput
    /// claim needs. [`DrainReport::merge`] takes the max (merged reports
    /// describe overlapping spans of one drain, not disjoint intervals).
    pub wall: Duration,
    /// Keys committed by served waves.
    pub keys_applied: u64,
    /// Waves that committed.
    pub served: u64,
    /// Waves dropped because their session (and every retry) failed.
    pub degraded: u64,
    /// Retry sessions run for initially-degraded waves.
    pub retries: u64,
    /// Waves that degraded at least once and then committed on a retry.
    pub recovered: u64,
    /// Waves dropped by an open circuit breaker without running a
    /// session. `served + degraded + shed == outcomes.len()`.
    pub shed: u64,
    /// Full event timelines of failed *window* sessions (`trace` feature
    /// only): one entry per pipelined window whose session failed and was
    /// replayed wave-by-wave, captured before the replay sessions
    /// overwrite the pool's last-trace slot — so the window's diagnosis
    /// travels with the report even when every replayed wave then serves.
    #[cfg(feature = "trace")]
    pub window_traces: Vec<Arc<pf_rt::SessionTrace>>,
}

impl DrainReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, other: DrainReport) {
        self.outcomes.extend(other.outcomes);
        self.stats.accumulate(&other.stats);
        self.sessions += other.sessions;
        self.keys_applied += other.keys_applied;
        self.served += other.served;
        self.degraded += other.degraded;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.shed += other.shed;
        self.wall = self.wall.max(other.wall);
        #[cfg(feature = "trace")]
        self.window_traces.extend(other.window_traces);
    }

    /// End-to-end keys/sec of the drain: committed keys over the drain's
    /// wall-clock span ([`RunStats::ops_per_sec_wall`]). Compare with
    /// `stats.ops_per_sec(keys_applied)`, which divides by *summed*
    /// per-session busy time and therefore understates a drain whose
    /// sessions co-execute; this one credits the overlap.
    pub fn keys_per_sec_wall(&self) -> f64 {
        RunStats::ops_per_sec_wall(self.keys_applied, self.wall)
    }
}

/// One shard: its ingress queue and committed root. The root mutex is
/// held only for a clone (readers, session setup) or a store (commit) —
/// never across a session.
struct Shard<K: 'static> {
    ingress: Mutex<Vec<Request<K>>>,
    root: Mutex<RTreap<K>>,
    /// This shard's circuit breaker; held only for a state-machine step.
    breaker: Mutex<CircuitBreaker>,
    /// This shard's backoff-jitter stream ([`RetryPolicy::stream`]).
    backoff: Mutex<u64>,
}

/// The apply plan of one wave: its group treaps, pre-built outside the
/// session (input marshalling), plus what to do with them.
struct WavePlan<K: 'static> {
    kind: OpKind,
    fault: Fault,
    treaps: Vec<RTreap<K>>,
}

impl<K: 'static> Clone for WavePlan<K> {
    fn clone(&self) -> Self {
        WavePlan {
            kind: self.kind,
            fault: self.fault,
            treaps: self.treaps.clone(), // Arc-shallow
        }
    }
}

/// Ignore mutex poisoning: the guarded values (a request vector, a
/// committed root) are valid at every step, and a panicking shard thread
/// must not wedge its siblings.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A sharded, coalescing ordered-set service (crate docs).
pub struct SetService<K: RKey> {
    rt: Arc<Runtime>,
    map: ShardMap<K>,
    shards: Vec<Shard<K>>,
    cfg: ServiceConfig,
    /// Epoch of the breakers' virtual clock: breaker deadlines are
    /// `Duration`s since service construction, so the state machine
    /// itself stays clock-free (exhaustively tested in `model_breaker`).
    started: Instant,
}

impl<K: RKey> SetService<K> {
    /// A service over `map`'s shards on the process-wide shared pool
    /// with `cfg.threads` workers.
    pub fn new(map: ShardMap<K>, cfg: ServiceConfig) -> Self {
        Self::with_runtime(Runtime::shared(cfg.threads), map, cfg)
    }

    /// A service on a caller-owned runtime (its width wins over
    /// `cfg.threads`).
    pub fn with_runtime(rt: Arc<Runtime>, map: ShardMap<K>, cfg: ServiceConfig) -> Self {
        let shards = (0..map.shards())
            .map(|i| Shard {
                ingress: Mutex::new(Vec::new()),
                root: Mutex::new(RTreap::Leaf),
                breaker: Mutex::new(CircuitBreaker::new(cfg.breaker)),
                backoff: Mutex::new(cfg.retry.stream(i)),
            })
            .collect();
        SetService {
            rt,
            map,
            shards,
            cfg,
            started: Instant::now(),
        }
    }

    /// The current breaker state of `shard` (telemetry; the state may
    /// advance the moment the next window is gated).
    pub fn breaker_state(&self, shard: usize) -> BreakerState {
        lock(&self.shards[shard].breaker).state()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Enqueue a request: its entries are split by key range and land in
    /// each owning shard's ingress queue (the fault tag and request tag
    /// travel with every sub-request). An empty request is elided here —
    /// it is a no-op on the key set.
    pub fn submit(&self, req: Request<K>) {
        if req.entries.is_empty() {
            return;
        }
        let Request {
            kind,
            entries,
            fault,
            tag,
        } = req;
        for (i, part) in self.map.split(entries).into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            lock(&self.shards[i].ingress).push(Request {
                kind,
                entries: part,
                fault,
                tag,
            });
        }
    }

    /// Snapshot membership read: walks the owning shard's last committed
    /// root. Costs one root clone plus an O(lg n) walk of written cells;
    /// never blocks on in-flight writes (which build a *new* root — the
    /// committed one is immutable). Reads-your-writes only after the
    /// write's wave commits: this is a snapshot consistency model, by
    /// design.
    pub fn contains(&self, key: &K) -> bool {
        let root = self.snapshot(self.map.shard_of(key));
        let mut cur = root;
        loop {
            match cur {
                RTreap::Leaf => return false,
                RTreap::Node(n) => {
                    if *key == n.key {
                        return true;
                    }
                    let child = if *key < n.key { &n.left } else { &n.right };
                    cur = child.peek().expect("committed root with unwritten cell");
                }
            }
        }
    }

    /// The shard's committed root (an `Arc`-shallow clone).
    pub fn snapshot(&self, shard: usize) -> RTreap<K> {
        lock(&self.shards[shard].root).clone()
    }

    /// Snapshot range query: every committed key in `[lo, hi)`, in
    /// ascending order. Routes through
    /// [`ShardMap::shards_for_range`] — range partitioning means the
    /// intersecting shards form one contiguous run in key order, so the
    /// per-shard in-order walks concatenate into a globally sorted
    /// result with no merge step. Each shard contributes a walk of its
    /// own committed root (same snapshot model as
    /// [`SetService::contains`]: one root clone, lock-free descent of
    /// written cells, never blocked by in-flight sessions — but each
    /// shard's snapshot is taken independently, so a cross-shard wave
    /// committing mid-scan may appear in one shard and not another).
    /// The walk prunes: subtrees wholly outside `[lo, hi)` are never
    /// entered, so cost is O(lg n + answer) per shard.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<K> {
        let mut out = Vec::new();
        for shard in self.map.shards_for_range(lo, hi) {
            range_into(&self.snapshot(shard), lo, hi, &mut out);
        }
        out
    }

    /// Sorted keys of one shard's committed root (post-run inspection;
    /// O(n)).
    pub fn shard_keys(&self, shard: usize) -> Vec<K> {
        self.snapshot(shard).to_sorted_vec()
    }

    /// Apply everything queued, shard by shard, on the calling thread —
    /// the deterministic path tests and single-threaded replays use.
    pub fn pump(&self) -> DrainReport {
        let started = Instant::now();
        let mut out = DrainReport::default();
        for i in 0..self.shards.len() {
            out.merge(self.apply_pending(i));
        }
        out.wall = started.elapsed();
        out
    }

    /// Concurrent open-loop drain: one apply thread per shard pulls from
    /// its ingress queue while the calling thread feeds `requests` in —
    /// arrival is a pipeline stage overlapping coalescing, batch-treap
    /// construction, and the other shards' sessions. The shard sessions
    /// genuinely co-execute: each `try_run_session` call gets its own
    /// slot in the pool's session table and they share the worker pool,
    /// so one shard's stall (or injected fault) neither blocks nor
    /// corrupts a sibling's wave — fault containment is per slot, not
    /// per pool. Returns when every submitted request has been applied
    /// or degraded.
    pub fn drive<I>(&self, requests: I) -> DrainReport
    where
        I: IntoIterator<Item = Request<K>>,
    {
        let started = Instant::now();
        let closed = AtomicBool::new(false);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|i| {
                    let closed = &closed;
                    s.spawn(move || {
                        let mut rep = DrainReport::default();
                        loop {
                            let got = self.apply_pending(i);
                            let idle = got.sessions == 0 && got.outcomes.is_empty();
                            rep.merge(got);
                            if !idle {
                                continue;
                            }
                            if closed.load(Ordering::Acquire) {
                                // Final sweep: the close flag is set
                                // after the last submit, so one more
                                // drain observes everything.
                                rep.merge(self.apply_pending(i));
                                break;
                            }
                            std::thread::yield_now();
                        }
                        rep
                    })
                })
                .collect();
            for req in requests {
                self.submit(req);
            }
            closed.store(true, Ordering::Release);
            let mut out = DrainReport::default();
            for h in handles {
                out.merge(h.join().expect("shard apply thread panicked"));
            }
            out.wall = started.elapsed();
            out
        })
    }

    /// Drain one shard's pending requests: coalesce into waves, chop
    /// into windows, apply each window in a fault-contained session.
    fn apply_pending(&self, shard: usize) -> DrainReport {
        let pending = std::mem::take(&mut *lock(&self.shards[shard].ingress));
        let mut report = DrainReport::default();
        if pending.is_empty() {
            return report;
        }
        let waves = coalesce(pending, &self.cfg.policy);
        let window = match self.cfg.mode {
            ApplyMode::Pipelined => self.cfg.window.max(1),
            ApplyMode::Barriered => 1,
        };
        for chunk in waves.chunks(window) {
            self.apply_window(shard, chunk, &mut report);
        }
        report
    }

    /// Apply one window of waves. On window failure with more than one
    /// wave, fall back to wave-by-wave barriered replay so only the
    /// faulty wave degrades — keeping pipelined and barriered end states
    /// identical (the equivalence test pins this). Around that protocol
    /// sit the self-healing layers: the shard's circuit breaker gates
    /// the window (an open breaker sheds it in O(1)), each degraded wave
    /// gets [`ServiceConfig::retry`] fresh-session attempts with
    /// jittered backoff, and the window's final fate feeds the breaker.
    fn apply_window(&self, shard: usize, waves: &[Wave<K>], report: &mut DrainReport) {
        if !lock(&self.shards[shard].breaker).admit(self.started.elapsed()) {
            for w in waves {
                let mut o = outcome(shard, w, false, None, Duration::ZERO, false);
                o.error = Some("circuit open: shard shedding load".to_string());
                o.attempts = 0;
                o.shed = true;
                report.shed += 1;
                report.outcomes.push(o);
            }
            return;
        }
        let plans: Vec<WavePlan<K>> = waves
            .iter()
            .map(|w| WavePlan {
                kind: w.kind,
                fault: w.fault,
                treaps: w
                    .groups
                    .iter()
                    .map(|g| RTreap::from_entries_ready(g))
                    .collect(),
            })
            .collect();
        let root = self.snapshot(shard);
        report.sessions += 1;
        let mut degraded = false;
        match self.run_window_session(root, plans.clone()) {
            Ok((new_root, stats)) => {
                *lock(&self.shards[shard].root) = new_root;
                for w in waves {
                    report.record(outcome(shard, w, true, None, stats.elapsed, false));
                }
                report.stats.accumulate(&stats);
            }
            Err(failed) if waves.len() == 1 => {
                let plan = plans.into_iter().next().expect("one plan per wave");
                degraded = !self.retry_wave(shard, &waves[0], plan, false, Some(failed), report);
            }
            Err(_) => {
                // The failed window's timeline, captured before the
                // replay sessions overwrite the pool's last-trace slot.
                #[cfg(feature = "trace")]
                report
                    .window_traces
                    .extend(self.rt.take_last_trace().map(Arc::new));
                // Replay: one wave per session (plus retries), committing
                // the healthy ones in order; the shard root advances past
                // each.
                for (w, plan) in waves.iter().zip(plans) {
                    degraded |= !self.retry_wave(shard, w, plan, true, None, report);
                }
            }
        }
        lock(&self.shards[shard].breaker).on_window(degraded, self.started.elapsed());
    }

    /// Run `plan` alone in fresh sessions until it serves or its retry
    /// budget is spent, recording exactly one outcome. `failed` carries
    /// an attempt the caller already ran (the single-wave window
    /// session); each subsequent attempt waits out a jittered
    /// exponential backoff first. Returns whether the wave served.
    fn retry_wave(
        &self,
        shard: usize,
        w: &Wave<K>,
        plan: WavePlan<K>,
        replayed: bool,
        failed: Option<(SessionError, Duration)>,
        report: &mut DrainReport,
    ) -> bool {
        let mut attempts: u32 = failed.iter().count() as u32;
        let mut last = failed;
        loop {
            if let Some((err, took)) = last {
                if attempts > self.cfg.retry.attempts {
                    let mut o = outcome(shard, w, false, Some(&err), took, replayed);
                    o.attempts = attempts;
                    report.record(self.attach_failed_trace(o));
                    return false;
                }
                // Bounded backoff: the shard's ingress keeps queueing
                // while we sleep; a transient fault (a wedge released, a
                // contended sibling) gets breathing room to clear.
                let delay = {
                    let mut stream = lock(&self.shards[shard].backoff);
                    self.cfg.retry.delay(attempts - 1, &mut stream)
                };
                std::thread::sleep(delay);
                report.retries += 1;
            }
            report.sessions += 1;
            attempts += 1;
            let root = self.snapshot(shard);
            match self.run_window_session(root, vec![plan.clone()]) {
                Ok((new_root, stats)) => {
                    *lock(&self.shards[shard].root) = new_root;
                    let mut o = outcome(shard, w, true, None, stats.elapsed, replayed);
                    o.attempts = attempts;
                    report.record(o);
                    report.stats.accumulate(&stats);
                    if attempts > 1 {
                        report.recovered += 1;
                    }
                    return true;
                }
                Err(e) => last = Some(e),
            }
        }
    }

    /// One apply session: chain every wave of the window through
    /// unresolved result cells (cross-batch pipelining), then read the
    /// final root out. Each wave's groups collapse through a balanced
    /// union tree before touching the chain. On failure the caller gets
    /// the error plus the session's wall-clock cost; the pool is already
    /// clean (aborted sessions poison their cells and drop their
    /// continuations) and the pre-session root is untouched — every cell
    /// reachable from it was written before this session began, so the
    /// poison pass cannot reach it.
    #[allow(clippy::type_complexity)]
    fn run_window_session(
        &self,
        root: RTreap<K>,
        plans: Vec<WavePlan<K>>,
    ) -> Result<(RTreap<K>, RunStats), (SessionError, Duration)> {
        let (op, of) = cell();
        let mut sess = Session::new().policy(self.cfg.sched);
        if let Some(d) = self.cfg.deadline {
            sess = sess.deadline(d);
        }
        if let Some(b) = self.cfg.stall_budget {
            sess = sess.stall_budget(b);
        }
        let started = Instant::now();
        let stats = self
            .rt
            .try_run_session(sess, move |wk: &Worker| {
                let mut state: FutRead<RTreap<K>> = ready(root);
                for plan in plans {
                    match plan.fault {
                        Fault::Panic => {
                            wk.spawn(|_| panic!("injected fault: malformed request payload"))
                        }
                        Fault::Wedge => wk.spawn(|wk| {
                            while !wk.cancelled() {
                                std::hint::spin_loop();
                            }
                        }),
                        Fault::None => {}
                    }
                    let futs = plan.treaps.into_iter().map(ready).collect();
                    let batch = union_many(wk, futs);
                    let (p, f) = cell();
                    match plan.kind {
                        OpKind::Insert => union(wk, state, batch, p),
                        OpKind::Delete => diff(wk, state, batch, p),
                    }
                    state = f;
                }
                state.touch(wk, move |v, wk| op.fulfill(wk, v));
            })
            .map_err(|e| (e, started.elapsed()))?;
        // Quiescence ⇒ the final chain cell is written.
        Ok((of.expect(), stats))
    }

    /// Attach the pool's last session timeline — the failed session that
    /// degraded `o` — to the outcome. No-op without the `trace` feature.
    #[cfg_attr(not(feature = "trace"), allow(unused_mut, clippy::unused_self))]
    fn attach_failed_trace(&self, mut o: WaveOutcome) -> WaveOutcome {
        #[cfg(feature = "trace")]
        {
            o.trace = self.rt.take_last_trace().map(Arc::new);
        }
        o
    }
}

impl DrainReport {
    fn record(&mut self, o: WaveOutcome) {
        if o.served {
            self.served += 1;
            self.keys_applied += o.keys as u64;
        } else {
            self.degraded += 1;
        }
        self.outcomes.push(o);
    }
}

/// In-order walk of a committed (fully written) treap, pushing keys in
/// `[lo, hi)` and pruning subtrees the range cannot reach.
fn range_into<K: RKey>(t: &RTreap<K>, lo: &K, hi: &K, out: &mut Vec<K>) {
    if let RTreap::Node(n) = t {
        if *lo < n.key {
            range_into(
                &n.left.peek().expect("committed root with unwritten cell"),
                lo,
                hi,
                out,
            );
        }
        if *lo <= n.key && n.key < *hi {
            out.push(n.key.clone());
        }
        if n.key < *hi {
            range_into(
                &n.right.peek().expect("committed root with unwritten cell"),
                lo,
                hi,
                out,
            );
        }
    }
}

fn outcome<K>(
    shard: usize,
    w: &Wave<K>,
    served: bool,
    err: Option<&SessionError>,
    latency: Duration,
    replayed: bool,
) -> WaveOutcome {
    WaveOutcome {
        shard,
        kind: w.kind,
        tags: w.tags.clone(),
        keys: w.keys(),
        served,
        error: err.map(|e| e.to_string()),
        latency,
        replayed,
        attempts: 1,
        shed: false,
        #[cfg(feature = "trace")]
        trace: None,
    }
}
