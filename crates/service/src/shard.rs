//! Key-range sharding: a sorted boundary vector partitions the key space
//! into S contiguous ranges, each owned by one shard with its own treap
//! root, ingress queue, and failure domain.
//!
//! Range partitioning (rather than hashing) keeps each shard an ordered
//! set in its own right — range scans and ordered dumps stay local — and
//! makes `shard_of` one branch-free `partition_point` over a vector that
//! fits in a cache line for any realistic S.

use crate::request::Entry;

/// A partition of the key space into `bounds.len() + 1` contiguous
/// ranges: shard `i` owns keys in `[bounds[i-1], bounds[i])` (first and
/// last ranges unbounded below/above).
#[derive(Clone, Debug)]
pub struct ShardMap<K> {
    bounds: Vec<K>,
}

impl<K: Ord + Clone> ShardMap<K> {
    /// A map with the given ascending shard boundaries. One shard when
    /// `bounds` is empty.
    ///
    /// # Panics
    /// If `bounds` is not strictly ascending.
    pub fn new(bounds: Vec<K>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "shard bounds must be strictly ascending"
        );
        ShardMap { bounds }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() + 1
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        self.bounds.partition_point(|b| b <= key)
    }

    /// The contiguous run of shards whose ranges intersect `[lo, hi)`,
    /// in key order — because the partition is by key range, a range
    /// query visits exactly these shards and the concatenation of their
    /// (sorted) results is globally sorted. Empty range for `lo >= hi`.
    pub fn shards_for_range(&self, lo: &K, hi: &K) -> std::ops::Range<usize> {
        if lo >= hi {
            return 0..0;
        }
        // First shard: the one owning `lo`. Last shard: the one owning
        // the greatest key below `hi` — shards whose lower bound is
        // `>= hi` start at or past the range's end and own none of it.
        let first = self.bounds.partition_point(|b| b <= lo);
        let last = self.bounds.partition_point(|b| b < hi);
        first..last + 1
    }

    /// Split a mixed-key entry batch into one (possibly empty) sub-batch
    /// per shard, preserving arrival order within each.
    pub fn split(&self, entries: Vec<Entry<K>>) -> Vec<Vec<Entry<K>>> {
        let mut out: Vec<Vec<Entry<K>>> = (0..self.shards()).map(|_| Vec::new()).collect();
        for e in entries {
            out[self.shard_of(&e.0)].push(e);
        }
        out
    }
}

impl ShardMap<i64> {
    /// `shards` equal-width ranges over `[lo, hi)` — the right default
    /// for a uniformly drawn integer key space (the benchmark's synthetic
    /// load). Keys outside `[lo, hi)` still route (to the edge shards).
    pub fn uniform(shards: usize, lo: i64, hi: i64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(lo < hi, "empty key range");
        let width = ((hi - lo) as i128 / shards as i128).max(1);
        let bounds = (1..shards as i128)
            .map(|i| (lo as i128 + i * width) as i64)
            .take_while(|b| *b < hi)
            .collect();
        ShardMap { bounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_respects_bounds() {
        let m = ShardMap::new(vec![10, 20]);
        assert_eq!(m.shards(), 3);
        assert_eq!(m.shard_of(&-5), 0);
        assert_eq!(m.shard_of(&9), 0);
        assert_eq!(m.shard_of(&10), 1);
        assert_eq!(m.shard_of(&19), 1);
        assert_eq!(m.shard_of(&20), 2);
        assert_eq!(m.shard_of(&1000), 2);
    }

    #[test]
    fn uniform_covers_range() {
        let m = ShardMap::uniform(4, 0, 1000);
        assert_eq!(m.shards(), 4);
        for k in [0i64, 249, 250, 999, -3, 5000] {
            let s = m.shard_of(&k);
            assert!(s < 4, "key {k} routed to shard {s}");
        }
        assert_eq!(m.shard_of(&0), 0);
        assert_eq!(m.shard_of(&999), 3);
    }

    #[test]
    fn split_preserves_order_per_shard() {
        let m = ShardMap::new(vec![100]);
        let parts = m.split(vec![(5, 1), (200, 2), (7, 3), (150, 4)]);
        assert_eq!(parts[0], vec![(5, 1), (7, 3)]);
        assert_eq!(parts[1], vec![(200, 2), (150, 4)]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        let _ = ShardMap::new(vec![20, 10]);
    }

    #[test]
    fn shards_for_range_covers_intersecting_shards() {
        let m = ShardMap::new(vec![10, 20]);
        assert_eq!(m.shards_for_range(&0, &5), 0..1);
        assert_eq!(m.shards_for_range(&0, &10), 0..1); // hi exclusive
        assert_eq!(m.shards_for_range(&0, &11), 0..2);
        assert_eq!(m.shards_for_range(&10, &20), 1..2);
        assert_eq!(m.shards_for_range(&5, &25), 0..3);
        assert_eq!(m.shards_for_range(&20, &100), 2..3);
        assert_eq!(m.shards_for_range(&-50, &1000), 0..3);
        assert_eq!(m.shards_for_range(&7, &7), 0..0); // empty
        assert_eq!(m.shards_for_range(&9, &3), 0..0); // inverted
    }

    #[test]
    fn single_shard_uniform() {
        let m = ShardMap::uniform(1, 0, 10);
        assert_eq!(m.shards(), 1);
        assert_eq!(m.shard_of(&7), 0);
    }
}
